#!/usr/bin/env python
"""Regenerate every table and figure of the paper at full scale.

Writes the rendered tables to stdout (tee it into a file).  This is
what EXPERIMENTS.md records; expect ~30-45 minutes of wall time.
"""

import time

from repro.experiments import (fig5_frequency, fig6_scale, fig7_simultaneous,
                               fig9_synchronized, fig11_state_sync,
                               table1_tools)
from repro.experiments.fig6_scale import variance_by_scale


def banner(text):
    print()
    print("#" * 72)
    print("#", text)
    print("#" * 72, flush=True)


def timed(fn, *args, **kwargs):
    t0 = time.time()
    result = fn(*args, **kwargs)
    print(result.render())
    print(f"[wall time: {time.time() - t0:.0f}s]", flush=True)
    return result


def main():
    banner("Table §2.1 — tool comparison")
    print(table1_tools.render(), flush=True)

    banner("Fig. 5 — impact of fault frequency (BT-49, 53 machines, 6 reps)")
    timed(fig5_frequency.run_experiment)

    banner("Fig. 6 — impact of scale (1 fault / 50 s, 5 reps)")
    r6 = timed(fig6_scale.run_experiment)
    print("faulty-run stdev by scale (the paper's variance argument):")
    for scale, sd in variance_by_scale(r6):
        print(f"  BT {scale}: stdev = {sd if sd is None else round(sd, 1)}")

    banner("Fig. 7 — impact of simultaneous faults (BT-49, 6 reps)")
    timed(fig7_simultaneous.run_experiment)

    banner("Fig. 7 ablation — same scenario, dispatcher bug FIXED")
    timed(fig7_simultaneous.run_experiment, reps=3, batches=(5,),
          bug_compat=False)

    banner("Fig. 9 — synchronized faults (2 faults, onload-timed, 6 reps)")
    timed(fig9_synchronized.run_experiment)

    banner("Fig. 9 ablation — dispatcher bug FIXED")
    timed(fig9_synchronized.run_experiment, reps=3, include_baseline=False,
          bug_compat=False)

    banner("Fig. 11 — state-synchronized faults (breakpoint, 6 reps)")
    timed(fig11_state_sync.run_experiment)

    banner("Fig. 11 ablation — dispatcher bug FIXED")
    timed(fig11_state_sync.run_experiment, reps=3, include_baseline=False,
          bug_compat=False)


if __name__ == "__main__":
    main()
