#!/usr/bin/env python
"""Regenerate every table and figure of the paper at full scale.

Writes the rendered tables to stdout (tee it into a file) and a
machine-readable campaign summary — per-figure wall-clock, trial
counts and cache hit rate — to ``BENCH_full.json`` so future changes
have a perf trajectory to compare against.

Serial from a cold cache this is ~30-45 minutes of wall time; pass
``--workers N`` to fan trials out over N processes and ``--cache-dir``
to make interrupted campaigns resumable (a re-run executes only the
trials that are missing from the cache).
"""

import argparse
import json
import time

from repro.experiments import (compare_protocols, fig5_frequency, fig6_scale,
                               fig7_simultaneous, fig9_synchronized,
                               fig11_state_sync, scale_sweep, table1_tools)
from repro.experiments.fig6_scale import variance_by_scale
from repro.experiments.runner import add_runner_arguments, runner_from_args


def banner(text):
    print()
    print("#" * 72)
    print("#", text)
    print("#" * 72, flush=True)


class CampaignTimer:
    """Times each figure and attributes runner stats deltas to it."""

    def __init__(self, runner):
        self.runner = runner
        self.figures = {}

    def timed(self, key, fn, *args, **kwargs):
        executed0, hits0 = self.runner.stats.snapshot()
        t0 = time.time()
        result = fn(*args, runner=self.runner, **kwargs)
        wall = time.time() - t0
        print(result.render())
        print(f"[wall time: {wall:.0f}s]", flush=True)
        executed1, hits1 = self.runner.stats.snapshot()
        trials = sum(row.n for row in result.rows)
        hits = hits1 - hits0
        self.figures[key] = {
            "wall_time_s": round(wall, 3),
            "trials": trials,
            "executed": executed1 - executed0,
            "cache_hits": hits,
            "cache_hit_rate": round(hits / trials, 4) if trials else 0.0,
        }
        return result

    def summary(self, args, total_wall):
        stats = self.runner.stats
        return {
            "campaign": "run_full_experiments",
            "workers": args.workers,
            "cache_dir": args.cache_dir,
            "cache_enabled": bool(args.cache_dir) and not args.no_cache,
            "total_wall_time_s": round(total_wall, 3),
            "total_trials": stats.total,
            "total_executed": stats.executed,
            "total_cache_hits": stats.cache_hits,
            "cache_hit_rate": round(stats.hit_rate, 4),
            "runner_stats": stats.to_doc(),
            "obs_overhead": scale_sweep.obs_overhead_row(),
            "figures": self.figures,
        }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-out", default="BENCH_full.json",
                        metavar="FILE",
                        help="where to write the campaign summary JSON")
    add_runner_arguments(parser)
    args = parser.parse_args()
    runner = runner_from_args(args)
    campaign = CampaignTimer(runner)
    t0 = time.time()

    banner("Table §2.1 — tool comparison")
    print(table1_tools.render(), flush=True)

    banner("Fig. 5 — impact of fault frequency (BT-49, 53 machines, 6 reps)")
    campaign.timed("fig5", fig5_frequency.run_experiment)

    banner("Fig. 6 — impact of scale (1 fault / 50 s, 5 reps)")
    r6 = campaign.timed("fig6", fig6_scale.run_experiment)
    print("faulty-run stdev by scale (the paper's variance argument):")
    for scale, sd in variance_by_scale(r6):
        print(f"  BT {scale}: stdev = {sd if sd is None else round(sd, 1)}")

    banner("Fig. 7 — impact of simultaneous faults (BT-49, 6 reps)")
    campaign.timed("fig7", fig7_simultaneous.run_experiment)

    banner("Fig. 7 ablation — same scenario, dispatcher bug FIXED")
    campaign.timed("fig7_fixed", fig7_simultaneous.run_experiment,
                   reps=3, batches=(5,), bug_compat=False)

    banner("Fig. 9 — synchronized faults (2 faults, onload-timed, 6 reps)")
    campaign.timed("fig9", fig9_synchronized.run_experiment)

    banner("Fig. 9 ablation — dispatcher bug FIXED")
    campaign.timed("fig9_fixed", fig9_synchronized.run_experiment,
                   reps=3, include_baseline=False, bug_compat=False)

    banner("Fig. 11 — state-synchronized faults (breakpoint, 6 reps)")
    campaign.timed("fig11", fig11_state_sync.run_experiment)

    banner("Fig. 11 ablation — dispatcher bug FIXED")
    campaign.timed("fig11_fixed", fig11_state_sync.run_experiment,
                   reps=3, include_baseline=False, bug_compat=False)

    banner("Protocol comparison — vcl vs v2 vs v1, identical scenarios (§6)")
    rc = campaign.timed("compare_protocols", compare_protocols.run_experiment)
    print(compare_protocols.crossover_summary(rc), flush=True)

    banner("Scale sweep — protocol x ranks (to 512) x ckpt-server shards")
    rs = campaign.timed("scale_sweep", scale_sweep.run_experiment)
    print(scale_sweep.render_shard_balance(rs), flush=True)

    summary = campaign.summary(args, time.time() - t0)
    with open(args.bench_out, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    print(f"[runner] {runner.stats.describe()}", flush=True)
    banner(f"campaign summary written to {args.bench_out}")
    print(json.dumps(summary, indent=2), flush=True)


if __name__ == "__main__":
    main()
