#!/usr/bin/env python
"""Docs checker: executable snippets + relative links.

Documentation rots silently; CI runs this so it cannot.  Two checks
over ``README.md``, ``EXPERIMENTS.md`` and ``docs/*.md``:

**Snippets.**  Fenced code blocks are a contract:

* ```` ```python ```` blocks are *executed* (each in a fresh
  subprocess with ``PYTHONPATH=src``, cwd = a scratch directory) and
  must exit 0.  Write them quick — reduced scales, ``--quick`` forms.
* ```` ```console ```` blocks are shell transcripts: every line
  starting with ``$ `` is executed through ``bash -c`` (same env/cwd)
  and must exit 0; other lines are expected-output decoration and are
  ignored.
* ```` ```bash ```` / ```` ```text ```` blocks are display-only and
  never executed — use them for slow or destructive exemplars.
* any block containing the marker ``docs: skip`` is not executed.

**Links.**  Every markdown link/image with a relative target must
resolve to an existing file inside the repository; ``#anchor``
fragments (bare or after a ``.md`` target) must match a heading of the
target document (GitHub slug rules, simplified).  Absolute URLs and
links resolving outside the repo (e.g. the CI badge's
``../../actions/...`` GitHub route) are skipped.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_GLOBS = ("README.md", "EXPERIMENTS.md", os.path.join("docs", "*.md"))

FENCE_RE = re.compile(r"^```([A-Za-z0-9_+-]*)\s*$")
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_MARKER = "docs: skip"


@dataclass
class Snippet:
    path: str
    line: int
    lang: str
    body: str


def doc_files(root: str = REPO) -> List[str]:
    import glob
    out: List[str] = []
    for pattern in DOC_GLOBS:
        out.extend(sorted(glob.glob(os.path.join(root, pattern))))
    return out


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------

def extract_snippets(path: str) -> List[Snippet]:
    snippets: List[Snippet] = []
    lang: Optional[str] = None
    body: List[str] = []
    start = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            stripped = line.rstrip("\n")
            m = FENCE_RE.match(stripped)
            if m and lang is None:
                lang = m.group(1).lower()
                body = []
                start = lineno
            elif stripped.startswith("```") and lang is not None:
                snippets.append(Snippet(path=path, line=start, lang=lang,
                                        body="\n".join(body)))
                lang = None
            elif lang is not None:
                body.append(stripped)
    return snippets


def extract_links(path: str) -> List[Tuple[int, str]]:
    links: List[Tuple[int, str]] = []
    in_fence = False
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                links.append((lineno, m.group(1)))
    return links


# ---------------------------------------------------------------------------
# link checking
# ---------------------------------------------------------------------------

def github_slug(heading: str) -> str:
    """GitHub's anchor slug, simplified: lowercase, drop punctuation,
    spaces to hyphens (backticks/formatting stripped)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: str) -> List[str]:
    slugs: List[str] = []
    in_fence = False
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if not in_fence and line.startswith("#"):
                slugs.append(github_slug(line.lstrip("#")))
    return slugs


def check_link(doc: str, target: str) -> Optional[str]:
    """Return an error string, or None when the link is fine/skipped."""
    if re.match(r"^[a-z][a-z0-9+.-]*:", target):   # http:, mailto:, ...
        return None
    base, _, fragment = target.partition("#")
    if base:
        resolved = os.path.normpath(os.path.join(os.path.dirname(doc), base))
        if not resolved.startswith(REPO + os.sep) and resolved != REPO:
            return None      # GitHub-routed links (../../actions/...) etc.
        if not os.path.exists(resolved):
            return f"broken link target {target!r}"
        anchor_doc = resolved
    else:
        anchor_doc = doc
    if fragment:
        if not anchor_doc.endswith(".md"):
            return None
        if github_slug(fragment) not in heading_slugs(anchor_doc):
            return f"broken anchor {target!r}"
    return None


def check_links(paths: Iterable[str]) -> List[str]:
    errors: List[str] = []
    for path in paths:
        rel = os.path.relpath(path, REPO)
        for lineno, target in extract_links(path):
            err = check_link(path, target)
            if err:
                errors.append(f"{rel}:{lineno}: {err}")
    return errors


# ---------------------------------------------------------------------------
# snippet execution
# ---------------------------------------------------------------------------

def run_snippet(snippet: Snippet, workdir: str) -> List[str]:
    """Execute one snippet; return error strings (empty = passed)."""
    rel = os.path.relpath(snippet.path, REPO)
    where = f"{rel}:{snippet.line}"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")

    def run(argv_or_script, shell_line=None):
        # python blocks run in the scratch dir (their file output is
        # ephemeral); console transcripts are written repo-relative
        # ("PYTHONPATH=src python -m repro ...") so they run from the
        # repo root, exactly as a reader would type them.
        label = shell_line or "python block"
        cwd = REPO if shell_line is not None else workdir
        try:
            proc = subprocess.run(
                argv_or_script, cwd=cwd, env=env, shell=shell_line
                is not None, capture_output=True, text=True, timeout=600)
        except subprocess.TimeoutExpired:
            return [f"{where}: timed out: {label}"]
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout).strip().splitlines()[-8:]
            return [f"{where}: exit {proc.returncode}: {label}\n    "
                    + "\n    ".join(tail)]
        return []

    if snippet.lang == "python":
        return run([sys.executable, "-c", snippet.body])
    if snippet.lang == "console":
        errors: List[str] = []
        for line in snippet.body.splitlines():
            if line.startswith("$ "):
                errors.extend(run(line[2:], shell_line=line[2:]))
        return errors
    return []


def check_snippets(paths: Iterable[str]) -> List[str]:
    errors: List[str] = []
    ran = 0
    with tempfile.TemporaryDirectory(prefix="docs-check-") as workdir:
        for path in paths:
            for snippet in extract_snippets(path):
                if snippet.lang not in ("python", "console"):
                    continue
                if SKIP_MARKER in snippet.body:
                    continue
                ran += 1
                errors.extend(run_snippet(snippet, workdir))
    print(f"[docs-check] executed {ran} snippet(s)")
    return errors


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-snippets", action="store_true",
                        help="only check links")
    parser.add_argument("files", nargs="*",
                        help="markdown files (default: README.md, "
                             "EXPERIMENTS.md, docs/*.md)")
    args = parser.parse_args(argv)

    paths = [os.path.abspath(f) for f in args.files] or doc_files()
    errors = check_links(paths)
    if not args.no_snippets:
        errors.extend(check_snippets(paths))
    for err in errors:
        print(f"[docs-check] FAIL {err}", file=sys.stderr)
    if not errors:
        print(f"[docs-check] ok: {len(paths)} document(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
