#!/usr/bin/env python
"""Schema validation for exported Chrome-trace JSON (CI obs-smoke).

Checks the structural contract that chrome://tracing and Perfetto rely
on — no external schema library, just the rules the exporter promises:

* top level: ``traceEvents`` (list), ``displayTimeUnit``, ``otherData``
* every event has ``ph``/``pid``/``tid``; metadata (``ph: "M"``) events
  name processes and threads; complete (``ph: "X"``) events carry
  integer non-negative ``ts``/``dur`` and a ``name``
* every ``X`` event's ``(pid, tid)`` was declared by a ``thread_name``
  metadata event (no orphan lanes)
* flow events (``ph: "s"`` / ``ph: "f"``) pair up: every flow id has
  exactly one start and one finish, start before (or at) finish, with
  matching ``name``/``cat``, on declared lanes, with integer ``ts`` —
  and no dangling flow ids in either direction
* the simulated clock is declared (``otherData.clock == "simulated"``)

Exit 0 when valid; exit 1 with every violation listed otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List


def validate(doc: Any) -> List[str]:
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        errors.append("traceEvents is empty")
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        errors.append(f"displayTimeUnit must be ms or ns, "
                      f"got {doc.get('displayTimeUnit')!r}")
    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("clock") != "simulated":
        errors.append("otherData.clock must declare the simulated clock")

    declared_lanes = set()
    declared_pids = set()
    spans = 0
    #: flow id -> ("s"|"f") -> (index, ts, name, cat)
    flows: Dict[Any, Dict[str, tuple]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ev.get("pid"), int) \
                or not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: pid/tid must be integers")
            continue
        if ph == "M":
            name = ev.get("name")
            if name == "process_name":
                declared_pids.add(ev["pid"])
                if not (ev.get("args") or {}).get("name"):
                    errors.append(f"{where}: process_name without a name")
            elif name == "thread_name":
                declared_lanes.add((ev["pid"], ev["tid"]))
                if not (ev.get("args") or {}).get("name"):
                    errors.append(f"{where}: thread_name without a name")
            elif name != "thread_sort_index":
                errors.append(f"{where}: unknown metadata event {name!r}")
        elif ph == "X":
            spans += 1
            if not ev.get("name") or not isinstance(ev.get("name"), str):
                errors.append(f"{where}: X event without a name")
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    errors.append(f"{where}: {key} must be a non-negative "
                                  f"integer, got {v!r}")
            if (ev["pid"], ev["tid"]) not in declared_lanes:
                errors.append(f"{where}: undeclared lane "
                              f"(pid={ev['pid']}, tid={ev['tid']})")
            if ev["pid"] not in declared_pids:
                errors.append(f"{where}: undeclared pid {ev['pid']}")
        elif ph in ("s", "f"):
            flow_id = ev.get("id")
            if flow_id is None:
                errors.append(f"{where}: flow event without an id")
                continue
            if not ev.get("name") or not ev.get("cat"):
                errors.append(f"{where}: flow event needs name and cat "
                              f"(s/f binding matches on name+cat+id)")
            ts = ev.get("ts")
            if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
                errors.append(f"{where}: flow ts must be a non-negative "
                              f"integer, got {ts!r}")
                ts = None
            if (ev["pid"], ev["tid"]) not in declared_lanes:
                errors.append(f"{where}: flow event on undeclared lane "
                              f"(pid={ev['pid']}, tid={ev['tid']})")
            if ph == "f" and ev.get("bp") != "e":
                errors.append(f"{where}: flow finish should bind to the "
                              f"enclosing slice (bp='e')")
            seen = flows.setdefault(flow_id, {})
            if ph in seen:
                errors.append(f"{where}: duplicate flow {ph!r} for id "
                              f"{flow_id!r} (first at "
                              f"traceEvents[{seen[ph][0]}])")
            else:
                seen[ph] = (i, ts, ev.get("name"), ev.get("cat"))
        else:
            errors.append(f"{where}: unexpected phase {ph!r}")
    for flow_id, seen in sorted(flows.items(), key=lambda kv: str(kv[0])):
        if "s" not in seen:
            errors.append(f"flow id {flow_id!r}: finish without a start "
                          f"(dangling f at traceEvents[{seen['f'][0]}])")
            continue
        if "f" not in seen:
            errors.append(f"flow id {flow_id!r}: start without a finish "
                          f"(dangling s at traceEvents[{seen['s'][0]}])")
            continue
        _si, s_ts, s_name, s_cat = seen["s"]
        _fi, f_ts, f_name, f_cat = seen["f"]
        if (s_name, s_cat) != (f_name, f_cat):
            errors.append(f"flow id {flow_id!r}: start/finish name+cat "
                          f"mismatch ({s_name!r}/{s_cat!r} vs "
                          f"{f_name!r}/{f_cat!r})")
        if s_ts is not None and f_ts is not None and f_ts < s_ts:
            errors.append(f"flow id {flow_id!r}: finish ts {f_ts} before "
                          f"start ts {s_ts}")
    if not spans:
        errors.append("no complete (ph=X) span events")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("paths", nargs="+",
                        help="Chrome-trace JSON file(s) to validate")
    parser.add_argument("--min-spans", type=int, default=1, metavar="N",
                        help="require at least N span events (default: 1)")
    parser.add_argument("--min-flows", type=int, default=0, metavar="N",
                        help="require at least N flow starts (default: 0)")
    args = parser.parse_args()

    failed = False
    for path in args.paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as err:
            print(f"{path}: unreadable ({err})")
            failed = True
            continue
        errors = validate(doc)
        n_spans = sum(1 for e in doc.get("traceEvents", [])
                      if isinstance(e, dict) and e.get("ph") == "X")
        if n_spans < args.min_spans:
            errors.append(f"expected >= {args.min_spans} span events, "
                          f"found {n_spans}")
        n_flows = sum(1 for e in doc.get("traceEvents", [])
                      if isinstance(e, dict) and e.get("ph") == "s")
        if n_flows < args.min_flows:
            errors.append(f"expected >= {args.min_flows} flow starts, "
                          f"found {n_flows}")
        if errors:
            failed = True
            print(f"{path}: INVALID")
            for e in errors[:50]:
                print(f"  - {e}")
        else:
            kinds: Dict[str, int] = {}
            for e in doc["traceEvents"]:
                if e.get("ph") == "X":
                    kinds[e["name"]] = kinds.get(e["name"], 0) + 1
            summary = ", ".join(f"{k} x{v}" for k, v in sorted(kinds.items()))
            print(f"{path}: ok ({n_spans} spans, {n_flows} flows: "
                  f"{summary})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
