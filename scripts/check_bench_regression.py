#!/usr/bin/env python
"""Perf-regression gate over the micro-benchmark suite.

Compares a fresh pytest-benchmark JSON (``--current``, produced by
``pytest benchmarks/test_micro.py --benchmark-json=...``) against the
committed baseline (``--baseline``) and fails when any *gated*
benchmark — the dispatcher and delivery hot paths that every
simulation trial lives on — got more than ``threshold`` times slower.

The committed baseline stores mean seconds per benchmark.  Absolute
times differ across machines, so the threshold is deliberately loose
(1.5x): the gate exists to catch the order-of-magnitude slips (an
accidentally quadratic scan, a per-event allocation in the fast path),
not 5 % noise.  Refresh the baseline on an intentional perf change:

    python -m pytest benchmarks/test_micro.py -q \
        --benchmark-json=bench-micro.json
    python scripts/check_bench_regression.py \
        --current bench-micro.json \
        --baseline benchmarks/baseline_micro.json --update
"""

from __future__ import annotations

import argparse
import json
import sys

#: benchmarks the gate enforces (name prefixes; parametrized variants
#: like test_network_delivery_throughput[star] gate individually)
GATED_PREFIXES = (
    "test_engine_callback_dispatch_throughput",
    "test_engine_scale_512_delivery_throughput",
    "test_network_delivery_throughput",
    "test_network_delivery_tracing_on",
    "test_obs_span_off_switch_overhead",
    "test_parallel_cross_delivery_throughput",
    "test_parallel_null_message_overhead",
)
# test_obs_span_record_throughput is tracked in the baseline but NOT
# gated: allocating 20k Span objects makes it GC-bimodal (2-3x spread
# between rounds on the same machine), which a 1.5x gate would flake
# on.  The off-switch path above is the one every unobserved trial
# pays, so that is what the gate enforces.  The same reasoning keeps
# test_causal_stamp_off_switch_overhead (20k AppMessage allocations)
# tracked but ungated; test_network_delivery_tracing_on IS gated —
# it is the measured price of causal tracing on the delivery path.

DEFAULT_THRESHOLD = 1.5

BASELINE_FORMAT = 1


def load_means(path: str) -> dict:
    """``{benchmark name: mean seconds}`` from pytest-benchmark JSON."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return {b["name"]: float(b["stats"]["mean"])
            for b in doc.get("benchmarks", [])}


def is_gated(name: str) -> bool:
    return any(name.startswith(prefix) for prefix in GATED_PREFIXES)


def write_baseline(path: str, means: dict, threshold: float) -> None:
    doc = {
        "format": BASELINE_FORMAT,
        "threshold": threshold,
        "comment": "mean seconds per micro-benchmark; refresh via "
                   "scripts/check_bench_regression.py --update",
        "benchmarks": {name: means[name] for name in sorted(means)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="fail CI when gated micro-benchmarks regress")
    parser.add_argument("--current", required=True,
                        help="pytest-benchmark JSON of this run")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=None,
                        help="slowdown factor that fails the gate "
                             f"(default: baseline's, else "
                             f"{DEFAULT_THRESHOLD})")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from --current "
                             "instead of gating")
    args = parser.parse_args()

    current = load_means(args.current)
    if args.update:
        write_baseline(args.baseline, current,
                       args.threshold or DEFAULT_THRESHOLD)
        print(f"baseline updated: {args.baseline} "
              f"({len(current)} benchmarks)")
        return 0

    with open(args.baseline, "r", encoding="utf-8") as fh:
        base_doc = json.load(fh)
    baseline = {name: float(mean)
                for name, mean in base_doc.get("benchmarks", {}).items()}
    threshold = args.threshold or float(
        base_doc.get("threshold", DEFAULT_THRESHOLD))

    failures = []
    for name in sorted(baseline):
        if not is_gated(name):
            continue
        if name not in current:
            failures.append(f"{name}: missing from current run "
                            f"(benchmark removed or renamed?)")
            continue
        ratio = current[name] / baseline[name] if baseline[name] else 0.0
        verdict = "FAIL" if ratio > threshold else "ok"
        print(f"[{verdict}] {name}: {current[name] * 1e3:.3f} ms vs "
              f"baseline {baseline[name] * 1e3:.3f} ms "
              f"({ratio:.2f}x, limit {threshold:.2f}x)")
        if ratio > threshold:
            failures.append(f"{name}: {ratio:.2f}x slower than baseline "
                            f"(limit {threshold:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        if is_gated(name):
            print(f"[note] {name}: not in baseline yet — run --update")

    if failures:
        print("\nperf-regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("perf-regression gate ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
