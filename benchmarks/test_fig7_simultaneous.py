"""Benchmark regenerating Fig. 7 — impact of simultaneous faults."""

import pytest

from benchmarks.conftest import FULL, attach, figure_kwargs, make_runner, reps
from repro.experiments import fig7_simultaneous as fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_simultaneous(benchmark):
    if FULL:
        kwargs = dict(n_procs=fig7.N_PROCS, n_machines=fig7.N_MACHINES,
                      batches=fig7.BATCH_SIZES)
        n_reps = reps(fig7.REPS)
    else:
        kwargs = dict(n_procs=16, n_machines=20, batches=(1, 5),
                      **figure_kwargs())
        n_reps = 3

    result = benchmark.pedantic(
        lambda: fig7.run_experiment(reps=n_reps, runner=make_runner(),
                                    **kwargs),
        rounds=1, iterations=1)
    attach(benchmark, result)

    # Shape assertions from the paper: one fault per batch never shows
    # the bug; large batches do (~1/3 at X=5 on the paper's scale).
    assert result.row("1 fault").pct_buggy == 0.0
    largest = result.rows[-1]
    smallest_buggy = result.rows[0].pct_buggy
    assert largest.pct_buggy >= smallest_buggy


@pytest.mark.benchmark(group="fig7")
def test_fig7_bugfix_ablation(benchmark):
    """Post-paper ablation: the fixed dispatcher removes every buggy
    outcome at the largest batch size."""
    kwargs = (dict(n_procs=fig7.N_PROCS, n_machines=fig7.N_MACHINES)
              if FULL else dict(n_procs=16, n_machines=20, **figure_kwargs()))
    result = benchmark.pedantic(
        lambda: fig7.run_experiment(reps=3 if not FULL else reps(fig7.REPS),
                                    batches=(5,), bug_compat=False,
                                    runner=make_runner(), **kwargs),
        rounds=1, iterations=1)
    attach(benchmark, result)
    assert result.rows[0].pct_buggy == 0.0
