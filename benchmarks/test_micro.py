"""Micro-benchmarks of the simulator itself.

These are honest pytest-benchmark targets (many fast rounds): kernel
event throughput, network message relay rate, FAIL parsing and a
fault-free BT run.  They guard against performance regressions that
would make the figure benchmarks impractically slow.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.fail import builtin_scenarios as scenarios
from repro.fail.lang.parser import parse_fail
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.simkernel.engine import Engine
from repro.simkernel.store import Store, StoreClosed
from repro.workloads.nas_bt import BTWorkload


@pytest.mark.benchmark(group="micro")
def test_engine_event_throughput(benchmark):
    def run():
        eng = Engine(seed=0)

        def ticker():
            for _ in range(2000):
                yield eng.timeout(1.0)

        eng.process(ticker())
        eng.run()
        return eng.events_processed

    events = benchmark(run)
    assert events >= 2000


@pytest.mark.benchmark(group="micro")
def test_engine_callback_dispatch_throughput(benchmark):
    """The ``Engine.run`` hot path in isolation: slot-table dispatch of
    bare callbacks, no generator machinery.  This is the loop every
    message/timer of a trial passes through; the slotted fast path
    (events sharing an instant drain as one batch behind a single heap
    entry) is pinned by this benchmark."""
    N = 20000

    def run():
        eng = Engine(seed=0)

        def cb():
            pass

        for i in range(N):
            eng.call_later(0.001 * (i % 977), cb)
        eng.run()
        return eng.events_processed

    assert benchmark(run) == N


@pytest.mark.benchmark(group="micro")
def test_engine_scale_512_delivery_throughput(benchmark):
    """512-rank periodic-event pattern — the dominant event shape of a
    big deployment: every rank fires a heartbeat on a shared 1 s tick
    grid (each firing triggering a same-instant urgent dispatch, like a
    process wakeup delivering a message) plus a coarser shared
    checkpoint-timer grid.  All 512 firings of a tick land in one slot
    behind a single heap entry, which is what makes 512-rank trials
    cheap; the final mass-cancel exercises the O(1) tombstone path."""
    from repro.simkernel.events import PRIORITY_URGENT

    RANKS = 512
    HORIZON = 40.0

    def run():
        eng = Engine(seed=0)
        fired = [0]

        def wake():
            fired[0] += 1

        handles = []
        for rank in range(RANKS):
            def beat(rank=rank):
                fired[0] += 1
                # same-instant cascade: an urgent wakeup, as a message
                # delivery schedules the receiving process's dispatch
                eng._enqueue_call(wake, priority=PRIORITY_URGENT)

            handles.append(eng.periodic(1.0, beat))
        for _ in range(0, RANKS, 8):
            handles.append(eng.periodic(5.0, wake, first=5.0))
        eng.run(until=HORIZON)
        # batched cancel: the pending firing of every surviving timer
        # dispatches as a no-op tombstone
        for handle in handles:
            handle.cancel()
        eng.run()
        return fired[0]

    fired = benchmark(run)
    # 512 heartbeats + 512 wakeups per tick, 64 ckpt firings per 5 s
    assert fired >= 512 * 2 * 39 + 64 * 7


@pytest.mark.benchmark(group="micro")
def test_store_put_get_throughput(benchmark):
    def run():
        eng = Engine(seed=0)
        store = Store(eng)
        got = []

        def consumer():
            while True:
                try:
                    got.append((yield store.get()))
                except StoreClosed:
                    return

        eng.process(consumer())
        for i in range(1000):
            eng.call_later(0.001 * i, lambda i=i: store.put(i))
        eng.call_later(2.0, store.close)
        eng.run()
        return len(got)

    assert benchmark(run) == 1000


@pytest.mark.benchmark(group="micro")
def test_network_message_relay(benchmark):
    def run():
        eng = Engine(seed=0)
        clu = Cluster(eng, 2)
        done = []

        def server(proc):
            ls = proc.node.listen(5000, owner=proc)
            sock = yield ls.accept()
            count = 0
            while count < 500:
                yield sock.recv()
                count += 1
            done.append(count)

        def client(proc):
            sock = yield proc.node.connect(clu.node(0).addr(5000), owner=proc)
            for i in range(500):
                sock.send(i, size=1024)
            yield eng.timeout(10.0)

        clu.node(0).spawn("server", server)
        clu.node(1).spawn("client", client)
        eng.run(until=60.0)
        return done[0]

    assert benchmark(run) == 500


@pytest.mark.benchmark(group="micro")
@pytest.mark.parametrize("topology", ["uniform", "star", "twotier"])
def test_network_delivery_throughput(benchmark, topology):
    """Socket send → delivery rate per fabric model.

    The ``uniform`` row is the perf guard for the netmodel refactor:
    its hot path is structurally identical to the seed arithmetic (no
    per-message topology lookup — asserted by
    tests/test_netmodel.py::test_uniform_hot_path_never_consults_the_fabric),
    so its throughput tracks the historical baseline; the ``star`` /
    ``twotier`` rows record the cost of per-link accounting."""
    N = 2000

    def run():
        eng = Engine(seed=0)
        clu = Cluster(eng, 2, topology=topology)
        done = []

        def server(proc):
            ls = proc.node.listen(5000, owner=proc)
            sock = yield ls.accept()
            count = 0
            while count < N:
                yield sock.recv()
                count += 1
            done.append(count)

        def client(proc):
            sock = yield proc.node.connect(clu.node(0).addr(5000), owner=proc)
            for i in range(N):
                sock.send(i, size=1024)
            yield eng.timeout(10.0)

        clu.node(0).spawn("server", server)
        clu.node(1).spawn("client", client)
        eng.run(until=120.0)
        return done[0]

    assert benchmark(run) == N


@pytest.mark.benchmark(group="micro")
def test_fail_parse_throughput(benchmark):
    source = (scenarios.FIG7A_MASTER + scenarios.FIG8B_NODE_DAEMON
              + scenarios.FIG10B_NODE_DAEMON)

    prog = benchmark(parse_fail, source)
    assert len(prog.daemons) == 3


@pytest.mark.benchmark(group="micro")
def test_bt_fault_free_run(benchmark):
    def run():
        config = VclConfig(n_procs=9, n_machines=12, footprint=2e8)
        wl = BTWorkload(n_procs=9, niters=20, total_compute=360.0,
                        footprint=2e8)
        rt = VclRuntime(config, wl.make_factory(), seed=0)
        return rt.run()

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.outcome.value == "terminated"


@pytest.mark.benchmark(group="micro")
def test_obs_span_off_switch_overhead(benchmark):
    """The instrumented call sites with observation OFF: every
    ``engine.span(...)`` must collapse to one attribute read plus the
    shared null handle, because this is what every unobserved trial
    (and the dispatch gate) pays at each instrumentation point."""
    N = 20000

    def run():
        eng = Engine(seed=0)
        assert eng.obs is None
        for i in range(N):
            eng.span("transfer", lane="m1", rank=i).close()
        return N

    assert benchmark(run) == N


@pytest.mark.benchmark(group="micro")
def test_causal_stamp_off_switch_overhead(benchmark):
    """Minting + stamping with observation OFF: ``causal.stamp`` must
    collapse to one attribute read per call — the cost every unobserved
    trial pays at each message mint site."""
    from repro.mpi.message import AppMessage
    from repro.obs.causal import stamp

    N = 20000

    def run():
        eng = Engine(seed=0)
        assert eng.obs is None
        for i in range(N):
            msg = AppMessage(0, 1, i, None)
            stamp(eng, msg, "r0")
        return N

    assert benchmark(run) == N


@pytest.mark.benchmark(group="micro")
def test_network_delivery_tracing_on(benchmark):
    """The relay benchmark with a live recorder and stamped messages:
    the causal choke point (two graph nodes + edges per transmission)
    rides the same dispatch loop the tracing-off gate pins, so this
    is the measured price of causal tracing per delivered message."""
    from repro.mpi.message import AppMessage
    from repro.obs import Obs
    from repro.obs.causal import stamp

    N = 2000

    def run():
        eng = Engine(seed=0)
        eng.obs = Obs(eng)
        clu = Cluster(eng, 2)
        done = []

        def server(proc):
            ls = proc.node.listen(5000, owner=proc)
            sock = yield ls.accept()
            count = 0
            while count < N:
                yield sock.recv()
                count += 1
            done.append(count)

        def client(proc):
            sock = yield proc.node.connect(clu.node(0).addr(5000), owner=proc)
            for i in range(N):
                msg = AppMessage(1, 0, i, None)
                stamp(eng, msg, "r1")
                sock.send(msg, size=1024)
            yield eng.timeout(10.0)

        clu.node(0).spawn("server", server)
        clu.node(1).spawn("client", client)
        eng.run(until=120.0)
        assert len(eng.obs.causal.nodes) == 2 * N
        return done[0]

    assert benchmark(run) == N


@pytest.mark.benchmark(group="micro")
def test_obs_span_record_throughput(benchmark):
    """Span open/close against a live recorder — the observability
    hot path of an instrumented trial (checkpoint transfers dominate
    span volume at scale)."""
    from repro.obs import Obs

    N = 20000

    def run():
        eng = Engine(seed=0)
        eng.obs = Obs(eng)
        for i in range(N):
            eng.span("transfer", lane="m1", rank=i).close()
        return len(eng.obs.spans)

    assert benchmark(run) == N
