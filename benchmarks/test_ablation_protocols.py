"""Ablation benchmarks for the design choices the paper discusses.

§3: "There are two possible implementations of the Chandy-Lamport
algorithm: blocking or non-blocking" — MPICH-Vcl picked non-blocking.
This ablation quantifies why, against the Vdummy (no fault tolerance)
floor.
"""

import pytest

from benchmarks.conftest import FULL
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads.nas_bt import BTWorkload


def run_protocol(fault_tolerant=True, blocking=False, seed=1):
    if FULL:
        n, niters, compute, footprint = 49, 120, 8800.0, 1.6e9
    else:
        n, niters, compute, footprint = 16, 40, 2400.0, 1.6e9
    config = VclConfig(n_procs=n, n_machines=n + 4, footprint=footprint,
                       fault_tolerant=fault_tolerant, blocking=blocking)
    wl = BTWorkload(n_procs=n, niters=niters, total_compute=compute,
                    footprint=footprint)
    rt = VclRuntime(config, wl.make_factory(), seed=seed)
    return rt.run()


@pytest.mark.benchmark(group="ablation")
def test_protocol_overhead_ablation(benchmark):
    results = {}

    def run_all():
        results["vdummy"] = run_protocol(fault_tolerant=False)
        results["vcl"] = run_protocol(blocking=False)
        results["vcl-blocking"] = run_protocol(blocking=True)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    t_dummy = results["vdummy"].exec_time
    t_vcl = results["vcl"].exec_time
    t_blocking = results["vcl-blocking"].exec_time
    print()
    print("== Ablation — checkpoint protocol overhead (fault-free) ==")
    print(f"  Vdummy (no FT):          {t_dummy:8.1f} s")
    print(f"  Vcl non-blocking:        {t_vcl:8.1f} s "
          f"(+{100 * (t_vcl / t_dummy - 1):.1f}%)")
    print(f"  Vcl blocking:            {t_blocking:8.1f} s "
          f"(+{100 * (t_blocking / t_dummy - 1):.1f}%)")
    benchmark.extra_info["vdummy_s"] = t_dummy
    benchmark.extra_info["vcl_s"] = t_vcl
    benchmark.extra_info["vcl_blocking_s"] = t_blocking

    # every protocol terminates and verifies
    for name, res in results.items():
        assert res.outcome.value == "terminated", name
        assert res.trace.count("verify_ok") == 1, name
    # the ordering that motivated MPICH-Vcl's choice:
    assert t_dummy < t_vcl < t_blocking
    # and the non-blocking overhead is small
    assert t_vcl < t_dummy * 1.15
