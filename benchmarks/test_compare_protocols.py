"""Benchmark for the Vcl-vs-V2-vs-V1 protocol comparison (the §6 use
case, driven through the protocol registry)."""

import pytest

from benchmarks.conftest import FULL, attach, figure_kwargs, make_runner, reps
from repro.experiments import compare_protocols as cp


@pytest.mark.benchmark(group="compare")
def test_protocol_comparison(benchmark):
    if FULL:
        kwargs = dict(n_procs=cp.N_PROCS, n_machines=cp.N_MACHINES,
                      periods=cp.PERIODS)
        n_reps = reps(cp.REPS)
    else:
        kwargs = dict(n_procs=16, n_machines=20, periods=(None, 50, 40),
                      **figure_kwargs())
        n_reps = 2

    result = benchmark.pedantic(
        lambda: cp.run_experiment(reps=n_reps, runner=make_runner(), **kwargs),
        rounds=1, iterations=1)
    attach(benchmark, result)
    print()
    print(cp.crossover_summary(result, periods=kwargs["periods"]))

    # Shape assertions ([LBH+04] via our substrate):
    # (1) fault-free, coordinated checkpointing is at least as fast as
    #     either message-logging protocol;
    t_vcl0 = result.row("vcl no faults").mean_exec_time
    t_v20 = result.row("v2 no faults").mean_exec_time
    t_v10 = result.row("v1 no faults").mean_exec_time
    assert t_vcl0 <= t_v20 * 1.02
    assert t_vcl0 <= t_v10 * 1.02
    # (2) at high fault frequency, message logging wins decisively.
    #     V1 always finishes (remote logs survive overlapping faults);
    #     V2 finishes at least as often as Vcl (its volatile sender
    #     logs can stall when failures overlap a recovery — faithful);
    fastest_period = kwargs["periods"][-1]
    vcl_hi = result.row(f"vcl 1/{fastest_period}s")
    v1_hi = result.row(f"v1 1/{fastest_period}s")
    v2_hi = result.row(f"v2 1/{fastest_period}s")
    assert v1_hi.pct_terminated == 100.0
    assert v2_hi.pct_terminated >= vcl_hi.pct_terminated
    if vcl_hi.mean_exec_time is not None:
        for proto, row_hi in (("v2", v2_hi), ("v1", v1_hi)):
            if row_hi.mean_exec_time is not None:
                assert row_hi.mean_exec_time < vcl_hi.mean_exec_time, proto
    # (3) the single-rank-restart protocols never go buggy here (no
    #     Vcl dispatcher restart waves to misattribute closures in).
    for row in result.rows:
        if row.label.startswith(("v2", "v1")):
            assert row.pct_buggy == 0.0, row.label
