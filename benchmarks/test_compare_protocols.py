"""Benchmark for the Vcl-vs-V2 protocol comparison (the §6 use case)."""

import pytest

from benchmarks.conftest import FULL, attach, figure_kwargs, make_runner, reps
from repro.experiments import compare_protocols as cp


@pytest.mark.benchmark(group="compare")
def test_protocol_comparison(benchmark):
    if FULL:
        kwargs = dict(n_procs=cp.N_PROCS, n_machines=cp.N_MACHINES,
                      periods=cp.PERIODS)
        n_reps = reps(cp.REPS)
    else:
        kwargs = dict(n_procs=16, n_machines=20, periods=(None, 50, 40),
                      **figure_kwargs())
        n_reps = 2

    result = benchmark.pedantic(
        lambda: cp.run_experiment(reps=n_reps, runner=make_runner(), **kwargs),
        rounds=1, iterations=1)
    attach(benchmark, result)
    print()
    print(cp.crossover_summary(result, periods=kwargs["periods"]))

    # Shape assertions ([LBH+04] via our substrate):
    # (1) fault-free, coordinated checkpointing is at least as fast as
    #     pessimistic logging;
    t_vcl0 = result.row("vcl no faults").mean_exec_time
    t_v20 = result.row("v2 no faults").mean_exec_time
    assert t_vcl0 <= t_v20 * 1.02
    # (2) at high fault frequency, message logging wins decisively;
    fastest_period = kwargs["periods"][-1]
    vcl_hi = result.row(f"vcl 1/{fastest_period}s")
    v2_hi = result.row(f"v2 1/{fastest_period}s")
    assert v2_hi.pct_terminated == 100.0
    if vcl_hi.mean_exec_time is not None:
        assert v2_hi.mean_exec_time < vcl_hi.mean_exec_time
    # (3) V2 never goes buggy here (no Vcl dispatcher restart waves).
    for row in result.rows:
        if row.label.startswith("v2"):
            assert row.pct_buggy == 0.0
