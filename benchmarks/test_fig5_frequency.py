"""Benchmark regenerating Fig. 5 — impact of fault frequency."""

import pytest

from benchmarks.conftest import FULL, attach, figure_kwargs, make_runner, reps
from repro.experiments import fig5_frequency as fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_frequency(benchmark):
    if FULL:
        kwargs = dict(n_procs=fig5.N_PROCS, n_machines=fig5.N_MACHINES,
                      periods=fig5.PERIODS)
    else:
        kwargs = dict(n_procs=16, n_machines=20,
                      periods=(None, 65, 50, 45, 40), **figure_kwargs())

    result = benchmark.pedantic(
        lambda: fig5.run_experiment(reps=reps(fig5.REPS),
                                    runner=make_runner(), **kwargs),
        rounds=1, iterations=1)
    attach(benchmark, result)

    nofault = result.row("no faults")
    assert nofault.pct_terminated == 100.0

    # Shape assertions from the paper:
    # (1) zero buggy runs at every frequency;
    for row in result.rows:
        assert row.pct_buggy == 0.0, row.label
    # (2) exec time grows as the period shrinks (65 -> 50);
    t65 = result.row("every 65 sec").mean_exec_time
    t50 = result.row("every 50 sec").mean_exec_time
    assert t65 is not None and t50 is not None
    assert nofault.mean_exec_time < t65 < t50
    # (3) the 45 s anomaly: better than the 50 s trend point;
    t45 = result.row("every 45 sec").mean_exec_time
    if t45 is not None:
        assert t45 < t50
    # (4) non-termination dominates at 40 s.
    assert result.row("every 40 sec").pct_non_terminating >= 50.0
