"""Benchmark regenerating Fig. 11 — state-synchronized faults."""

import pytest

from benchmarks.conftest import (attach, figure_kwargs, make_runner, reps,
                                 scales)
from repro.experiments import fig11_state_sync as fig11


@pytest.mark.benchmark(group="fig11")
def test_fig11_state_sync(benchmark):
    use_scales = scales(fig11.SCALES, (9, 16))
    n_reps = reps(fig11.REPS)
    result = benchmark.pedantic(
        lambda: fig11.run_experiment(reps=n_reps, scales=use_scales,
                                     include_baseline=False,
                                     runner=make_runner(),
                                     **figure_kwargs()),
        rounds=1, iterations=1)
    attach(benchmark, result)

    # The paper's headline: EVERY experiment freezes, at EVERY scale —
    # the scenario that pinpointed the dispatcher bug.
    for row in result.rows:
        assert row.pct_buggy == 100.0, row.label


@pytest.mark.benchmark(group="fig11")
def test_fig11_bugfix_ablation(benchmark):
    """The fix flips Fig. 11 from 100% buggy to 100% terminated."""
    use_scales = scales((25, 49), (9, 16))
    result = benchmark.pedantic(
        lambda: fig11.run_experiment(reps=3, scales=use_scales,
                                     include_baseline=False, bug_compat=False,
                                     runner=make_runner(),
                                     **figure_kwargs()),
        rounds=1, iterations=1)
    attach(benchmark, result)
    for row in result.rows:
        assert row.pct_terminated == 100.0, row.label
