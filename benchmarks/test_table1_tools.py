"""Benchmark regenerating the §2.1 tool-comparison table."""

import pytest

from repro.experiments import table1_tools


@pytest.mark.benchmark(group="table1")
def test_table1_tools(benchmark):
    rows = benchmark(table1_tools.build_table)
    rendered = table1_tools.render()
    print()
    print(rendered)
    benchmark.extra_info["table"] = rendered

    # The table exactly as printed in the paper §2.1.
    assert rows[0] == ["Criteria", "NFTAPE", "LOKI", "FAIL-FCI"]
    by_criterion = {r[0]: r[1:] for r in rows[1:]}
    assert by_criterion["High Expressiveness"] == ["yes", "no", "yes"]
    assert by_criterion["High-level Language"] == ["no", "no", "yes"]
    assert by_criterion["Low Intrusion"] == ["yes", "yes", "yes"]
    assert by_criterion["Probabilistic Scenario"] == ["yes", "no", "yes"]
    assert by_criterion["No Code Modification"] == ["no", "no", "yes"]
    assert by_criterion["Scalability"] == ["no", "yes", "yes"]
    assert by_criterion["Global-state Injection"] == ["yes", "yes", "yes"]

    # Every FAIL-FCI "yes" is backed by evidence in this repository.
    for criterion, answers in by_criterion.items():
        if answers[2] == "yes":
            assert criterion in table1_tools.SUPPORT_EVIDENCE
