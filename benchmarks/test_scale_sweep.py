"""Benchmarks for the scale axis: sharded checkpoint servers + the
512-rank fast path.

Two benchmarks:

* ``test_scale_sweep_shard_balance`` — a reduced (or, with
  ``REPRO_FULL=1``, the default) shard sweep, asserting the
  qualitative shape: one server takes 100 % of the checkpoint ingest
  at k = 1 and the load spreads evenly as k grows, with Vcl's wave
  drain (and hence execution time) improving alongside.

* ``test_scale_512_rank_delivery`` — one end-to-end 512-rank trial
  through the full runtime (mesh build, message delivery, checkpoint
  waves).  This is the scale fast-path guard: the slotted engine, the
  paused-GC policy and cycle-breaking disposal took the PR 3/PR 4
  baseline from ~95 s to ~33 s wall for the sweep's faulted full cell
  (~3×; ~196 s → ~67 s for a two-trial worker batch, where the old
  collector degraded per trial); the recorded timing keeps the
  trajectory honest.
"""

import pytest

from benchmarks.conftest import FULL, attach, make_runner
from repro.analysis.classify import Outcome
from repro.experiments import scale_sweep
from repro.experiments.harness import TrialSetup


@pytest.mark.benchmark(group="scale")
def test_scale_sweep_shard_balance(benchmark):
    ranks = (32, 64) if not FULL else scale_sweep.RANKS
    shards = (1, 4) if not FULL else scale_sweep.SHARDS
    result = benchmark.pedantic(
        lambda: scale_sweep.run_experiment(
            reps=1, ranks=ranks, shards=shards, runner=make_runner()),
        rounds=1, iterations=1)
    attach(benchmark, result)
    print(scale_sweep.render_shard_balance(result))

    for row in result.rows:
        assert row.pct_terminated == 100.0, row.label
        share, imbalance, n_shards = scale_sweep._row_shard_stats(row)
        if n_shards == 1:
            # the paper's regime: one server takes every byte
            assert share == pytest.approx(1.0), row.label
        else:
            # sharding dissolves the hot spot (~1/k each, small skew)
            assert share < 1.5 / n_shards, (row.label, share)
            assert imbalance < 1.25, (row.label, imbalance)
    # Vcl's wave drain contends on the shared servers: more shards must
    # never slow it down, and should visibly speed it up at k=1 -> max
    for n in ranks:
        k_lo = result.row(f"vcl/n{n}/k{shards[0]}").mean_exec_time
        k_hi = result.row(f"vcl/n{n}/k{shards[-1]}").mean_exec_time
        assert k_hi <= k_lo, (n, k_lo, k_hi)


@pytest.mark.benchmark(group="scale")
def test_scale_512_rank_delivery(benchmark):
    """One 512-rank deployment end to end (reduced rounds by default,
    the sweep's full faulted cell under ``REPRO_FULL=1``)."""
    if FULL:
        from repro.explore.generators import (MASTER, NODE_DAEMON, TimedKill,
                                              render_plan)
        setup = TrialSetup(
            n_procs=512, n_machines=516, protocol="vcl", timeout=600.0,
            workload="ring", niters=scale_sweep.ROUNDS,
            total_compute=scale_sweep.COMPUTE_PER_RANK * 512,
            footprint=scale_sweep.FOOTPRINT,
            scenario_source=render_plan(
                (TimedKill(at=scale_sweep.FAULT_AT, target=0),)),
            master_daemon=MASTER, node_daemon=NODE_DAEMON,
            config_overrides={"n_ckpt_servers": 4})
    else:
        setup = TrialSetup(
            n_procs=512, n_machines=516, protocol="vcl", timeout=600.0,
            workload="ring", niters=10, total_compute=110.0 * 512,
            footprint=1e9, ckpt_period=15.0,
            config_overrides={"n_ckpt_servers": 4})

    result = benchmark.pedantic(lambda: setup.run_one(seed=2),
                                rounds=1, iterations=1)
    assert result.outcome is Outcome.TERMINATED
    assert len(result.ckpt_shard_bytes) == 4
    assert all(b > 0 for b in result.ckpt_shard_bytes)
    benchmark.extra_info["events_processed"] = result.events_processed
    benchmark.extra_info["sim_time"] = result.sim_time
