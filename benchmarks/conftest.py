"""Benchmark harness configuration.

Every figure/table of the paper has one benchmark module.  Two modes:

* default (CI-friendly): reduced scales and repetitions — minutes, and
  still enough to check the qualitative shape assertions;
* ``REPRO_FULL=1``: the paper's scales (BT-49/53 machines, 5–6 reps) —
  regenerates the numbers recorded in EXPERIMENTS.md.

The simulated experiment is deterministic, so benchmark timings here
measure *simulator* performance; the scientific output is the rendered
table, attached to each benchmark via ``extra_info`` and printed with
``-s``.
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: ``REPRO_WORKERS=N`` fans the trials of each figure out over N
#: processes — the interesting setting for ``REPRO_FULL=1`` runs.
WORKERS = int(os.environ.get("REPRO_WORKERS", "1") or "1")

#: ``REPRO_CACHE_DIR=DIR`` opts into the trial result cache.  Off by
#: default: a cached regeneration measures cache reads, not the
#: simulator, and would make the recorded timings dishonest.
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None

#: reduced-mode knobs: a 16-rank BT with a shorter run.  The footprint
#: (and hence checkpoint-wave duration, the quantity that shapes every
#: figure) stays at its class-B value — only compute shrinks.
QUICK_WORKLOAD = dict(niters=40, total_compute=2400.0)


@pytest.fixture(scope="session")
def mode():
    return "full" if FULL else "quick"


def figure_kwargs():
    """Workload kwargs for experiment drivers per mode."""
    return {} if FULL else dict(QUICK_WORKLOAD)


def make_runner():
    """A fresh TrialRunner honouring REPRO_WORKERS / REPRO_CACHE_DIR."""
    from repro.experiments.runner import TrialRunner

    return TrialRunner(workers=WORKERS, cache_dir=CACHE_DIR)


def reps(full_reps):
    return full_reps if FULL else 2


def scales(full_scales, quick_scales):
    return full_scales if FULL else quick_scales


def attach(benchmark, result):
    """Record the rendered experiment table on the benchmark record."""
    benchmark.extra_info["table"] = result.render()
    for row in result.rows:
        benchmark.extra_info[row.label] = {
            "pct_terminated": row.pct_terminated,
            "pct_non_terminating": row.pct_non_terminating,
            "pct_buggy": row.pct_buggy,
            "mean_exec_time": row.mean_exec_time,
        }
    print()
    print(result.render())
