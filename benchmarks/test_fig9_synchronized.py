"""Benchmark regenerating Fig. 9 — synchronized faults (onload-timed)."""

import pytest

from benchmarks.conftest import (FULL, attach, figure_kwargs, make_runner,
                                 reps, scales)
from repro.experiments import fig9_synchronized as fig9


@pytest.mark.benchmark(group="fig9")
def test_fig9_synchronized(benchmark):
    use_scales = scales(fig9.SCALES, (9, 16))
    n_reps = reps(fig9.REPS) if FULL else 6
    result = benchmark.pedantic(
        lambda: fig9.run_experiment(reps=n_reps, scales=use_scales,
                                    include_baseline=False,
                                    runner=make_runner(), **figure_kwargs()),
        rounds=1, iterations=1)
    attach(benchmark, result)

    # Shape assertions from the paper: the bug appears at every scale,
    # but a majority of runs is not subject to it; the rest terminate
    # (2 faults cannot make BT non-terminating).
    total_buggy = sum(round(r.pct_buggy / 100.0 * r.n) for r in result.rows)
    assert total_buggy >= 1
    for row in result.rows:
        assert row.pct_buggy <= 70.0, row.label
        assert row.pct_terminated + row.pct_buggy == 100.0, row.label


@pytest.mark.benchmark(group="fig9")
def test_fig9_bugfix_ablation(benchmark):
    """With the fixed dispatcher the same scenario never freezes."""
    use_scales = scales((25, 49), (9, 16))
    result = benchmark.pedantic(
        lambda: fig9.run_experiment(reps=4, scales=use_scales,
                                    include_baseline=False, bug_compat=False,
                                    runner=make_runner(), **figure_kwargs()),
        rounds=1, iterations=1)
    attach(benchmark, result)
    for row in result.rows:
        assert row.pct_buggy == 0.0, row.label
        assert row.pct_terminated == 100.0, row.label
