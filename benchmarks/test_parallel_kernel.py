"""Micro-benchmarks of the partitioned engine.

Two costs dominate a conservative-lookahead run and both are pinned
here at 2 and 4 workers:

* **cross-partition delivery** — payload messages crossing the cut:
  outbox collection, arrival-sorted mailbox merges, and the safe-
  horizon fixpoint every round;
* **null-message overhead** — the price of synchronization when
  partitions have nothing to say: every round still grants horizons on
  every silent channel (the CMB null messages), so a chatty window
  protocol shows up directly as wall time per simulated second.

The ``inline`` backend is benchmarked deliberately: it runs the exact
coordinator/worker protocol of the process backend minus the pipes, so
it isolates the synchronization overhead from fork/IPC noise (and from
the core count of the CI machine — see docs/parallel-engine.md for
why wall-clock *speedup* is a property of the host, not of this
suite).
"""

import pytest

from repro.simkernel.parallel import (ChannelSpec, PartitionSpec,
                                      run_partitioned)

LOOKAHEAD = 0.5

# -- model builders (module level: picklable, shared with the process
#    backend if anyone points it at these) ----------------------------------


def build_streamer(ctx, succ, iters):
    """Send one payload to ``succ`` every lookahead interval."""
    ctx.on_receive(lambda src, msg: None)      # sink for the predecessor
    count = [0]

    def tick():
        ctx.send(succ, count[0])
        count[0] += 1
        if count[0] < iters:
            ctx.engine.call_later(LOOKAHEAD, tick)

    ctx.engine.call_later(0.0, tick)


def build_local_ticker(ctx, horizon, step):
    """Dense local activity, zero cross traffic: every window the
    coordinator grants are pure null messages."""
    ctx.on_receive(lambda src, msg: None)
    fired = [0]

    def tick():
        fired[0] += 1
        if ctx.engine.now + step <= horizon:
            ctx.engine.call_later(step, tick)

    ctx.engine.call_later(step, tick)


def finish_events(ctx):
    return ctx.engine.events_processed


def _ring(workers, build, args_for):
    partitions = [
        PartitionSpec(f"p{i}", build, args_for(i), finish=finish_events)
        for i in range(workers)]
    channels = [ChannelSpec(f"p{i}", f"p{(i + 1) % workers}", LOOKAHEAD)
                for i in range(workers)]
    return partitions, channels


@pytest.mark.benchmark(group="parallel")
@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_cross_delivery_throughput(benchmark, workers):
    MESSAGES = 400                      # per partition, one per window

    def run():
        partitions, channels = _ring(
            workers, build_streamer,
            lambda i: (f"p{(i + 1) % workers}", MESSAGES))
        _results, stats = run_partitioned(partitions, channels, seed=0,
                                          backend="inline")
        return stats

    stats = benchmark(run)
    assert stats.payload_messages == workers * MESSAGES
    assert stats.partitions == workers


@pytest.mark.benchmark(group="parallel")
@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_null_message_overhead(benchmark, workers):
    HORIZON = 200.0                     # ~400 windows of silence

    def run():
        partitions, channels = _ring(
            workers, build_local_ticker, lambda i: (HORIZON, 0.1))
        _results, stats = run_partitioned(partitions, channels, seed=0,
                                          backend="inline")
        return stats

    stats = benchmark(run)
    # every window grants one null per channel: nothing ever crosses
    assert stats.payload_messages == 0
    assert stats.null_messages == stats.rounds * workers
    assert stats.rounds > 100
