"""Benchmark regenerating Fig. 6 — impact of scale."""

import pytest

from benchmarks.conftest import (attach, figure_kwargs, make_runner, reps,
                                 scales)
from repro.experiments import fig6_scale as fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_scale(benchmark):
    use_scales = scales(fig6.SCALES, (9, 16, 25))
    result = benchmark.pedantic(
        lambda: fig6.run_experiment(reps=reps(fig6.REPS), scales=use_scales,
                                    runner=make_runner(), **figure_kwargs()),
        rounds=1, iterations=1)
    attach(benchmark, result)

    # Shape assertions from the paper:
    # (1) no-fault execution time decreases with scale;
    nofault = [result.row(f"BT {s} no faults").mean_exec_time
               for s in use_scales]
    assert all(t is not None for t in nofault)
    assert all(a > b for a, b in zip(nofault, nofault[1:]))
    # (2) faults never make a scale *faster* than its no-fault time;
    for s in use_scales:
        faulty = result.row(f"BT {s} 1/{fig6.FAULT_PERIOD}s")
        if faulty.mean_exec_time is not None:
            assert faulty.mean_exec_time > \
                result.row(f"BT {s} no faults").mean_exec_time
    # (3) no buggy runs (single faults only).
    for row in result.rows:
        assert row.pct_buggy == 0.0, row.label
