#!/usr/bin/env python
"""Compare the MPICH-V family's fault-tolerance protocols under
identical fault scenarios.

The paper's conclusion proposes exactly this workflow: use FAIL-MPI to
"evaluate many different implementations at large scales and compare
them fairly under the same failure scenarios."  The implementations
are every protocol in the registry (:mod:`repro.mpichv.protocols`):

* **Vcl** — the paper's non-blocking coordinated Chandy-Lamport
  checkpointing: every failure rolls the whole application back;
* **V2**  — pessimistic sender-based message logging with independent
  checkpoints: only the failed rank restarts and replays;
* **V1**  — remote pessimistic logging in Channel Memories: every
  message transits a stable CM, so even simultaneous failures replay
  cleanly — at the price of a double network hop per message.

All run the same BT workload, the same Fig. 5a fault scenario, the
same seeds.

Run:  python examples/compare_protocols.py [--full]
"""

import argparse

from repro.experiments import compare_protocols as cp


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper scale: BT-49 on 53 machines")
    from repro.experiments.runner import add_runner_arguments, runner_from_args
    add_runner_arguments(parser)
    args = parser.parse_args()
    runner = runner_from_args(args)

    if args.full:
        result = cp.run_experiment(reps=3, runner=runner)
        periods = cp.PERIODS
    else:
        periods = (None, 50, 40)
        result = cp.run_experiment(reps=2, periods=periods,
                                   n_procs=16, n_machines=20,
                                   niters=40, total_compute=2400.0,
                                   runner=runner)

    print(result.render())
    print()
    print(cp.crossover_summary(result, periods=periods))
    print()
    print("Reading the shape (cf. [LBH+04], cited by the paper):")
    print(" * fault-free, coordinated checkpointing is the cheapest —")
    print("   V2 pays a stable-logger round trip per message and V1")
    print("   routes every message through a remote Channel Memory;")
    print(" * as faults come faster the ordering flips: a Vcl failure")
    print("   discards everyone's work back to the last committed wave,")
    print("   while a V2/V1 failure replays one rank as survivors wait")
    print("   in place — at 40 s periods Vcl stops progressing entirely")
    print("   while the message-logging protocols still finish;")
    print(" * V1's remote logs additionally survive simultaneous")
    print("   failures, where V2's volatile sender logs can stall")
    print("   (see python -m repro fig7).")


if __name__ == "__main__":
    main()
