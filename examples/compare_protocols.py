#!/usr/bin/env python
"""Compare two fault-tolerance protocols under identical fault scenarios.

The paper's conclusion proposes exactly this workflow: use FAIL-MPI to
"evaluate many different implementations at large scales and compare
them fairly under the same failure scenarios."  Here the two
implementations are:

* **Vcl** — the paper's non-blocking coordinated Chandy-Lamport
  checkpointing: every failure rolls the whole application back;
* **V2**  — pessimistic sender-based message logging with independent
  checkpoints: only the failed rank restarts and replays.

Both run the same BT workload, the same Fig. 5a fault scenario, the
same seeds.

Run:  python examples/compare_protocols.py [--full]
"""

import argparse

from repro.experiments import compare_protocols as cp


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper scale: BT-49 on 53 machines")
    from repro.experiments.runner import add_runner_arguments, runner_from_args
    add_runner_arguments(parser)
    args = parser.parse_args()
    runner = runner_from_args(args)

    if args.full:
        result = cp.run_experiment(reps=3, runner=runner)
        periods = cp.PERIODS
    else:
        periods = (None, 50, 40)
        result = cp.run_experiment(reps=2, periods=periods,
                                   n_procs=16, n_machines=20,
                                   niters=40, total_compute=2400.0,
                                   runner=runner)

    print(result.render())
    print()
    print(cp.crossover_summary(result, periods=periods))
    print()
    print("Reading the shape (cf. [LBH+04], cited by the paper):")
    print(" * fault-free, coordinated checkpointing is the cheaper")
    print("   protocol — pessimistic logging pays a stable-logger round")
    print("   trip on every message;")
    print(" * as faults come faster the ordering flips: a Vcl failure")
    print("   discards everyone's work back to the last committed wave,")
    print("   a V2 failure replays one rank while survivors wait in")
    print("   place — at 40 s periods Vcl stops progressing entirely")
    print("   while V2 still finishes.")


if __name__ == "__main__":
    main()
