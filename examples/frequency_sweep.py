#!/usr/bin/env python
"""Fault-frequency sweep (the Fig. 5 experiment) with a live ASCII plot.

Sweeps the fault injection period over BT and renders execution time
plus non-termination bars — the same presentation as the paper's
Fig. 5(b).  Reduced scale by default; pass --full for BT-49/53.

Run:  python examples/frequency_sweep.py [--full]
"""

import argparse

from repro.experiments import fig5_frequency
from repro.experiments.runner import add_runner_arguments, runner_from_args


def ascii_plot(result, width=46):
    """Bars for %non-terminating / %buggy, dots for exec time."""
    times = [row.mean_exec_time for row in result.rows
             if row.mean_exec_time is not None]
    t_max = max(times) if times else 1.0
    lines = []
    for row in result.rows:
        t = row.mean_exec_time
        dots = int(width * (t / t_max)) if t is not None else 0
        time_bar = "·" * dots
        nt = int(width * row.pct_non_terminating / 100.0)
        bug = int(width * row.pct_buggy / 100.0)
        label = f"{row.label:>14}"
        t_text = f"{t:7.1f}s" if t is not None else "   ---  "
        lines.append(f"{label} | time {t_text} {time_bar}")
        if nt or bug:
            lines.append(f"{'':>14} | stall {row.pct_non_terminating:4.0f}% "
                         f"{'█' * nt}{'▓' * bug}")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper scale: BT-49 on 53 machines, 6 reps")
    parser.add_argument("--reps", type=int, default=None)
    add_runner_arguments(parser)
    args = parser.parse_args()
    runner = runner_from_args(args)

    if args.full:
        result = fig5_frequency.run_experiment(reps=args.reps or 6,
                                               runner=runner)
    else:
        result = fig5_frequency.run_experiment(
            reps=args.reps or 3, n_procs=16, n_machines=20,
            periods=(None, 65, 60, 55, 50, 45, 40),
            niters=40, total_compute=2400.0, runner=runner)

    print(result.render())
    print()
    print(ascii_plot(result))
    print()
    print("Reading the shape (cf. paper §5.1): execution time grows as")
    print("faults come faster; once the inter-fault gap undercuts the")
    print("time to complete a checkpoint wave, runs stop progressing")
    print("(the stall bars) — and no run is ever buggy, because single")
    print("faults never overlap a recovery.")


if __name__ == "__main__":
    main()
