#!/usr/bin/env python
"""A tour of the FAIL language: parse, check, pretty-print, compile to
Python (the FCI-compiler analogue), and dry-run a state machine.

Run:  python examples/scenario_tour.py
"""

import random

from repro.fail import builtin_scenarios as scenarios
from repro.fail.codegen import generate_python
from repro.fail.compile import compile_scenario
from repro.fail.lang.parser import parse_fail
from repro.fail.lang.pretty import pretty_print

SCENARIO = """
// Inject a batch of X faults every 50 seconds (paper Fig. 7a).
Daemon ADV1 {
  int nb_crash = X;
  node 1:
    always int ran = FAIL_RANDOM(0, N);
    time g_timer = 50;
    timer -> !crash(G1[ran]), goto 2;
  node 2:
    always int ran = FAIL_RANDOM(0, N);
    ?ok && nb_crash > 1 -> !crash(G1[ran]), nb_crash = nb_crash - 1, goto 2;
    ?ok && nb_crash <= 1 -> nb_crash = X, goto 1;
    ?no -> !crash(G1[ran]), goto 2;
}
"""


class TourCtx:
    """A minimal machine context that narrates what the scenario does."""

    def __init__(self):
        self.rng = random.Random(42)

    def send_msg(self, msg, dest):
        print(f"    -> send {msg!r} to {dest}")

    def resolve_dest(self, dest, env, sender):
        from repro.fail.lang import ast
        from repro.fail.machine import eval_expr
        if isinstance(dest, ast.DestSender):
            return sender
        if isinstance(dest, ast.DestName):
            return dest.name
        return f"{dest.group}[{eval_expr(dest.index, env, self.rng)}]"

    def act_halt(self):
        print("    -> HALT the controlled process (inject the fault)")

    def act_stop(self):
        print("    -> STOP (suspend under the debugger)")

    def act_continue(self):
        print("    -> CONTINUE")

    def arm_timer(self, delay, gen):
        print(f"    [timer armed: fires in {delay:.0f}s]")

    def node_entered(self, node):
        print(f"    [entered node {node.node_id}]")


def main():
    print("1) PARSE + SEMANTIC CHECK " + "-" * 45)
    compiled = compile_scenario(SCENARIO, params={"X": 3, "N": 52})
    daemon = compiled.daemon("ADV1")
    print(f"   daemon {daemon.name!r}: {len(daemon.nodes)} nodes, "
          f"{sum(len(n.transitions) for n in daemon.nodes)} transitions")

    print()
    print("2) PRETTY-PRINT (canonical form, round-trips) " + "-" * 25)
    canonical = pretty_print(compiled.program)
    print(canonical)
    assert parse_fail(canonical) == compiled.program

    print("3) COMPILE TO PYTHON (the FCI compiler analogue) " + "-" * 22)
    code = generate_python(daemon, compiled.params)
    print("\n".join(code.splitlines()[:18]) + "\n   ...")

    print()
    print("4) DRY-RUN THE STATE MACHINE " + "-" * 42)
    from repro.fail.machine import Machine
    machine = Machine(daemon, compiled.params, TourCtx(), "P1")
    print("  timer expires:")
    machine.handle(("timer", machine.entry_gen))
    print("  positive ack (2 crashes left in the batch):")
    machine.handle(("msg", "ok", "G1[17]"))
    print("  negative ack (machine was empty, re-draw):")
    machine.handle(("msg", "no", "G1[4]"))
    print("  positive ack (last crash of the batch):")
    machine.handle(("msg", "ok", "G1[9]"))
    print("  positive ack: batch complete, back to the timer:")
    machine.handle(("msg", "ok", "G1[30]"))
    print(f"  machine is in node {machine.node_id} with "
          f"nb_crash={machine.vars['nb_crash']}")


if __name__ == "__main__":
    main()
