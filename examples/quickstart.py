#!/usr/bin/env python
"""Quickstart: run an MPI application under MPICH-Vcl and inject one
fault with a three-line FAIL scenario.

What happens:

1. a 4-rank token-ring MPI application is deployed under the
   fault-tolerant MPICH-Vcl runtime (dispatcher, checkpoint scheduler,
   checkpoint servers, one communication daemon per rank);
2. a FAIL scenario kills one random MPI node 35 seconds in — after the
   first 30-second checkpoint wave committed;
3. the dispatcher detects the closure, rolls every rank back to the
   committed wave, replays the channel state, and the ring finishes
   with its token arithmetic intact.

Run:  python examples/quickstart.py
"""

from repro.fail.scenario import Binding, deploy_scenario
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads.ring import RingWorkload

SCENARIO = """
Daemon Master {
  node 1:
    always int ran = FAIL_RANDOM(0, N);
    time g_timer = 35;
    timer -> !crash(G1[ran]), goto 2;
  node 2:
    always int ran = FAIL_RANDOM(0, N);
    ?no -> !crash(G1[ran]), goto 2;
    ?ok -> goto 3;
  node 3:
}

Daemon NodeCtl {
  node 1:
    onload -> continue, goto 2;
    ?crash -> !no(Master), goto 1;
  node 2:
    onexit -> goto 1;
    onerror -> goto 1;
    onload -> continue, goto 2;
    ?crash -> !ok(Master), halt, goto 1;
}
"""


def main():
    config = VclConfig(n_procs=4, n_machines=6, footprint=4e7)
    workload = RingWorkload(n_procs=4, rounds=40, work_per_hop=1.0)
    runtime = VclRuntime(config, workload.make_factory(), seed=2024)

    deploy_scenario(
        runtime, SCENARIO,
        params={"N": config.n_machines - 1},
        bindings={
            "Master": Binding(daemon="Master", nodes=None),
            "G1": Binding(daemon="NodeCtl", nodes=list(runtime.machines)),
        })

    result = runtime.run(timeout=600.0)

    print(f"outcome:            {result.outcome}")
    print(f"execution time:     {result.exec_time:.1f} s (simulated)")
    print(f"failures injected:  {result.failures_detected}")
    print(f"restart waves:      {result.restarts}")
    print(f"checkpoints taken:  {result.waves_committed} committed waves")
    print()
    print("key trace events:")
    for rec in result.trace.records:
        if rec.kind in ("ckpt_wave_complete", "fault_injected",
                        "failure_detected", "restart_wave",
                        "recovery_complete", "app_done"):
            print(f"  {rec}")
    assert result.outcome.value == "terminated"
    print()
    print("the ring verified its token arithmetic across the rollback — "
          "no message was lost or duplicated.")


if __name__ == "__main__":
    main()
