#!/usr/bin/env python
"""Bug hunting with FAIL-MPI — replaying §5.3 of the paper.

The paper's narrative, compressed into one script:

Step 1 (Fig. 7): hammer BT with batches of simultaneous faults.  At 5
        faults per batch a third of the runs freeze — something is
        wrong, but the trigger is unclear.

Step 2 (Fig. 8/9): synchronize fault #2 with the *recovery wave* by
        counting onload events per machine.  Some runs freeze with
        only two faults: the bug lives in recovery, not in scale.

Step 3 (Fig. 10/11): synchronize fault #2 with the *MPI state* — a
        breakpoint just before ``localMPI_setCommand``, i.e. right
        after the restarted daemon registered with the dispatcher.
        Every run freezes: the bug is pinned.  A failure of an
        already-recovered process, detected while old-wave processes
        are still terminating, confuses the dispatcher and one node is
        never relaunched.

Step 4 (the fix): flip ``bug_compat=False`` (epoch-tagged closures) and
        the Step-3 scenario terminates every time.

Run:  python examples/bug_hunt.py          (~2-4 minutes, reduced scale)
      add --workers N to fan the repetitions over N processes
"""

import argparse

from repro.experiments import (fig7_simultaneous, fig9_synchronized,
                               fig11_state_sync)
from repro.experiments.runner import add_runner_arguments, runner_from_args

# Reduced scale so the whole hunt replays in minutes: BT-16 with a
# shorter compute budget (wave duration — the quantity that matters —
# is footprint-bound and stays at its class-B value).
QUICK = dict(niters=40, total_compute=2400.0)
SCALE = dict(n_procs=16, n_machines=20)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    add_runner_arguments(parser)
    runner = runner_from_args(parser.parse_args())
    print(__doc__)

    print("=" * 72)
    print("STEP 1 — simultaneous faults (Fig. 7 shape)")
    print("=" * 72, flush=True)
    r7 = fig7_simultaneous.run_experiment(reps=4, batches=(1, 5),
                                          runner=runner, **SCALE, **QUICK)
    print(r7.render())
    print()

    print("=" * 72)
    print("STEP 2 — faults synchronized on the recovery wave (Fig. 9 shape)")
    print("=" * 72, flush=True)
    r9 = fig9_synchronized.run_experiment(reps=6, scales=(16,),
                                          include_baseline=False,
                                          runner=runner, **QUICK)
    print(r9.render())
    print()

    print("=" * 72)
    print("STEP 3 — faults synchronized on MPI state (Fig. 11 shape)")
    print("=" * 72, flush=True)
    r11 = fig11_state_sync.run_experiment(reps=4, scales=(16,),
                                          include_baseline=False,
                                          runner=runner, **QUICK)
    print(r11.render())
    assert r11.rows[0].pct_buggy == 100.0
    print()
    print("100% of runs froze: the bug is located at the registration "
          "boundary of the recovery wave.")
    print()

    print("=" * 72)
    print("STEP 4 — the fix (epoch-tagged closure attribution)")
    print("=" * 72, flush=True)
    fixed = fig11_state_sync.run_experiment(reps=4, scales=(16,),
                                            include_baseline=False,
                                            bug_compat=False,
                                            runner=runner, **QUICK)
    print(fixed.render())
    assert fixed.rows[0].pct_terminated == 100.0
    print()
    print('"This bug is now corrected in the MPICH-Vcl framework and was '
          'discovered during this work." — §6')


if __name__ == "__main__":
    main()
