"""Classic setup shim for wheel-less environments.

Project metadata lives in ``pyproject.toml`` (what CI's
``pip install -e .[dev]`` reads).  This shim exists because the
evaluation environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build there;
``python setup.py develop`` still produces an egg-link editable
install with no wheel dependency.
"""

from setuptools import find_packages, setup

# name/version/python_requires are duplicated from pyproject.toml on
# purpose: setuptools < 61 (the wheel-less environments this shim
# serves) does not read [project] metadata during setup.py runs and
# would otherwise install the package as "UNKNOWN 0.0.0".
setup(
    name="repro",
    version="1.1.0",
    description=("Reproduction of FAIL-MPI: fault injection for "
                 "fault-tolerant MPI (Herault et al., CLUSTER 2006)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
