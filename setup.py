"""Classic setup shim.

The evaluation environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build; use
``python setup.py develop`` (what our Makefile/README recommend) — it
produces an egg-link editable install with no wheel dependency.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of FAIL-MPI: fault injection for "
                 "fault-tolerant MPI (Herault et al., CLUSTER 2006)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
