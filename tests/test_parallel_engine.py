"""The conservative parallel kernel (:mod:`repro.simkernel.parallel`).

Covers the CMB guarantees the deployment integration leans on: safe
horizons are never violated, cyclic channel graphs do not deadlock,
the inline and process backends replay identical histories, lookahead
violations are rejected loudly, and the synchronization accounting
(rounds, payload vs null messages) adds up.
"""

from __future__ import annotations

import math

import pytest

from repro.simkernel.parallel import (
    ChannelSpec,
    LookaheadViolation,
    ParallelSimulation,
    PartitionSpec,
    fork_available,
    run_partitioned,
    safe_horizons,
)

INF = math.inf


# ---------------------------------------------------------------------------
# model builders (module level so the processes backend can fork them)
# ---------------------------------------------------------------------------

def build_pingpong(ctx, peer, n_rounds, record):
    """Bounce a counter between two partitions via ctx.send."""
    log = []
    record[:] = [log]       # keep a handle the finisher can reach

    def on_msg(src, msg):
        log.append((round(ctx.engine.now, 9), src, msg))
        if msg < n_rounds:
            ctx.send(peer, msg + 1)
    ctx.on_receive(on_msg)
    if ctx.index == 0:      # partition 0 serves
        ctx.engine.call_later(0.5, lambda: ctx.send(peer, 1))


def finish_log(ctx):
    return list(ctx._finish_payload)


def build_logged(ctx, peer, n_rounds):
    record = []
    build_pingpong(ctx, peer, n_rounds, record)
    ctx._finish_payload = record[0]


def build_ring_node(ctx, nxt, hops):
    """Ring of partitions each forwarding a token ``hops`` times."""
    log = []
    ctx._finish_payload = log

    def on_msg(src, msg):
        log.append((round(ctx.engine.now, 9), src, msg))
        if msg < hops:
            ctx.send(nxt, msg + 1)
    ctx.on_receive(on_msg)
    if ctx.index == 0:
        ctx.engine.call_later(1.0, lambda: ctx.send(nxt, 1))


def build_local_only(ctx, n_events):
    """Pure local work, no cross-partition traffic."""
    log = []
    ctx._finish_payload = log
    for i in range(n_events):
        ctx.engine.call_later(0.1 * (i + 1),
                              (lambda k: lambda: log.append(k))(i))


def build_mixed(ctx, peer, seed_check):
    """Local randomized timers plus cross traffic — exercises the
    per-partition seeded RNG and interleaved delivery."""
    log = []
    ctx._finish_payload = log
    rng = ctx.engine.random

    def on_msg(src, msg):
        log.append(("rx", round(ctx.engine.now, 9), src, msg))
        if msg < 6:
            ctx.send(peer, msg + 1, delay=0.25 + rng.random() * 0.25)

    ctx.on_receive(on_msg)
    for i in range(5):
        delay = rng.uniform(0.1, 2.0)
        ctx.engine.call_later(
            delay, (lambda d: lambda: log.append(("tick", round(d, 9))))(delay))
    if ctx.index == 0:
        ctx.engine.call_later(0.3, lambda: ctx.send(peer, 1))


def build_horizon_guard(ctx, peer):
    """Records (now, peek) at every dispatch so the test can prove no
    event ran at/after a time a cross message later arrived at."""
    arrivals = []
    ctx._finish_payload = arrivals

    def on_msg(src, msg):
        arrivals.append(round(ctx.engine.now, 9))
        if msg < 20:
            ctx.send(peer, msg + 1)
    ctx.on_receive(on_msg)
    if ctx.index == 0:
        ctx.engine.call_later(0.1, lambda: ctx.send(peer, 1))


def build_violator(ctx, peer):
    def fire():
        ctx.send(peer, "too-soon", delay=0.001)   # channel lookahead is 0.5
    ctx.engine.call_later(1.0, fire)
    ctx.on_receive(lambda src, msg: None)


def build_late_sender(ctx, peer):
    """Sends its only message long after t=0 — forces many silent
    (null-message) rounds on the reverse channel."""
    ctx.on_receive(lambda src, msg: None)
    if ctx.index == 0:
        for i in range(10):
            ctx.engine.call_later(float(i + 1), lambda: None)
        ctx.engine.call_later(10.0, lambda: ctx.send(peer, "late"))
    else:
        ctx._got = []
        ctx.on_receive(lambda src, msg: ctx._got.append(
            (round(ctx.engine.now, 9), msg)))


def finish_got(ctx):
    return list(getattr(ctx, "_got", []))


# ---------------------------------------------------------------------------
# spec validation
# ---------------------------------------------------------------------------

def test_channel_requires_positive_lookahead():
    with pytest.raises(ValueError, match="lookahead > 0"):
        ChannelSpec("a", "b", 0.0)
    with pytest.raises(ValueError, match="lookahead > 0"):
        ChannelSpec("a", "b", -1.0)
    with pytest.raises(ValueError, match="self-loop"):
        ChannelSpec("a", "a", 1.0)


def test_coordinator_rejects_bad_graphs():
    parts = [PartitionSpec("a", build_local_only, (1,)),
             PartitionSpec("b", build_local_only, (1,))]
    with pytest.raises(ValueError, match="not a declared partition"):
        ParallelSimulation(parts, [ChannelSpec("a", "zz", 1.0)],
                           backend="inline")
    with pytest.raises(ValueError, match="duplicate channel"):
        ParallelSimulation(parts, [ChannelSpec("a", "b", 1.0),
                                   ChannelSpec("a", "b", 2.0)],
                           backend="inline")
    with pytest.raises(ValueError, match="duplicate partition names"):
        ParallelSimulation([parts[0], parts[0]], [], backend="inline")


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        ParallelSimulation([], [], backend="threads")


# ---------------------------------------------------------------------------
# safe-horizon fixpoint
# ---------------------------------------------------------------------------

def test_safe_horizons_open_graph():
    # no inbound channels -> unbounded
    assert safe_horizons([5.0, 7.0], [[], []]) == [INF, INF]


def test_safe_horizons_chain():
    # a -> b -> c with L=1: b bounded by a, c by b's *bound*, not just
    # b's next time (a blocked sender cannot emit either).
    inbound = [[], [(0, 1.0)], [(1, 1.0)]]
    hs = safe_horizons([3.0, 100.0, 100.0], inbound)
    assert hs == [INF, 4.0, 5.0]


def test_safe_horizons_cycle_advances():
    # Mutual cycle with positive lookahead must still grant progress
    # past the global minimum — the CMB deadlock-avoidance property.
    inbound = [[(1, 0.5)], [(0, 0.5)]]
    hs = safe_horizons([10.0, 10.0], inbound)
    assert hs == [10.5, 10.5]
    # asymmetric times: the later partition is bounded by the earlier
    hs = safe_horizons([2.0, 9.0], inbound)
    assert hs[0] == pytest.approx(9.0 + 0.5) or hs[0] >= 2.5
    assert hs[1] == pytest.approx(2.5)
    # and the granted horizon always exceeds the global min time
    assert min(hs) > 2.0


def test_safe_horizons_all_idle():
    inbound = [[(1, 1.0)], [(0, 1.0)]]
    assert safe_horizons([INF, INF], inbound) == [INF, INF]


# ---------------------------------------------------------------------------
# end-to-end: inline backend
# ---------------------------------------------------------------------------

def _pingpong_parts(n_rounds=8):
    return ([PartitionSpec("a", build_logged, ("b", n_rounds),
                           finish=finish_log),
             PartitionSpec("b", build_logged, ("a", n_rounds),
                           finish=finish_log)],
            [ChannelSpec("a", "b", 0.5), ChannelSpec("b", "a", 0.5)])


def test_pingpong_inline_full_history():
    parts, chans = _pingpong_parts(8)
    results, stats = run_partitioned(parts, chans, seed=3, backend="inline")
    # 8 bounces: odd counters land on b, even on a
    assert [m for _t, _s, m in results["b"]] == [1, 3, 5, 7]
    assert [m for _t, _s, m in results["a"]] == [2, 4, 6, 8]
    # arrivals advance by exactly the channel lookahead each hop
    times = sorted(t for log in results.values() for t, _s, _m in log)
    assert times == pytest.approx([0.5 + 0.5 * k for k in range(1, 9)])
    assert stats.payload_messages == 8
    assert stats.partitions == 2
    assert stats.rounds > 0
    assert stats.events_processed >= 8


def test_ring_does_not_deadlock():
    # 4-partition directed ring — the canonical conservative-DES
    # deadlock shape; null-message lookahead must carry it through.
    names = ["r0", "r1", "r2", "r3"]
    parts = [PartitionSpec(n, build_ring_node,
                           (names[(i + 1) % 4], 12), finish=finish_log)
             for i, n in enumerate(names)]
    chans = [ChannelSpec(n, names[(i + 1) % 4], 0.25)
             for i, n in enumerate(names)]
    results, stats = run_partitioned(parts, chans, seed=5, backend="inline")
    hops = sorted(m for log in results.values() for _t, _s, m in log)
    assert hops == list(range(1, 13))
    assert stats.null_messages > 0        # idle channels were granted time


def test_no_cross_partition_event_reordering():
    # Every recorded arrival time must be strictly increasing per the
    # alternating protocol — a horizon violation would deliver into a
    # partition's past and _deliver raises LookaheadViolation instead.
    parts = [PartitionSpec("a", build_horizon_guard, ("b",),
                           finish=finish_log),
             PartitionSpec("b", build_horizon_guard, ("a",),
                           finish=finish_log)]
    chans = [ChannelSpec("a", "b", 0.125), ChannelSpec("b", "a", 0.125)]
    results, _stats = run_partitioned(parts, chans, backend="inline")
    merged = sorted(results["a"] + results["b"])
    assert merged == sorted(set(merged))          # no duplicate instants
    assert len(merged) == 20


def test_send_under_lookahead_raises():
    parts = [PartitionSpec("a", build_violator, ("b",)),
             PartitionSpec("b", build_violator, ("a",))]
    chans = [ChannelSpec("a", "b", 0.5), ChannelSpec("b", "a", 0.5)]
    with pytest.raises(LookaheadViolation, match="under the channel "
                                                 "lookahead"):
        run_partitioned(parts, chans, backend="inline")


def test_send_without_channel_raises():
    def build(ctx):
        ctx.engine.call_later(1.0, lambda: ctx.send("nowhere", 1))
        ctx.on_receive(lambda s, m: None)
    with pytest.raises(ValueError, match="no channel"):
        run_partitioned([PartitionSpec("solo", build)], [],
                        backend="inline")


def test_missing_handler_is_an_error():
    def build_sender(ctx, peer):
        ctx.on_receive(lambda s, m: None)
        ctx.engine.call_later(0.1, lambda: ctx.send(peer, "x"))

    def build_deaf(ctx, peer):
        pass        # never registers on_receive
    parts = [PartitionSpec("a", build_sender, ("b",)),
             PartitionSpec("b", build_deaf, ("a",))]
    chans = [ChannelSpec("a", "b", 0.5), ChannelSpec("b", "a", 0.5)]
    with pytest.raises(RuntimeError, match="no on_receive handler"):
        run_partitioned(parts, chans, backend="inline")


def test_local_only_partitions_drain():
    parts = [PartitionSpec("a", build_local_only, (5,), finish=finish_log),
             PartitionSpec("b", build_local_only, (3,), finish=finish_log)]
    results, stats = run_partitioned(parts, [], backend="inline")
    assert results["a"] == [0, 1, 2, 3, 4]
    assert results["b"] == [0, 1, 2]
    assert stats.payload_messages == 0
    assert stats.null_messages == 0       # no channels to keep warm
    assert stats.events_processed == 8


def test_until_cap_stops_the_run():
    parts, chans = _pingpong_parts(1000)
    results, _stats = run_partitioned(parts, chans, backend="inline",
                                      until=3.0)
    times = [t for log in results.values() for t, _s, _m in log]
    assert times and max(times) <= 3.0
    # events at exactly the cap still run (reference `run(until=...)`
    # semantics: the bound is inclusive)
    assert 3.0 in times


def test_null_message_accounting():
    # One silent direction for ~10 simulated seconds: the reverse
    # channel carries nothing but horizon grants until the payload.
    parts = [PartitionSpec("src", build_late_sender, ("dst",)),
             PartitionSpec("dst", build_late_sender, ("src",),
                           finish=finish_got)]
    chans = [ChannelSpec("src", "dst", 1.0), ChannelSpec("dst", "src", 1.0)]
    results, stats = run_partitioned(parts, chans, backend="inline")
    assert results["dst"] == [(11.0, "late")]
    assert stats.payload_messages == 1
    # every round grants both channels; only one grant ever carried a
    # payload
    assert stats.null_messages == stats.rounds * 2 - 1
    assert stats.min_lookahead == 1.0


def test_per_partition_event_counts():
    parts = [PartitionSpec("a", build_local_only, (5,)),
             PartitionSpec("b", build_local_only, (3,))]
    _results, stats = run_partitioned(parts, [], backend="inline")
    assert stats.per_partition_events == {"a": 5, "b": 3}


# ---------------------------------------------------------------------------
# inline == processes (bit-for-bit)
# ---------------------------------------------------------------------------

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


@needs_fork
def test_pingpong_processes_matches_inline():
    parts, chans = _pingpong_parts(8)
    ref, ref_stats = run_partitioned(parts, chans, seed=3, backend="inline")
    par, par_stats = run_partitioned(parts, chans, seed=3,
                                     backend="processes")
    assert par == ref
    assert par_stats.payload_messages == ref_stats.payload_messages
    assert par_stats.null_messages == ref_stats.null_messages
    assert par_stats.rounds == ref_stats.rounds
    assert par_stats.events_processed == ref_stats.events_processed
    assert par_stats.backend == "processes"


@needs_fork
def test_mixed_random_processes_matches_inline():
    # Randomized local timers + randomized cross delays: any seed or
    # ordering drift between the backends shows up immediately.
    parts = [PartitionSpec("a", build_mixed, ("b", None),
                           finish=finish_log),
             PartitionSpec("b", build_mixed, ("a", None),
                           finish=finish_log)]
    chans = [ChannelSpec("a", "b", 0.25), ChannelSpec("b", "a", 0.25)]
    ref, _ = run_partitioned(parts, chans, seed=11, backend="inline")
    par, _ = run_partitioned(parts, chans, seed=11, backend="processes")
    assert par == ref
    # different seed -> different history (the test has teeth)
    other, _ = run_partitioned(parts, chans, seed=12, backend="inline")
    assert other != ref


@needs_fork
def test_ring_processes_matches_inline():
    names = ["r0", "r1", "r2", "r3"]
    parts = [PartitionSpec(n, build_ring_node,
                           (names[(i + 1) % 4], 12), finish=finish_log)
             for i, n in enumerate(names)]
    chans = [ChannelSpec(n, names[(i + 1) % 4], 0.25)
             for i, n in enumerate(names)]
    ref, _ = run_partitioned(parts, chans, seed=5, backend="inline")
    par, _ = run_partitioned(parts, chans, seed=5, backend="processes")
    assert par == ref


@needs_fork
def test_worker_build_failure_propagates():
    def build_boom(ctx):
        raise RuntimeError("boom in worker")
    with pytest.raises(RuntimeError, match="boom in worker"):
        run_partitioned([PartitionSpec("bad", build_boom)], [],
                        backend="processes")


def test_auto_backend_selection():
    parts = [PartitionSpec("a", build_local_only, (1,))]
    sim = ParallelSimulation(parts, [], backend="auto")
    assert sim.backend == "inline"        # single partition: no point forking
    parts2 = [PartitionSpec("a", build_local_only, (1,)),
              PartitionSpec("b", build_local_only, (1,))]
    sim2 = ParallelSimulation(parts2, [], backend="auto")
    assert sim2.backend == ("processes" if fork_available() else "inline")


def test_stats_as_dict_round_trips():
    parts, chans = _pingpong_parts(4)
    _results, stats = run_partitioned(parts, chans, backend="inline")
    d = stats.as_dict()
    assert d["backend"] == "inline"
    assert d["payload_messages"] == 4
    assert d["partitions"] == 2
    assert set(d["per_partition_events"]) == {"a", "b"}
