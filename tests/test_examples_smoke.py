"""Smoke tests keeping the example scripts runnable.

Each example is imported and executed in-process (argv patched), with
the slow ones downscaled through their own CLI knobs where available.
"""

import runpy
import sys

import pytest


def run_example(path, argv=()):
    old_argv = sys.argv
    sys.argv = [path] + list(argv)
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("examples/quickstart.py")
    out = capsys.readouterr().out
    assert "outcome:            terminated" in out
    assert "no message was lost or duplicated" in out


def test_scenario_tour_runs(capsys):
    run_example("examples/scenario_tour.py")
    out = capsys.readouterr().out
    assert "PARSE + SEMANTIC CHECK" in out
    assert "nb_crash=3" in out


def test_frequency_sweep_reduced(capsys):
    # 1 rep, reduced periods via the example's own flags
    run_example("examples/frequency_sweep.py", ["--reps", "1"])
    out = capsys.readouterr().out
    assert "Fig. 5" in out


def test_frequency_sweep_parallel_workers(capsys):
    # same sweep through the shared --workers flag (runner CLI plumbing)
    run_example("examples/frequency_sweep.py",
                ["--reps", "1", "--workers", "2"])
    out = capsys.readouterr().out
    assert "Fig. 5" in out
    assert "time" in out


@pytest.mark.slow
def test_compare_protocols_example(capsys):
    run_example("examples/compare_protocols.py")
    out = capsys.readouterr().out
    assert "Protocol comparison" in out
    assert "winner" in out
