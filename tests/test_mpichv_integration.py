"""Integration tests of the full MPICH-Vcl stack.

These exercise the complete deployment (dispatcher + scheduler +
checkpoint servers + daemons + application) through the public
runtime, with and without injected failures, in both dispatcher modes.
"""

import pytest

from repro.analysis.classify import Outcome
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads.masterworker import MasterWorkerWorkload
from repro.workloads.nas_bt import BTWorkload
from repro.workloads.ring import RingWorkload


def bt_runtime(n=4, seed=0, niters=20, total_compute=400.0,
               footprint=1.2e8, **cfg):
    config = VclConfig(n_procs=n, n_machines=n + 2, footprint=footprint, **cfg)
    wl = BTWorkload(n_procs=n, niters=niters, total_compute=total_compute,
                    footprint=footprint)
    return VclRuntime(config, wl.make_factory(), seed=seed)


def kill_at(rt, when, which=0):
    """Kill the ``which``-th running vdaemon at simulated time ``when``."""
    def do():
        procs = rt.cluster.all_procs("vdaemon")
        if procs:
            victim = procs[which % len(procs)]
            rt.engine.log("fault_injected", pid=victim.pid)
            victim.kill()
    rt.engine.call_at(when, do)


def assert_clean(rt):
    assert not getattr(rt.engine, "process_failures", []), \
        [(p.name, p.error) for p in rt.engine.process_failures]


# ---------------------------------------------------------------------------
# fault-free runs
# ---------------------------------------------------------------------------

def test_bt_fault_free_terminates_and_verifies():
    rt = bt_runtime()
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("verify_ok") == 1
    assert res.restarts == 0
    assert res.waves_committed >= 2
    assert_clean(rt)


def test_bt_checkpoint_waves_follow_period():
    rt = bt_runtime()
    res = rt.run()
    starts = [r.t for r in res.trace.of_kind("ckpt_wave_start")]
    # ticks on the absolute 30 s grid
    assert starts and all(abs(t % 30.0) < 1e-6 for t in starts)


def test_vdummy_baseline_runs_without_ft_machinery():
    config = VclConfig(n_procs=4, n_machines=6, fault_tolerant=False)
    wl = BTWorkload(n_procs=4, niters=20, total_compute=400.0, footprint=1.2e8)
    rt = VclRuntime(config, wl.make_factory(), seed=1)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.waves_committed == 0
    assert res.trace.count("ckpt_wave_start") == 0
    assert_clean(rt)


def test_vcl_overhead_over_vdummy_is_bounded():
    """The non-blocking protocol must not blow up fault-free runtime."""
    def run(ft):
        config = VclConfig(n_procs=4, n_machines=6, fault_tolerant=ft,
                           footprint=1.2e8)
        wl = BTWorkload(n_procs=4, niters=20, total_compute=400.0,
                        footprint=1.2e8)
        rt = VclRuntime(config, wl.make_factory(), seed=1)
        return rt.run().exec_time

    t_vcl = run(True)
    t_dummy = run(False)
    assert t_vcl < t_dummy * 1.25


def test_ring_and_masterworker_fault_free():
    for wl in (RingWorkload(n_procs=4, rounds=10, work_per_hop=0.2),
               MasterWorkerWorkload(n_procs=4, n_tasks=12,
                                    work_per_task=0.5)):
        config = VclConfig(n_procs=4, n_machines=6, footprint=4e7)
        rt = VclRuntime(config, wl.make_factory(), seed=3)
        res = rt.run(timeout=600.0)
        assert res.outcome is Outcome.TERMINATED, type(wl).__name__
        assert_clean(rt)


# ---------------------------------------------------------------------------
# failures + rollback
# ---------------------------------------------------------------------------

def test_single_failure_recovers_and_verifies():
    rt = bt_runtime(seed=7)
    kill_at(rt, 45.0, which=1)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.restarts == 1
    assert res.trace.count("verify_ok") == 1
    assert res.trace.count("restore") == 4     # every rank restored once
    assert_clean(rt)


def test_failure_before_first_checkpoint_restarts_from_scratch():
    rt = bt_runtime(seed=8)
    kill_at(rt, 10.0)       # before the first 30 s wave
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    restore = res.trace.last("restart_wave")
    assert restore.restore is None             # no committed wave yet
    assert_clean(rt)


def test_multiple_sequential_failures():
    rt = bt_runtime(seed=9, niters=30, total_compute=600.0)
    for i, t in enumerate((40.0, 80.0, 120.0)):
        kill_at(rt, t, which=i)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.restarts == 3
    assert res.trace.count("verify_ok") == 1
    assert_clean(rt)


def test_rollback_restores_committed_wave_not_newer():
    rt = bt_runtime(seed=10)
    kill_at(rt, 45.0)
    res = rt.run()
    rec = res.trace.last("restart_wave")
    assert rec.restore == 1                    # wave 1 committed at ~30 s


def test_execution_time_increases_with_failure():
    base = bt_runtime(seed=11).run().exec_time
    rt = bt_runtime(seed=11)
    kill_at(rt, 45.0)
    with_fault = rt.run().exec_time
    assert with_fault > base


# ---------------------------------------------------------------------------
# the dispatcher bug (paper §5.3)
# ---------------------------------------------------------------------------

def run_bug_scenario(bug_compat, seed=7, n=4):
    """Kill a daemon, then kill its recovered replacement right at the
    localMPI_setCommand boundary — the Fig. 11 injection, hand-rolled."""
    rt = bt_runtime(n=n, seed=seed, bug_compat=bug_compat, timeout=700.0)
    armed = {"on": False}

    def first_kill():
        procs = rt.cluster.all_procs("vdaemon")
        rt.engine.log("fault_injected", pid=procs[0].pid)
        procs[0].kill()
        armed["on"] = True

    rt.engine.call_at(45.0, first_kill)

    def on_spawn(proc):
        if armed["on"] and proc.name.startswith("vdaemon"):
            armed["on"] = False
            proc.set_breakpoint(
                "localMPI_setCommand",
                lambda p, fn, resume: p.kill())

    for node in rt.cluster.nodes:
        node.on_spawn(on_spawn)
    return rt, rt.run()


def test_buggy_dispatcher_freezes():
    rt, res = run_bug_scenario(bug_compat=True)
    assert res.outcome is Outcome.BUGGY
    assert res.bug_events == 1
    assert res.trace.count("bug_misattribution") == 1
    # frozen: nothing happens for the rest of the run
    assert res.verdict.last_activity < 120.0
    assert_clean(rt)


def test_fixed_dispatcher_recovers():
    rt, res = run_bug_scenario(bug_compat=False)
    assert res.outcome is Outcome.TERMINATED
    assert res.bug_events == 0
    assert res.restarts == 2                   # one per failure
    assert res.trace.count("verify_ok") == 1
    assert_clean(rt)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_bug_freeze_is_deterministic_per_seed(seed):
    _, first = run_bug_scenario(bug_compat=True, seed=seed)
    _, second = run_bug_scenario(bug_compat=True, seed=seed)
    assert first.outcome == second.outcome
    assert first.sim_time == second.sim_time
    assert first.events_processed == second.events_processed
