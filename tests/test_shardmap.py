"""Checkpoint-server sharding: the map, the plumbing, the edge cases.

The shard map (``repro/mpichv/shardmap.py``) is a pure function of
``(rank, n_ckpt_servers)``; these tests pin its properties, the
deployment edge cases (``k = 1``, ``k > n_procs``), that every
protocol's daemons actually dial their own shard (and restart against
it), and bit-for-bit ``parallel == serial == cache`` determinism at
k ∈ {1, 4} for all three protocols.  ``k = 1`` bit-identity with the
pre-sharding engine is pinned separately by the golden digests in
``tests/test_engine_fastpath.py``.
"""

import dataclasses

import pytest

from repro.analysis.classify import Outcome
from repro.experiments.harness import TrialSetup
from repro.experiments.runner import TrialRunner, trial_key
from repro.mpichv import shardmap
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads import build_workload

RING = dict(workload="ring", niters=30, total_compute=960.0, footprint=1e8)


def ring_runtime(n=4, seed=0, niters=30, total_compute=960.0, **cfg):
    config = VclConfig(n_procs=n, n_machines=n + 2, footprint=1e8, **cfg)
    wl = build_workload("ring", n_procs=n, niters=niters,
                        total_compute=total_compute, footprint=1e8)
    return VclRuntime(config, wl.make_factory(), seed=seed)


# ---------------------------------------------------------------------------
# the map itself
# ---------------------------------------------------------------------------

def test_shard_assignment_is_modulo_and_deterministic():
    assert [shardmap.ckpt_shard(r, 4) for r in range(8)] \
        == [0, 1, 2, 3, 0, 1, 2, 3]
    # pure function: identical across calls (no hidden state)
    assert shardmap.ckpt_shard(123, 7) == shardmap.ckpt_shard(123, 7) == 4


def test_shard_k1_maps_everything_to_shard_zero():
    assert all(shardmap.ckpt_shard(r, 1) == 0 for r in range(64))


def test_shard_map_rejects_bad_inputs():
    with pytest.raises(ValueError):
        shardmap.ckpt_shard(0, 0)
    with pytest.raises(ValueError):
        shardmap.ckpt_shard(-1, 2)


def test_node_layout_is_contiguous():
    config = VclConfig(n_procs=4, n_ckpt_servers=3, protocol="v1",
                       n_channel_memories=2)
    assert shardmap.ckpt_server_node(0) == "svc2"
    assert shardmap.ckpt_server_node(2) == "svc4"
    assert shardmap.cm_node(config, 0) == "svc5"   # after the shards
    assert shardmap.cm_node(config, 1) == "svc6"
    assert shardmap.ckpt_server_for_rank(config, 5) \
        == ("svc4", config.ckpt_server_port_base + 2)


def test_shard_table_covers_all_ranks_and_empty_shards():
    table = shardmap.shard_table(n_procs=6, n_ckpt_servers=4)
    assert table == {0: [0, 4], 1: [1, 5], 2: [2], 3: [3]}
    # k > ranks: surplus shards listed (deployed but idle)
    table = shardmap.shard_table(n_procs=2, n_ckpt_servers=5)
    assert table[0] == [0] and table[1] == [1]
    assert table[2] == table[3] == table[4] == []


def test_config_rejects_zero_servers():
    with pytest.raises(ValueError):
        VclConfig(n_procs=4, n_ckpt_servers=0)


# ---------------------------------------------------------------------------
# deployments across the shard range
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", ["vcl", "v2", "v1"])
@pytest.mark.parametrize("shards", [1, 3])
def test_every_protocol_spreads_ingest_over_its_shards(protocol, shards):
    rt = ring_runtime(seed=3, n_ckpt_servers=shards, protocol=protocol)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert len(res.ckpt_shard_bytes) == shards
    # 4 ranks over `shards` servers: every shard that owns a rank
    # ingested checkpoint bytes
    table = shardmap.shard_table(4, shards)
    for shard, ranks in table.items():
        if ranks:
            assert res.ckpt_shard_bytes[shard] > 0, (shard, ranks)
    if shards > 1:
        # sharding actually spreads the load: no single server took it all
        assert max(res.ckpt_shard_bytes) < sum(res.ckpt_shard_bytes)


def test_more_shards_than_ranks_leaves_surplus_idle():
    rt = ring_runtime(n=2, seed=5, n_ckpt_servers=4, protocol="v2")
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert len(res.ckpt_shard_bytes) == 4
    assert res.ckpt_shard_bytes[0] > 0 and res.ckpt_shard_bytes[1] > 0
    assert res.ckpt_shard_bytes[2] == 0 and res.ckpt_shard_bytes[3] == 0


def test_shard_imbalance_metric():
    res = ring_runtime(seed=3, n_ckpt_servers=2).run()
    assert res.ckpt_shard_imbalance == pytest.approx(
        max(res.ckpt_shard_bytes)
        / (sum(res.ckpt_shard_bytes) / len(res.ckpt_shard_bytes)))
    assert res.ckpt_shard_imbalance >= 1.0


# ---------------------------------------------------------------------------
# restart paths against a killed shard server
# ---------------------------------------------------------------------------

def _kill_service(rt, name, when):
    def do():
        proc = rt.service_procs.get(name)
        if proc is not None and proc.state.alive:
            rt.engine.log("service_killed", service=name)
            proc.kill()
    rt.engine.call_at(when, do)


def _kill_rank(rt, rank, when):
    def do():
        for proc in rt.cluster.all_procs("vdaemon"):
            if proc.tags.get("rank") == rank and proc.state.alive:
                rt.engine.log("fault_injected", rank=rank)
                proc.kill()
                return
    rt.engine.call_at(when, do)


def test_restart_succeeds_when_other_shards_server_died():
    """v2, k=2: killing shard 1's server does not impede the restart of
    rank 0 (shard 0) — the failure domains are independent."""
    rt = ring_runtime(seed=11, n_ckpt_servers=2, protocol="v2",
                      timeout=400.0)
    _kill_service(rt, "ckptserver.1", when=40.0)
    _kill_rank(rt, 0, when=45.0)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.restarts == 1
    assert res.trace.count("recovery_complete") >= 1


def test_restart_blocks_when_own_shards_server_died():
    """v2, k=2: rank 0's relaunch dials shard 0's dead server forever —
    the deployment's documented single point of failure *per shard*
    (exactly the single-server behaviour, now scoped to one shard)."""
    rt = ring_runtime(seed=11, n_ckpt_servers=2, protocol="v2",
                      timeout=200.0)
    _kill_service(rt, "ckptserver.0", when=40.0)
    _kill_rank(rt, 0, when=45.0)
    res = rt.run()
    assert res.outcome is not Outcome.TERMINATED
    # the stall is the daemon's connect retry loop, not a crash
    assert not getattr(rt.engine, "process_failures", [])


def test_survivors_unaffected_by_foreign_shard_loss():
    """Losing a shard's server without any rank failure never blocks a
    run: live daemons only buffer to their ckpt socket when it is open."""
    rt = ring_runtime(seed=7, n_ckpt_servers=2, protocol="v1",
                      timeout=400.0)
    _kill_service(rt, "ckptserver.1", when=35.0)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.restarts == 0


# ---------------------------------------------------------------------------
# parallel == serial == cache, all protocols, k in {1, 4}
# ---------------------------------------------------------------------------

def _signature(results):
    return [(r.outcome, r.exec_time, r.sim_time, r.events_processed,
             r.app_signature, tuple(r.ckpt_shard_bytes)) for r in results]


@pytest.mark.parametrize("protocol", ["vcl", "v2", "v1"])
@pytest.mark.parametrize("shards", [1, 4])
def test_parallel_serial_cache_identical_per_shard_count(
        protocol, shards, tmp_path):
    setup = TrialSetup(n_procs=4, n_machines=7, protocol=protocol,
                       timeout=300.0,
                       config_overrides={"n_ckpt_servers": shards}, **RING)
    jobs = [(setup, 1000 + i) for i in range(3)]

    serial = TrialRunner(workers=1).run_jobs(jobs)
    parallel = TrialRunner(workers=3).run_jobs(jobs)
    assert _signature(serial) == _signature(parallel)

    cache = str(tmp_path / "cache")
    cold = TrialRunner(workers=1, cache_dir=cache)
    assert _signature(cold.run_jobs(jobs)) == _signature(serial)
    warm = TrialRunner(workers=1, cache_dir=cache)
    cached = warm.run_jobs(jobs)
    assert warm.stats.cache_hits == len(jobs) and warm.stats.executed == 0
    assert _signature(cached) == _signature(serial)


def test_shard_count_is_part_of_the_cache_key():
    base = TrialSetup(n_procs=4, n_machines=7, **RING)
    k2 = dataclasses.replace(
        base, config_overrides={"n_ckpt_servers": 2})
    k4 = dataclasses.replace(
        base, config_overrides={"n_ckpt_servers": 4})
    assert trial_key(k2, 1) != trial_key(k4, 1)
