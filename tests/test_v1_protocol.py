"""Tests for the V1 protocol (remote pessimistic logging in Channel
Memories).

Covers the channel-memory state machine, the deployment plan, the
single-rank restart + CM replay path, and the property that sets V1
apart from V2 in the family: *simultaneous* failures are tolerated,
because nothing fault-critical lives in volatile daemon memory.
"""

import pytest

from repro.analysis.classify import Outcome
from repro.mpi.message import AppMessage
from repro.mpichv.channelmemory import ChannelMemoryState
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads.masterworker import MasterWorkerWorkload
from repro.workloads.nas_bt import BTWorkload
from repro.workloads.ring import RingWorkload


def v1_runtime(workload=None, n=4, seed=0, **cfg):
    cfg.setdefault("footprint", 1.2e8)
    config = VclConfig(n_procs=n, n_machines=n + 2, protocol="v1", **cfg)
    wl = workload or BTWorkload(n_procs=n, niters=20, total_compute=400.0,
                                footprint=cfg["footprint"])
    return VclRuntime(config, wl.make_factory(), seed=seed)


def kill_at(rt, when, which=1):
    def do():
        procs = rt.cluster.all_procs("vdaemon")
        if procs:
            procs[which % len(procs)].kill()
    rt.engine.call_at(when, do)


def kill_batch_at(rt, when, count):
    """Kill ``count`` distinct daemons at the same simulated instant."""
    def do():
        procs = rt.cluster.all_procs("vdaemon")
        for proc in procs[:count]:
            proc.kill()
    rt.engine.call_at(when, do)


def assert_clean(rt):
    assert not getattr(rt.engine, "process_failures", []), \
        [(p.name, p.error) for p in rt.engine.process_failures]


def msg(src, dst, tag=1):
    return AppMessage(src=src, dst=dst, tag=tag, payload=0, size=64)


# ---------------------------------------------------------------------------
# channel memory state
# ---------------------------------------------------------------------------

def test_cm_assigns_positions_and_orders_per_receiver():
    st = ChannelMemoryState()
    assert st.record(1, 0, 1, msg(1, 0, tag=10)) == 1
    assert st.record(2, 0, 1, msg(2, 0, tag=11)) == 2
    assert st.record(1, 0, 2, msg(1, 0, tag=12)) == 3
    # another receiver has an independent order
    assert st.record(0, 1, 1, msg(0, 1, tag=13)) == 1
    assert [e[0] for e in st.replay_after(0, 0)] == [1, 2, 3]
    assert [e[3].tag for e in st.replay_after(0, 1)] == [11, 12]


def test_cm_dedupes_regenerated_sends():
    st = ChannelMemoryState()
    st.record(1, 0, 1, msg(1, 0))
    st.record(1, 0, 2, msg(1, 0))
    # a recovering sender re-executes and re-puts the same sequences
    assert st.record(1, 0, 1, msg(1, 0)) is None
    assert st.record(1, 0, 2, msg(1, 0)) is None
    assert st.duplicates == 2
    assert st.logged == 2
    # the next fresh sequence continues the order
    assert st.record(1, 0, 3, msg(1, 0)) == 3


def test_cm_prune_keeps_positions_monotonic():
    st = ChannelMemoryState()
    for seq in (1, 2, 3):
        st.record(1, 0, seq, msg(1, 0))
    st.prune(0, 2)
    assert st.pruned == 2
    assert [e[0] for e in st.replay_after(0, 0)] == [3]
    # pruning never recycles positions
    assert st.record(2, 0, 1, msg(2, 0)) == 4


# ---------------------------------------------------------------------------
# configuration + deployment
# ---------------------------------------------------------------------------

def test_v1_deployment_has_cms_not_scheduler_or_eventlog():
    rt = v1_runtime()
    rt.deploy()
    assert len(rt.cm_procs) == rt.config.n_channel_memories
    assert rt.scheduler_proc is None
    assert rt.eventlog_proc is None


# ---------------------------------------------------------------------------
# fault-free behaviour
# ---------------------------------------------------------------------------

def test_v1_fault_free_terminates_and_verifies():
    rt = v1_runtime()
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("verify_ok") == 1
    # independent checkpoints: several per rank, no waves
    assert res.trace.count("v1_ckpt") >= 4
    assert res.trace.count("ckpt_wave_start") == 0
    # every rank attached to its home CM exactly once
    assert res.trace.count("cm_attach") == rt.config.n_procs
    assert_clean(rt)


def test_v1_remote_logging_adds_latency():
    """Every message transits a Channel Memory — the double hop must
    cost something relative to Vcl's direct mesh."""
    t_v1 = v1_runtime(seed=1).run().exec_time

    config = VclConfig(n_procs=4, n_machines=6, footprint=1.2e8)
    wl = BTWorkload(n_procs=4, niters=20, total_compute=400.0, footprint=1.2e8)
    t_vcl = VclRuntime(config, wl.make_factory(), seed=1).run().exec_time
    assert t_v1 > t_vcl
    assert t_v1 < t_vcl * 1.2      # but not catastrophically


def test_v1_single_cm_works():
    rt = v1_runtime(n_channel_memories=1)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert_clean(rt)


# ---------------------------------------------------------------------------
# failures: single-rank restart, replay from the CM
# ---------------------------------------------------------------------------

def test_v1_single_failure_restarts_one_rank_only():
    rt = v1_runtime(seed=3)
    kill_at(rt, 70.0)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("verify_ok") == 1
    # exactly one restore — survivors never restarted
    assert res.trace.count("restore") == 1
    # the restarted rank re-attached: n initial attaches + 1 recovery
    assert res.trace.count("cm_attach") == rt.config.n_procs + 1
    # and its recovery attach replayed history from the CM
    reattach = [r for r in res.trace.of_kind("cm_attach") if r.after > 0]
    assert reattach and reattach[-1].replayed >= 0
    assert_clean(rt)


def test_v1_failure_before_any_checkpoint_full_replay():
    rt = v1_runtime(seed=3)
    kill_at(rt, 20.0)          # before every first checkpoint
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    # no image to restore: replay starts from position 0
    rec = res.trace.of_kind("cm_attach")[rt.config.n_procs:]
    assert rec and rec[-1].after == 0 and rec[-1].replayed > 0
    assert res.trace.count("verify_ok") == 1
    assert_clean(rt)


# ---------------------------------------------------------------------------
# the V1 selling point: simultaneous failures are tolerated
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed,when,count", [
    (11, 55.0, 2),
    (12, 45.0, 3),
    (13, 70.0, 2),
])
def test_v1_simultaneous_failures_recover(seed, when, count):
    rt = v1_runtime(seed=seed)
    kill_batch_at(rt, when, count)
    res = rt.run()
    assert_clean(rt)
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("verify_ok") == 1
    # every killed rank recovered through its own CM, independently
    assert res.trace.count("cm_attach") == rt.config.n_procs + count


@pytest.mark.parametrize("seed,kills", [
    (21, (40.0,)),
    (22, (45.0, 95.0)),
    (23, (33.0, 80.0, 120.0)),
])
def test_v1_checksum_exact_under_sequential_kills(seed, kills):
    rt = v1_runtime(seed=seed)
    for i, t in enumerate(kills):
        kill_at(rt, t, which=i * 3 + 1)
    res = rt.run()
    assert_clean(rt)
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("verify_ok") == 1


def test_v1_ring_and_masterworker_survive_kills():
    for wl, kill_t in ((RingWorkload(n_procs=4, rounds=40, work_per_hop=1.0),
                        25.0),
                       (MasterWorkerWorkload(n_procs=4, n_tasks=30,
                                             work_per_task=2.0), 25.0)):
        rt = v1_runtime(workload=wl, seed=4, footprint=4e7)
        kill_at(rt, kill_t, which=2)
        res = rt.run(timeout=600.0)
        assert res.outcome is Outcome.TERMINATED, type(wl).__name__
        assert_clean(rt)


def test_v1_deterministic_per_seed():
    def run():
        rt = v1_runtime(seed=31)
        kill_batch_at(rt, 50.0, 2)
        return rt.run()

    first, second = run(), run()
    assert first.exec_time == second.exec_time
    assert first.events_processed == second.events_processed
