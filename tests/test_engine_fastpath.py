"""Guards for the slotted engine fast path.

The slot-table dispatch (``repro/simkernel/engine.py``) must be
*bit-identical* in event ordering to the classic one-entry-per-event
heap it replaced: globally ``(time, priority, insertion order)``.  The
digests pinned here were computed on the pre-fast-path engine (the
PR 3/PR 4 inlined-heap loop) and must never change — any drift means
the slot table, the front lane, or the preemption path reordered
events.
"""

import gc
import hashlib
import json

import pytest

from repro.experiments.harness import TrialSetup
from repro.explore.generators import MASTER, NODE_DAEMON, TimedKill, render_plan
from repro.simkernel.engine import Engine, gc_paused
from repro.simkernel.events import PRIORITY_LAZY, PRIORITY_NORMAL, PRIORITY_URGENT

# ---------------------------------------------------------------------------
# golden digests (computed on the pre-fast-path heap engine)
# ---------------------------------------------------------------------------

#: synthetic kernel schedule: 8 processes on colliding timeout grids,
#: urgent/normal/lazy same-instant slots, a same-time cascade
SYNTHETIC_DIGEST = "2897bb34ef71b1bf614d2c7a1fd70a682a60f28d89b088125dd5fd639d6d2f8a"
SYNTHETIC_EVENTS = 361

#: (protocol, n_ckpt_servers) -> (trace digest, events processed) for a
#: fault-free 4-rank ring trial, seed 7
GOLDEN_CLEAN = {
    ("vcl", 1): ("6cc3065ebbf0dc039f1fb0187d5a12f2f303ee43c1c5999dc0926df995bfddce", 1744),
    ("vcl", 4): ("178688c39548d6626dbb62827b0d4a644fbf81cb187f494d30dde10eab88441d", 1786),
    ("v2", 1): ("2208a1a318b3f1851eba4841edc6b09fc6cb669487cd9de5a031cfb2916e5bea", 2553),
    ("v2", 4): ("be8835319b9f92e9d4562ccdd95d76cc695d05546718506ddd0f9c86b53f01b2", 2559),
    ("v1", 1): ("de988038cc5fcf283f4fdfdb1e62145e62b22ce4b6579932d8f3cf152ace4070", 1949),
    ("v1", 4): ("fb39f736d8351827e15735b7b0f6a602af9256ee444f8fdc4621eac7a5db9262", 1955),
}

#: same trials with one kill at t=45 (restart paths cross the shards)
GOLDEN_FAULTY = {
    ("vcl", 1): ("d275eb358129edd92bc1d5551f1b3b33f8b388c9fef45adbba65a5b93ca5f269", 2559),
    ("vcl", 4): ("4ab23457af0c7858e92c305ffe78c39ad4777f02372a525e5731cd800cf05a5b", 2610),
    ("v2", 1): ("5b5e5680f1eb0c9aa44f7b5f2071e06d0758b1c272a4118f37716c7de8ad0958", 2768),
    ("v2", 4): ("f0f48029470726c09d523e32816d581fc4064585bf6039514d9ff32b9f90e4d6", 2774),
    ("v1", 1): ("c38136348f709f8fe2d6520aef624c44422e206e7dca96cd5bf869fae4cce900", 2106),
    ("v1", 4): ("57d2c7ad3c4986821f06d29f7bbf50443b3db33043b2f48e735e3f9c4ffac378", 2112),
}


def test_synthetic_schedule_matches_heap_engine_digest():
    eng = Engine(seed=42)
    log = []

    def mark(tag):
        log.append((round(eng.now, 9), tag))

    def proc(pid):
        for i in range(10):
            yield eng.timeout(0.25 * (i % 4) + 0.5)
            mark(f"p{pid}.{i}")
            if i % 3 == 0:
                eng.call_later(0.0, lambda pid=pid, i=i: mark(f"u{pid}.{i}"))

    for pid in range(8):
        eng.process(proc(pid))
    for i in range(50):
        eng.call_later(0.1 * (i % 7), lambda i=i: mark(f"c{i}"))
        eng._enqueue_call(lambda i=i: mark(f"lz{i}"), delay=0.1 * (i % 7),
                          priority=PRIORITY_LAZY)
        eng._enqueue_call(lambda i=i: mark(f"ur{i}"), delay=0.1 * (i % 5),
                          priority=PRIORITY_URGENT)

    def cascade():
        mark("cascade")
        eng.call_later(0.0, lambda: mark("cascade.n"))
        eng._enqueue_call(lambda: mark("cascade.u"), delay=0.0,
                          priority=PRIORITY_URGENT)

    eng.call_later(1.0, cascade)
    eng.run()
    digest = hashlib.sha256(json.dumps(log).encode()).hexdigest()
    assert digest == SYNTHETIC_DIGEST
    assert eng.events_processed == SYNTHETIC_EVENTS


def _trial_digest(protocol, n_ckpt_servers, faulty):
    scenario = render_plan((TimedKill(at=45, target=0),)) if faulty else None
    setup = TrialSetup(
        n_procs=4, n_machines=7, protocol=protocol, timeout=300.0,
        workload="ring", niters=40, total_compute=1280.0, footprint=1e8,
        keep_trace=True, scenario_source=scenario,
        master_daemon=MASTER, node_daemon=NODE_DAEMON,
        config_overrides={"n_ckpt_servers": n_ckpt_servers})
    result = setup.run_one(seed=7)
    h = hashlib.sha256()
    for rec in result.trace.records:
        h.update(repr((round(rec.t, 9), rec.kind,
                       sorted(rec.fields.items()))).encode())
    return h.hexdigest(), result.events_processed


@pytest.mark.parametrize("protocol", ["vcl", "v2", "v1"])
@pytest.mark.parametrize("shards", [1, 4])
def test_clean_trial_matches_heap_engine_digest(protocol, shards):
    assert _trial_digest(protocol, shards, faulty=False) \
        == GOLDEN_CLEAN[(protocol, shards)]


@pytest.mark.parametrize("protocol", ["vcl", "v2", "v1"])
@pytest.mark.parametrize("shards", [1, 4])
def test_faulty_trial_matches_heap_engine_digest(protocol, shards):
    assert _trial_digest(protocol, shards, faulty=True) \
        == GOLDEN_FAULTY[(protocol, shards)]


# ---------------------------------------------------------------------------
# ordering semantics of the slot table
# ---------------------------------------------------------------------------

def test_urgent_slot_preempts_mid_batch():
    """An urgent payload scheduled at the current instant runs before
    the remaining normal payloads of that instant (the process-wakeup
    pattern the front lane accelerates)."""
    eng = Engine()
    order = []

    def first():
        order.append("first")
        eng._enqueue_call(lambda: order.append("urgent"),
                          priority=PRIORITY_URGENT)

    eng.call_later(1.0, first)
    eng.call_later(1.0, lambda: order.append("second"))
    eng.call_later(1.0, lambda: order.append("third"))
    eng.run()
    assert order == ["first", "urgent", "second", "third"]


def test_same_slot_insert_during_drain_runs_last():
    eng = Engine()
    order = []

    def first():
        order.append("first")
        eng.call_later(0.0, lambda: order.append("late"))

    eng.call_later(1.0, first)
    eng.call_later(1.0, lambda: order.append("second"))
    eng.run()
    assert order == ["first", "second", "late"]


def test_nested_preemption_chain():
    """normal -> urgent -> (urgent schedules normal-at-now, runs after
    the original batch's tail per insertion order)."""
    eng = Engine()
    order = []

    def a():
        order.append("a")
        eng._enqueue_call(u, priority=PRIORITY_URGENT)

    def u():
        order.append("u")
        eng.call_later(0.0, lambda: order.append("n2"))

    eng.call_later(1.0, a)
    eng.call_later(1.0, lambda: order.append("b"))
    eng.run()
    assert order == ["a", "u", "b", "n2"]


def test_stop_mid_batch_preserves_tail():
    eng = Engine()
    order = []
    eng.call_later(1.0, lambda: (order.append("first"), eng.stop()))
    eng.call_later(1.0, lambda: order.append("second"))
    eng.run()
    assert order == ["first"]
    eng.run()
    assert order == ["first", "second"]


def test_max_events_mid_batch_preserves_tail():
    eng = Engine()
    order = []
    for tag in ("a", "b", "c"):
        eng.call_later(1.0, lambda tag=tag: order.append(tag))
    eng.run(max_events=2)
    assert order == ["a", "b"]
    eng.run()
    assert order == ["a", "b", "c"]


def test_step_interleaves_with_run():
    eng = Engine()
    order = []
    for tag in ("a", "b"):
        eng.call_later(1.0, lambda tag=tag: order.append(tag))
    eng.call_later(2.0, lambda: order.append("c"))
    eng.step()
    assert order == ["a"] and eng.now == 1.0
    eng.run()
    assert order == ["a", "b", "c"]


def test_raising_payload_leaves_engine_consistent():
    eng = Engine()
    order = []

    def boom():
        raise RuntimeError("payload crash")

    eng.call_later(1.0, lambda: order.append("a"))
    eng.call_later(1.0, boom)
    eng.call_later(1.0, lambda: order.append("b"))
    eng.call_later(2.0, lambda: order.append("c"))
    with pytest.raises(RuntimeError):
        eng.run()
    # the crash lost only its own payload; the tail is still pending
    eng.run()
    assert order == ["a", "b", "c"]


def test_peek_covers_front_lane():
    eng = Engine()
    eng.call_later(5.0, lambda: None)
    assert eng.peek() == 5.0
    assert Engine().peek() == float("inf")


def test_peek_mid_batch_sees_current_slots_tail():
    """While a slot is draining, its undrained tail is in neither the
    heap nor the front lane — peek() must still report it."""
    eng = Engine()
    seen = []
    eng.call_later(1.0, lambda: seen.append(eng.peek()))
    eng.call_later(1.0, lambda: None)
    eng.call_later(5.0, lambda: None)
    eng.run()
    assert seen == [1.0]


# ---------------------------------------------------------------------------
# cancellable and periodic timers
# ---------------------------------------------------------------------------

def test_timer_cancel_is_tombstone():
    eng = Engine()
    fired = []
    handle = eng.timer(1.0, lambda: fired.append("t"))
    keep = eng.timer(1.0, lambda: fired.append("keep"))
    handle.cancel()
    assert handle.fn is None            # closure dropped immediately
    eng.run()
    assert fired == ["keep"]
    assert keep.cancelled is False


def test_periodic_fires_on_grid_and_cancels():
    eng = Engine()
    fired = []
    handle = eng.periodic(10.0, lambda: fired.append(eng.now))
    eng.run(until=35.0)
    assert fired == [10.0, 20.0, 30.0]
    handle.cancel()
    eng.run(until=100.0)
    assert fired == [10.0, 20.0, 30.0]


def test_periodic_first_override_and_self_cancel():
    eng = Engine()
    fired = []
    handle = eng.periodic(10.0, lambda: fired.append(eng.now), first=1.0)

    def stop_after_two():
        if len(fired) >= 2:
            handle.cancel()

    eng.periodic(1.0, stop_after_two)
    eng.run(until=100.0)
    assert fired == [1.0, 11.0]


def test_periodic_shared_grid_shares_one_slot():
    """512 periodic timers on the same grid collapse to one heap entry
    per tick — the structural property behind the scale fast path."""
    eng = Engine()
    fired = [0]
    for _ in range(512):
        eng.periodic(1.0, lambda: fired.__setitem__(0, fired[0] + 1))
    eng.run(until=0.5)
    assert len(eng._heap) + len(eng._front) == 1
    eng.run(until=3.5)
    assert fired[0] == 512 * 3


def test_timer_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timer(-1.0, lambda: None)
    with pytest.raises(ValueError):
        eng.periodic(0.0, lambda: None)
    with pytest.raises(ValueError):
        eng.periodic(1.0, lambda: None, first=-0.5)


# ---------------------------------------------------------------------------
# GC pause policy
# ---------------------------------------------------------------------------

def test_gc_paused_restores_state():
    assert gc.isenabled()
    with gc_paused():
        assert not gc.isenabled()
    assert gc.isenabled()


def test_gc_paused_nested_keeps_outer_disable():
    gc.disable()
    try:
        with gc_paused():
            assert not gc.isenabled()
        assert not gc.isenabled()       # outer disable is respected
    finally:
        gc.enable()


def test_gc_paused_restores_on_exception():
    assert gc.isenabled()
    with pytest.raises(RuntimeError):
        with gc_paused():
            raise RuntimeError("boom")
    assert gc.isenabled()
