"""Unit tests for the MPI endpoint and message matching.

Uses a loopback transport so the endpoint logic is exercised without
the MPICH-V stack.
"""

import pytest

from repro.mpi.endpoint import MpiEndpoint, UNMATCHED_KEY
from repro.mpi.message import ANY, AppMessage
from repro.simkernel.engine import Engine


class LoopbackTransport:
    """Delivers every sent message back to the local endpoint, honouring
    the state-buffer delivery contract (for tests)."""

    def __init__(self, engine, state):
        from repro.mpi.endpoint import LocalDelivery
        self.delivery = LocalDelivery(engine, state)
        self.sent = []
        self.done = False

    def app_send(self, msg):
        self.sent.append(msg)
        self.delivery.deliver(msg)

    def app_inbox_get(self):
        return self.delivery.doorbell()

    def app_done(self):
        self.done = True


@pytest.fixture
def ep():
    engine = Engine(seed=0)
    state = {}
    transport = LoopbackTransport(engine, state)
    endpoint = MpiEndpoint(rank=0, size=4, state=state, transport=transport,
                           engine=engine)
    return engine, transport, endpoint


def _drive(engine, gen):
    p = engine.process(gen)
    engine.run()
    assert p.state == "done", p.error
    return p.result


def test_message_matching_wildcards():
    msg = AppMessage(src=2, dst=0, tag=7, payload="x")
    assert msg.matches(2, 7)
    assert msg.matches(ANY, 7)
    assert msg.matches(2, ANY)
    assert msg.matches(ANY, ANY)
    assert not msg.matches(1, 7)
    assert not msg.matches(2, 8)


def test_send_validates_rank(ep):
    engine, transport, endpoint = ep
    with pytest.raises(ValueError):
        endpoint.send(9, 0, None)
    with pytest.raises(ValueError):
        endpoint.send(-1, 0, None)


def test_recv_returns_matching_message(ep):
    engine, transport, endpoint = ep

    def main():
        endpoint.send(0, 5, "hello")
        msg = yield from endpoint.recv(src=0, tag=5)
        return msg.payload

    assert _drive(engine, main()) == "hello"
    assert endpoint.sent_count == 1
    assert endpoint.recv_count == 1


def test_non_matching_buffered_in_state(ep):
    engine, transport, endpoint = ep

    def main():
        endpoint.send(0, 1, "first")      # will not match tag=2
        endpoint.send(0, 2, "second")
        msg = yield from endpoint.recv(src=0, tag=2)
        return msg.payload

    assert _drive(engine, main()) == "second"
    # the unmatched message is checkpointable state
    buf = endpoint.state[UNMATCHED_KEY]
    assert len(buf) == 1 and buf[0].payload == "first"


def test_buffered_message_matched_before_inbox(ep):
    engine, transport, endpoint = ep

    def main():
        endpoint.send(0, 1, "early")
        # receiving a later tag first forces "early" into the buffer
        endpoint.send(0, 2, "x")
        yield from endpoint.recv(tag=2)
        msg = yield from endpoint.recv(tag=1)
        return msg.payload

    assert _drive(engine, main()) == "early"


def test_fifo_per_source_preserved(ep):
    engine, transport, endpoint = ep

    def main():
        for i in range(5):
            endpoint.send(0, 3, i)
        got = []
        for _ in range(5):
            msg = yield from endpoint.recv(tag=3)
            got.append(msg.payload)
        return got

    assert _drive(engine, main()) == [0, 1, 2, 3, 4]


def test_compute_advances_time(ep):
    engine, transport, endpoint = ep

    def main():
        yield from endpoint.compute(2.5)
        return engine.now

    assert _drive(engine, main()) == 2.5


def test_compute_zero_is_free(ep):
    engine, transport, endpoint = ep

    def main():
        yield from endpoint.compute(0.0)
        return engine.now
        yield  # pragma: no cover - make it a generator

    p = engine.process(main())
    engine.run()
    assert p.result == 0.0


def test_compute_negative_rejected(ep):
    engine, transport, endpoint = ep

    def main():
        yield from endpoint.compute(-1.0)

    p = engine.process(main())
    engine.run()
    assert isinstance(p.error, ValueError)


def test_sendrecv_roundtrip(ep):
    engine, transport, endpoint = ep

    def main():
        msg = yield from endpoint.sendrecv(0, 4, "ping", 0, 4)
        return msg.payload

    assert _drive(engine, main()) == "ping"


def test_finalize_notifies_transport(ep):
    engine, transport, endpoint = ep
    endpoint.finalize()
    assert transport.done
