"""Unit tests for traces, classification and statistics."""

import math

import pytest

from repro.analysis.classify import Outcome, classify_run, last_activity_time
from repro.analysis.stats import (coefficient_of_variation,
                                  confidence_interval, mean, stdev, summarize)
from repro.analysis.traces import Trace


# ---------------------------------------------------------------------------
# Trace
# ---------------------------------------------------------------------------

def test_trace_records_and_counters():
    tr = Trace()
    tr.record(1.0, "a", x=1)
    tr.record(2.0, "b")
    tr.record(3.0, "a", x=2)
    assert len(tr) == 3
    assert tr.count("a") == 2
    assert tr.last_t("a") == 3.0
    assert tr.first_t("a") == 1.0
    assert tr.last("a").x == 2
    assert [r.kind for r in tr.of_kind("a")] == ["a", "a"]


def test_trace_counters_without_keeping_records():
    tr = Trace(keep=False)
    for i in range(100):
        tr.record(float(i), "tick")
    assert len(tr) == 0
    assert tr.count("tick") == 100
    assert tr.last_t("tick") == 99.0


def test_trace_record_attribute_error():
    tr = Trace()
    tr.record(0.0, "k", present=1)
    rec = tr.records[0]
    assert rec.present == 1
    with pytest.raises(AttributeError):
        _ = rec.absent


def test_trace_listeners_fire_live():
    tr = Trace()
    seen = []
    tr.subscribe(lambda rec: seen.append(rec.kind))
    tr.record(0.0, "x")
    assert seen == ["x"]


def test_trace_between_and_dump():
    tr = Trace()
    for i in range(5):
        tr.record(float(i), "k", i=i)
    assert [r.i for r in tr.between(1.0, 3.0)] == [1, 2, 3]
    assert len(tr.dump(limit=2).splitlines()) == 2


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------

def _trace_with(records):
    tr = Trace()
    for t, kind in records:
        tr.record(t, kind)
    return tr


def test_classify_terminated():
    tr = _trace_with([(10.0, "progress"), (200.0, "app_done")])
    verdict = classify_run(tr, timeout=1500.0)
    assert verdict.outcome is Outcome.TERMINATED
    assert verdict.exec_time == 200.0
    assert verdict.terminated


def test_classify_buggy_frozen():
    # activity stops at t=60, timeout at 1500: frozen
    tr = _trace_with([(30.0, "ckpt_wave_complete"), (60.0, "restart_wave")])
    verdict = classify_run(tr, timeout=1500.0)
    assert verdict.outcome is Outcome.BUGGY
    assert verdict.buggy
    assert verdict.last_activity == 60.0


def test_classify_non_terminating_cycling():
    records = [(t, "restart_wave") for t in range(50, 1500, 50)]
    tr = _trace_with([(float(t), k) for t, k in records])
    verdict = classify_run(tr, timeout=1500.0)
    assert verdict.outcome is Outcome.NON_TERMINATING
    assert verdict.non_terminating


def test_classify_threshold_boundary():
    tr = _trace_with([(1400.0, "progress")])
    assert classify_run(tr, timeout=1500.0,
                        freeze_threshold=150.0).outcome is Outcome.NON_TERMINATING
    assert classify_run(tr, timeout=1500.0,
                        freeze_threshold=50.0).outcome is Outcome.BUGGY


def test_last_activity_ignores_unknown_kinds():
    tr = _trace_with([(100.0, "progress"), (900.0, "irrelevant_kind")])
    assert last_activity_time(tr) == 100.0


def test_empty_trace_is_buggy_at_timeout():
    verdict = classify_run(Trace(), timeout=1500.0)
    assert verdict.outcome is Outcome.BUGGY


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------

def test_mean_stdev_basic():
    xs = [1.0, 2.0, 3.0, 4.0]
    assert mean(xs) == 2.5
    assert stdev(xs) == pytest.approx(math.sqrt(5.0 / 3.0))


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        stdev([])


def test_stdev_single_sample_zero():
    assert stdev([5.0]) == 0.0


def test_confidence_interval():
    assert confidence_interval([1.0]) == 0.0
    xs = [10.0, 12.0, 14.0, 16.0]
    ci = confidence_interval(xs)
    assert ci == pytest.approx(1.96 * stdev(xs) / 2.0)


def test_summarize():
    s = summarize([])
    assert s["n"] == 0 and s["mean"] is None
    s = summarize([1.0, 3.0])
    assert s == {"n": 2, "mean": 2.0, "stdev": stdev([1.0, 3.0]),
                 "min": 1.0, "max": 3.0}


def test_coefficient_of_variation():
    assert coefficient_of_variation([5.0, 5.0]) == 0.0
    assert coefficient_of_variation([0.0, 0.0]) == 0.0
    assert coefficient_of_variation([1.0, 3.0]) > 0
