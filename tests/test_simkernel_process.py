"""Unit tests for simulated processes (coroutines)."""

import pytest

from repro.simkernel.engine import Engine
from repro.simkernel.events import Interrupt
from repro.simkernel import process as proc_mod


def test_process_runs_and_returns():
    eng = Engine(seed=0)

    def main():
        yield eng.timeout(1.0)
        yield eng.timeout(2.0)
        return "result"

    p = eng.process(main())
    eng.run()
    assert p.state == proc_mod.DONE
    assert p.result == "result"
    assert eng.now == 3.0


def test_process_requires_generator():
    eng = Engine(seed=0)
    with pytest.raises(TypeError):
        eng.process(lambda: None)


def test_waiting_on_a_process():
    eng = Engine(seed=0)

    def child():
        yield eng.timeout(5.0)
        return 42

    def parent():
        value = yield eng.process(child())
        return value * 2

    p = eng.process(parent())
    eng.run()
    assert p.result == 84


def test_process_crash_recorded_and_propagates():
    eng = Engine(seed=0)

    def bad():
        yield eng.timeout(1.0)
        raise RuntimeError("crashed")

    p = eng.process(bad())
    eng.run()
    assert p.state == proc_mod.FAILED
    assert isinstance(p.error, RuntimeError)
    assert p in eng.process_failures


def test_crash_propagates_to_waiter():
    eng = Engine(seed=0)

    def bad():
        yield eng.timeout(1.0)
        raise ValueError("inner")

    def parent():
        try:
            yield eng.process(bad())
        except ValueError:
            return "caught"
        return "missed"

    p = eng.process(parent())
    eng.run()
    assert p.result == "caught"


def test_yield_non_event_fails_process():
    eng = Engine(seed=0)

    def bad():
        yield 42

    p = eng.process(bad())
    eng.run()
    assert p.state == proc_mod.FAILED
    assert isinstance(p.error, TypeError)


def test_interrupt_delivers_cause():
    eng = Engine(seed=0)
    seen = []

    def main():
        try:
            yield eng.timeout(100.0)
        except Interrupt as intr:
            seen.append((eng.now, intr.cause))

    p = eng.process(main())
    eng.call_later(3.0, lambda: p.interrupt("wakeup"))
    eng.run()
    assert seen == [(3.0, "wakeup")]


def test_interrupt_dead_process_is_noop():
    eng = Engine(seed=0)

    def main():
        yield eng.timeout(1.0)

    p = eng.process(main())
    eng.run()
    p.interrupt("late")   # must not raise
    eng.run()
    assert p.state == proc_mod.DONE


def test_kill_stops_immediately():
    eng = Engine(seed=0)
    progress = []

    def main():
        for i in range(10):
            yield eng.timeout(1.0)
            progress.append(i)

    p = eng.process(main())
    eng.call_later(3.5, p.kill)
    eng.run()
    assert p.state == proc_mod.KILLED
    assert progress == [0, 1, 2]
    # the already-scheduled 4.0 wakeup drains harmlessly
    assert eng.now == 4.0


def test_kill_does_not_run_finally_yields():
    """SIGKILL semantics: cleanup code needing simulation time never runs."""
    eng = Engine(seed=0)
    cleaned = []

    def main():
        try:
            yield eng.timeout(100.0)
        finally:
            cleaned.append("sync-cleanup")

    p = eng.process(main())
    eng.call_later(1.0, p.kill)
    eng.run()
    assert p.state == proc_mod.KILLED
    # synchronous finally does run (GeneratorExit), but the process is dead
    assert cleaned == ["sync-cleanup"]


def test_waiter_of_killed_process_gets_none():
    eng = Engine(seed=0)

    def child():
        yield eng.timeout(100.0)

    def parent(c):
        value = yield c
        return ("done", value)

    c = eng.process(child())
    p = eng.process(parent(c))
    eng.call_later(2.0, c.kill)
    eng.run()
    assert p.result == ("done", None)


def test_suspend_stashes_wakeups_until_resume():
    eng = Engine(seed=0)
    ticks = []

    def main():
        while True:
            yield eng.timeout(1.0)
            ticks.append(eng.now)

    p = eng.process(main())
    eng.call_later(2.5, p.suspend)
    eng.call_later(10.0, p.resume)
    eng.run(until=12.0)
    # ticks at 1,2 then the 3.0 wakeup is stashed until 10.0;
    # after resume the loop continues from there
    assert ticks[0:2] == [1.0, 2.0]
    assert ticks[2] == 10.0
    assert ticks[3] == 11.0


def test_suspend_before_first_step():
    eng = Engine(seed=0)
    ran = []

    def main():
        ran.append(eng.now)
        yield eng.timeout(1.0)

    p = eng.process(main())
    p.suspend()                 # same instant as creation
    eng.call_later(5.0, p.resume)
    eng.run()
    assert ran == [5.0]


def test_interrupt_while_suspended_delivered_on_resume():
    eng = Engine(seed=0)
    seen = []

    def main():
        try:
            yield eng.timeout(100.0)
        except Interrupt as intr:
            seen.append((eng.now, intr.cause))

    p = eng.process(main())
    eng.call_later(1.0, p.suspend)
    eng.call_later(2.0, lambda: p.interrupt("x"))
    eng.call_later(5.0, p.resume)
    eng.run()
    assert seen == [(5.0, "x")]


def test_pids_are_unique():
    eng = Engine(seed=0)

    def main():
        yield eng.timeout(1.0)

    pids = {eng.process(main()).pid for _ in range(50)}
    assert len(pids) == 50
