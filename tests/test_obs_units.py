"""Unit tests for the observability layer (:mod:`repro.obs`):
span lifecycle, the metrics registry, rollups, the phase table and the
Chrome-trace exporter — all on synthetic documents, no simulation."""

import json

from repro.analysis.traces import Trace
from repro.obs import (FIELDS, KIND, LANE, NULL_SPAN, T0, T1,
                       MetricsRegistry, Obs, chrome_trace_doc,
                       chrome_trace_json, epoch_phase_table,
                       render_phase_table, span_rollups)
from repro.simkernel.engine import Engine


class FakeEngine:
    def __init__(self):
        self.now = 0.0


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

def test_metrics_counters_gauges_histograms_roundtrip():
    reg = MetricsRegistry()
    assert not reg
    reg.inc("disp.detect.closure")
    reg.inc("disp.detect.closure", 2)
    reg.gauge("cm.0.logged", 17)
    reg.observe("disk.wait_ms", 3.7)
    reg.observe("disk.wait_ms", 900)
    assert reg
    doc = reg.to_doc()
    back = MetricsRegistry.from_doc(doc)
    assert back.to_doc() == doc
    assert back.counters["disp.detect.closure"] == 3
    assert back.gauges["cm.0.logged"] == 17
    summary = back.histogram_summary("disk.wait_ms")
    assert summary["count"] == 2


def test_metrics_histogram_buckets_are_log_spaced():
    reg = MetricsRegistry()
    for v in (1, 2, 3, 1000):
        reg.observe("h", v)
    doc = reg.to_doc()
    buckets = doc["histograms"]["h"]
    # 1 and every value <= the first bucket edge share a bucket; 1000
    # lands far away — at least two distinct buckets, not one per value
    assert 2 <= len(buckets) < 4
    assert json.dumps(doc)  # JSON-safe


# ---------------------------------------------------------------------------
# span lifecycle
# ---------------------------------------------------------------------------

def test_span_open_close_is_idempotent():
    eng = FakeEngine()
    obs = Obs(eng)
    span = obs.open("detect", "m1", 1.0, {"node": "m1"})
    eng.now = 2.5
    span.close(where="running")
    span.close(where="ignored")     # second close is a no-op
    row = span.to_row()
    assert row[T0] == 1.0 and row[T1] == 2.5
    assert row[KIND] == "detect" and row[LANE] == "m1"
    assert row[FIELDS] == {"node": "m1", "where": "running"}


def test_end_oldest_is_fifo_and_match_filters():
    eng = FakeEngine()
    obs = Obs(eng)
    a = obs.open("detect", "m1", 1.0, {"node": "m1"})
    b = obs.open("detect", "m2", 2.0, {"node": "m2"})
    # match skips the older span when its fields disagree
    closed = obs.end_oldest("detect", 5.0, match={"node": "m2"})
    assert closed is b and b.closed and not a.closed
    # no match: plain FIFO
    closed = obs.end_oldest("detect", 6.0)
    assert closed is a
    # nothing open -> None
    assert obs.end_oldest("detect", 7.0) is None


def test_close_all_and_finalize_truncation():
    eng = FakeEngine()
    obs = Obs(eng)
    obs.open("netsplit", "net", 1.0, {})
    obs.open("netsplit", "net", 2.0, {})
    assert obs.close_all("netsplit", 9.0) == 2
    left_open = obs.open("transfer", "m1", 3.0, {})
    obs.finalize(100.0)
    obs.finalize(200.0)             # idempotent
    assert left_open.t1 == 100.0
    assert left_open.fields["_truncated"] is True
    doc = obs.to_doc()
    assert doc["truncated_spans"] == 1 and doc["dropped_spans"] == 0


def test_span_cap_drops_deterministically():
    eng = FakeEngine()
    obs = Obs(eng, max_spans=2)
    s1 = obs.open("a", "m1", 0.0, {})
    s2 = obs.open("a", "m1", 1.0, {})
    s3 = obs.open("a", "m1", 2.0, {})
    assert s3 is NULL_SPAN and s3.closed
    s3.close()                      # harmless no-op
    assert obs.dropped_spans == 1
    assert [s1, s2] == obs.spans


def test_trace_listener_closes_catchup_on_progress():
    eng = FakeEngine()
    obs = Obs(eng)
    trace = Trace()
    trace.subscribe(obs.on_trace)
    span = obs.open("catchup", "svc0", 10.0, {"epoch": 1})
    trace.record(12.5, "progress", rank=0)
    assert span.closed and span.t1 == 12.5
    cut = obs.open("catchup", "svc0", 20.0, {"epoch": 2})
    trace.record(21.0, "failure_detected", rank=1)
    assert cut.closed and cut.fields.get("cut_short") is True


def test_engine_span_without_recorder_is_free():
    engine = Engine(seed=1)
    assert engine.obs is None
    span = engine.span("detect", lane="m1", node="m1")
    assert span is engine.span("anything")      # the one shared handle
    assert span.close() is span


def test_span_rollups():
    doc = {"spans": [
        [0.0, 2.0, "relaunch", "svc0", {}],
        [5.0, 6.5, "relaunch", "svc0", {}],
        [7.0, 9.0, "relaunch", "svc0", {"_truncated": True}],
        [0.0, 0.0, "commit", "svc1", None],
    ]}
    roll = span_rollups(doc)
    assert roll["relaunch"]["count"] == 3
    assert roll["relaunch"]["total"] == 3.5
    assert roll["relaunch"]["max"] == 2.0
    assert roll["relaunch"]["truncated"] == 1
    assert roll["commit"]["count"] == 1
    assert span_rollups(None) == {}


# ---------------------------------------------------------------------------
# Chrome-trace exporter
# ---------------------------------------------------------------------------

def _sample_doc():
    return {
        "version": 2,
        "spans": [
            [1.0, 2.0, "transfer", "m10", {"bytes": 7}],
            [0.5, 3.0, "relaunch", "m2", {}],
            [4.0, 4.0, "commit", "svc1", {}],
        ],
        "dropped_spans": 0,
        "truncated_spans": 0,
        "metrics": {"counters": {"disp.restarts": 1}, "gauges": {},
                    "histograms": {}},
        "exec": {},
    }


def test_chrome_trace_lane_order_is_natural():
    doc = chrome_trace_doc(_sample_doc())
    names = [e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"]
    assert names == ["m2", "m10", "svc1"]       # not lexicographic


def test_chrome_trace_events_use_integer_microseconds():
    doc = chrome_trace_doc(_sample_doc())
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert [(e["ts"], e["dur"]) for e in xs] == \
        [(1000000, 1000000), (500000, 2500000), (4000000, 0)]
    assert all(isinstance(e["ts"], int) and isinstance(e["dur"], int)
               for e in xs)
    assert doc["otherData"]["counters"] == {"disp.restarts": 1}


def test_chrome_trace_partition_grouping():
    doc = chrome_trace_doc(_sample_doc(),
                           partitions=[["m2"], ["m10"]])
    pids = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"}
    assert pids["m2"] == 1 and pids["m10"] == 2
    assert pids["svc1"] == 3                     # the "shared" process
    pnames = {e["pid"]: e["args"]["name"] for e in doc["traceEvents"]
              if e["ph"] == "M" and e["name"] == "process_name"}
    assert pnames == {1: "partition 0", 2: "partition 1", 3: "shared"}


def test_chrome_trace_json_is_byte_stable():
    a = chrome_trace_json(_sample_doc())
    b = chrome_trace_json(json.loads(json.dumps(_sample_doc())))
    assert a == b
    assert a.endswith("\n")
    parsed = json.loads(a)
    assert parsed["displayTimeUnit"] == "ms"


# ---------------------------------------------------------------------------
# phase table
# ---------------------------------------------------------------------------

def _recovery_doc():
    # fault halts at t=10; dispatcher confirms at 10.5; daemons are
    # re-registered at 12; restore runs 12..13; replay 13..13.4;
    # catch-up ends at the first progress, 15
    return {"spans": [
        [10.0, 10.5, "detect", "m1", {"node": "m1"}],
        [10.5, 12.0, "relaunch", "svc0", {"epoch": 1, "mode": "full"}],
        [12.0, 13.0, "restore", "m1", {"rank": 0, "epoch": 1}],
        [13.0, 13.4, "replay", "m1", {"rank": 0}],
        [12.0, 15.0, "catchup", "svc0", {"epoch": 1}],
    ]}


def test_phase_table_tiles_exactly():
    rows = epoch_phase_table(_recovery_doc())
    assert len(rows) == 1
    row = rows[0]
    assert row["epoch"] == 1
    assert row["t_fault"] == 10.0
    assert row["detect"] == 0.5
    assert row["relaunch"] == 1.5
    assert row["restore"] == 1.0
    assert abs(row["replay"] - 0.4) < 1e-9
    # the four phases tile the recovery interval by construction
    assert abs(row["detect"] + row["relaunch"] + row["restore"]
               + row["replay"] - row["recovery"]) < 1e-12
    assert row["catchup"] == 3.0
    assert not row["suspected"] and not row["truncated"]


def test_phase_table_empty_and_render():
    assert epoch_phase_table(None) == []
    assert epoch_phase_table({"spans": []}) == []
    assert "no recovery spans" in render_phase_table(None)
    text = render_phase_table(_recovery_doc())
    assert "epoch" in text and "recovery" in text and "0.500" in text


def test_phase_table_marks_suspected_and_truncated():
    doc = {"spans": [
        [10.0, 10.5, "detect", "m1", {"node": "m1", "suspected": True}],
        [10.5, 600.0, "relaunch", "svc0",
         {"epoch": 2, "mode": "full", "_truncated": True}],
    ]}
    rows = epoch_phase_table(doc)
    assert rows[0]["suspected"] and rows[0]["truncated"]
    assert "(suspected, truncated)" in render_phase_table(doc)
