"""Unit tests for the workloads (topology, calibration, verification)."""

import pytest

from repro.workloads.masterworker import MasterWorkerWorkload, _task_result
from repro.workloads.nas_bt import BTWorkload, bt_expected_checksum
from repro.workloads.ring import RingWorkload


# ---------------------------------------------------------------------------
# BT
# ---------------------------------------------------------------------------

def test_bt_requires_square_process_count():
    with pytest.raises(ValueError):
        BTWorkload(n_procs=7)
    assert BTWorkload(n_procs=49).grid == 7


def test_bt_strong_scaling_compute():
    small = BTWorkload(n_procs=25)
    big = BTWorkload(n_procs=64)
    assert small.t_iter * 25 == pytest.approx(big.t_iter * 64)
    assert small.t_iter > big.t_iter


def test_bt_message_size_shrinks_with_scale():
    assert BTWorkload(n_procs=25).msg_size > BTWorkload(n_procs=64).msg_size


def test_bt_neighbors_are_paired_per_phase():
    """Each phase is a permutation: every rank sends to exactly one
    rank and receives from exactly one rank, and the send/recv
    relations are inverses — the checksum conservation argument."""
    wl = BTWorkload(n_procs=9)
    for phase in range(6):
        send_to = {}
        recv_from = {}
        for rank in range(9):
            s, r = wl._neighbors(rank, phase)
            send_to[rank] = s
            recv_from[rank] = r
        assert sorted(send_to.values()) == list(range(9))
        assert sorted(recv_from.values()) == list(range(9))
        for rank in range(9):
            assert recv_from[send_to[rank]] == rank


def test_bt_neighbors_single_rank_self_loops():
    wl = BTWorkload(n_procs=1)
    for phase in range(6):
        assert wl._neighbors(0, phase) == (0, 0)


def test_bt_bad_phase_rejected():
    with pytest.raises(ValueError):
        BTWorkload(n_procs=4)._neighbors(0, 6)


def test_bt_expected_checksum_closed_form():
    # brute force for a tiny case: 6 phases, each rank's contribution
    # received once per phase
    n, iters = 4, 3
    brute = 6 * sum((it + 1) * (r + 1) for it in range(iters)
                    for r in range(n))
    assert bt_expected_checksum(n, iters) == brute


# ---------------------------------------------------------------------------
# ring
# ---------------------------------------------------------------------------

def test_ring_expected_total():
    assert RingWorkload(n_procs=5, rounds=3).expected_total() == 15


# ---------------------------------------------------------------------------
# master/worker
# ---------------------------------------------------------------------------

def test_masterworker_needs_two_ranks():
    with pytest.raises(ValueError):
        MasterWorkerWorkload(n_procs=1)


def test_masterworker_expected_total():
    wl = MasterWorkerWorkload(n_procs=4, n_tasks=5)
    assert wl.expected_total() == sum(t * t + 1 for t in range(5))
    assert _task_result(3) == 10


def test_masterworker_more_workers_than_tasks_runs():
    from repro.mpichv.config import VclConfig
    from repro.mpichv.runtime import VclRuntime
    wl = MasterWorkerWorkload(n_procs=6, n_tasks=2, work_per_task=0.5)
    config = VclConfig(n_procs=6, n_machines=8, footprint=4e7)
    rt = VclRuntime(config, wl.make_factory(), seed=0)
    res = rt.run(timeout=300.0)
    assert res.outcome.value == "terminated"
    assert not getattr(rt.engine, "process_failures", [])
