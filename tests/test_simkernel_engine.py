"""Unit tests for the discrete-event engine."""

import pytest

from repro.simkernel.engine import Engine, SimTimeoutError


def test_clock_starts_at_zero():
    eng = Engine(seed=0)
    assert eng.now == 0.0
    assert eng.peek() == float("inf")


def test_timeout_advances_clock():
    eng = Engine(seed=0)
    fired = []
    eng.call_later(2.5, lambda: fired.append(eng.now))
    eng.run()
    assert fired == [2.5]
    assert eng.now == 2.5


def test_call_at_schedules_absolute():
    eng = Engine(seed=0)
    fired = []
    eng.call_later(1.0, lambda: eng.call_at(5.0, lambda: fired.append(eng.now)))
    eng.run()
    assert fired == [5.0]


def test_call_at_past_raises():
    eng = Engine(seed=0)
    eng.call_later(3.0, lambda: None)
    eng.run()
    with pytest.raises(ValueError):
        eng.call_at(1.0, lambda: None)


def test_negative_delay_rejected():
    eng = Engine(seed=0)
    with pytest.raises(ValueError):
        eng.call_later(-1.0, lambda: None)


def test_same_time_events_fire_in_insertion_order():
    eng = Engine(seed=0)
    order = []
    for i in range(10):
        eng.call_later(1.0, lambda i=i: order.append(i))
    eng.run()
    assert order == list(range(10))


def test_run_until_pauses_cleanly():
    eng = Engine(seed=0)
    fired = []
    eng.call_later(10.0, lambda: fired.append("late"))
    eng.run(until=5.0)
    assert eng.now == 5.0
    assert fired == []
    eng.run()
    assert fired == ["late"]
    assert eng.now == 10.0


def test_run_until_raise_on_timeout():
    eng = Engine(seed=0)
    eng.call_later(10.0, lambda: None)
    with pytest.raises(SimTimeoutError):
        eng.run(until=5.0, raise_on_timeout=True)


def test_run_until_with_empty_heap_advances_clock():
    eng = Engine(seed=0)
    eng.run(until=42.0)
    assert eng.now == 42.0


def test_stop_interrupts_run():
    eng = Engine(seed=0)
    fired = []
    eng.call_later(1.0, lambda: (fired.append(1), eng.stop()))
    eng.call_later(2.0, lambda: fired.append(2))
    eng.run()
    assert fired == [1]
    eng.run()
    assert fired == [1, 2]


def test_event_value_and_flags():
    eng = Engine(seed=0)
    ev = eng.event(name="x")
    assert not ev.triggered and not ev.processed
    ev.succeed("payload")
    assert ev.triggered
    with pytest.raises(RuntimeError):
        ev.succeed("again")
    eng.run()
    assert ev.processed
    assert ev.value == "payload"


def test_event_fail_propagates():
    eng = Engine(seed=0)
    ev = eng.event()
    ev.fail(ValueError("boom"))
    eng.run()
    assert not ev.ok
    with pytest.raises(ValueError):
        _ = ev.value


def test_event_fail_requires_exception():
    eng = Engine(seed=0)
    ev = eng.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_untriggered_value_raises():
    eng = Engine(seed=0)
    ev = eng.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_late_callback_subscription_still_fires():
    eng = Engine(seed=0)
    ev = eng.event()
    ev.succeed(7)
    eng.run()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    eng.run()
    assert got == [7]


def test_seeded_determinism():
    def history(seed):
        eng = Engine(seed=seed)
        out = []

        def proc():
            for _ in range(20):
                yield eng.timeout(eng.random.uniform(0, 1))
                out.append(round(eng.now, 9))
        eng.process(proc())
        eng.run()
        return out

    assert history(99) == history(99)
    assert history(99) != history(100)


def test_max_events_bound():
    eng = Engine(seed=0)
    for i in range(100):
        eng.call_later(float(i), lambda: None)
    eng.run(max_events=10)
    assert eng.events_processed == 10


def test_engine_log_without_trace_is_noop():
    eng = Engine(seed=0)
    eng.log("whatever", a=1)  # must not raise
