"""Tests for coverage-guided exploration: signatures, mutation,
corpus persistence, and the guided campaign loop."""

import json
import random

from repro.analysis import coverage
from repro.analysis.coverage import Signature
from repro.experiments.harness import TrialSetup
from repro.experiments.runner import TrialRunner
from repro.explore import generators
from repro.explore.campaign import (ExploreConfig, derive_seed,
                                    golden_setup, run_guided,
                                    scenario_setup, seeded_first_failure)
from repro.explore.corpus import Corpus, CorpusEntry, default_corpus_dir
from repro.explore.generators import (GeneratorContext, Heal, TimedKill,
                                      TimedPartition, plan_from_doc,
                                      plan_to_doc)
from repro.explore.mutate import MUTATORS, mutate, valid_plan
from repro.explore.oracles import coverage_labels, run_oracles
from repro.fail.build import render
from repro.fail.lang.parser import parse_fail

CTX = GeneratorContext(n_machines=7, n_busy=4)


# ---------------------------------------------------------------------------
# signature algebra
# ---------------------------------------------------------------------------

def test_signature_from_labels_is_order_insensitive_and_stable():
    a = Signature.from_labels(["disp.rx.Register", "trace.kill.x2"])
    b = Signature.from_labels(["trace.kill.x2", "disp.rx.Register"])
    assert a == b and hash(a) == hash(b)
    assert a.popcount == 2
    assert Signature.from_hex(a.hex) == a


def test_signature_set_algebra():
    a = Signature.from_labels(["x", "y"])
    b = Signature.from_labels(["y", "z"])
    assert (a | b).popcount == 3
    assert (a & b) == Signature.from_labels(["y"])
    assert a.minus(b) == Signature.from_labels(["x"])
    assert a.new_bits(b) == 1
    assert (a | b).covers(a) and not a.covers(b)
    assert not Signature()
    assert Signature.from_hex("") == Signature()


def test_hit_buckets_are_logarithmic():
    assert [coverage.hit_bucket(n) for n in (1, 2, 3, 4, 7, 8, 100)] == \
        [1, 2, 2, 4, 4, 8, 64]


def test_oracle_coverage_labels_expose_branches():
    result = TrialSetup(n_procs=4, n_machines=4, workload="ring", niters=4,
                        total_compute=40.0).run_one(1)
    reports = run_oracles(result, result)
    labels = coverage_labels(reports, result)
    assert "oracle.no_deadlock.ok" in labels
    assert "oracle.false_suspicion.no_partitions" in labels


# ---------------------------------------------------------------------------
# signature determinism on real trials
# ---------------------------------------------------------------------------

def _one_setup(cfg, protocol="vcl", family="random_schedule"):
    scenario = generators.generate(family, 0, cfg.seed,
                                   cfg.generator_context())
    return (scenario_setup(cfg, scenario, "ring", protocol),
            derive_seed(cfg.seed, family, 0, protocol, "ring"))


def test_same_seed_gives_identical_coverage_bitmap():
    cfg = ExploreConfig(seed=3)
    setup, seed = _one_setup(cfg)
    first = setup.run_one(seed)
    second = setup.run_one(seed)
    assert first.coverage and first.coverage == second.coverage
    # a behaviourally different run (no faults at all) covers less
    golden = golden_setup(cfg, "ring", "vcl").run_one(seed)
    assert golden.coverage != first.coverage


def test_parallel_and_serial_runs_carry_identical_signatures():
    cfg = ExploreConfig(seed=3)
    jobs = [_one_setup(cfg), _one_setup(cfg, protocol="v1"),
            (golden_setup(cfg, "ring", "vcl"),
             derive_seed(cfg.seed, "golden", "vcl", "ring"))]
    serial = TrialRunner(workers=1).run_jobs(jobs)
    pooled = TrialRunner(workers=2).run_jobs(jobs)
    assert [r.coverage for r in serial] == [r.coverage for r in pooled]
    assert all(r.coverage for r in serial)


# ---------------------------------------------------------------------------
# mutation
# ---------------------------------------------------------------------------

def _sample_plans():
    plans = []
    for family in sorted(generators.FAMILIES):
        for index in range(4):
            plans.append(generators.generate(family, index, 5, CTX).plan)
    return plans


def test_mutants_are_valid_and_render_round_trips():
    rng = random.Random("mutate-test")
    donors = _sample_plans()
    for plan in donors:
        for _ in range(8):
            mutant = mutate(plan, rng, CTX, donors=donors)
            assert valid_plan(mutant, CTX), mutant
            source = generators.render_plan(mutant)
            # canonical-form contract: the rendered FAIL text parses,
            # and re-rendering the parse is a fixed point
            assert render(parse_fail(source)) == source


def test_every_operator_applies_to_some_plan():
    rng = random.Random("ops-test")
    donors = _sample_plans()
    applied = set()
    for name, op in MUTATORS.items():
        for plan in donors:
            out = (op(plan, rng, CTX, donors) if name == "splice"
                   else op(plan, rng, CTX))
            if out is not None and out != plan:
                applied.add(name)
                break
    assert applied == set(MUTATORS)


def test_valid_plan_rejects_broken_shapes():
    from repro.explore.generators import KillReporter, RekillRace
    assert not valid_plan((), CTX)
    # reactive step with no kill to react to
    assert not valid_plan((RekillRace(target=0),), CTX)
    assert not valid_plan((KillReporter(),), CTX)
    # heal with no partition
    assert not valid_plan((Heal(after=0),), CTX)
    # out-of-range target
    assert not valid_plan((TimedKill(at=10, target=99),), CTX)
    assert valid_plan((TimedKill(at=10, target=0),
                       RekillRace(target=1)), CTX)


def test_plan_doc_round_trip():
    for plan in _sample_plans():
        assert plan_from_doc(plan_to_doc(plan)) == plan
    doc = plan_to_doc((TimedPartition(at=5, targets=(1, 3),
                                      services=("svc2",)), Heal(after=0)))
    assert plan_from_doc(json.loads(json.dumps(doc))) == (
        TimedPartition(at=5, targets=(1, 3), services=("svc2",)),
        Heal(after=0))


# ---------------------------------------------------------------------------
# corpus
# ---------------------------------------------------------------------------

def _entry(plan, labels, **kw):
    kw.setdefault("family", "gtest")
    kw.setdefault("protocol", "v1")
    kw.setdefault("workload", "ring")
    kw.setdefault("trial_seed", 1)
    return CorpusEntry(seq=0, plan=plan,
                       signature=Signature.from_labels(labels), **kw)


def test_corpus_admits_novelty_and_dedups_by_signature(tmp_path):
    corpus = Corpus(str(tmp_path / "corpus"))
    plan = (TimedKill(at=10, target=0),)
    assert corpus.admit(_entry(plan, ["a", "b"]))
    assert not corpus.admit(_entry(plan, ["a", "b"]))       # same bitmap
    assert corpus.admit(_entry(plan, ["a", "c"]))           # new bit
    assert len(corpus) == 2
    assert corpus.accumulated.popcount == 3
    assert corpus.novelty(Signature.from_labels(["a"])) == 0
    assert corpus.novelty(Signature.from_labels(["z"])) == 1


def test_corpus_persists_and_replays_failures_first(tmp_path):
    root = str(tmp_path / "corpus")
    corpus = Corpus(root)
    ok_plan = (TimedKill(at=10, target=0),)
    bad_plan = (TimedKill(at=20, target=1),)
    corpus.admit(_entry(ok_plan, ["a"]))
    corpus.admit(_entry(bad_plan, ["b"], failed=["progress"]))
    reloaded = Corpus(root)
    assert len(reloaded) == 2
    assert reloaded.accumulated == corpus.accumulated
    order = reloaded.entries()
    assert order[0].plan == bad_plan and order[0].failed == ["progress"]
    assert order[1].plan == ok_plan


# ---------------------------------------------------------------------------
# the guided loop (acceptance: beats the seeded baseline on the
# planted V1 broken-replay bug, and run 2 beats run 1 from the corpus)
# ---------------------------------------------------------------------------

def _guided_cfg():
    # the partition_storm space: every plain kill trips the planted bug
    # immediately, so the seeded baseline's search cost is real — an
    # unexcused failure needs heal-before-detection cuts plus a kill,
    # which the excuse-region labels steer the mutation loop toward
    return ExploreConfig(protocols=("v1",), workloads=("ring",),
                         families=("partition_storm",), budget=30, seed=7,
                         config_overrides={"cm_replay": False},
                         max_shrinks=0)


def test_guided_beats_seeded_baseline_and_corpus_carries_over(tmp_path):
    cfg = _guided_cfg()
    cache = str(tmp_path / "cache")
    corpus_dir = default_corpus_dir(cache, str(tmp_path / "out"))

    first = run_guided(cfg, runner=TrialRunner(cache_dir=cache),
                       out_dir=str(tmp_path / "out"),
                       corpus_dir=corpus_dir)
    g1 = first.guided
    assert g1.corpus_size_end > 0 and g1.edges_end > g1.edges_start
    assert g1.first_failure_trial is not None
    assert g1.baseline_first_failure_trial is not None
    # the guided loop out-searches the seeded stream on the same budget
    assert g1.first_failure_trial < g1.baseline_first_failure_trial
    failing = [v for v in first.rows if v.failed]
    assert failing and all("progress" in v.failed or v.failed
                           for v in failing)

    second = run_guided(cfg, runner=TrialRunner(cache_dir=cache),
                        out_dir=str(tmp_path / "out"),
                        corpus_dir=corpus_dir)
    g2 = second.guided
    # corpus replay surfaces the crasher before any fresh searching
    assert g2.replayed > 0
    assert g2.first_failure_trial < g1.first_failure_trial
    # stats land in the benchmark document
    doc = second.bench_json()
    assert doc["guided"]["first_failure_trial"] == g2.first_failure_trial
    assert (doc["guided"]["baseline_first_failure_trial"]
            == g2.baseline_first_failure_trial)
    assert doc["guided"]["edges_end"] >= doc["guided"]["edges_start"]


def test_seeded_baseline_walks_canonical_order(tmp_path):
    cfg = _guided_cfg()
    runner = TrialRunner(cache_dir=str(tmp_path / "cache"))
    goldens = {("v1", "ring"): golden_setup(cfg, "ring", "v1").run_one(
        derive_seed(cfg.seed, "golden", "v1", "ring"))}
    n = seeded_first_failure(cfg, runner, goldens, cap=cfg.budget)
    assert n is not None and 1 <= n <= cfg.budget
    # a rerun against the warm cache executes nothing new
    before = runner.stats.executed
    assert seeded_first_failure(cfg, runner, goldens, cap=cfg.budget) == n
    assert runner.stats.executed == before
