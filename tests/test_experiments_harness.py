"""Unit tests for the experiment harness and drivers (quick scales)."""

import pytest

from repro.analysis.classify import Outcome
from repro.experiments import table1_tools
from repro.experiments.fig5_frequency import setup_for_period
from repro.experiments.fig7_simultaneous import setup_for_batch
from repro.experiments.harness import (ExperimentResult, ExperimentRow,
                                       run_trials)
from repro.mpichv.runtime import RunResult

QUICK = dict(niters=10, total_compute=180.0, footprint=1e8)


def _fake_result(outcome, exec_time=None):
    from repro.analysis.classify import RunVerdict
    from repro.analysis.traces import Trace
    verdict = RunVerdict(outcome=outcome, exec_time=exec_time,
                         last_activity=0.0, reason="")
    return RunResult(verdict=verdict, trace=Trace(), sim_time=0.0,
                     restarts=0, bug_events=0, failures_detected=0,
                     waves_committed=0, events_processed=0)


def test_row_percentages_and_stats():
    row = ExperimentRow(label="x", results=[
        _fake_result(Outcome.TERMINATED, 100.0),
        _fake_result(Outcome.TERMINATED, 140.0),
        _fake_result(Outcome.NON_TERMINATING),
        _fake_result(Outcome.BUGGY),
    ])
    assert row.n == 4
    assert row.pct_terminated == 25.0 * 2
    assert row.pct_non_terminating == 25.0
    assert row.pct_buggy == 25.0
    assert row.mean_exec_time == 120.0
    assert row.stdev_exec_time == pytest.approx(28.2842712, rel=1e-6)
    assert row.ci_exec_time > 0


def test_row_without_finishers():
    row = ExperimentRow(label="x", results=[_fake_result(Outcome.BUGGY)])
    assert row.mean_exec_time is None
    assert row.stdev_exec_time is None
    assert row.ci_exec_time is None


def test_empty_row_percentages_are_zero():
    """Regression: an empty row used to raise ZeroDivisionError."""
    row = ExperimentRow(label="empty", results=[])
    assert row.n == 0
    assert row.pct_terminated == 0.0
    assert row.pct_non_terminating == 0.0
    assert row.pct_buggy == 0.0
    assert row.total_faults == 0
    # and it renders instead of crashing the whole table
    text = ExperimentResult(name="d", rows=[row]).render()
    assert "empty" in text


def test_result_render_and_lookup():
    result = ExperimentResult(name="demo", rows=[
        ExperimentRow(label="a", results=[_fake_result(Outcome.TERMINATED, 10.0)]),
        ExperimentRow(label="b", results=[_fake_result(Outcome.BUGGY)]),
    ])
    text = result.render()
    assert "demo" in text and "a" in text and "(none finished)" in text
    assert result.row("a").n == 1
    with pytest.raises(KeyError):
        result.row("missing")


def test_trial_setup_builds_runtime_and_scenario():
    setup = setup_for_period(50, n_procs=4, n_machines=6, **QUICK)
    runtime, deployment = setup.build(seed=1)
    assert runtime.config.n_procs == 4
    assert deployment is not None
    assert "P1" in deployment.daemons
    assert len(deployment.group("G1")) == 6
    # parameters bound: N defaults to machines-1
    assert deployment.daemon("P1").machine.params["N"] == 5


def test_trial_setup_no_scenario_baseline():
    setup = setup_for_period(None, n_procs=4, n_machines=6, **QUICK)
    runtime, deployment = setup.build(seed=1)
    assert deployment is None


def test_setup_for_batch_binds_x():
    setup = setup_for_batch(3, n_procs=4, n_machines=6, **QUICK)
    _, deployment = setup.build(seed=1)
    assert deployment.daemon("P1").machine.vars["nb_crash"] == 3


def test_run_trials_deterministic_seeds():
    def setup_for(_cfg):
        return setup_for_period(None, n_procs=4, n_machines=6, **QUICK)

    first = run_trials(setup_for, configs=[0], labels=["l"], reps=2,
                       name="t", base_seed=42)
    second = run_trials(setup_for, configs=[0], labels=["l"], reps=2,
                        name="t", base_seed=42)
    assert ([r.exec_time for r in first.rows[0].results]
            == [r.exec_time for r in second.rows[0].results])


def test_run_trials_quick_fault_injection():
    result = run_trials(
        lambda p: setup_for_period(p, n_procs=4, n_machines=6, **QUICK),
        configs=[None, 35],
        labels=["no faults", "every 35 sec"],
        reps=2, name="mini fig5", base_seed=7)
    nofault = result.row("no faults")
    faulty = result.row("every 35 sec")
    assert nofault.pct_terminated == 100.0
    assert faulty.pct_terminated == 100.0
    assert faulty.mean_exec_time > nofault.mean_exec_time


def test_table1_render_contains_all_tools():
    text = table1_tools.render()
    for tool in ("NFTAPE", "LOKI", "FAIL-FCI"):
        assert tool in text
    assert len(table1_tools.build_table()) == 8   # header + 7 criteria
