"""Tests for the programmatic scenario-construction API
(:mod:`repro.fail.build`) and its pretty-printer round-trip guarantee —
the property that lets generators treat rendered source as canonical.
"""

import pytest

from repro.explore import generators
from repro.explore.generators import (KillReporter, RekillRace, TimedKill,
                                      render_plan)
from repro.fail import build as fb
from repro.fail.compile import compile_scenario
from repro.fail.lang.errors import FailSemanticError
from repro.fail.lang.parser import parse_fail


def toy_program():
    return fb.program(
        fb.daemon(
            "ADV",
            fb.node(
                1,
                fb.when(fb.TIMER, fb.crash(fb.group("G1", "ran")),
                        fb.goto(2)),
                always=[fb.always_int("ran", fb.rand(0, "N"))],
                timers=[fb.timer("X")],
            ),
            fb.node(
                2,
                fb.when(fb.on_msg("ok"), fb.goto(1)),
                fb.when(fb.on_msg("no"), fb.crash(fb.SENDER), fb.goto(2),
                        guard=fb.expr("N")),
            ),
            variables=[fb.int_var("count", 0)],
        ),
        deploy=[fb.deploy_computer("P1", "ADV"),
                fb.deploy_group("G1", 4, "ADV")],
    )


def test_render_round_trips_to_equal_ast():
    prog = toy_program()
    source = fb.render(prog, params=("X", "N"))
    assert parse_fail(source) == prog


def test_render_rejects_semantic_errors_at_generation_time():
    bad = fb.program(fb.daemon(
        "D", fb.node(1, fb.when(fb.ONLOAD, fb.goto(99)))))
    with pytest.raises(FailSemanticError):
        fb.render(bad)


def test_render_rejects_undeclared_timer_trigger():
    bad = fb.program(fb.daemon(
        "D", fb.node(1, fb.when(fb.TIMER, fb.goto(1)))))
    with pytest.raises(FailSemanticError):
        fb.render(bad)


def test_expr_coercion():
    assert fb.expr(3).value == 3
    assert fb.expr("x").name == "x"
    with pytest.raises(TypeError):
        fb.expr(True)


def test_every_generated_family_round_trips():
    """parse(render(plan)) == the program the generator built — for
    every family, several seeds."""
    ctx = generators.GeneratorContext(n_machines=8, n_busy=4)
    for family in generators.FAMILIES:
        for seed in (0, 1, 7):
            scenario = generators.generate(family, 0, seed, ctx)
            prog = parse_fail(scenario.source)
            # canonical: re-printing the parse reproduces the text
            assert fb.render(prog) == scenario.source
            # and it passes the full compile pipeline
            compile_scenario(scenario.source)


def test_rendered_plan_is_compilable_for_every_step_kind():
    plan = (TimedKill(at=10, target=1), TimedKill(at=10, target=2),
            RekillRace(target=0), KillReporter())
    compiled = compile_scenario(render_plan(plan))
    assert set(compiled.daemon_names) == {generators.MASTER,
                                         generators.NODE_DAEMON}
