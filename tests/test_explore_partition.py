"""The ``partition_storm`` explore family: plan IR, rendering (including
the heal-before-detection fold), the false-suspicion oracle, shrinking
of partition plans, and the campaign-level acceptance path."""

import pytest

from repro.analysis.classify import Outcome
import repro.explore.shrink as shrinklib
from repro.explore import generators, oracles
from repro.explore.campaign import quick_config, run_campaign, replay_scenario
from repro.explore.generators import (GeneratorContext, Heal, TimedKill,
                                      TimedPartition, render_plan)
from repro.fail.compile import compile_scenario
from repro.fail.lang.parser import parse_fail

from tests.test_explore import GOLDEN, make_result

CTX = GeneratorContext(n_machines=7, n_busy=4)


# ---------------------------------------------------------------------------
# plan helpers
# ---------------------------------------------------------------------------

def test_plan_step_classification():
    plan = (TimedPartition(at=10, targets=(0, 2)), Heal(after=5),
            TimedKill(at=40, target=1))
    assert len(generators.kill_steps(plan)) == 1
    assert len(generators.partition_steps(plan)) == 1
    assert not generators.has_unhealed_partition(plan)


def test_unhealed_partition_detection():
    healed = (TimedPartition(at=10, targets=(0,)), Heal(after=5))
    unhealed = (TimedPartition(at=10, targets=(0,)),)
    svc_only = (TimedPartition(at=10, targets=(), services=("svc2",)),)
    resurrected = healed + (TimedPartition(at=50, targets=(1,)),)
    assert not generators.has_unhealed_partition(healed)
    assert generators.has_unhealed_partition(unhealed)
    # a dead checkpoint-server link strands recovery just as surely
    assert generators.has_unhealed_partition(svc_only)
    assert generators.has_unhealed_partition(resurrected)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def test_partition_plan_renders_and_compiles():
    plan = (TimedPartition(at=10, targets=(0, 2), services=("svc2",)),
            Heal(after=5), TimedKill(at=40, target=1))
    source = render_plan(plan)
    assert "partition(G1[0])" in source
    assert "partition(G1[2])" in source
    assert "partition(svc2)" in source
    compiled = compile_scenario(source)
    assert set(compiled.daemon_names) == {generators.MASTER,
                                          generators.NODE_DAEMON}
    # canonical text: reparse + reprint is a fixed point
    from repro.fail import build as fb
    assert fb.render(parse_fail(source)) == source


def test_immediate_heal_folds_into_the_partition_transition():
    """Heal(after=0) must land in the same transition as its partition
    so it beats the severance notification (one network latency)."""
    folded = render_plan((TimedPartition(at=10, targets=(1,)),
                          Heal(after=0)))
    assert "partition(G1[1]), heal" in folded
    deferred = render_plan((TimedPartition(at=10, targets=(1,)),
                            Heal(after=7)))
    assert "partition(G1[1]), heal" not in deferred
    assert "heal" in deferred


def test_partition_storm_family_generates_valid_scenarios():
    saw_partition = saw_heal_race = saw_service = saw_kill = False
    for seed in range(24):
        scenario = generators.generate("partition_storm", 0, seed, CTX)
        assert generators.partition_steps(scenario.plan)
        compile_scenario(scenario.source)
        saw_partition = True
        for i, step in enumerate(scenario.plan):
            if isinstance(step, Heal) and step.after == 0:
                saw_heal_race = True
            if isinstance(step, TimedPartition) and step.services:
                saw_service = True
            if isinstance(step, TimedKill):
                saw_kill = True
    assert saw_partition and saw_heal_race and saw_service and saw_kill


# ---------------------------------------------------------------------------
# oracles: excuse or flag under false suspicion
# ---------------------------------------------------------------------------

STORM = (TimedPartition(at=15, targets=(0,)), Heal(after=10))


def test_false_suspicion_na_without_partitions():
    reports = oracles.run_oracles(make_result(), GOLDEN,
                                  plan=(TimedKill(at=10, target=0),),
                                  protocol="vcl")
    by_name = {r.name: r for r in reports}
    assert by_name["false_suspicion"].passed
    assert "n/a" in by_name["false_suspicion"].detail


def test_false_suspicion_excuses_partition_stall():
    stalled = make_result(outcome=Outcome.NON_TERMINATING, failures=5000,
                          signature=None)
    reports = oracles.run_oracles(stalled, GOLDEN, plan=STORM,
                                  protocol="vcl")
    assert oracles.failed_names(reports) == []
    by_name = {r.name: r for r in reports}
    assert "excused" in by_name["progress"].detail
    assert "excused" in by_name["false_suspicion"].detail


def test_false_suspicion_flags_corrupted_termination():
    corrupted = make_result(failures=3, signature=999)
    reports = oracles.run_oracles(corrupted, GOLDEN, plan=STORM,
                                  protocol="vcl")
    assert "false_suspicion" in oracles.failed_names(reports)


def test_clean_run_after_heal_race_passes_everything():
    clean = make_result(failures=0)
    reports = oracles.run_oracles(clean, GOLDEN, plan=STORM, protocol="vcl")
    assert oracles.failed_names(reports) == []


def test_unhealed_partition_excuses_progress_without_suspicions():
    stalled = make_result(outcome=Outcome.NON_TERMINATING, failures=0,
                          signature=None)
    plan = (TimedPartition(at=15, targets=(1,)),)
    reports = oracles.run_oracles(stalled, GOLDEN, plan=plan, protocol="vcl")
    by_name = {r.name: r for r in reports}
    assert by_name["progress"].passed
    assert "partitioned forever" in by_name["progress"].detail


def test_plain_stall_with_partition_but_no_suspicion_still_fails():
    """A healed partition that never fired the detector does not excuse
    an unrelated stall — or an unrelated freeze."""
    stalled = make_result(outcome=Outcome.NON_TERMINATING, failures=0,
                          signature=None)
    reports = oracles.run_oracles(stalled, GOLDEN, plan=STORM,
                                  protocol="vcl")
    assert "progress" in oracles.failed_names(reports)
    frozen = make_result(outcome=Outcome.BUGGY, failures=0, signature=None)
    reports = oracles.run_oracles(frozen, GOLDEN, plan=STORM, protocol="vcl")
    assert "no_deadlock" in oracles.failed_names(reports)


@pytest.mark.slow
def test_unhealed_service_cut_plus_kill_is_not_flagged_as_deadlock():
    """Regression (found in review): killing a rank while its checkpoint
    server stays partitioned forever freezes recovery on the dead link.
    That is the cut's doing, not a protocol deadlock — every oracle must
    excuse it rather than flag a correct protocol as buggy."""
    from repro.experiments.harness import TrialSetup
    from repro.explore.generators import render_plan

    plan = (TimedPartition(at=20, targets=(), services=("svc2",)),
            TimedKill(at=45, target=0))
    cal = dict(workload="ring", niters=40, total_compute=1280.0,
               footprint=1e8, n_procs=4, n_machines=6, timeout=150.0)
    golden = TrialSetup(protocol="vcl", **cal).run_one(77)
    setup = TrialSetup(protocol="vcl", scenario_source=render_plan(plan),
                       master_daemon=generators.MASTER,
                       node_daemon=generators.NODE_DAEMON, **cal)
    result = setup.run_one(77)
    assert result.outcome is not Outcome.TERMINATED   # genuinely stuck
    reports = oracles.run_oracles(result, golden, plan=plan, protocol="vcl")
    assert oracles.failed_names(reports) == []


# ---------------------------------------------------------------------------
# shrinking partition plans (pure logic)
# ---------------------------------------------------------------------------

def test_shrink_drops_partition_noise_around_the_kill():
    plan = (TimedPartition(at=13, targets=(1, 3), services=("svc2",)),
            Heal(after=0), TimedKill(at=47, target=2))

    def still_fails(candidate, _n):
        return any(isinstance(s, TimedKill) for s in candidate)

    out = shrinklib.shrink(plan, 7, still_fails=still_fails,
                           min_machines=4, budget=64)
    assert out.plan == (TimedKill(at=60, target=0),)
    assert out.n_machines == 4
    compile_scenario(out.source)


def test_shrink_narrows_partition_groups():
    plan = (TimedPartition(at=23, targets=(1, 3), services=("svc2",)),)

    def still_fails(candidate, _n):
        return bool(generators.partition_steps(candidate))

    out = shrinklib.shrink(plan, 7, still_fails=still_fails,
                           min_machines=4, budget=64)
    assert len(out.plan) == 1
    step = out.plan[0]
    assert step.targets == (1,) and step.services == ()
    assert step.at == 60          # regridded to the coarsest grid
    compile_scenario(out.source)


def test_shrink_keeps_the_heal_race_exact():
    """Heal(after=0) encodes the before-detection race; regridding must
    not push it onto a coarser grid."""
    plan = (TimedPartition(at=23, targets=(1,)), Heal(after=0))

    def still_fails(candidate, _n):
        return len(candidate) == 2

    out = shrinklib.shrink(plan, 7, still_fails=still_fails,
                           min_machines=4, budget=64)
    assert out.plan[1] == Heal(after=0)


# ---------------------------------------------------------------------------
# campaign acceptance: catch + shrink through partition_storm
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_partition_storm_catches_and_shrinks_the_planted_bug(tmp_path):
    """A partition_storm plan whose finale kill trips the planted
    cm_replay bug must be flagged and delta-debugged to a minimal
    ``.fail`` reproducer with a one-line replay command (acceptance
    criterion of the netmodel PR)."""
    cfg = quick_config(seed=23, protocols=("v1",),
                       families=("partition_storm",),
                       config_overrides={"cm_replay": False},
                       max_shrinks=1)
    result = run_campaign(cfg, out_dir=str(tmp_path))
    assert result.failures, "the planted bug escaped every oracle"
    assert result.shrinks, "no shrink attempted"
    report = result.shrinks[0]
    original = report.verdict.scenario.plan
    assert generators.partition_steps(original), "not a partition plan"
    # the partition noise is gone; one kill reproduces
    assert len(report.outcome.plan) == 1
    assert isinstance(report.outcome.plan[0], TimedKill)
    assert report.outcome.n_machines < cfg.n_machines
    # the emitted artifact replays to a failure under the same knob
    assert report.fail_file is not None
    with open(report.fail_file, "r", encoding="utf-8") as fh:
        source = fh.read()
    _res, reports = replay_scenario(
        source, cfg, "v1", "ring", report.verdict.trial_seed)
    assert oracles.failed_names(reports)
    assert "python -m repro explore --replay" in report.command
    assert "cm_replay=False" in report.command


@pytest.mark.slow
def test_partition_storm_quick_cell_is_deterministic():
    """One partition_storm cell re-runs byte-identically (the CI
    net-smoke invariant)."""
    cfg = quick_config(seed=11, families=("partition_storm",))
    first = run_campaign(cfg)
    second = run_campaign(cfg)
    assert first.render_table() == second.render_table()
    assert first.to_json() == second.to_json()
    assert first.failures == []
