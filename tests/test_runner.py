"""Tests for the parallel trial runner and the result store.

The two load-bearing properties of the subsystem:

* **determinism** — ``workers=N`` produces an ``ExperimentResult``
  identical row-for-row (outcomes, exec times, fault counts) to
  ``workers=1``, because seeds are derived from the campaign layout,
  never from scheduling;
* **caching** — re-running a figure against a warm store executes
  zero new trials and reproduces the same rows.
"""

import dataclasses

import pytest

from repro.experiments.fig5_frequency import run_experiment, setup_for_period
from repro.experiments.harness import run_trials, trial_seed
from repro.experiments.resultstore import (ResultStore, run_result_from_dict,
                                           run_result_to_dict)
from repro.experiments.runner import TrialRunner, runner_from_args, trial_key

#: heavily reduced workload so a sweep stays in the second range
QUICK = dict(niters=10, total_compute=180.0, footprint=1e8)


def quick_setup(period):
    return setup_for_period(period, n_procs=4, n_machines=6, **QUICK)


def row_signature(row):
    """Everything the figures read from a row, per repetition."""
    return [(r.outcome, r.exec_time, r.failures_detected, r.restarts,
             r.bug_events, r.waves_committed, r.sim_time,
             r.events_processed) for r in row.results]


def assert_results_identical(a, b):
    assert [row.label for row in a.rows] == [row.label for row in b.rows]
    for row_a, row_b in zip(a.rows, b.rows):
        assert row_signature(row_a) == row_signature(row_b), row_a.label


# -- determinism --------------------------------------------------------------

def test_parallel_equals_serial_reduced_fig5():
    """workers=4 must be bit-for-bit equal to workers=1 on a fig5 sweep."""
    kwargs = dict(reps=2, periods=(None, 40, 35), n_procs=4, n_machines=6,
                  **QUICK)
    serial = run_experiment(runner=TrialRunner(workers=1), **kwargs)
    parallel = run_experiment(runner=TrialRunner(workers=4), **kwargs)
    assert_results_identical(serial, parallel)
    # the faulty rows really did observe faults, so the equality above
    # compares non-trivial trajectories
    assert parallel.row("every 35 sec").total_faults > 0


def test_parallel_preserves_submission_order_counters():
    """Results land by job index, not completion order."""
    setups = [quick_setup(None), quick_setup(35)]
    jobs = [(s, trial_seed(1, ci, rep))
            for ci, s in enumerate(setups) for rep in range(2)]
    serial = TrialRunner(workers=1).run_jobs(jobs)
    parallel = TrialRunner(workers=4).run_jobs(jobs)
    assert [r.exec_time for r in serial] == [r.exec_time for r in parallel]
    assert [r.events_processed for r in serial] \
        == [r.events_processed for r in parallel]


def test_trial_seed_scheme():
    """Seeds depend only on (base, config index, rep) — the documented
    scheme that makes scheduling irrelevant."""
    assert trial_seed(1000, 0, 0) == 1000
    assert trial_seed(1000, 0, 3) == 1003
    assert trial_seed(1000, 2, 1) == 1000 + 2 * 7919 + 1
    seen = {trial_seed(1000, ci, rep)
            for ci in range(10) for rep in range(100)}
    assert len(seen) == 1000  # no collisions across a realistic campaign


# -- caching ------------------------------------------------------------------

def test_cache_second_run_executes_zero_trials(tmp_path):
    cache = str(tmp_path / "cache")
    kwargs = dict(reps=2, periods=(None, 35), n_procs=4, n_machines=6,
                  **QUICK)
    cold = TrialRunner(workers=2, cache_dir=cache)
    first = run_experiment(runner=cold, **kwargs)
    assert cold.stats.executed == 4 and cold.stats.cache_hits == 0

    warm = TrialRunner(workers=2, cache_dir=cache)
    second = run_experiment(runner=warm, **kwargs)
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == 4
    assert warm.stats.hit_rate == 1.0
    assert_results_identical(first, second)


def test_cache_resume_executes_only_missing_trials(tmp_path):
    """Interrupted-campaign semantics: a partial store is topped up."""
    cache = str(tmp_path / "cache")
    setup = quick_setup(None)
    seeds = [trial_seed(7, 0, rep) for rep in range(3)]
    TrialRunner(cache_dir=cache).run_jobs([(setup, seeds[0])])

    resumed = TrialRunner(cache_dir=cache)
    resumed.run_jobs([(setup, s) for s in seeds])
    assert resumed.stats.cache_hits == 1
    assert resumed.stats.executed == 2


def test_no_cache_ignores_store(tmp_path):
    cache = str(tmp_path / "cache")
    setup = quick_setup(None)
    job = [(setup, 1)]
    TrialRunner(cache_dir=cache).run_jobs(job)
    runner = TrialRunner(cache_dir=cache, use_cache=False)
    runner.run_jobs(job)
    assert runner.stats.executed == 1
    assert runner.stats.cache_hits == 0


def test_run_trials_cache_knobs(tmp_path):
    """The harness-level knobs build the runner without an explicit one."""
    cache = str(tmp_path / "cache")
    kwargs = dict(setup_for=quick_setup, configs=[None], labels=["base"],
                  reps=2, name="t", base_seed=3)
    first = run_trials(cache_dir=cache, **kwargs)
    second = run_trials(cache_dir=cache, workers=2, **kwargs)
    assert_results_identical(first, second)


# -- trial keys ---------------------------------------------------------------

def test_trial_key_stable_and_sensitive():
    setup = quick_setup(35)
    key = trial_key(setup, 1)
    assert key == trial_key(quick_setup(35), 1)       # stable across builds
    assert key != trial_key(setup, 2)                  # seed-sensitive
    assert key != trial_key(quick_setup(40), 1)        # param-sensitive
    bumped = dataclasses.replace(setup, ckpt_period=31.0)
    assert key != trial_key(bumped, 1)                 # every field counts


# -- result store -------------------------------------------------------------

def test_run_result_roundtrip():
    result = quick_setup(35).run_one(seed=5)
    doc = run_result_to_dict(result)
    back = run_result_from_dict(doc)
    assert back.outcome is result.outcome
    assert back.exec_time == result.exec_time
    assert back.verdict.reason == result.verdict.reason
    assert back.sim_time == result.sim_time
    assert back.restarts == result.restarts
    assert back.failures_detected == result.failures_detected
    assert back.waves_committed == result.waves_committed
    assert back.events_processed == result.events_processed
    assert back.trace.counts == result.trace.counts
    assert back.trace.last_time == result.trace.last_time
    # and the wire form is genuinely JSON
    import json
    json.loads(json.dumps(doc))


def test_run_result_roundtrip_keeps_records():
    setup = dataclasses.replace(quick_setup(None), keep_trace=True)
    result = setup.run_one(seed=5)
    assert len(result.trace.records) > 0
    back = run_result_from_dict(run_result_to_dict(result))
    assert len(back.trace.records) == len(result.trace.records)
    rec_a, rec_b = result.trace.records[0], back.trace.records[0]
    assert (rec_a.t, rec_a.kind) == (rec_b.t, rec_b.kind)


def test_result_store_miss_and_corruption(tmp_path):
    store = ResultStore(str(tmp_path / "s"))
    assert store.get("0" * 64) is None
    # a truncated entry reads as a miss, not a crash
    path = store.path_for("ab" * 32)
    import os
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        fh.write('{"format": 1, "verdict"')
    assert store.get("ab" * 32) is None
    # valid JSON of the wrong shape also reads as a miss, not a crash
    for bad in ("null", '{"format": 1, "verdict": null}'):
        with open(path, "w") as fh:
            fh.write(bad)
        assert store.get("ab" * 32) is None, bad


def test_store_rejects_non_directory_root(tmp_path):
    afile = tmp_path / "afile"
    afile.write_text("")
    with pytest.raises(NotADirectoryError, match="not a\\s+directory"):
        ResultStore(str(afile))


def test_store_rejects_future_format(tmp_path):
    result = quick_setup(None).run_one(seed=1)
    doc = run_result_to_dict(result)
    doc["format"] = 999
    with pytest.raises(ValueError):
        run_result_from_dict(doc)


# -- CLI plumbing -------------------------------------------------------------

def test_runner_from_args():
    import argparse

    from repro.experiments.runner import add_runner_arguments

    parser = argparse.ArgumentParser()
    add_runner_arguments(parser)
    args = parser.parse_args(["--workers", "3", "--cache-dir", "/tmp/x",
                              "--no-cache"])
    runner = runner_from_args(args)
    assert runner.workers == 3
    assert runner.store is None  # --no-cache wins over --cache-dir
    args = parser.parse_args([])
    runner = runner_from_args(args)
    assert runner.workers == 1 and runner.store is None
