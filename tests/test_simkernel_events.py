"""Unit tests for event composition (AnyOf/AllOf) and stores."""

import pytest

from repro.simkernel.engine import Engine
from repro.simkernel.events import AllOf, AnyOf
from repro.simkernel.store import Store, StoreClosed


def test_anyof_fires_on_first():
    eng = Engine(seed=0)
    results = []

    def main():
        t1 = eng.timeout(5.0, value="slow")
        t2 = eng.timeout(1.0, value="fast")
        got = yield AnyOf(eng, [t1, t2])
        results.append((eng.now, sorted(v for v in got.values())))

    eng.process(main())
    eng.run()
    assert results == [(1.0, ["fast"])]


def test_allof_waits_for_all():
    eng = Engine(seed=0)
    results = []

    def main():
        t1 = eng.timeout(5.0, value="a")
        t2 = eng.timeout(1.0, value="b")
        got = yield AllOf(eng, [t1, t2])
        results.append((eng.now, len(got)))

    eng.process(main())
    eng.run()
    assert results == [(5.0, 2)]


def test_empty_allof_fires_immediately():
    eng = Engine(seed=0)
    done = []

    def main():
        yield AllOf(eng, [])
        done.append(eng.now)

    eng.process(main())
    eng.run()
    assert done == [0.0]


def test_condition_failure_propagates():
    eng = Engine(seed=0)
    caught = []

    def main():
        ev = eng.event()
        eng.call_later(1.0, lambda: ev.fail(RuntimeError("bad")))
        try:
            yield AnyOf(eng, [ev, eng.timeout(10.0)])
        except RuntimeError:
            caught.append(eng.now)

    eng.process(main())
    eng.run()
    assert caught == [1.0]


def test_condition_rejects_non_event():
    eng = Engine(seed=0)
    with pytest.raises(TypeError):
        AnyOf(eng, [42])


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo_order():
    eng = Engine(seed=0)
    store = Store(eng)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    eng.process(consumer())
    for i in range(3):
        eng.call_later(float(i), lambda i=i: store.put(i))
    eng.run()
    assert got == [0, 1, 2]


def test_store_buffers_when_no_getter():
    eng = Engine(seed=0)
    store = Store(eng)
    store.put("x")
    store.put("y")
    assert len(store) == 2
    assert store.get_nowait() == "x"


def test_store_get_nowait_empty_raises():
    eng = Engine(seed=0)
    store = Store(eng)
    with pytest.raises(IndexError):
        store.get_nowait()


def test_store_capacity_enforced():
    eng = Engine(seed=0)
    store = Store(eng, capacity=1)
    store.put(1)
    with pytest.raises(ValueError):
        store.put(2)


def test_store_close_wakes_getters_with_error():
    eng = Engine(seed=0)
    store = Store(eng)
    outcome = []

    def consumer():
        try:
            yield store.get()
        except StoreClosed:
            outcome.append("closed")

    eng.process(consumer())
    eng.call_later(1.0, store.close)
    eng.run()
    assert outcome == ["closed"]


def test_store_put_after_close_raises():
    eng = Engine(seed=0)
    store = Store(eng)
    store.close()
    with pytest.raises(StoreClosed):
        store.put(1)


def test_store_get_after_close_fails_event():
    eng = Engine(seed=0)
    store = Store(eng)
    store.close()
    caught = []

    def consumer():
        try:
            yield store.get()
        except StoreClosed:
            caught.append(True)

    eng.process(consumer())
    eng.run()
    assert caught == [True]


def test_close_is_idempotent():
    eng = Engine(seed=0)
    store = Store(eng)
    store.close()
    store.close()


def test_many_getters_fifo_wakeup():
    eng = Engine(seed=0)
    store = Store(eng)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    for tag in "abc":
        eng.process(consumer(tag))
    eng.call_later(1.0, lambda: [store.put(i) for i in range(3)])
    eng.run()
    assert got == [("a", 0), ("b", 1), ("c", 2)]
