"""Unit tests for restartable collectives, over a real in-sim mesh.

Rather than mocking, we run N endpoints over a shared router that
models instantaneous delivery — collectives' logic (progress counters,
dedup, role split) is what's under test here; transport timing is
covered elsewhere.
"""

import pytest

from repro.mpi import collectives as coll
from repro.mpi.endpoint import MpiEndpoint
from repro.simkernel.engine import Engine


class Router:
    """In-memory mesh honouring the state-buffer delivery contract."""

    def __init__(self, engine, n):
        from repro.mpi.endpoint import LocalDelivery
        self.states = [{} for _ in range(n)]
        self.deliveries = [LocalDelivery(engine, st) for st in self.states]

    def port(self, rank):
        router = self

        class _Port:
            def app_send(self, msg):
                router.deliveries[msg.dst].deliver(msg)

            def app_inbox_get(self):
                return router.deliveries[rank].doorbell()

            def app_done(self):
                pass

        return _Port()


def run_ranks(n, body, seed=0):
    """Run body(ep) on every rank; returns list of results."""
    engine = Engine(seed=seed)
    router = Router(engine, n)
    procs = []
    for rank in range(n):
        ep = MpiEndpoint(rank, n, router.states[rank], router.port(rank),
                         engine)
        procs.append(engine.process(body(ep), name=f"rank{rank}"))
    engine.run()
    for p in procs:
        assert p.state == "done", (p.name, p.error)
    return [p.result for p in procs]


@pytest.mark.parametrize("n", [1, 2, 3, 8])
def test_reduce_bcast_sums_everywhere(n):
    def body(ep):
        result = yield from coll.reduce_bcast(ep, "r", ep.rank + 1)
        return result

    expected = sum(range(1, n + 1))
    assert run_ranks(n, body) == [expected] * n


def test_reduce_bcast_custom_op():
    def body(ep):
        result = yield from coll.reduce_bcast(ep, "r", ep.rank, op=max)
        return result

    assert run_ranks(4, body) == [3, 3, 3, 3]


def test_reduce_bcast_idempotent_when_done():
    def body(ep):
        first = yield from coll.reduce_bcast(ep, "r", ep.rank)
        second = yield from coll.reduce_bcast(ep, "r", ep.rank)
        return (first, second)

    for first, second in run_ranks(3, body):
        assert first == second == 3


@pytest.mark.parametrize("n", [1, 2, 5])
def test_barrier_completes(n):
    def body(ep):
        yield from coll.barrier(ep, "b")
        return "past"

    assert run_ranks(n, body) == ["past"] * n


def test_barrier_blocks_until_all_arrive():
    """Rank 0 must not pass the barrier before the last rank enters."""
    engine = Engine(seed=0)
    router = Router(engine, 3)
    passed = []

    def late(ep, delay):
        yield ep.engine.timeout(delay)
        yield from coll.barrier(ep, "b")
        passed.append((ep.rank, ep.engine.now))

    for rank, delay in [(0, 0.0), (1, 1.0), (2, 5.0)]:
        ep = MpiEndpoint(rank, 3, {}, router.port(rank), engine)
        engine.process(late(ep, delay))
    engine.run()
    assert all(t >= 5.0 for _, t in passed)


@pytest.mark.parametrize("n", [1, 2, 4])
def test_bcast_distributes_root_value(n):
    def body(ep):
        value = "payload" if ep.rank == 0 else None
        result = yield from coll.bcast(ep, "bc", value, root=0)
        return result

    assert run_ranks(n, body) == ["payload"] * n


def test_bcast_nonzero_root():
    def body(ep):
        value = 42 if ep.rank == 2 else None
        result = yield from coll.bcast(ep, "bc", value, root=2)
        return result

    assert run_ranks(4, body) == [42] * 4


@pytest.mark.parametrize("n", [1, 2, 6])
def test_gather_to_root(n):
    def body(ep):
        result = yield from coll.gather_to_root(ep, "g", ep.rank * 10)
        return result

    results = run_ranks(n, body)
    assert results[0] == [r * 10 for r in range(n)]
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("n", [2, 3, 7])
def test_ring_exchange(n):
    def body(ep):
        result = yield from coll.ring_exchange(ep, "ring", ep.rank)
        return result

    results = run_ranks(n, body)
    # each rank receives from its left neighbour
    assert results == [(r - 1) % n for r in range(n)]
