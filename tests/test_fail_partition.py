"""The ``partition``/``heal`` FAIL primitives, end to end through the
language pipeline (lexer → parser → pretty → semantics → build →
codegen → interpreter) and the live platform (FailDaemon acting on the
runtime's network fabric)."""

import pytest

from repro.experiments.harness import TrialSetup
from repro.fail import build as fb
from repro.fail.compile import compile_scenario
from repro.fail.codegen import generate_python
from repro.fail.lang import ast
from repro.fail.lang.errors import FailSemanticError
from repro.fail.lang.parser import parse_fail
from repro.fail.lang.pretty import pretty_print
from repro.fail.machine import Machine

from tests.test_fail_codegen import compile_handler
from tests.test_fail_machine import FakeCtx

PARTITION_SRC = """Daemon ADV {
  node 1:
    always int ran = FAIL_RANDOM(0, N);
    time t = X;
    timer -> partition(G1[ran]), partition(svc2), goto 2;
  node 2:
    time t2 = 5;
    timer -> heal, goto 3;
  node 3:
}
"""


# ---------------------------------------------------------------------------
# language pipeline
# ---------------------------------------------------------------------------

def test_partition_heal_parse_and_pretty_round_trip():
    prog = parse_fail(PARTITION_SRC)
    actions = prog.daemons[0].nodes[0].transitions[0].actions
    assert isinstance(actions[0], ast.PartitionAction)
    assert isinstance(actions[0].dest, ast.DestIndex)
    assert isinstance(actions[1], ast.PartitionAction)
    assert actions[1].dest == ast.DestName("svc2")
    heal_actions = prog.daemons[0].nodes[1].transitions[0].actions
    assert isinstance(heal_actions[0], ast.HealAction)
    assert parse_fail(pretty_print(prog)) == prog


def test_partition_compiles_through_the_full_pipeline():
    compiled = compile_scenario(PARTITION_SRC, {"X": 3, "N": 5})
    assert compiled.daemon_names == ("ADV",)


def test_partition_dest_index_is_semantically_checked():
    bad = "Daemon D { node 1: onload -> partition(G1[nope]); }"
    with pytest.raises(FailSemanticError, match="undefined name"):
        compile_scenario(bad)


def test_build_api_constructs_partition_and_heal():
    prog = fb.program(fb.daemon(
        "D",
        fb.node(1,
                fb.when(fb.ONLOAD, fb.partition(fb.group("G1", 2)),
                        fb.HEAL, fb.goto(1)))))
    source = fb.render(prog)
    assert "partition(G1[2])" in source and "heal" in source
    assert parse_fail(source) == prog


def test_interpreter_and_codegen_agree_on_partition_actions():
    prog = parse_fail(PARTITION_SRC)
    params = {"X": 3, "N": 5}
    interp_ctx = FakeCtx(seed=4)
    interp = Machine(prog.daemons[0], params, interp_ctx, "T")
    gen, gen_ctx = compile_handler(PARTITION_SRC, params=params, seed=4)
    assert interp.handle(("timer", interp.entry_gen))
    assert gen.handle("timer")
    assert interp_ctx.partitions == gen_ctx.partitions
    assert len(interp_ctx.partitions) == 2
    assert interp_ctx.partitions[1] == "svc2"
    assert interp.handle(("timer", interp.entry_gen))
    assert gen.handle("timer")
    assert interp_ctx.healed == gen_ctx.healed == 1
    assert interp.node_id == gen.node == 3


def test_generated_python_contains_partition_calls():
    prog = parse_fail(PARTITION_SRC)
    code = generate_python(prog.daemons[0], {"X": 1, "N": 1})
    assert "self.ctx.partition(" in code
    assert "self.ctx.heal()" in code
    compile(code, "<generated>", "exec")


# ---------------------------------------------------------------------------
# live platform: FailDaemon -> Network
# ---------------------------------------------------------------------------

NOP_NODE_DAEMON = """Daemon ADV2 {
  node 1:
    onload -> continue, goto 1;
}
"""


def _deployed_runtime(source, params=None):
    setup = TrialSetup(
        n_procs=2, n_machines=3, workload="ring", niters=4,
        total_compute=40.0, footprint=1e7, timeout=60.0,
        scenario_source=source + NOP_NODE_DAEMON, scenario_params=params or {},
        master_daemon="ADV1", node_daemon="ADV2")
    return setup.build(seed=1)


MASTER_ONLY = """Daemon ADV1 {
  node 1:
    time t = 2;
    timer -> partition(G1[0]), goto 2;
  node 2:
    time t2 = 3;
    timer -> heal, goto 3;
  node 3:
}
"""


def test_fail_daemon_partitions_and_heals_the_fabric():
    runtime, deployment = _deployed_runtime(MASTER_ONLY)
    engine = runtime.engine
    runtime.deploy()
    network = runtime.cluster.network
    engine.run(until=2.5)
    assert network.partitioned
    assert not network.reachable("m0", "svc0")
    assert network.reachable("m1", "svc0")
    assert deployment.total_partitions_injected() == 1
    assert runtime.trace.counts.get("partition_injected", 0) == 1
    engine.run(until=6.0)
    assert not network.partitioned
    assert runtime.trace.counts.get("heal_injected", 0) == 1


SVC_TARGET = """Daemon ADV1 {
  node 1:
    time t = 2;
    timer -> partition(svc1), partition(nosuch), goto 2;
  node 2:
}
"""


def test_partition_falls_back_to_cluster_node_names():
    runtime, deployment = _deployed_runtime(SVC_TARGET)
    runtime.deploy()
    runtime.engine.run(until=3.0)
    network = runtime.cluster.network
    assert not network.reachable("svc1", "m0")
    # unknown destinations are a logged no-op, not a crash
    assert runtime.trace.counts.get("partition_noop", 0) == 1
    assert deployment.total_partitions_injected() == 1
