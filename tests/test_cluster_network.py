"""Unit tests for the TCP-like network model."""

import pytest

from repro.cluster.network import (Address, ConnectionRefused, Network)
from repro.simkernel.engine import Engine
from repro.simkernel.store import StoreClosed


def _pair(engine, cluster):
    """Connect node1 -> node0:5000 and return (server_sock, client_sock)."""
    out = {}

    def server(proc):
        ls = proc.node.listen(5000, owner=proc)
        out["server"] = yield ls.accept()
        yield engine.event()        # stay alive

    def client(proc):
        out["client"] = yield proc.node.connect(
            cluster.node(0).addr(5000), owner=proc)
        yield engine.event()

    cluster.node(0).spawn("server", server)
    cluster.node(1).spawn("client", client)
    engine.run(until=1.0)
    return out["server"], out["client"]


def test_connect_and_exchange(engine, cluster):
    srv, cli = _pair(engine, cluster)
    got = []

    def reader():
        msg = yield srv.recv()
        got.append((engine.now, msg))

    engine.process(reader())
    start = engine.now
    cli.send("hello", size=0)
    engine.run(until=start + 1.0)
    assert got and got[0][1] == "hello"
    # one latency for a zero-size message
    assert got[0][0] == pytest.approx(start + 1e-4)


def test_transfer_time_scales_with_size(engine, cluster):
    srv, cli = _pair(engine, cluster)
    got = []

    def reader():
        msg = yield srv.recv()
        got.append(engine.now)

    engine.process(reader())
    start = engine.now
    cli.send("big", size=10**8)   # 100 MB at 100 MB/s = 1 s
    engine.run(until=start + 5.0)
    assert got[0] == pytest.approx(start + 1.0 + 1e-4)


def test_per_connection_fifo_no_reordering(engine, cluster):
    """A small message sent after a big one must not overtake it."""
    srv, cli = _pair(engine, cluster)
    got = []

    def reader():
        while True:
            try:
                msg = yield srv.recv()
            except StoreClosed:
                return
            got.append(msg)

    engine.process(reader())
    cli.send("big", size=10**7)
    cli.send("small", size=10)
    engine.run(until=engine.now + 5.0)
    assert got == ["big", "small"]


def test_connect_refused_without_listener(engine, cluster):
    outcome = []

    def client(proc):
        try:
            yield proc.node.connect(Address("m0", 9999), owner=proc)
        except ConnectionRefused:
            outcome.append("refused")

    # node name prefix in conftest cluster is "node"
    def client2(proc):
        try:
            yield proc.node.connect(cluster.node(0).addr(9999), owner=proc)
        except ConnectionRefused:
            outcome.append("refused")

    cluster.node(1).spawn("client", client2)
    engine.run(until=1.0)
    assert outcome == ["refused"]


def test_double_bind_rejected(engine, cluster):
    cluster.node(0).listen(5000)
    with pytest.raises(OSError):
        cluster.node(0).listen(5000)


def test_close_notifies_peer(engine, cluster):
    srv, cli = _pair(engine, cluster)
    outcome = []

    def reader():
        try:
            yield srv.recv()
        except StoreClosed:
            outcome.append(engine.now)

    engine.process(reader())
    start = engine.now
    engine.call_later(0.5, cli.close)
    engine.run(until=start + 2.0)
    assert outcome and outcome[0] == pytest.approx(start + 0.5 + 1e-4)


def test_process_kill_closes_its_sockets(engine, cluster):
    """The failure-detection channel of the paper: task kill => peers
    observe the closure immediately."""
    outcome = {}

    def server(proc):
        ls = proc.node.listen(5000, owner=proc)
        sock = yield ls.accept()
        try:
            yield sock.recv()
        except StoreClosed:
            outcome["detected_at"] = engine.now

    def client(proc):
        yield proc.node.connect(cluster.node(0).addr(5000), owner=proc)
        yield engine.event()    # hold the connection forever

    cluster.node(0).spawn("server", server)
    cli_proc = cluster.node(1).spawn("client", client)
    engine.call_later(1.0, cli_proc.kill)
    engine.run(until=5.0)
    assert outcome["detected_at"] == pytest.approx(1.0 + 1e-4)


def test_send_on_closed_socket_raises(engine, cluster):
    srv, cli = _pair(engine, cluster)
    cli.close()
    from repro.cluster.network import ConnectionClosed
    with pytest.raises(ConnectionClosed):
        cli.send("x")


def test_listener_close_refuses_future_connects(engine, cluster):
    outcome = []
    ls = cluster.node(0).listen(5000)
    ls.close()

    def client(proc):
        try:
            yield proc.node.connect(cluster.node(0).addr(5000), owner=proc)
        except ConnectionRefused:
            outcome.append("refused")

    cluster.node(1).spawn("client", client)
    engine.run(until=1.0)
    assert outcome == ["refused"]


def test_network_counters(engine, cluster):
    srv, cli = _pair(engine, cluster)
    sent_before = cluster.network.messages_sent
    cli.send("x", size=500)
    engine.run(until=engine.now + 1.0)
    assert cluster.network.messages_sent == sent_before + 1
    assert cluster.network.bytes_sent >= 500


def test_bad_network_params_rejected():
    eng = Engine(seed=0)
    with pytest.raises(ValueError):
        Network(eng, latency=-1.0)
    with pytest.raises(ValueError):
        Network(eng, bandwidth=0.0)
