"""Golden determinism matrix for the partitioned engine.

The deployment parallel mode (``TrialSetup.engine_workers > 1``, see
``docs/parallel-engine.md``) must be *bit-identical* to the
single-engine reference: same trace records, same event counts, same
verdicts, at every worker count.  The digests pinned here were
computed in reference mode (``engine_workers=1``) and every worker
count must reproduce them — any drift means the horizon windowing
reordered events, the lookahead bound was unsound, or the partition
accounting leaked into simulation behaviour.

The ``uniform`` rows deliberately share their setup with
``tests/test_engine_fastpath.py`` — their digests are the same pinned
constants, so a drift in either file points at the same engine.

The faulted row also pins the severance-scan ordering fix: partition
injection scans live connections in *creation order* (an
insertion-ordered dict in ``Network._sockets``), not in address-
dependent set order — the digest is stable across processes and
worker counts only because of that.
"""

import dataclasses
import hashlib

import pytest

from repro.experiments.harness import TrialSetup
from repro.experiments.runner import TrialRunner, trial_key
from repro.explore.generators import (MASTER, NODE_DAEMON, Heal, TimedKill,
                                      TimedPartition, render_plan)
from repro.netmodel import TopologySpec

WORKER_COUNTS = (1, 2, 4)

TOPOLOGIES = {
    "uniform": TopologySpec("uniform"),
    "twotier": TopologySpec("twotier", rack_size=4, oversubscription=2.0),
}

#: kill one rank mid-run, cut a machine off the fabric, heal 20 s later
FAULT_PLAN = (TimedKill(at=45, target=0),
              TimedPartition(at=60, targets=(1,)),
              Heal(after=20))

#: (protocol, n_ckpt_servers, topology) -> (trace digest, events), fault-free
GOLDEN_CLEAN = {
    ("vcl", 1, "uniform"):
        ("6cc3065ebbf0dc039f1fb0187d5a12f2f303ee43c1c5999dc0926df995bfddce",
         1744),
    ("vcl", 1, "twotier"):
        ("c9ee550f8153c86c5f4a7f39a56710c040a98db35a3606ee25f0f59b0db2fc72",
         1744),
    ("vcl", 4, "uniform"):
        ("178688c39548d6626dbb62827b0d4a644fbf81cb187f494d30dde10eab88441d",
         1786),
    ("vcl", 4, "twotier"):
        ("edb24d635da8b9a36b46675d1010d64013c4b91f0fc916f4e355cd1a84a12911",
         1786),
    ("v2", 1, "uniform"):
        ("2208a1a318b3f1851eba4841edc6b09fc6cb669487cd9de5a031cfb2916e5bea",
         2553),
    ("v2", 1, "twotier"):
        ("29fce32e319e2a89f818b74eb3ce7416a271305e692206e7348ab20dd12171e4",
         2550),
    ("v2", 4, "uniform"):
        ("be8835319b9f92e9d4562ccdd95d76cc695d05546718506ddd0f9c86b53f01b2",
         2559),
    ("v2", 4, "twotier"):
        ("89304cf4b4af748601877f8df7cb12880930a519fcb1150d395263c2c6d057ef",
         2556),
    ("v1", 1, "uniform"):
        ("de988038cc5fcf283f4fdfdb1e62145e62b22ce4b6579932d8f3cf152ace4070",
         1949),
    ("v1", 1, "twotier"):
        ("d76e1974230bf887686bce88bb06ce150735d7742a3a692f0f4c4604b6cd75e5",
         1946),
    ("v1", 4, "uniform"):
        ("fb39f736d8351827e15735b7b0f6a602af9256ee444f8fdc4621eac7a5db9262",
         1955),
    ("v1", 4, "twotier"):
        ("ffef3985901d8dc1814d9ea433d432d20254053a034c85346b02b22f299feea8",
         1952),
}

#: kill + partition/heal (recovery traffic crosses the engine cut)
GOLDEN_FAULTED = {
    ("vcl", 4, "twotier"):
        ("6bc10cbe5091fd53a3c65f3cb7b46e5ef284f1de8e86b3e68ad69011f2d7bfd1",
         27993),
}


def _setup(protocol, shards, topo, engine_workers, faulty=False):
    scenario = render_plan(FAULT_PLAN) if faulty else None
    return TrialSetup(
        n_procs=4, n_machines=7, protocol=protocol, timeout=300.0,
        workload="ring", niters=40, total_compute=1280.0, footprint=1e8,
        keep_trace=True, scenario_source=scenario,
        master_daemon=MASTER if faulty else None,
        node_daemon=NODE_DAEMON if faulty else None,
        config_overrides={"n_ckpt_servers": shards,
                          "topology": TOPOLOGIES[topo]},
        engine_workers=engine_workers)


def _digest(result):
    h = hashlib.sha256()
    for rec in result.trace.records:
        h.update(repr((round(rec.t, 9), rec.kind,
                       sorted(rec.fields.items()))).encode())
    return h.hexdigest(), result.events_processed


@pytest.mark.parametrize("engine_workers", WORKER_COUNTS)
@pytest.mark.parametrize("topo", ["uniform", "twotier"])
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("protocol", ["vcl", "v2", "v1"])
def test_clean_matrix_matches_reference_digest(protocol, shards, topo,
                                               engine_workers):
    setup = _setup(protocol, shards, topo, engine_workers)
    result = setup.run_one(seed=7)
    assert _digest(result) == GOLDEN_CLEAN[(protocol, shards, topo)]
    assert result.engine_workers == engine_workers


@pytest.mark.parametrize("engine_workers", WORKER_COUNTS)
def test_faulted_trial_matches_reference_digest(engine_workers):
    setup = _setup("vcl", 4, "twotier", engine_workers, faulty=True)
    result = setup.run_one(seed=7)
    assert _digest(result) == GOLDEN_FAULTED[("vcl", 4, "twotier")]


def test_parallel_execution_metadata_is_surfaced():
    """engine_workers > 1 records its window/null-message accounting on
    the result; the reference run records none (metadata only — the
    simulated history is identical, as the digests above prove)."""
    ref = _setup("vcl", 1, "uniform", 1).run_one(seed=7)
    assert ref.engine_workers == 1
    assert ref.parallel is None
    assert ref.wall_seconds > 0.0

    par = _setup("vcl", 1, "uniform", 2).run_one(seed=7)
    assert par.engine_workers == 2
    stats = par.parallel
    assert stats["partitions"] == 2
    assert stats["windows"] > 0
    assert stats["channels"] == 2           # 2 groups, both directions
    assert stats["min_lookahead"] > 0.0
    # null messages = silent (group, group) channels summed per window
    assert stats["null_messages"] == \
        stats["windows"] * stats["channels"] - stats["payload_windows"]


# ---------------------------------------------------------------------------
# cache-key neutrality: engine_workers changes HOW a trial executes,
# never WHAT it simulates — so it must not change the trial's cache slot
# ---------------------------------------------------------------------------

def test_trial_key_ignores_engine_workers():
    setup = _setup("vcl", 1, "uniform", 1)
    key = trial_key(setup, 7)
    for workers in (2, 4, 16):
        rewritten = dataclasses.replace(setup, engine_workers=workers)
        assert trial_key(rewritten, 7) == key


def test_trial_key_still_separates_real_configuration():
    setup = _setup("vcl", 1, "uniform", 1)
    key = trial_key(setup, 7)
    assert trial_key(setup, 8) != key
    assert trial_key(dataclasses.replace(setup, protocol="v2"), 7) != key
    assert trial_key(dataclasses.replace(setup, niters=41), 7) != key
    assert trial_key(_setup("vcl", 1, "twotier", 1), 7) != key
    assert trial_key(_setup("vcl", 4, "uniform", 1), 7) != key


def test_cached_reference_run_satisfies_parallel_request(tmp_path):
    """A trial cached by a reference run is a hit for the same trial
    requested with engine_workers > 1 (and vice versa) — the key is
    shared because the results are bit-identical.  The cached result
    keeps the execution metadata of the run that actually happened."""
    setup = _setup("vcl", 1, "uniform", 1)
    ref_runner = TrialRunner(cache_dir=str(tmp_path))
    [ref] = ref_runner.run_jobs([(setup, 7)])
    assert ref_runner.stats.snapshot() == (1, 0)

    par_runner = TrialRunner(cache_dir=str(tmp_path), engine_workers=4)
    [hit] = par_runner.run_jobs([(setup, 7)])
    assert par_runner.stats.snapshot() == (0, 1)
    assert hit.engine_workers == 1          # metadata of the cached run
    assert _digest(hit)[1] == _digest(ref)[1]
