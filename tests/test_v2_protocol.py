"""Tests for the V2 protocol (pessimistic sender-based message logging).

Covers the event-logger service, independent checkpointing, the
single-rank restart + replay path, duplicate suppression, and the
workload-level exactness invariant under kill schedules.
"""

import pytest

from repro.analysis.classify import Outcome
from repro.mpichv.config import VclConfig
from repro.mpichv.eventlog import EventLogState
from repro.mpichv.runtime import VclRuntime
from repro.workloads.masterworker import MasterWorkerWorkload
from repro.workloads.nas_bt import BTWorkload
from repro.workloads.ring import RingWorkload


def v2_runtime(workload=None, n=4, seed=0, **cfg):
    cfg.setdefault("footprint", 1.2e8)
    config = VclConfig(n_procs=n, n_machines=n + 2, protocol="v2", **cfg)
    wl = workload or BTWorkload(n_procs=n, niters=20, total_compute=400.0,
                                footprint=cfg["footprint"])
    return VclRuntime(config, wl.make_factory(), seed=seed)


def kill_at(rt, when, which=1):
    def do():
        procs = rt.cluster.all_procs("vdaemon")
        if procs:
            procs[which % len(procs)].kill()
    rt.engine.call_at(when, do)


def assert_clean(rt):
    assert not getattr(rt.engine, "process_failures", []), \
        [(p.name, p.error) for p in rt.engine.process_failures]


# ---------------------------------------------------------------------------
# event logger state
# ---------------------------------------------------------------------------

def test_eventlog_append_fetch_prune():
    st = EventLogState()
    st.append(0, 1, src=2, src_seq=1)
    st.append(0, 2, src=1, src_seq=1)
    st.append(0, 3, src=2, src_seq=2)
    assert st.fetch_after(0, 0) == [(2, 1), (1, 1), (2, 2)]
    assert st.fetch_after(0, 2) == [(2, 2)]
    st.prune(0, 2)
    assert st.fetch_after(0, 0) == [(2, 2)]
    assert st.pruned == 2


def test_eventlog_append_idempotent():
    st = EventLogState()
    st.append(0, 1, 2, 1)
    st.append(0, 1, 2, 1)      # retransmission
    assert st.logged == 1
    assert len(st.events[0]) == 1


def test_eventlog_fetch_unknown_rank_empty():
    assert EventLogState().fetch_after(9, 0) == []


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------

def test_v2_config_validation():
    with pytest.raises(ValueError):
        VclConfig(n_procs=4, protocol="nope")
    with pytest.raises(ValueError):
        VclConfig(n_procs=4, protocol="v2", blocking=True)


def test_v2_deployment_has_eventlog_not_scheduler():
    rt = v2_runtime()
    rt.deploy()
    assert rt.eventlog_proc is not None
    assert rt.scheduler_proc is None


# ---------------------------------------------------------------------------
# fault-free behaviour
# ---------------------------------------------------------------------------

def test_v2_fault_free_terminates_and_verifies():
    rt = v2_runtime()
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("verify_ok") == 1
    # independent checkpoints: several per rank, no waves
    assert res.trace.count("v2_ckpt") >= 4
    assert res.trace.count("ckpt_wave_start") == 0
    assert_clean(rt)


def test_v2_pessimistic_logging_adds_latency():
    """Pessimistic logging charges a logger round trip per delivery:
    V2 must be (slightly) slower than Vcl fault-free."""
    t_v2 = v2_runtime(seed=1).run().exec_time

    config = VclConfig(n_procs=4, n_machines=6, footprint=1.2e8)
    wl = BTWorkload(n_procs=4, niters=20, total_compute=400.0, footprint=1.2e8)
    t_vcl = VclRuntime(config, wl.make_factory(), seed=1).run().exec_time
    assert t_v2 > t_vcl
    assert t_v2 < t_vcl * 1.2      # but not catastrophically


# ---------------------------------------------------------------------------
# failures: single-rank restart
# ---------------------------------------------------------------------------

def test_v2_single_failure_restarts_one_rank_only():
    rt = v2_runtime(seed=3)
    kill_at(rt, 70.0)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("verify_ok") == 1
    # exactly one restore, one replay — survivors never restarted
    assert res.trace.count("restore") == 1
    assert res.trace.count("v2_replay_start") == 1
    assert res.trace.count("v2_replay_done") == 1
    # daemons spawned = 4 initial + 1 respawn
    assert res.trace.count("proc_launch") == 5 + (1 + rt.config.n_ckpt_servers
                                                  + 1)  # + services
    assert_clean(rt)


def test_v2_failure_cheaper_than_vcl_rollback():
    """The selling point of message logging: one failure costs the
    replay of one rank, not a global rollback."""
    def run(protocol):
        cfg = VclConfig(n_procs=4, n_machines=6, footprint=1.2e8,
                        protocol=protocol)
        wl = BTWorkload(n_procs=4, niters=20, total_compute=400.0,
                        footprint=1.2e8)
        rt = VclRuntime(cfg, wl.make_factory(), seed=7)
        kill_at(rt, 55.0)
        return rt.run()

    res_v2 = run("v2")
    res_vcl = run("vcl")
    assert res_v2.outcome is Outcome.TERMINATED
    assert res_vcl.outcome is Outcome.TERMINATED
    assert res_v2.exec_time < res_vcl.exec_time


def test_v2_failure_before_any_checkpoint_full_replay():
    rt = v2_runtime(seed=3)
    kill_at(rt, 20.0)          # before every first checkpoint
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    rec = res.trace.last("v2_replay_start")
    assert rec is not None and rec.events > 0
    assert res.trace.count("verify_ok") == 1
    assert_clean(rt)


@pytest.mark.parametrize("seed,kills", [
    (11, (40.0,)),
    (12, (45.0, 95.0)),
    (13, (33.0, 80.0, 120.0)),
])
def test_v2_checksum_exact_under_sequential_kills(seed, kills):
    rt = v2_runtime(seed=seed)
    for i, t in enumerate(kills):
        kill_at(rt, t, which=i * 3 + 1)
    res = rt.run()
    assert_clean(rt)
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("verify_ok") == 1


def test_v2_ring_and_masterworker_survive_kills():
    for wl, kill_t in ((RingWorkload(n_procs=4, rounds=40, work_per_hop=1.0),
                        25.0),
                       (MasterWorkerWorkload(n_procs=4, n_tasks=30,
                                             work_per_task=2.0), 25.0)):
        rt = v2_runtime(workload=wl, seed=4, footprint=4e7)
        kill_at(rt, kill_t, which=2)
        res = rt.run(timeout=600.0)
        assert res.outcome is Outcome.TERMINATED, type(wl).__name__
        assert_clean(rt)


def test_v2_deterministic_per_seed():
    def run():
        rt = v2_runtime(seed=21)
        kill_at(rt, 50.0)
        return rt.run()

    first, second = run(), run()
    assert first.exec_time == second.exec_time
    assert first.events_processed == second.events_processed
