"""Hypothesis invariants on the simulation kernel itself."""

from hypothesis import given, settings, strategies as st

from repro.simkernel.engine import Engine
from repro.simkernel.store import Store, StoreClosed


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), max_size=50))
@settings(max_examples=100, deadline=None)
def test_clock_is_monotone_under_any_schedule(delays):
    eng = Engine(seed=0)
    seen = []
    for d in delays:
        eng.call_later(d, lambda: seen.append(eng.now))
    eng.run()
    assert seen == sorted(seen)
    assert eng.events_processed == len(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=30),
       cut=st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_run_until_is_a_clean_partition(delays, cut):
    """Events strictly after `until` fire in the second run, none are
    lost or duplicated."""
    eng = Engine(seed=0)
    fired = []
    for i, d in enumerate(delays):
        eng.call_later(d, lambda i=i: fired.append(i))
    eng.run(until=cut)
    first_batch = set(fired)
    eng.run()
    assert sorted(fired) != [] or not delays
    assert len(fired) == len(delays)
    assert len(set(fired)) == len(delays)
    for i in first_batch:
        assert delays[i] <= cut


@given(ops=st.lists(st.sampled_from(["put", "get"]), max_size=60))
@settings(max_examples=100, deadline=None)
def test_store_conserves_items(ops):
    """Whatever interleaving of puts and gets, every item is received
    exactly once and in order."""
    eng = Engine(seed=0)
    store = Store(eng)
    got = []
    n_puts = ops.count("put")
    n_gets = ops.count("get")

    def consumer(count):
        for _ in range(count):
            try:
                got.append((yield store.get()))
            except StoreClosed:
                return

    eng.process(consumer(n_gets))
    counter = [0]
    for i, op in enumerate(ops):
        if op == "put":
            def put(c=counter):
                store.put(c[0])
                c[0] += 1
            eng.call_later(float(i), put)
    eng.run(until=1000.0)
    expected = min(n_puts, n_gets)
    assert got == list(range(expected))


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_two_engines_same_seed_identical_rng_streams(seed):
    a, b = Engine(seed=seed), Engine(seed=seed)
    assert [a.random.random() for _ in range(10)] == \
        [b.random.random() for _ in range(10)]


@given(n=st.integers(1, 30))
@settings(max_examples=50, deadline=None)
def test_process_tree_completion(n):
    """A chain of n nested child processes completes bottom-up with the
    right return values."""
    eng = Engine(seed=0)

    def chain(depth):
        if depth == 0:
            yield eng.timeout(1.0)
            return 0
        value = yield eng.process(chain(depth - 1))
        return value + 1

    root = eng.process(chain(n))
    eng.run()
    assert root.result == n
    assert eng.now == 1.0
