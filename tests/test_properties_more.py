"""Further property-based tests: codegen/interpreter equivalence,
network FIFO, and V2 exactness under random kill schedules."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.classify import Outcome
from repro.cluster.cluster import Cluster
from repro.fail.codegen import generate_python
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.simkernel.engine import Engine
from repro.simkernel.store import StoreClosed
from repro.workloads.nas_bt import BTWorkload
from tests.test_fail_machine import FakeCtx
from tests.test_properties import _daemons
from repro.fail.machine import Machine

SLOW = settings(max_examples=10, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# generated code == interpreter, on random daemons and event sequences
# ---------------------------------------------------------------------------

class _GenCtx:
    """Context for generated handlers mirroring FakeCtx's recording."""

    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.sent = []
        self.halted = 0
        self.stopped = 0
        self.continued = 0

    def send(self, msg, dest):
        self.sent.append((msg, dest))

    def halt(self):
        self.halted += 1

    def stop(self):
        self.stopped += 1

    def cont(self):
        self.continued += 1

    def arm_timer(self, delay):
        pass

    def read_app_var(self, name):
        return 0


_event_strategy = st.lists(
    st.one_of(
        st.just(("onload", None, None)),
        st.just(("onexit", None, None)),
        st.just(("onerror", None, None)),
        st.tuples(st.just("msg"),
                  st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True),
                  st.sampled_from(["P1", "G1[0]", "G1[3]"])),
        st.tuples(st.just("before"),
                  st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True),
                  st.none()),
    ),
    max_size=8)


@given(daemon=_daemons(), events=_event_strategy,
       seed=st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_codegen_matches_interpreter_on_random_daemons(daemon, events, seed):
    """The Python the FCI-compiler analogue emits must agree with the
    interpreter: same node trajectory, same variables, same outputs —
    semantics pinned down twice, on arbitrary machines.

    Timer events are excluded (arming time is context policy, not
    machine semantics); guards with FAIL_RANDOM draw from separate but
    identically-seeded streams.
    """
    interp_ctx = FakeCtx(seed=seed)
    try:
        interp = Machine(daemon, {}, interp_ctx, "T")
    except Exception:
        return      # e.g. division by zero in an initializer: skip
    code = generate_python(daemon)
    namespace = {}
    exec(compile(code, "<gen>", "exec"), namespace)
    gen_ctx = _GenCtx(seed)
    gen = namespace[f"{daemon.name}Handler"](gen_ctx, random.Random(seed))

    for kind, arg, sender in events:
        if kind == "msg":
            interp_ok = True
            try:
                interp.handle((kind, arg, sender))
            except Exception:
                interp_ok = False
            try:
                gen.handle(kind, arg, sender)
                gen_ok = True
            except Exception:
                gen_ok = False
        else:
            event = (kind,) if arg is None else (kind, arg)
            try:
                interp.handle(event)
                interp_ok = True
            except Exception:
                interp_ok = False
            try:
                gen.handle(kind, arg, sender)
                gen_ok = True
            except Exception:
                gen_ok = False
        assert interp_ok == gen_ok
        if not interp_ok:
            return
        assert gen.node == interp.node_id
        assert gen.vars == {**interp.params, **interp.vars}
        assert gen_ctx.sent == interp_ctx.sent
        assert (gen_ctx.halted, gen_ctx.stopped, gen_ctx.continued) == \
            (interp_ctx.halted, interp_ctx.stopped, interp_ctx.continued)


# ---------------------------------------------------------------------------
# network: per-connection FIFO under arbitrary message sizes
# ---------------------------------------------------------------------------

@given(sizes=st.lists(st.integers(min_value=0, max_value=10**8),
                      min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_network_fifo_under_arbitrary_sizes(sizes):
    engine = Engine(seed=0)
    cluster = Cluster(engine, 2)
    got = []

    def server(proc):
        ls = proc.node.listen(5000, owner=proc)
        sock = yield ls.accept()
        while len(got) < len(sizes):
            try:
                got.append((yield sock.recv()))
            except StoreClosed:
                return

    def client(proc):
        sock = yield proc.node.connect(cluster.node(0).addr(5000), owner=proc)
        for i, size in enumerate(sizes):
            sock.send(i, size=size)
        yield engine.timeout(10.0)

    cluster.node(0).spawn("server", server)
    cluster.node(1).spawn("client", client)
    engine.run(until=100.0)
    assert got == list(range(len(sizes)))


# ---------------------------------------------------------------------------
# V2 exactness under random single-failure schedules
# ---------------------------------------------------------------------------

@given(
    seed=st.integers(0, 10**6),
    kill_times=st.lists(st.floats(min_value=5.0, max_value=150.0),
                        max_size=2, unique=True).map(sorted).filter(
        lambda ts: all(b - a > 20.0 for a, b in zip(ts, ts[1:]))),
)
@SLOW
def test_v2_checksum_exact_under_spaced_kills(seed, kill_times):
    """Sequential (spaced) failures: V2 must always recover exactly.
    Spacing matters — sender-based volatile logs make *concurrent*
    failures unrecoverable by design."""
    config = VclConfig(n_procs=4, n_machines=6, footprint=6e7, protocol="v2",
                       timeout=900.0)
    wl = BTWorkload(n_procs=4, niters=12, total_compute=240.0, footprint=6e7)
    rt = VclRuntime(config, wl.make_factory(), seed=seed)

    for i, t in enumerate(kill_times):
        def mk(t=t, i=i):
            def do():
                procs = rt.cluster.all_procs("vdaemon")
                if procs:
                    procs[(i * 7 + 1) % len(procs)].kill()
            rt.engine.call_at(t, do)
        mk()
    res = rt.run()
    failures = getattr(rt.engine, "process_failures", [])
    assert not failures, [(p.name, p.error) for p in failures]
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("verify_ok") == 1
