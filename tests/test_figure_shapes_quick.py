"""Quick-scale assertions of the paper's figure *shapes* inside the
regular test suite (the benchmarks re-check them at larger scale).

Scales are small (BT-9/BT-16) and compute budgets short, but the
protocol-duration quantities that shape every figure (checkpoint-wave
length, recovery, injection pacing) stay at their calibrated values,
so the qualitative claims carry over.
"""

import pytest

from repro.experiments import (fig5_frequency, fig7_simultaneous,
                               fig9_synchronized, fig11_state_sync)

# enough work that the 40 s fault period undercuts checkpoint progress
# (the stall regime needs several wave cycles before completion)
QUICK = dict(niters=40, total_compute=2400.0)
SCALE = dict(n_procs=16, n_machines=20)


@pytest.mark.slow
def test_fig5_shape_frequency_kills_progress():
    result = fig5_frequency.run_experiment(
        reps=2, periods=(None, 60, 40), **SCALE, **QUICK)
    nofault = result.row("no faults")
    slow = result.row("every 60 sec")
    fast = result.row("every 40 sec")
    # no faults: everything terminates, no bug, fastest
    assert nofault.pct_terminated == 100.0
    assert slow.mean_exec_time > nofault.mean_exec_time
    # single faults never trigger the dispatcher bug
    for row in result.rows:
        assert row.pct_buggy == 0.0
    # At 40 s the fault inter-arrival undercuts wave completion.  At
    # this reduced scale the regime is marginal (it depends on the
    # fault-vs-wave phase): runs either stall outright or limp home
    # several times slower than fault-free — both are the paper's
    # "too many faults to progress" signature.
    severely_degraded = (fast.mean_exec_time is not None
                         and fast.mean_exec_time
                         > 4 * nofault.mean_exec_time)
    assert fast.pct_non_terminating > 0.0 or severely_degraded


@pytest.mark.slow
def test_fig7_shape_bug_needs_overlapping_faults():
    result = fig7_simultaneous.run_experiment(
        reps=3, batches=(1, 5), **SCALE, **QUICK)
    assert result.row("1 fault").pct_buggy == 0.0
    assert result.row("5 faults").pct_buggy > 0.0


@pytest.mark.slow
def test_fig9_shape_recovery_synchronized_faults_race():
    result = fig9_synchronized.run_experiment(
        reps=8, scales=(16,), include_baseline=False, **QUICK)
    row = result.rows[0]
    # the bug appears, but not in every run: it is a race on the
    # recovered daemon's registration
    assert 0.0 < row.pct_buggy < 100.0
    # every non-frozen run terminates (2 faults can't stall BT)
    assert row.pct_terminated + row.pct_buggy == 100.0


@pytest.mark.slow
def test_fig11_shape_state_synchronized_always_freezes():
    buggy = fig11_state_sync.run_experiment(
        reps=3, scales=(9,), include_baseline=False, **QUICK)
    assert buggy.rows[0].pct_buggy == 100.0
    fixed = fig11_state_sync.run_experiment(
        reps=3, scales=(9,), include_baseline=False, bug_compat=False,
        **QUICK)
    assert fixed.rows[0].pct_terminated == 100.0
