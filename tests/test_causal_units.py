"""Unit tests of causal message tracing: graph recording + caps,
stamping helpers, the critical-path walk on synthetic documents, the
trace-diff renderer, and the campaign rollup exposition formats."""

import json

from repro.analysis.classify import classify_run
from repro.analysis.critpath import (critical_paths, critpath_rollup,
                                     render_critical_paths)
from repro.analysis.tracediff import trace_diff_text
from repro.analysis.traces import Trace
from repro.obs.causal import (MAX_CAUSAL_NODES, CausalGraph, adopt,
                              causal_kind_rollup, ctx_of, derive, parent_of,
                              stamp)
from repro.obs.report import aggregate_obs, html_report, openmetrics_text
from repro.simkernel.engine import Engine


class Msg:
    """A stand-in for a wire message (plain object, stampable)."""


# ---------------------------------------------------------------------------
# graph recording
# ---------------------------------------------------------------------------

def test_mint_ids_are_per_site_and_deterministic():
    g = CausalGraph()
    assert g.mint_id("r0", 1.5) == "r0.1.1500000"
    assert g.mint_id("r0", 1.5) == "r0.2.1500000"
    assert g.mint_id("disp", 1.5) == "disp.1.1500000"
    assert g.minted == 3


def test_transmit_records_nodes_and_edges():
    g = CausalGraph()
    tid = g.mint_id("r0", 1.0)
    g.on_transmit((tid, None), "AppMessage", "m1", "m2", 1.0, 1.25, 1024)
    # a derived message parented on the first one's receive
    tid2 = g.mint_id("r1", 1.25)
    g.on_transmit((tid2, f"{tid}:r"), "EvLog", "m2", "svc1", 1.25, 1.5, 64)
    assert [n[0] for n in g.nodes] == \
        [f"{tid}:s", f"{tid}:r", f"{tid2}:s", f"{tid2}:r"]
    assert [e[2] for e in g.edges] == ["net", "net", "causal"]
    causal_edge = g.edges[2]
    assert g.nodes[causal_edge[0]][0] == f"{tid}:r"
    assert g.nodes[causal_edge[1]][0] == f"{tid2}:s"


def test_broadcast_fanout_gets_unique_node_ids():
    g = CausalGraph()
    tid = g.mint_id("disp", 2.0)
    for i in range(3):
        g.on_transmit((tid, None), "CommandMap", "svc0", f"m{i}",
                      2.0, 2.1, 256)
    ids = [n[0] for n in g.nodes]
    assert len(ids) == len(set(ids)) == 6
    assert f"{tid}:s" in ids and f"{tid}#1:s" in ids and f"{tid}#2:s" in ids


def test_node_cap_and_drop_accounting():
    g = CausalGraph(max_nodes=3)
    t1 = g.mint_id("r0", 1.0)
    g.on_transmit((t1, None), "A", "m1", "m2", 1.0, 1.1, 1)
    t2 = g.mint_id("r0", 2.0)
    g.on_transmit((t2, f"{t1}:r"), "B", "m2", "m3", 2.0, 2.1, 1)
    # t2's send fit (index 2) but its recv hit the cap: the net edge is
    # dropped rather than dangling; the causal edge (both ends live)
    # survives
    assert len(g.nodes) == 3
    assert g.dropped_nodes == 1
    assert g.dropped_edges == 1
    assert all(e[0] < 3 and e[1] < 3 for e in g.edges)
    doc = g.to_doc()
    assert doc["dropped_nodes"] == 1 and doc["dropped_edges"] == 1
    assert doc["minted"] == 2
    assert MAX_CAUSAL_NODES == 50000


# ---------------------------------------------------------------------------
# stamping helpers
# ---------------------------------------------------------------------------

def test_stamp_is_inert_without_a_recorder():
    eng = Engine(seed=0)
    assert eng.obs is None
    msg = Msg()
    stamp(eng, msg, "r0")
    assert ctx_of(msg) is None and parent_of(msg) is None


def test_stamp_derive_adopt_with_recorder():
    from repro.obs import Obs
    eng = Engine(seed=0)
    eng.obs = Obs(eng)
    root = Msg()
    stamp(eng, root, "r0")
    tid, parent = ctx_of(root)
    assert tid.startswith("r0.1.") and parent is None
    assert parent_of(root) == f"{tid}:r"
    child = Msg()
    derive(eng, child, "evlog", root)
    ctid, cparent = ctx_of(child)
    assert ctid.startswith("evlog.1.") and cparent == f"{tid}:r"
    envelope = Msg()
    adopt(envelope, root)
    assert ctx_of(envelope) == ctx_of(root)     # same trace, verbatim
    unstamped = Msg()
    adopt(Msg(), unstamped)                     # no ctx: no-op, no error


def test_causal_kind_rollup():
    doc = {"causal": {
        "nodes": [["a:s", 1.0, "m1", "DataMsg"], ["a:r", 1.5, "m2", "DataMsg"],
                  ["b:s", 2.0, "m2", "EvLog"], ["b:r", 2.25, "svc1", "EvLog"]],
        "edges": [[0, 1, "net"], [2, 3, "net"], [1, 2, "causal"]],
    }}
    roll = causal_kind_rollup(doc)
    assert roll == {"DataMsg": {"count": 1, "seconds": 0.5},
                    "EvLog": {"count": 1, "seconds": 0.25}}
    assert causal_kind_rollup(None) == {}
    assert causal_kind_rollup({"version": 1, "spans": []}) == {}


# ---------------------------------------------------------------------------
# critical paths on synthetic documents
# ---------------------------------------------------------------------------

def _recovery_doc():
    return {"spans": [
        [10.0, 10.5, "detect", "m1", {"node": "m1"}],
        [10.5, 12.0, "relaunch", "svc0", {"epoch": 1, "mode": "full"}],
        [12.0, 13.0, "restore", "m1", {"rank": 0, "epoch": 1}],
        [13.0, 13.4, "replay", "m1", {"rank": 0}],
    ], "causal": {
        "nodes": [["f.1.0:s", 11.0, "svc0", "FetchReq"],
                  ["f.1.0:r", 11.2, "svc2", "FetchReq"],
                  ["g.1.0:s", 11.2, "svc2", "FetchResp"],
                  ["g.1.0:r", 12.9, "m1", "FetchResp"]],
        "edges": [[0, 1, "net"], [2, 3, "net"], [1, 2, "causal"]],
    }}


def test_critical_path_segments_tile_exactly():
    rows = critical_paths(_recovery_doc())
    assert len(rows) == 1
    row = rows[0]
    assert [s["phase"] for s in row["segments"]] == \
        ["detect", "relaunch", "restore", "replay"]
    # the acceptance identity: exact, not approximate
    assert sum(s["dur"] for s in row["segments"]) == row["recovery"]
    assert row["attribution"]["restore_transfer"]["count"] == 2
    # backward walk: latest receive in the window chains to the fetch
    assert row["chain"] == ["f.1.0:s", "f.1.0:r", "g.1.0:s", "g.1.0:r"]
    roll = critpath_rollup(_recovery_doc())
    assert roll["recovery"] == round(row["recovery"], 9)
    assert "recovery" in render_critical_paths(_recovery_doc())


def test_zero_recovery_is_safe_everywhere():
    empty = {"version": 2, "spans": [], "dropped_spans": 0,
             "truncated_spans": 0,
             "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
             "causal": {"nodes": [], "edges": [], "dropped_nodes": 0,
                        "dropped_edges": 0, "minted": 0},
             "exec": {}}
    assert critical_paths(empty) == []
    assert critpath_rollup(empty) == {}
    assert "no recovery" in render_critical_paths(empty)
    # classify: observed fault-free -> empty rollup, not None, no crash
    trace = Trace()
    trace.record(100.0, "app_done")
    verdict = classify_run(trace, timeout=1500.0, obs=empty)
    assert verdict.critpath_segments == {}
    assert classify_run(trace, timeout=1500.0, obs=None) \
        .critpath_segments is None
    # trace-diff: empty vs empty and empty vs faulted both render
    text = trace_diff_text(empty, empty)
    assert "no recoveries on either side" in text
    text = trace_diff_text(empty, _recovery_doc())
    assert "0 vs 1 epochs" in text
    assert trace_diff_text(None, None)          # observation off: fine


def test_trace_diff_is_deterministic():
    a, b = _recovery_doc(), _recovery_doc()
    b["spans"][1] = [10.5, 14.0, "relaunch", "svc0",
                     {"epoch": 1, "mode": "full"}]
    one = trace_diff_text(a, b, label_a="x", label_b="y")
    two = trace_diff_text(a, b, label_a="x", label_b="y")
    assert one == two
    assert "+2.000" in one                       # relaunch grew by 2 s


# ---------------------------------------------------------------------------
# campaign rollup
# ---------------------------------------------------------------------------

def test_openmetrics_and_html_report():
    docs = [_recovery_doc(), _recovery_doc(), None]
    agg = aggregate_obs(docs)
    assert agg["trials"] == 2 and agg["epochs"] == 2
    text = openmetrics_text(agg)
    assert text.endswith("# EOF\n")
    assert 'repro_critpath_seconds_total{phase="relaunch"} 3' in text
    assert 'repro_wire_count_total{kind="FetchReq"} 2' in text
    # byte-determinism of both renderings
    assert text == openmetrics_text(aggregate_obs(docs))
    page = html_report(agg, title="t<e>st")
    assert page == html_report(aggregate_obs(docs), title="t<e>st")
    assert "t&lt;e&gt;st" in page
    assert json.dumps(agg, sort_keys=True) \
        == json.dumps(aggregate_obs(docs), sort_keys=True)
