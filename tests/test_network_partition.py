"""Connection-closure semantics under partition (satellite of the
netmodel PR): cut links sever blocked receivers after one latency, the
dispatcher's socket-closure failure detector fires on the false
suspicion, heals never resurrect dead connections — and a partition
trial is bit-for-bit deterministic across serial/parallel/cache
execution for every protocol.
"""

import pytest

from repro.cluster.network import ConnectionRefused
from repro.experiments.harness import TrialSetup
from repro.experiments.resultstore import run_result_to_dict
from repro.experiments.runner import TrialRunner
from repro.explore import generators
from repro.explore.generators import Heal, TimedPartition, render_plan
from repro.mpichv import protocols
from repro.simkernel.store import StoreClosed

LATENCY = 1e-4


def _pair(engine, cluster):
    out = {}

    def server(proc):
        ls = proc.node.listen(5000, owner=proc)
        out["server"] = yield ls.accept()
        yield engine.event()

    def client(proc):
        out["client"] = yield proc.node.connect(
            cluster.node(0).addr(5000), owner=proc)
        yield engine.event()

    cluster.node(0).spawn("server", server)
    cluster.node(1).spawn("client", client)
    engine.run(until=1.0)
    return out["server"], out["client"]


# ---------------------------------------------------------------------------
# socket-level cut semantics
# ---------------------------------------------------------------------------

def test_blocked_recv_across_cut_fails_after_one_latency(engine, cluster):
    srv, cli = _pair(engine, cluster)
    closed_at = []

    def reader():
        try:
            yield srv.recv()
        except StoreClosed:
            closed_at.append(engine.now)

    engine.process(reader())
    start = engine.now
    engine.call_later(0.5, lambda: cluster.network.cut_link("node0", "node1"))
    engine.run(until=start + 2.0)
    assert closed_at and closed_at[0] == pytest.approx(start + 0.5 + LATENCY)
    # both directions die: the client end is severed too
    assert cli._rx.closed and not cli.peer_alive


def test_packets_into_a_cut_vanish(engine, cluster):
    srv, cli = _pair(engine, cluster)
    cluster.network.cut_link("node0", "node1")
    before = cluster.network.messages_sent
    cli.send("lost", size=10)       # no error: the packet just vanishes
    engine.run(until=engine.now + 1.0)
    assert cluster.network.messages_sent == before


def test_heal_before_severance_wins_the_race(engine, cluster):
    """A cut healed within one latency leaves the connection untouched
    — the failure detector never observes anything."""
    srv, cli = _pair(engine, cluster)
    got = []

    def reader():
        while True:
            try:
                got.append((yield srv.recv()))
            except StoreClosed:
                got.append("CLOSED")
                return

    engine.process(reader())
    network = cluster.network

    def cut_and_heal():
        network.cut_link("node0", "node1")
        network.heal()              # same instant: before the notification

    engine.call_later(0.5, cut_and_heal)
    engine.call_later(0.6, lambda: cli.send("alive", size=10))
    engine.run(until=engine.now + 2.0)
    assert got == ["alive"]


def test_heal_does_not_resurrect_severed_connections(engine, cluster):
    srv, cli = _pair(engine, cluster)
    network = cluster.network
    engine.call_later(0.5, lambda: network.cut_link("node0", "node1"))
    engine.call_later(1.0, network.heal)    # long after the severance
    engine.run(until=engine.now + 2.0)
    assert not network.partitioned
    assert srv._rx.closed and cli._rx.closed   # severed for good
    # sends to the dead endpoint vanish rather than reviving it
    before = network.messages_sent
    cli.send("ghost", size=10)
    engine.run(until=engine.now + 1.0)
    assert network.messages_sent == before


def test_connect_across_cut_is_refused_then_heals(engine, cluster):
    outcomes = []
    cluster.node(0).listen(5000)
    cluster.network.cut_link("node0", "node1")

    def client(proc):
        try:
            yield proc.node.connect(cluster.node(0).addr(5000), owner=proc)
            outcomes.append("connected")
        except ConnectionRefused:
            outcomes.append("refused")

    cluster.node(1).spawn("client1", client)
    engine.run(until=engine.now + 1.0)
    cluster.network.heal()
    cluster.node(1).spawn("client2", client)
    engine.run(until=engine.now + 1.0)
    assert outcomes == ["refused", "connected"]


def test_isolation_accumulates_into_one_minority_side(engine, cluster):
    network = cluster.network
    network.isolate("node0")
    network.isolate("node2")
    assert not network.reachable("node0", "node1")
    assert not network.reachable("node2", "node3")
    assert network.reachable("node0", "node2")    # minority side coheres
    assert network.reachable("node1", "node3")


def test_partition_groups_cut_pairwise_and_spare_hosts_stay(engine, cluster):
    network = cluster.network
    network.partition([["node0", "node1"], ["node2"]])
    assert not network.reachable("node0", "node2")
    assert not network.reachable("node1", "node2")
    assert network.reachable("node0", "node1")
    assert network.reachable("node3", "node0")    # unlisted: untouched
    assert network.reachable("node3", "node2")
    with pytest.raises(ValueError):
        network.cut_link("node0", "node0")


# ---------------------------------------------------------------------------
# runtime integration: the false-suspicion adversary
# ---------------------------------------------------------------------------

CAL = dict(workload="ring", niters=40, total_compute=1280.0, footprint=1e8)


def _partition_setup(protocol, plan):
    return TrialSetup(
        n_procs=4, n_machines=6, protocol=protocol, timeout=150.0,
        scenario_source=render_plan(plan),
        master_daemon=generators.MASTER,
        node_daemon=generators.NODE_DAEMON, **CAL)


def test_partition_triggers_the_failure_detector():
    """Cutting a live rank's machine makes the dispatcher detect a
    failure of a process that never died (false suspicion)."""
    plan = (TimedPartition(at=15, targets=(0,)), Heal(after=10))
    setup = _partition_setup("vcl", plan)
    runtime, deployment = setup.build(seed=5)
    result = runtime.run()
    assert deployment.total_partitions_injected() >= 1
    assert result.failures_detected > 0          # nobody was killed
    assert result.restarts >= 1
    assert result.outcome.value == "non-terminating"


def test_healed_before_detection_is_invisible_to_the_protocol():
    plan = (TimedPartition(at=15, targets=(0,)), Heal(after=0))
    golden = TrialSetup(n_procs=4, n_machines=6, protocol="vcl",
                        timeout=150.0, **CAL).run_one(5)
    result = _partition_setup("vcl", plan).run_one(5)
    assert result.failures_detected == 0
    assert result.outcome.value == "terminated"
    assert result.app_signature == golden.app_signature


def test_service_node_partition_heals_and_run_completes():
    """Cutting a checkpoint server degrades checkpointing but must not
    break a fault-free run (and the heal restores connectivity)."""
    plan = (TimedPartition(at=15, targets=(), services=("svc2",)),
            Heal(after=20))
    golden = TrialSetup(n_procs=4, n_machines=6, protocol="vcl",
                        timeout=150.0, **CAL).run_one(5)
    result = _partition_setup("vcl", plan).run_one(5)
    assert result.outcome.value == "terminated"
    assert result.app_signature == golden.app_signature


@pytest.mark.slow
def test_partition_scenario_parallel_serial_cache_bit_for_bit(tmp_path):
    """One partition trial per protocol: workers=2, workers=1 and a
    warm cache must agree on the full wire document."""
    plan = (TimedPartition(at=15, targets=(0,)), Heal(after=10))
    jobs = [(_partition_setup(protocol, plan), 31 + i)
            for i, protocol in enumerate(sorted(protocols.available()))]
    serial = TrialRunner(workers=1).run_jobs(jobs)
    parallel = TrialRunner(workers=2).run_jobs(jobs)
    cold = TrialRunner(workers=2, cache_dir=str(tmp_path))
    cold_results = cold.run_jobs(jobs)
    warm = TrialRunner(workers=1, cache_dir=str(tmp_path))
    warm_results = warm.run_jobs(jobs)
    assert warm.stats.executed == 0 and warm.stats.cache_hits == len(jobs)
    docs = [[run_result_to_dict(r) for r in batch]
            for batch in (serial, parallel, cold_results, warm_results)]
    assert docs[0] == docs[1] == docs[2] == docs[3]
    # the trials actually exercised the partition machinery
    assert all(doc["failures_detected"] > 0 for doc in docs[0])
