"""Unit tests for the FAIL tokenizer."""

import pytest

from repro.fail.lang.errors import FailSyntaxError
from repro.fail.lang.lexer import tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def values(src):
    return [t.value for t in tokenize(src) if t.kind != "eof"]


def test_empty_source_is_just_eof():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind == "eof"


def test_keywords_vs_identifiers():
    toks = tokenize("Daemon ADV1 node onload myvar")
    assert [t.kind for t in toks[:-1]] == ["keyword", "ident", "keyword",
                                           "keyword", "ident"]


def test_numbers():
    toks = tokenize("12 345")
    assert [(t.kind, t.value) for t in toks[:-1]] == [("number", "12"),
                                                      ("number", "345")]


def test_multichar_operators_maximal_munch():
    assert values("<> == <= >= && || -> < >") == [
        "<>", "==", "<=", ">=", "&&", "||", "->", "<", ">"]


def test_receive_and_send_markers():
    assert values("?ok !crash") == ["?", "ok", "!", "crash"]


def test_line_comments_skipped():
    assert values("a // comment here\n b") == ["a", "b"]


def test_block_comments_skipped_with_newlines():
    toks = tokenize("a /* multi\nline\ncomment */ b")
    assert [t.value for t in toks[:-1]] == ["a", "b"]
    assert toks[1].line == 3


def test_line_and_column_tracking():
    toks = tokenize("ab\n  cd")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_unexpected_character_reports_position():
    with pytest.raises(FailSyntaxError) as err:
        tokenize("a\n@")
    assert "line 2" in str(err.value)


def test_underscore_identifiers():
    assert values("g_timer FAIL_RANDOM nb_crash") == [
        "g_timer", "FAIL_RANDOM", "nb_crash"]


def test_brackets_and_punctuation():
    assert values("G1[ran];{},():") == [
        "G1", "[", "ran", "]", ";", "{", "}", ",", "(", ")", ":"]
