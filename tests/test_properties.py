"""Property-based tests (hypothesis) on the system's core invariants.

The heavyweight one is Chandy-Lamport consistency: for *any* schedule
of task kills, a run that terminates must produce the exact integer
checksum — i.e. every message was delivered exactly once across all
rollbacks (no orphans, no duplicates) — and with the fixed dispatcher
the run must always terminate (never freeze).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.classify import Outcome
from repro.fail.lang import ast
from repro.fail.lang.parser import parse_fail
from repro.fail.lang.pretty import pretty_print
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads.masterworker import MasterWorkerWorkload
from repro.workloads.nas_bt import BTWorkload
from repro.workloads.ring import RingWorkload

SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# FAIL language: parser/printer round-trip on generated ASTs
# ---------------------------------------------------------------------------

_idents = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in {"timer", "onload", "onexit", "onerror", "before",
                        "node", "int", "time", "always", "goto", "halt",
                        "stop", "on", "group"})


def _exprs(var_names):
    base = st.one_of(
        st.integers(min_value=0, max_value=999).map(ast.Num),
        st.sampled_from(sorted(var_names)).map(ast.Var) if var_names
        else st.integers(min_value=0, max_value=9).map(ast.Num),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*", "==", "<>", "<", "<=",
                                       ">", ">=", "&&", "||"]),
                      children, children).map(lambda t: ast.BinOp(*t)),
            st.tuples(st.sampled_from(["-", "!"]), children).map(
                lambda t: ast.UnOp(*t)),
            st.tuples(children, children).map(lambda t: ast.RandCall(*t)),
        )

    return st.recursive(base, extend, max_leaves=8)


@st.composite
def _daemons(draw):
    var_names = draw(st.sets(_idents, min_size=1, max_size=3))
    exprs = _exprs(var_names)
    node_ids = sorted(draw(st.sets(st.integers(1, 9), min_size=1, max_size=3)))
    dests = st.one_of(
        st.just(ast.DestName("P1")),
        st.just(ast.DestSender()),
        exprs.map(lambda e: ast.DestIndex("G1", e)),
    )
    actions = st.one_of(
        st.just(ast.HaltAction()),
        st.just(ast.StopAction()),
        st.just(ast.ContinueAction()),
        st.sampled_from(node_ids).map(ast.GotoAction),
        st.tuples(_idents, dests).map(lambda t: ast.SendAction(*t)),
        st.tuples(st.sampled_from(sorted(var_names)), exprs).map(
            lambda t: ast.AssignAction(*t)),
    )
    triggers = st.one_of(
        st.just(ast.OnLoad()), st.just(ast.OnExit()), st.just(ast.OnError()),
        _idents.map(ast.MsgTrigger), _idents.map(ast.Before),
    )

    def node(nid, with_timer):
        always = draw(st.lists(
            st.tuples(_idents, exprs).map(lambda t: ast.AlwaysDecl(*t)),
            max_size=2))
        timers = ([ast.TimerDecl("g_timer", draw(exprs))] if with_timer else [])
        trigger_pool = (st.one_of(triggers, st.just(ast.TimerTrigger()))
                        if with_timer else triggers)
        transitions = draw(st.lists(
            st.tuples(trigger_pool,
                      st.one_of(st.none(), exprs),
                      st.lists(actions, min_size=1, max_size=3)).map(
                lambda t: ast.Transition(t[0], t[1], tuple(t[2]))),
            max_size=3))
        return ast.NodeDef(node_id=nid, always=tuple(always),
                           timers=tuple(timers), transitions=tuple(transitions))

    nodes = tuple(node(nid, draw(st.booleans())) for nid in node_ids)
    variables = tuple(ast.VarDecl(name, draw(exprs))
                      for name in sorted(var_names))
    return ast.DaemonDef(name="Gen", variables=variables, nodes=nodes)


@given(_daemons())
@settings(max_examples=150, deadline=None)
def test_pretty_parse_roundtrip(daemon):
    program = ast.Program(daemons=(daemon,))
    source = pretty_print(program)
    assert parse_fail(source) == program


# ---------------------------------------------------------------------------
# engine determinism under random workloads
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_runtime_deterministic_per_seed(seed, n):
    def build():
        config = VclConfig(n_procs=n * n, n_machines=n * n + 2, footprint=4e7)
        wl = BTWorkload(n_procs=n * n, niters=5, total_compute=50.0,
                        footprint=4e7)
        return VclRuntime(config, wl.make_factory(), seed=seed)

    first = build().run(timeout=200.0)
    second = build().run(timeout=200.0)
    assert first.sim_time == second.sim_time
    assert first.events_processed == second.events_processed
    assert first.outcome == second.outcome


# ---------------------------------------------------------------------------
# Chandy-Lamport consistency under arbitrary kill schedules
# ---------------------------------------------------------------------------

def _run_with_kills(workload, n_procs, kill_times, seed,
                    bug_compat=False, timeout=900.0):
    config = VclConfig(n_procs=n_procs, n_machines=n_procs + 2,
                       footprint=6e7, bug_compat=bug_compat, timeout=timeout)
    rt = VclRuntime(config, workload.make_factory(), seed=seed)

    def make_killer(t, pick):
        def do():
            procs = rt.cluster.all_procs("vdaemon")
            if procs:
                procs[pick % len(procs)].kill()
        rt.engine.call_at(t, do)

    for i, t in enumerate(kill_times):
        make_killer(t, i * 13 + 1)
    res = rt.run()
    failures = getattr(rt.engine, "process_failures", [])
    return res, failures


@given(
    seed=st.integers(0, 10**6),
    kill_times=st.lists(st.floats(min_value=5.0, max_value=200.0),
                        max_size=3, unique=True),
)
@SLOW
def test_bt_checksum_exact_under_any_kill_schedule(seed, kill_times):
    """Terminated => verified: the BT checksum is integer-exact, so any
    lost or duplicated message across rollbacks fails the run (a
    verification failure raises inside the app and shows up in
    process_failures)."""
    wl = BTWorkload(n_procs=4, niters=12, total_compute=240.0, footprint=6e7)
    res, failures = _run_with_kills(wl, 4, sorted(kill_times), seed)
    assert not failures, [(p.name, p.error) for p in failures]
    if res.outcome is Outcome.TERMINATED:
        assert res.trace.count("verify_ok") == 1


@given(
    seed=st.integers(0, 10**6),
    kill_times=st.lists(st.floats(min_value=5.0, max_value=150.0),
                        max_size=2, unique=True),
)
@SLOW
def test_ring_token_exact_under_any_kill_schedule(seed, kill_times):
    wl = RingWorkload(n_procs=4, rounds=60, work_per_hop=1.0)
    res, failures = _run_with_kills(wl, 4, sorted(kill_times), seed)
    assert not failures, [(p.name, p.error) for p in failures]


@given(
    seed=st.integers(0, 10**6),
    kill_times=st.lists(st.floats(min_value=5.0, max_value=120.0),
                        max_size=2, unique=True),
)
@SLOW
def test_masterworker_dedup_under_any_kill_schedule(seed, kill_times):
    wl = MasterWorkerWorkload(n_procs=4, n_tasks=20, work_per_task=2.0)
    res, failures = _run_with_kills(wl, 4, sorted(kill_times), seed)
    assert not failures, [(p.name, p.error) for p in failures]


@given(
    seed=st.integers(0, 10**6),
    kill_times=st.lists(st.floats(min_value=5.0, max_value=200.0),
                        min_size=1, max_size=3, unique=True),
)
@SLOW
def test_fixed_dispatcher_never_freezes(seed, kill_times):
    """With the epoch-tagged (fixed) dispatcher, no kill schedule may
    produce a frozen run: every run either terminates or is still
    making protocol progress at the timeout."""
    wl = BTWorkload(n_procs=4, niters=12, total_compute=240.0, footprint=6e7)
    res, failures = _run_with_kills(wl, 4, sorted(kill_times), seed,
                                    bug_compat=False)
    assert not failures
    assert res.outcome is not Outcome.BUGGY
    if res.outcome is Outcome.TERMINATED:
        assert res.trace.count("verify_ok") == 1
