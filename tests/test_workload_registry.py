"""Tests for the workload registry and its harness plumbing.

``TrialSetup`` selects workloads by name through
:mod:`repro.workloads`, so ring/masterworker campaigns run through the
same experiment machinery as BT — including the parallel runner and
the result cache, which must stay bit-for-bit deterministic for every
protocol/workload combination.
"""

import pytest

from repro.analysis.classify import Outcome
from repro.experiments.compare_protocols import run_experiment
from repro.experiments.harness import TrialSetup
from repro.experiments.runner import TrialRunner
from repro.workloads import (available_workloads, build_workload,
                             register_workload, unregister_workload)
from repro.workloads.masterworker import MasterWorkerWorkload
from repro.workloads.ring import RingWorkload


def test_registry_lists_builtins():
    assert {"bt", "ring", "masterworker"} <= set(available_workloads())


def test_unknown_workload_raises_with_candidates():
    with pytest.raises(ValueError, match="unknown workload"):
        build_workload("nope", n_procs=4, niters=10, total_compute=100.0,
                       footprint=1e8)


def test_unknown_workload_raises_at_trial_build_time():
    setup = TrialSetup(n_procs=4, n_machines=6, workload="nope")
    with pytest.raises(ValueError, match="unknown workload"):
        setup.build(seed=0)


def test_double_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_workload("bt", lambda **kw: None)


def test_bt_calibration_knobs_overridable_via_params():
    """Regression: overriding a bt calibration knob through
    ``workload_params`` used to raise 'multiple values for niters'."""
    wl = build_workload("bt", n_procs=4, niters=10, total_compute=100.0,
                        footprint=1e8, params={"niters": 5,
                                               "face_fraction": 0.05})
    assert wl.niters == 5 and wl.face_fraction == 0.05


def test_workload_params_reach_the_workload():
    wl = build_workload("ring", n_procs=4, niters=10, total_compute=100.0,
                        footprint=1e8, params={"rounds": 7,
                                               "work_per_hop": 0.25})
    assert isinstance(wl, RingWorkload)
    assert wl.rounds == 7 and wl.work_per_hop == 0.25
    wl = build_workload("masterworker", n_procs=4, niters=10,
                        total_compute=100.0, footprint=1e8,
                        params={"n_tasks": 12})
    assert isinstance(wl, MasterWorkerWorkload)
    assert wl.n_tasks == 12


@pytest.mark.parametrize("workload,protocol", [
    ("ring", "vcl"),
    ("ring", "v1"),
    ("masterworker", "v2"),
    ("masterworker", "v1"),
])
def test_non_bt_campaigns_run_through_the_harness(workload, protocol):
    setup = TrialSetup(
        n_procs=4, n_machines=6, protocol=protocol, workload=workload,
        niters=12, total_compute=96.0, footprint=1e8,
        workload_params={"rounds": 12} if workload == "ring" else {},
    )
    res = setup.run_one(seed=7)
    assert res.outcome is Outcome.TERMINATED


def test_registering_a_workload_extends_every_campaign():
    class TinyRing(RingWorkload):
        pass

    register_workload(
        "tinyring",
        lambda *, n_procs, niters, total_compute, footprint, params:
            TinyRing(n_procs=n_procs, rounds=4, **params))
    try:
        setup = TrialSetup(n_procs=3, n_machines=5, workload="tinyring")
        res = setup.run_one(seed=1)
        assert res.outcome is Outcome.TERMINATED
    finally:
        unregister_workload("tinyring")


# ---------------------------------------------------------------------------
# determinism of v1 campaigns through the parallel runner (acceptance)
# ---------------------------------------------------------------------------

def row_signature(row):
    return [(r.outcome, r.exec_time, r.failures_detected, r.restarts,
             r.bug_events, r.waves_committed, r.sim_time,
             r.events_processed) for r in row.results]


def test_v1_campaign_parallel_equals_serial_and_cache_identical(tmp_path):
    kwargs = dict(reps=2, periods=(None, 45), protocols=("v1",),
                  n_procs=4, n_machines=6,
                  niters=10, total_compute=180.0, footprint=1e8)
    serial = run_experiment(runner=TrialRunner(workers=1), **kwargs)
    parallel = run_experiment(runner=TrialRunner(workers=4), **kwargs)
    warmer = TrialRunner(workers=2, cache_dir=str(tmp_path))
    first = run_experiment(runner=warmer, **kwargs)
    cached_runner = TrialRunner(workers=2, cache_dir=str(tmp_path))
    cached = run_experiment(runner=cached_runner, **kwargs)

    for other in (parallel, first, cached):
        assert [r.label for r in serial.rows] == [r.label for r in other.rows]
        for row_a, row_b in zip(serial.rows, other.rows):
            assert row_signature(row_a) == row_signature(row_b), row_a.label
    # the second cached pass executed nothing
    assert cached_runner.stats.executed == 0
    assert cached_runner.stats.cache_hits == sum(r.n for r in cached.rows)
    # and the faulty row really exercised v1 recovery
    assert serial.row("v1 1/45s").total_faults > 0
