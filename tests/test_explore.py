"""Tests for the ``repro.explore`` subsystem: generators, oracles,
campaign determinism, the planted-bug acceptance path, and shrinking.
"""

import dataclasses

import pytest

from repro.analysis.classify import Outcome, RunVerdict
from repro.analysis.traces import Trace
from repro.experiments.harness import TrialSetup
from repro.experiments.runner import trial_key
import repro.explore.shrink as shrinklib
from repro.explore import generators, oracles
from repro.explore.campaign import (ExploreConfig, derive_seed, quick_config,
                                    replay_scenario, run_campaign)
from repro.explore.generators import (GeneratorContext, KillReporter,
                                      RekillRace, TimedKill)
from repro.mpichv import protocols
from repro.mpichv.runtime import RunResult


def make_result(outcome=Outcome.TERMINATED, exec_time=100.0,
                failures=0, signature=160, violations=(),
                last_activity=None):
    if outcome is not Outcome.TERMINATED:
        exec_time = None
    return RunResult(
        verdict=RunVerdict(outcome=outcome, exec_time=exec_time,
                           last_activity=last_activity if last_activity
                           is not None else (exec_time or 250.0),
                           reason="test"),
        trace=Trace(keep=False), sim_time=300.0, restarts=failures,
        bug_events=0, failures_detected=failures, waves_committed=0,
        events_processed=1000, app_signature=signature,
        invariant_violations=list(violations))


GOLDEN = make_result()


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------

def test_generation_is_deterministic_and_seed_sensitive():
    ctx = GeneratorContext(n_machines=7, n_busy=4)
    for family in generators.FAMILIES:
        a = generators.generate(family, 0, 13, ctx)
        b = generators.generate(family, 0, 13, ctx)
        assert a == b
        c = generators.generate(family, 1, 13, ctx)
        d = generators.generate(family, 0, 14, ctx)
        assert a.source != c.source or a.plan != c.plan
        assert (a.plan, a.source) != (d.plan, d.source)


def test_generate_suite_covers_each_family_in_canonical_order():
    ctx = GeneratorContext(n_machines=7, n_busy=4)
    suite = generators.generate_suite(list(generators.FAMILIES), 2, 5, ctx)
    assert [s.family for s in suite] == [
        f for f in sorted(generators.FAMILIES) for _ in range(2)]
    assert len({s.source for s in suite}) == len(suite)


def test_unknown_family_raises():
    with pytest.raises(ValueError, match="unknown generator family"):
        generators.generate("nope", 0, 0, GeneratorContext(n_machines=4))


def test_targets_stay_on_busy_machines_mostly():
    ctx = GeneratorContext(n_machines=20, n_busy=4)
    targets = []
    for i in range(30):
        scenario = generators.generate("random_schedule", i, 3, ctx)
        targets += [s.target for s in scenario.plan]
    assert all(0 <= t < 20 for t in targets)
    busy = sum(1 for t in targets if t < 4)
    assert busy >= 0.7 * len(targets)


# ---------------------------------------------------------------------------
# cache keying (satellite: no aliasing across generated schedules)
# ---------------------------------------------------------------------------

def test_trial_key_covers_scenario_meta_and_overrides():
    base = TrialSetup(n_procs=4, n_machines=7, scenario_source="X",
                      scenario_meta={"family": "burst", "digest": "aa"})
    same = dataclasses.replace(base)
    other_meta = dataclasses.replace(
        base, scenario_meta={"family": "burst", "digest": "bb"})
    other_knob = dataclasses.replace(
        base, config_overrides={"cm_replay": False})
    assert trial_key(base, 1) == trial_key(same, 1)
    assert trial_key(base, 1) != trial_key(other_meta, 1)
    assert trial_key(base, 1) != trial_key(other_knob, 1)


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------

def test_oracles_all_pass_on_clean_terminated_run():
    reports = oracles.run_oracles(make_result(), GOLDEN)
    assert oracles.failed_names(reports) == []
    assert [r.name for r in reports] == list(oracles.ORACLE_NAMES)


def test_buggy_run_fails_no_deadlock():
    reports = oracles.run_oracles(
        make_result(outcome=Outcome.BUGGY, failures=2), GOLDEN)
    assert "no_deadlock" in oracles.failed_names(reports)


def test_checksum_mismatch_fails_golden_result():
    reports = oracles.run_oracles(make_result(signature=999), GOLDEN)
    assert "golden_result" in oracles.failed_names(reports)


def test_missing_golden_fails_golden_result():
    reports = oracles.run_oracles(make_result(), None)
    assert "golden_result" in oracles.failed_names(reports)


def test_invariant_violations_surface():
    reports = oracles.run_oracles(
        make_result(violations=["v1 CM 0: log gap"]), GOLDEN)
    assert "protocol_invariants" in oracles.failed_names(reports)


def test_finite_plan_nontermination_fails_progress():
    result = make_result(outcome=Outcome.NON_TERMINATING, failures=2)
    plan = (TimedKill(10, 0), TimedKill(30, 1))
    reports = oracles.run_oracles(result, GOLDEN, plan=plan, protocol="vcl")
    assert "progress" in oracles.failed_names(reports)


def test_simultaneous_overload_is_excused_for_v2_only():
    result = make_result(outcome=Outcome.NON_TERMINATING, failures=3)
    burst = (TimedKill(40, 0), TimedKill(40, 1), TimedKill(40, 2))
    assert oracles.simultaneous_batch(burst) == 3
    excused = oracles.run_oracles(result, GOLDEN, plan=burst, protocol="v2")
    assert "progress" not in oracles.failed_names(excused)
    strict = oracles.run_oracles(result, GOLDEN, plan=burst, protocol="v1")
    assert "progress" in oracles.failed_names(strict)


def test_reactive_overlap_counts_as_concurrent_failures():
    """A rekill of a *different* machine lands while the first victim
    is still replaying — concurrent failures v2 documents it may not
    survive; re-killing the same machine keeps one failure in flight."""
    cross = (TimedKill(40, 0), RekillRace(1))
    same = (TimedKill(40, 0), RekillRace(0))
    reporter = (TimedKill(40, 0), KillReporter())
    assert oracles.max_concurrent_failures(cross) == 2
    assert oracles.max_concurrent_failures(same) == 1
    assert oracles.max_concurrent_failures(reporter) == 1
    stalled = make_result(outcome=Outcome.NON_TERMINATING, failures=2)
    excused = oracles.run_oracles(stalled, GOLDEN, plan=cross, protocol="v2")
    assert "progress" not in oracles.failed_names(excused)
    strict = oracles.run_oracles(stalled, GOLDEN, plan=same, protocol="v2")
    assert "progress" in oracles.failed_names(strict)


def test_config_overrides_may_name_mirrored_fields():
    """--override may target any VclConfig attribute, including the
    ones TrialSetup passes explicitly; the override wins."""
    setup = TrialSetup(n_procs=4, n_machines=7,
                       config_overrides={"footprint": 5e7,
                                         "ckpt_period": 10.0})
    runtime, _dep = setup.build(1)
    assert runtime.config.footprint == 5e7
    assert runtime.config.ckpt_period == 10.0


# ---------------------------------------------------------------------------
# protocol invariant hooks (fabricated service state)
# ---------------------------------------------------------------------------

class _FakeProc:
    def __init__(self, **tags):
        self.tags = dict(tags)


class _FakeRuntime:
    def __init__(self, protocol, **kw):
        from repro.mpichv.config import VclConfig
        self.config = VclConfig(n_procs=4, n_machines=7, protocol=protocol)
        self.eventlog_proc = kw.get("eventlog_proc")
        self.cm_procs = kw.get("cm_procs", [])
        self.scheduler_state = kw.get("scheduler_state")
        self.dispatcher_state = kw.get("dispatcher_state")


def test_v2_invariant_catches_event_log_gap():
    from repro.mpichv.eventlog import EventLogState

    state = EventLogState()
    state.append(0, 1, 3, 1)
    state.append(0, 2, 3, 2)
    runtime = _FakeRuntime("v2", eventlog_proc=_FakeProc(evlog_state=state))
    assert protocols.check_invariants(runtime) == []
    state.events[0].append((5, 3, 4))          # positions 2 -> 5: a hole
    violations = protocols.check_invariants(runtime)
    assert violations and "log gap" in violations[0]


def test_v1_invariant_catches_out_of_order_channel():
    from repro.mpi.message import AppMessage
    from repro.mpichv.channelmemory import ChannelMemoryState

    state = ChannelMemoryState()
    msg = AppMessage(1, 0, 5, None, 64)
    state.record(1, 0, 1, msg)
    state.record(1, 0, 2, msg)
    runtime = _FakeRuntime("v1", cm_procs=[_FakeProc(cm_state=state)])
    assert protocols.check_invariants(runtime) == []
    state.logs[0].append((3, 1, 1, msg))       # seq went backwards
    violations = protocols.check_invariants(runtime)
    assert violations and "out of order" in violations[0]


def test_vcl_invariant_catches_uncommitted_restore():
    from repro.mpichv.dispatcher import DispatcherState
    from repro.mpichv.scheduler import SchedulerState

    sched = SchedulerState()
    disp = DispatcherState()
    runtime = _FakeRuntime("vcl", scheduler_state=sched,
                           dispatcher_state=disp)
    assert protocols.check_invariants(runtime) == []
    disp.restore_wave = 3                      # never committed
    violations = protocols.check_invariants(runtime)
    assert violations and "never committed" in violations[0]


def test_invariants_skipped_without_fault_tolerance():
    runtime = _FakeRuntime("v2")
    runtime.config.fault_tolerant = False
    runtime.eventlog_proc = None
    assert protocols.check_invariants(runtime) == []


# ---------------------------------------------------------------------------
# the campaign (acceptance criteria of the PR)
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_quick_campaign_seed7_is_deterministic_and_clean():
    """`python -m repro explore --quick --seed 7`: byte-identical
    verdict tables, every registered protocol, >= 4 generator
    families, zero oracle failures on the happy path."""
    first = run_campaign(quick_config(seed=7))
    second = run_campaign(quick_config(seed=7))
    assert first.render_table() == second.render_table()
    assert first.to_json() == second.to_json()
    assert {v.protocol for v in first.rows} == set(protocols.available())
    assert len(first.family_counts()) >= 4
    assert all(count >= 1 for count in first.family_counts().values())
    assert first.failures == []


@pytest.mark.slow
def test_broken_cm_replay_is_caught_and_shrunk(tmp_path):
    """Disabling Channel-Memory replay (the planted protocol bug) must
    be caught by an oracle and delta-debugged to a minimal ``.fail``
    reproducer that still fails when replayed."""
    cfg = quick_config(seed=7, protocols=("v1",),
                       families=("random_schedule",),
                       config_overrides={"cm_replay": False},
                       max_shrinks=1)
    result = run_campaign(cfg, out_dir=str(tmp_path))
    assert result.failures, "the planted bug escaped every oracle"
    assert result.shrinks, "no shrink attempted"
    report = result.shrinks[0]
    original = report.verdict.scenario.plan
    assert len(report.outcome.plan) < len(original) \
        or report.outcome.n_machines < cfg.n_machines
    assert len(report.outcome.plan) == 1      # one kill suffices
    # the emitted artifact replays to a failure under the same knob
    assert report.fail_file is not None
    with open(report.fail_file, "r", encoding="utf-8") as fh:
        source = fh.read()
    _res, reports = replay_scenario(
        source, cfg, "v1", "ring", report.verdict.trial_seed)
    assert oracles.failed_names(reports)
    assert "python -m repro explore --replay" in report.command
    assert "cm_replay=False" in report.command


@pytest.mark.slow
def test_campaign_results_cache_cleanly(tmp_path):
    """A re-run of the same campaign against the same cache executes
    zero new trials and reproduces the verdict table byte-for-byte."""
    from repro.experiments.runner import TrialRunner

    cfg = ExploreConfig(seed=3, protocols=("vcl",), workloads=("ring",),
                        families=("burst", "targeted"), budget=2)
    r1 = TrialRunner(cache_dir=str(tmp_path))
    first = run_campaign(cfg, runner=r1)
    assert r1.stats.cache_hits == 0
    r2 = TrialRunner(cache_dir=str(tmp_path))
    second = run_campaign(cfg, runner=r2)
    assert r2.stats.executed == 0
    assert first.render_table() == second.render_table()


def test_derive_seed_is_stable_and_label_sensitive():
    assert derive_seed(7, "burst", 0) == derive_seed(7, "burst", 0)
    assert derive_seed(7, "burst", 0) != derive_seed(7, "burst", 1)
    assert derive_seed(7, "burst", 0) != derive_seed(8, "burst", 0)


# ---------------------------------------------------------------------------
# the v2 double-kill regression the explorer originally found
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_v2_survives_rekilling_the_same_rank():
    """Killing one rank twice used to corrupt the stable event log
    (replay never advanced ``next_pos_to_log``, so re-logged events
    collided with existing positions and were dropped) and deadlock
    the second recovery.  Found by the explore campaign; pinned here."""
    cfg = quick_config(seed=0)
    from repro.explore.campaign import _base_setup

    src = generators.render_plan((TimedKill(40, 0), TimedKill(55, 0),
                                  TimedKill(70, 0)))
    setup = dataclasses.replace(
        _base_setup(cfg, "ring", "v2"), scenario_source=src,
        timeout=600.0, master_daemon=generators.MASTER,
        node_daemon=generators.NODE_DAEMON)
    result = setup.run_one(12345)
    assert result.outcome is Outcome.TERMINATED
    assert result.failures_detected == 3
    assert result.app_signature is not None
    assert result.invariant_violations == []


@pytest.mark.slow
def test_v2_replay_mode_survives_resends_racing_the_history_fetch():
    """A peer's logged-message resend that beats the EvFetch response
    must stay staged: an early arrival used to flip replay mode off
    (replay_events still empty), deliver through fresh logging at
    colliding positions, and deadlock once the real history arrived.
    The v2_replay_done record must never precede v2_replay_start."""
    cfg = quick_config(seed=0)
    from repro.explore.campaign import _base_setup

    src = generators.render_plan((TimedKill(40, 0),))
    setup = dataclasses.replace(
        _base_setup(cfg, "ring", "v2"), scenario_source=src,
        timeout=600.0, keep_trace=True, master_daemon=generators.MASTER,
        node_daemon=generators.NODE_DAEMON)
    result = setup.run_one(2024)
    assert result.outcome is Outcome.TERMINATED
    starts = [r.t for r in result.trace.records
              if r.kind == "v2_replay_start"]
    dones = [r.t for r in result.trace.records if r.kind == "v2_replay_done"]
    assert len(dones) <= len(starts)
    for start_t, done_t in zip(starts, dones):
        assert done_t >= start_t


# ---------------------------------------------------------------------------
# shrinking (pure-logic, no simulation)
# ---------------------------------------------------------------------------

def test_shrink_reduces_to_the_single_triggering_step():
    plan = (TimedKill(17, 3), TimedKill(23, 2), RekillRace(1),
            KillReporter(), TimedKill(61, 2))

    def still_fails(candidate, n_machines):
        # failure needs at least one kill of machine 2 on >= 4 machines
        return n_machines >= 4 and any(
            isinstance(s, TimedKill) and s.target == 2 for s in candidate)

    out = shrinklib.shrink(plan, 9, still_fails=still_fails,
                           min_machines=4, budget=64)
    assert len(out.plan) == 1
    assert isinstance(out.plan[0], TimedKill)
    assert out.plan[0].target == 2
    assert out.plan[0].at % 10 == 0            # time rounded to a grid
    assert out.n_machines == 4
    assert out.trials_used <= 64
    assert out.reductions
    # deterministic: same inputs, same minimal scenario
    again = shrinklib.shrink(plan, 9, still_fails=still_fails,
                             min_machines=4, budget=64)
    assert again.plan == out.plan and again.n_machines == out.n_machines


def test_shrink_respects_budget():
    plan = tuple(TimedKill(10 + i, i % 3) for i in range(6))
    calls = []

    def still_fails(candidate, n_machines):
        calls.append(1)
        return True                    # everything fails: maximal search

    out = shrinklib.shrink(plan, 8, still_fails=still_fails,
                           min_machines=4, budget=5)
    assert len(calls) <= 5
    assert len(out.plan) >= 1


def test_shrink_source_is_compilable():
    from repro.fail.compile import compile_scenario

    out = shrinklib.ShrinkResult(plan=(TimedKill(30, 0),), n_machines=4,
                                 trials_used=0, reductions=[])
    compile_scenario(out.source)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_explore_command_registered():
    from repro.__main__ import COMMANDS
    assert "explore" in COMMANDS
    assert COMMANDS["explore"][0] == "repro.explore.campaign"
