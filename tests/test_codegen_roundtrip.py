"""Compile → codegen → exec round-trip (satellite of the explore PR).

For every builtin paper scenario *and* every generated explorer
scenario, the Python source :mod:`repro.fail.codegen` emits must build
a machine behaviorally identical to the directly compiled one: same
node trajectory, same variables, same outputs, for the same randomized
event sequences.  The generators lean on this path (their scenarios
are rendered text compiled twice), so the equivalence is load-bearing,
not just documentation.
"""

import random

from repro.explore import generators
from repro.fail import builtin_scenarios as scenarios
from repro.fail.lang import ast
from repro.fail.lang.parser import parse_fail
from repro.fail.machine import Machine

from tests.test_fail_codegen import compile_handler
from tests.test_fail_machine import FakeCtx

BUILTINS = {
    "fig4": scenarios.FIG4_NODE_DAEMON,
    "fig5a": scenarios.FIG5A_MASTER,
    "fig7a": scenarios.FIG7A_MASTER,
    "fig8a": scenarios.FIG8A_MASTER,
    "fig8b": scenarios.FIG8B_NODE_DAEMON,
    "fig10a": scenarios.FIG10A_MASTER,
    "fig10b": scenarios.FIG10B_NODE_DAEMON,
}

PARAMS = {"X": 3, "N": 5}


def event_alphabet(daemon: ast.DaemonDef):
    """Every event kind the daemon could conceivably receive."""
    events = [("onload", None), ("onexit", None), ("onerror", None),
              ("timer", None), ("msg", "bogus")]
    for node in daemon.nodes:
        for tr in node.transitions:
            if isinstance(tr.trigger, ast.MsgTrigger):
                events.append(("msg", tr.trigger.name))
            elif isinstance(tr.trigger, ast.Before):
                events.append(("before", tr.trigger.func))
    # deterministic order regardless of set/dict iteration
    return sorted(set(events), key=repr)


def drive_both(source: str, label: str, seed: int, steps: int = 60):
    """Same event script into interpreter and generated code; states
    and outputs must agree after every single event."""
    prog = parse_fail(source)
    daemon = prog.daemons[0]
    interp_ctx = FakeCtx(seed=seed)
    interp = Machine(daemon, PARAMS, interp_ctx, "T")
    gen, gen_ctx = compile_handler(source, params=PARAMS, seed=seed)
    assert gen.node == interp.node_id, f"{label}: initial node differs"

    alphabet = event_alphabet(daemon)
    declared = [v.name for v in daemon.variables]
    script_rng = random.Random(f"codegen-roundtrip:{label}:{seed}")
    for step in range(steps):
        kind, arg = alphabet[script_rng.randrange(len(alphabet))]
        where = f"{label} step {step}: {kind}({arg})"
        if kind == "msg":
            fired = interp.handle((kind, arg, "P1"))
            gen_fired = gen.handle(kind, arg, "P1")
        elif kind == "before":
            fired = interp.handle((kind, arg))
            gen_fired = gen.handle(kind, arg)
        elif kind == "timer":
            # deliver a *fresh* timer tick (the staleness filter is
            # interpreter plumbing the generated class does not carry)
            fired = interp.handle((kind, interp.entry_gen))
            gen_fired = gen.handle(kind)
        else:
            fired = interp.handle((kind,))
            gen_fired = gen.handle(kind)
        assert fired == gen_fired, where
        assert gen.node == interp.node_id, where
        # the generated class folds PARAMS into vars; compare the
        # daemon-declared variables, which is where behaviour lives
        assert {k: gen.vars[k] for k in declared} == interp.vars, where
        assert gen.always_vars == interp.always_vars, where
        assert gen_ctx.sent == interp_ctx.sent, where
        assert gen_ctx.halted == interp_ctx.halted, where
        assert gen_ctx.stopped == interp_ctx.stopped, where
        assert gen_ctx.continued == interp_ctx.continued, where
        assert gen_ctx.partitions == interp_ctx.partitions, where
        assert gen_ctx.healed == interp_ctx.healed, where
        assert gen_ctx.timers == [d for d, _gen in interp_ctx.timers], where


def test_builtin_scenarios_roundtrip():
    for label, source in BUILTINS.items():
        for seed in (0, 1, 2):
            drive_both(source, label, seed)


def test_generated_scenarios_roundtrip():
    """Both daemons of every generated family behave identically when
    compiled directly and through the codegen path."""
    from repro.fail import build as fb

    ctx = generators.GeneratorContext(n_machines=6, n_busy=4)
    for family in generators.FAMILIES:
        scenario = generators.generate(family, 0, 11, ctx)
        prog = parse_fail(scenario.source)
        for daemon in prog.daemons:
            # drive each daemon in isolation: re-render just its text
            source = fb.render(fb.program(daemon))
            drive_both(source, f"{family}:{daemon.name}", seed=3)
