"""Unit tests for MPICH-V components: config, checkpoint stores,
checkpoint server state, scheduler bookkeeping."""

import pytest

from repro.mpi.message import AppMessage
from repro.mpichv.checkpoint import (CheckpointImage, LocalCkptStore,
                                     node_local_store)
from repro.mpichv.ckptserver import CkptServerState
from repro.mpichv.config import TimingModel, VclConfig
from repro.mpichv import wire


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------

def test_default_machines_include_spares():
    cfg = VclConfig(n_procs=49)
    assert cfg.n_machines == 53      # the paper's BT-49 deployment


def test_image_size_scales_inversely_with_procs():
    small = VclConfig(n_procs=25)
    big = VclConfig(n_procs=64)
    assert small.image_size > big.image_size
    assert small.footprint == big.footprint


@pytest.mark.parametrize("bad", [
    dict(n_procs=0),
    dict(n_procs=8, n_machines=4),
    dict(n_procs=4, ckpt_period=0.0),
])
def test_config_validation(bad):
    with pytest.raises(ValueError):
        VclConfig(**bad)


def test_timing_uniform_uses_rng():
    import random
    timing = TimingModel()
    rng = random.Random(0)
    values = {timing.uniform(rng, (1.0, 2.0)) for _ in range(10)}
    assert all(1.0 <= v <= 2.0 for v in values)
    assert len(values) > 1


def test_service_node_count():
    cfg = VclConfig(n_procs=4, n_ckpt_servers=3)
    assert cfg.n_service_nodes == 5   # dispatcher + scheduler + 3 servers


# ---------------------------------------------------------------------------
# checkpoint images / local store
# ---------------------------------------------------------------------------

def _img(rank=0, wave=1, size=100):
    return CheckpointImage(rank=rank, wave=wave, state={"iter": wave},
                           logs=[], img_size=size, complete=True)


def test_snapshot_is_independent_copy():
    img = _img()
    snap = img.snapshot_of()
    snap.state["iter"] = 999
    assert img.state["iter"] == 1


def test_local_store_two_slot_alternation():
    store = LocalCkptStore()
    for wave in (1, 2, 3):
        store.store(_img(wave=wave))
    assert store.waves_for(0) == [2, 3]
    assert store.load(0, 1) is None
    assert store.load(0, 3).wave == 3


def test_local_store_per_rank_isolation():
    store = LocalCkptStore()
    store.store(_img(rank=0, wave=1))
    store.store(_img(rank=1, wave=1))
    assert store.load(0, 1).rank == 0
    assert store.load(1, 1).rank == 1


def test_node_local_store_survives_and_is_cached(engine, cluster):
    node = cluster.node(0)
    store = node_local_store(node)
    store.store(_img())
    assert node_local_store(node) is store
    assert node_local_store(node).load(0, 1) is not None


# ---------------------------------------------------------------------------
# checkpoint server state
# ---------------------------------------------------------------------------

def test_server_commit_and_lookup():
    srv = CkptServerState()
    srv.store_image(_img(rank=0, wave=1))
    assert srv.lookup(0, None) is None          # nothing committed yet
    srv.commit(1)
    assert srv.lookup(0, None).wave == 1
    assert srv.lookup(0, 1).wave == 1
    assert srv.lookup(0, 2) is None
    assert srv.lookup(9, 1) is None


def test_server_two_wave_retention():
    srv = CkptServerState()
    for wave in (1, 2, 3):
        srv.store_image(_img(wave=wave))
    assert sorted(srv.images) == [2, 3]


def test_server_log_append_after_image():
    srv = CkptServerState()
    img = CheckpointImage(rank=0, wave=1, state={}, logs=[], img_size=10)
    srv.store_image(img)
    msg = AppMessage(src=1, dst=0, tag=5, payload="x")
    srv.append_logs(0, 1, [msg])
    assert srv.images[1][0].logs == [msg]
    assert srv.images[1][0].complete


def test_server_log_append_before_image_stashed():
    """The message connection can outrun the pipelined data connection."""
    srv = CkptServerState()
    msg = AppMessage(src=1, dst=0, tag=5, payload="x")
    srv.append_logs(0, 1, [msg])
    img = CheckpointImage(rank=0, wave=1, state={}, logs=[], img_size=10)
    srv.store_image(img)
    assert srv.images[1][0].logs == [msg]
    assert srv.images[1][0].complete


# ---------------------------------------------------------------------------
# wire messages
# ---------------------------------------------------------------------------

def test_wire_sizes():
    app = AppMessage(src=0, dst=1, tag=1, payload=None, size=5000)
    assert wire.DataMsg(app).size == 5000
    store = wire.CkptStore(rank=0, wave=1, state={}, logs=[], img_size=123)
    assert store.size == 123
    append = wire.CkptLogAppend(rank=0, wave=1, logs=[app])
    assert append.size == 5000
    assert wire.CkptLogAppend(rank=0, wave=1, logs=[]).size == 64
    assert wire.Marker(wave=1, src_rank=-1).size == 64
