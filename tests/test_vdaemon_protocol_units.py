"""Direct unit tests of the Vcl daemon's Chandy-Lamport bookkeeping.

The integration tests exercise these paths through full runs; here we
drive a single :class:`VclDaemon` core by hand (inside a minimal
cluster) to pin down marker semantics precisely: duplicate markers,
late-channel logging windows, blocking-mode hold-back, scheduler acks.
"""

from repro.cluster.cluster import Cluster
from repro.mpi.endpoint import UNMATCHED_KEY
from repro.mpi.message import AppMessage
from repro.mpichv import wire
from repro.mpichv.config import VclConfig
from repro.mpichv.vdaemon import VclDaemon
from repro.simkernel.engine import Engine


class FakeSock:
    """Records sends; looks closed/open like a real socket."""

    def __init__(self):
        self.sent = []
        self.closed = False

    def send(self, msg, size=None):
        self.sent.append(msg)


def make_core(n=3, blocking=False, seed=0):
    engine = Engine(seed=seed)
    cluster = Cluster(engine, 1, name_prefix="m")
    def idle(p):
        yield engine.event()

    proc = cluster.node(0).spawn("vdaemon.0", idle, notify=False)
    config = VclConfig(n_procs=n, n_machines=n + 1, footprint=3e8,
                       blocking=blocking)

    def app(ep):
        yield ep.engine.event()

    core = VclDaemon(proc, config, rank=0, epoch=0, incarnation=1,
                     app_factory=app)
    core.peers = {r: FakeSock() for r in range(1, n)}
    core.sched_sock = FakeSock()
    core.ckpt_sock = FakeSock()
    return engine, core


def msg(src, tag=1, payload=0):
    return AppMessage(src=src, dst=0, tag=tag, payload=payload, size=64)


def test_marker_starts_checkpoint_and_relays():
    engine, core = make_core()
    core.handle_marker(wire.Marker(wave=1, src_rank=-1))
    assert core.logging_wave == 1
    assert core.pending_markers == {1, 2}
    for peer_sock in core.peers.values():
        relayed = [m for m in peer_sock.sent if isinstance(m, wire.Marker)]
        assert len(relayed) == 1 and relayed[0].wave == 1


def test_duplicate_and_stale_markers_ignored():
    engine, core = make_core()
    core.handle_marker(wire.Marker(wave=1, src_rank=-1))
    core.handle_marker(wire.Marker(wave=1, src_rank=1))
    core.handle_marker(wire.Marker(wave=1, src_rank=2))
    assert core.current_wave == 1
    assert core.logging_wave is None
    # stale re-delivery changes nothing
    core.handle_marker(wire.Marker(wave=1, src_rank=1))
    assert core.current_wave == 1
    relays = sum(1 for s in core.peers.values()
                 for m in s.sent if isinstance(m, wire.Marker))
    assert relays == 2      # one per peer, once


def test_peer_marker_first_excludes_that_channel():
    engine, core = make_core()
    core.handle_marker(wire.Marker(wave=1, src_rank=2))
    assert core.pending_markers == {1}


def test_late_channel_messages_logged_and_delivered():
    engine, core = make_core()
    core.handle_marker(wire.Marker(wave=1, src_rank=-1))
    # message from rank 1 (marker still pending): channel state
    core.on_data(1, msg(1, tag=10))
    # message from rank 2 after its marker arrived: not channel state
    core.handle_marker(wire.Marker(wave=1, src_rank=2))
    core.on_data(2, msg(2, tag=11))
    assert [m.tag for m in core.late_logs] == [10]
    # both were delivered live to the application buffer
    assert [m.tag for m in core.app_state[UNMATCHED_KEY]] == [10, 11]
    # closing the window ships the logs and completes the image
    core.handle_marker(wire.Marker(wave=1, src_rank=1))
    assert core.wave_img.complete
    assert [m.tag for m in core.wave_img.logs] == [10]
    appends = [m for m in core.ckpt_sock.sent
               if isinstance(m, wire.CkptLogAppend)]
    assert len(appends) == 1 and [m.tag for m in appends[0].logs] == [10]


def test_snapshot_contains_delivered_unconsumed_messages():
    engine, core = make_core()
    core.on_data(1, msg(1, tag=5))          # delivered before the wave
    core.handle_marker(wire.Marker(wave=1, src_rank=-1))
    assert [m.tag for m in core.wave_img.state[UNMATCHED_KEY]] == [5]
    assert core.wave_img.logs == []          # in state, not channel logs


def test_sched_ack_requires_two_server_acks_and_logging_end():
    engine, core = make_core()
    core.handle_marker(wire.Marker(wave=1, src_rank=-1))
    core._note_store_ack(1)
    core._note_store_ack(1)
    assert not any(isinstance(m, wire.SchedAck) for m in core.sched_sock.sent)
    core.handle_marker(wire.Marker(wave=1, src_rank=1))
    core.handle_marker(wire.Marker(wave=1, src_rank=2))
    # _finish_logging sent the append; its ack is the third
    core._note_store_ack(1)
    acks = [m for m in core.sched_sock.sent if isinstance(m, wire.SchedAck)]
    assert len(acks) >= 1 and acks[0].wave == 1


def test_blocking_holds_post_flush_messages_out_of_snapshot():
    engine, core = make_core(blocking=True)
    core.handle_marker(wire.Marker(wave=1, src_rank=-1))
    core.on_data(1, msg(1, tag=20))          # pre-flush: channel content
    core.handle_marker(wire.Marker(wave=1, src_rank=1))
    core.on_data(1, msg(1, tag=21))          # rank 1 already flushed: held
    assert [m.tag for m in core.post_flush] == [21]
    assert [m.tag for m in core.app_state[UNMATCHED_KEY]] == [20]
    core.handle_marker(wire.Marker(wave=1, src_rank=2))
    # snapshot taken at flush: includes 20, excludes 21
    assert [m.tag for m in core.wave_img.state[UNMATCHED_KEY]] == [20]
    # and 21 was released to the live application afterwards
    assert [m.tag for m in core.app_state[UNMATCHED_KEY]] == [20, 21]
    assert core.post_flush == []


def test_blocking_single_server_ack_suffices():
    engine, core = make_core(blocking=True)
    core.handle_marker(wire.Marker(wave=1, src_rank=-1))
    core.handle_marker(wire.Marker(wave=1, src_rank=1))
    core.handle_marker(wire.Marker(wave=1, src_rank=2))
    core._note_store_ack(1)
    acks = [m for m in core.sched_sock.sent if isinstance(m, wire.SchedAck)]
    assert len(acks) == 1


def test_self_send_bypasses_network():
    engine, core = make_core()
    core.app_send(AppMessage(src=0, dst=0, tag=9, payload="x", size=10))
    assert [m.tag for m in core.app_state[UNMATCHED_KEY]] == [9]
    assert all(not s.sent for s in core.peers.values())


def test_send_to_dead_peer_dropped():
    engine, core = make_core()
    core.peers[1].closed = True
    core.app_send(AppMessage(src=0, dst=1, tag=9, payload="x", size=10))
    assert core.peers[1].sent == []
