"""Unit tests for nodes, unix processes and the debugger surface."""

import pytest

from repro.cluster.cluster import SSH_LATENCY, Cluster
from repro.cluster.unixproc import ProcState
from repro.simkernel.engine import Engine


def idle(proc):
    yield proc.engine.event()


def test_spawn_and_exit_states(engine, cluster):
    def main(proc):
        yield engine.timeout(1.0)
        return 7

    p = cluster.node(0).spawn("app", main)
    assert p.state is ProcState.RUNNING
    engine.run()
    assert p.state is ProcState.EXITED
    assert p.exit_value == 7
    assert p not in cluster.node(0).procs


def test_thread_crash_makes_process_errored(engine, cluster):
    def main(proc):
        yield engine.timeout(1.0)
        raise RuntimeError("app bug")

    p = cluster.node(0).spawn("app", main)
    engine.run()
    assert p.state is ProcState.ERRORED
    assert isinstance(p.exit_error, RuntimeError)


def test_kill_reports_killed_and_runs_exit_listeners(engine, cluster):
    events = []
    p = cluster.node(0).spawn("app", idle)
    p.on_exit(lambda proc, how: events.append(how))
    engine.call_later(1.0, p.kill)
    engine.run(until=2.0)
    assert p.state is ProcState.KILLED
    assert events == [ProcState.KILLED]


def test_helper_threads_die_with_process(engine, cluster):
    ticks = []

    def main(proc):
        def helper():
            while True:
                yield engine.timeout(1.0)
                ticks.append(engine.now)
        proc.spawn_thread(helper())
        yield engine.event()

    p = cluster.node(0).spawn("app", main)
    engine.call_later(2.5, p.kill)
    engine.run(until=10.0)
    assert ticks == [1.0, 2.0]


def test_helper_crash_takes_down_process(engine, cluster):
    def main(proc):
        def bad():
            yield engine.timeout(1.0)
            raise ValueError("helper bug")
        proc.spawn_thread(bad())
        yield engine.event()

    p = cluster.node(0).spawn("app", main)
    engine.run(until=5.0)
    assert p.state is ProcState.ERRORED


def test_spawn_thread_on_dead_process_rejected(engine, cluster):
    p = cluster.node(0).spawn("app", idle)
    engine.call_later(1.0, p.kill)
    engine.run(until=2.0)
    with pytest.raises(RuntimeError):
        p.spawn_thread(idle(p))


def test_exit_vs_abort_listener_distinction(engine, cluster):
    how = []
    p1 = cluster.node(0).spawn("a", idle)
    p1.on_exit(lambda proc, final: how.append(("a", final)))
    p2 = cluster.node(0).spawn("b", idle)
    p2.on_exit(lambda proc, final: how.append(("b", final)))
    engine.call_later(1.0, p1.exit)
    engine.call_later(1.0, p2.abort)
    engine.run(until=2.0)
    assert ("a", ProcState.EXITED) in how
    assert ("b", ProcState.ERRORED) in how


def test_suspend_resume_freezes_all_threads(engine, cluster):
    ticks = []

    def main(proc):
        def t():
            while True:
                yield engine.timeout(1.0)
                ticks.append(engine.now)
        proc.spawn_thread(t())
        yield engine.event()

    p = cluster.node(0).spawn("app", main)
    engine.call_later(2.5, p.suspend)
    engine.call_later(6.0, p.resume_all)
    engine.run(until=8.5)
    assert 3.0 not in ticks and 6.0 in ticks


def test_trace_point_fast_path_no_breakpoint(engine, cluster):
    reached = []

    def main(proc):
        yield from proc.trace_point("fn")
        reached.append(engine.now)
        yield engine.timeout(0.1)

    cluster.node(0).spawn("app", main)
    engine.run()
    assert reached == [0.0]


def test_trace_point_blocks_until_handler_releases(engine, cluster):
    reached = []

    def main(proc):
        yield from proc.trace_point("fn")
        reached.append(engine.now)

    def handler(proc, fn, resume):
        engine.call_later(3.0, resume.succeed)

    p = cluster.node(0).spawn("app", main, notify=False)
    p.set_breakpoint("fn", handler)
    engine.run()
    assert reached == [3.0]


def test_trace_point_kill_at_breakpoint(engine, cluster):
    reached = []

    def main(proc):
        yield from proc.trace_point("fn")
        reached.append("past")

    def handler(proc, fn, resume):
        proc.kill()

    p = cluster.node(0).spawn("app", main, notify=False)
    p.set_breakpoint("fn", handler)
    engine.run(until=1.0)
    assert reached == []
    assert p.state is ProcState.KILLED


def test_on_spawn_listener_and_notify_flag(engine, cluster):
    seen = []
    cluster.node(0).on_spawn(lambda proc: seen.append(proc.name))
    cluster.node(0).spawn("visible", idle)
    cluster.node(0).spawn("hidden", idle, notify=False)
    assert seen == ["visible"]


def test_remote_spawn_has_ssh_latency(engine, cluster):
    started = []
    cluster.remote_spawn(1, "remote", idle, done=lambda p: started.append(engine.now))
    engine.run(until=1.0)
    assert started == [pytest.approx(SSH_LATENCY)]


def test_node_lookup_by_name_and_index(cluster):
    assert cluster.node(0) is cluster.node("node0")
    with pytest.raises(KeyError):
        cluster.node("nope")


def test_add_node_unique_names(cluster):
    extra = cluster.add_node("svc0")
    assert cluster.node("svc0") is extra
    with pytest.raises(ValueError):
        cluster.add_node("svc0")


def test_running_filter(engine, cluster):
    cluster.node(0).spawn("vdaemon.1", idle)
    cluster.node(0).spawn("other", idle)
    names = [p.name for p in cluster.node(0).running("vdaemon")]
    assert names == ["vdaemon.1"]


def test_kill_all(engine, cluster):
    procs = [cluster.node(0).spawn(f"p{i}", idle) for i in range(3)]
    cluster.node(0).kill_all()
    assert all(p.state is ProcState.KILLED for p in procs)
    assert cluster.node(0).procs == []


def test_cluster_requires_nodes():
    with pytest.raises(ValueError):
        Cluster(Engine(seed=0), 0)
