"""Integration tests for the FAIL-MPI platform pieces (daemon, bus,
debugger, deployment) against a live runtime."""

import pytest

from repro.cluster.unixproc import ProcState
from repro.fail import builtin_scenarios as scenarios
from repro.fail.bus import FailBus
from repro.fail.debugger import Debugger
from repro.fail.lang.errors import FailSemanticError
from repro.fail.scenario import Binding, deploy_scenario
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads.ring import RingWorkload


def small_runtime(n=4, seed=0, **cfg):
    config = VclConfig(n_procs=n, n_machines=n + 2, footprint=4e7, **cfg)
    wl = RingWorkload(n_procs=n, rounds=40, work_per_hop=1.0)
    return VclRuntime(config, wl.make_factory(), seed=seed)


# ---------------------------------------------------------------------------
# Debugger
# ---------------------------------------------------------------------------

def test_debugger_halt_requires_attachment(engine, cluster):
    dbg = Debugger()
    assert not dbg.halt()

    def idle(proc):
        yield engine.event()

    p = cluster.node(0).spawn("app", idle)
    dbg.attach(p)
    assert dbg.attached
    assert dbg.halt()
    assert p.state is ProcState.KILLED
    assert not dbg.attached


def test_debugger_attach_pid(engine, cluster):
    def idle(proc):
        yield engine.event()

    p = cluster.node(0).spawn("app", idle)
    dbg = Debugger()
    assert dbg.attach_pid(cluster.node(0), p.pid)
    assert dbg.target is p
    assert not dbg.attach_pid(cluster.node(0), 424242)


def test_debugger_breakpoint_applies_to_future_attach(engine, cluster):
    hits = []

    def app(proc):
        yield from proc.trace_point("fn")
        yield engine.timeout(0.1)

    dbg = Debugger()
    dbg.set_breakpoint("fn", lambda proc, fn, resume: (hits.append(fn),
                                                       resume.succeed()))
    p = cluster.node(0).spawn("app", app)
    dbg.attach(p)
    engine.run(until=1.0)
    assert hits == ["fn"]


# ---------------------------------------------------------------------------
# Bus
# ---------------------------------------------------------------------------

def test_bus_delivery_and_loss_accounting(engine):
    bus = FailBus(engine, latency=0.001)
    got = []

    class Sink:
        def deliver_msg(self, msg, src):
            got.append((engine.now, msg, src))

    bus.register("A", Sink())
    bus.send("B", "A", "hello")
    bus.send("B", "missing", "lost")
    engine.run()
    assert got == [(pytest.approx(0.001), "hello", "B")]
    assert bus.messages_sent == 2
    assert bus.messages_lost == 1


def test_bus_duplicate_registration_rejected(engine):
    bus = FailBus(engine)

    class Sink:
        def deliver_msg(self, msg, src):
            pass

    bus.register("A", Sink())
    with pytest.raises(ValueError):
        bus.register("A", Sink())


# ---------------------------------------------------------------------------
# Deployment
# ---------------------------------------------------------------------------

def test_deploy_creates_instances_and_groups():
    rt = small_runtime()
    dep = deploy_scenario(
        rt, scenarios.FIG5A_MASTER + scenarios.FIG4_NODE_DAEMON,
        params={"X": 50, "N": rt.config.n_machines - 1},
        bindings={
            "P1": Binding(daemon="ADV1", nodes=None),
            "G1": Binding(daemon="ADV2", nodes=list(rt.machines)),
        })
    assert dep.daemon("P1").machine.daemon.name == "ADV1"
    assert len(dep.group("G1")) == rt.config.n_machines
    assert dep.daemon("G1[0]").node is rt.cluster.node("m0")


def test_deploy_block_bindings():
    rt = small_runtime()
    source = scenarios.FIG5A_MASTER + scenarios.FIG4_NODE_DAEMON + """
        Deploy {
          P1 = ADV1;
          G1[6] = ADV2;
        }
    """
    dep = deploy_scenario(rt, source, params={"X": 50, "N": 5})
    assert len(dep.group("G1")) == 6


def test_deploy_without_bindings_or_block_fails():
    rt = small_runtime()
    with pytest.raises(FailSemanticError):
        deploy_scenario(rt, scenarios.FIG4_NODE_DAEMON, params={})


def test_deploy_group_too_big_for_cluster():
    rt = small_runtime()
    source = scenarios.FIG4_NODE_DAEMON + "Deploy { G1[99] = ADV2; }"
    with pytest.raises(FailSemanticError):
        deploy_scenario(rt, source)


def test_fault_injection_end_to_end_ring():
    """Ring under fig5a scenario: injected faults, rollback, and a
    verified result."""
    rt = small_runtime(seed=11)
    # one fault at t=35: after the first checkpoint wave committed, so
    # the run rolls back and still finishes well before the next fault
    deploy_scenario(
        rt, scenarios.FIG5A_MASTER + scenarios.FIG4_NODE_DAEMON,
        params={"X": 35, "N": rt.config.n_machines - 1},
        bindings={
            "P1": Binding(daemon="ADV1", nodes=None),
            "G1": Binding(daemon="ADV2", nodes=list(rt.machines)),
        })
    res = rt.run(timeout=600.0)
    assert res.outcome.value == "terminated"
    assert res.failures_detected >= 1
    assert not getattr(rt.engine, "process_failures", [])


def test_onload_auto_continue_without_scenario_opinion():
    """A scenario with no onload transition must not deadlock the app."""
    rt = small_runtime(seed=2)
    source = """
        Daemon Quiet {
          node 1:
            ?never -> goto 1;
        }
    """
    deploy_scenario(rt, source, params={},
                    bindings={"G1": Binding(daemon="Quiet",
                                            nodes=list(rt.machines))})
    res = rt.run(timeout=300.0)
    assert res.outcome.value == "terminated"


def test_injection_counters():
    rt = small_runtime(seed=5)
    dep = deploy_scenario(
        rt, scenarios.FIG5A_MASTER + scenarios.FIG4_NODE_DAEMON,
        params={"X": 35, "N": rt.config.n_machines - 1},
        bindings={
            "P1": Binding(daemon="ADV1", nodes=None),
            "G1": Binding(daemon="ADV2", nodes=list(rt.machines)),
        })
    res = rt.run(timeout=400.0)
    # every detected failure was one of ours (kills during a restart
    # are absorbed as termination acks, so >= not ==)
    assert dep.total_faults_injected() >= res.failures_detected >= 1
