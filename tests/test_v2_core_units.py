"""Direct unit tests of the V2 daemon core (dedup, pessimistic hold,
replay staging, sender-log GC) — driven by hand, no full deployment."""

from repro.cluster.cluster import Cluster
from repro.mpi.endpoint import UNMATCHED_KEY
from repro.mpi.message import AppMessage
from repro.mpichv import wire
from repro.mpichv.config import VclConfig
from repro.mpichv.v2daemon import DELIVERED, POS, SENT, V2Daemon
from repro.simkernel.engine import Engine


class FakeSock:
    def __init__(self):
        self.sent = []
        self.closed = False

    def send(self, msg, size=None):
        self.sent.append(msg)

    def close(self):
        self.closed = True


def make_core(n=3, seed=0):
    engine = Engine(seed=seed)
    cluster = Cluster(engine, 1, name_prefix="m")

    def idle(p):
        yield engine.event()

    proc = cluster.node(0).spawn("vdaemon.0", idle, notify=False)
    config = VclConfig(n_procs=n, n_machines=n + 1, footprint=3e8,
                       protocol="v2")

    def app(ep):
        yield ep.engine.event()

    core = V2Daemon(proc, config, rank=0, epoch=0, incarnation=1,
                    app_factory=app)
    core.peers = {r: FakeSock() for r in range(1, n)}
    core.evlog_sock = FakeSock()
    core.ckpt_sock = FakeSock()
    core.next_pos_to_log = core.app_state[POS]
    return engine, core


def msg(src, tag=1):
    return AppMessage(src=src, dst=0, tag=tag, payload=0, size=64)


def buffered_tags(core):
    return [m.tag for m in core.app_state[UNMATCHED_KEY]]


def test_send_assigns_sequence_and_logs():
    engine, core = make_core()
    for tag in (1, 2, 3):
        core.app_send(AppMessage(src=0, dst=1, tag=tag, payload=0, size=64))
    sent = core.peers[1].sent
    assert [d.seq for d in sent] == [1, 2, 3]
    assert core.app_state[SENT][1] == 3
    assert [seq for seq, _m in core.send_log[1]] == [1, 2, 3]


def test_send_to_down_peer_logged_not_transmitted():
    engine, core = make_core()
    del core.peers[1]
    core.peers[1] = FakeSock()
    core.peers[1].closed = True
    core.app_send(AppMessage(src=0, dst=1, tag=7, payload=0, size=64))
    assert core.peers[1].sent == []
    assert len(core.send_log[1]) == 1


def test_pessimistic_hold_until_logger_ack():
    engine, core = make_core()
    core.on_data(1, 1, msg(1, tag=10))
    # held: not yet delivered, but the log request went out
    assert buffered_tags(core) == []
    logs = [m for m in core.evlog_sock.sent if isinstance(m, wire.EvLog)]
    assert len(logs) == 1 and logs[0].pos == 1 and logs[0].src_seq == 1
    core.on_evlog_ack(1)
    assert buffered_tags(core) == [10]
    assert core.app_state[DELIVERED][1] == 1
    assert core.app_state[POS] == 1


def test_acks_release_in_order():
    engine, core = make_core()
    core.on_data(1, 1, msg(1, tag=10))
    core.on_data(2, 1, msg(2, tag=11))
    core.on_evlog_ack(2)       # cumulative ack covers both
    assert buffered_tags(core) == [10, 11]
    assert core.app_state[POS] == 2


def test_duplicate_suppression():
    engine, core = make_core()
    core.on_data(1, 1, msg(1, tag=10))
    core.on_evlog_ack(1)
    core.on_data(1, 1, msg(1, tag=10))      # re-sent duplicate
    assert buffered_tags(core) == [10]
    assert core.app_state[POS] == 1


def test_replay_follows_logged_order():
    engine, core = make_core()
    core.replaying = True
    core.begin_replay([(2, 1), (1, 1), (2, 2)])
    # resends arrive in a different order than the original delivery
    core.on_data(1, 1, msg(1, tag=101))
    assert buffered_tags(core) == []        # waits for (2,1) first
    core.on_data(2, 1, msg(2, tag=201))
    assert buffered_tags(core) == [201, 101]
    core.on_data(2, 2, msg(2, tag=202))
    assert buffered_tags(core) == [201, 101, 202]
    assert not core.replaying
    assert core.app_state[POS] == 3
    # replayed deliveries are NOT re-logged
    assert [m for m in core.evlog_sock.sent if isinstance(m, wire.EvLog)] == []


def test_post_replay_traffic_goes_through_logger():
    engine, core = make_core()
    core.replaying = True
    core.begin_replay([(1, 1)])
    core.on_data(1, 1, msg(1, tag=101))
    core.on_data(1, 2, msg(1, tag=102))      # beyond the log: staged
    assert not core.replaying
    # 102 went through the pessimistic path: held until ack
    assert buffered_tags(core) == [101]
    core.on_evlog_ack(core.app_state[POS] + 1)
    assert buffered_tags(core) == [101, 102]


def test_gc_note_prunes_sender_log():
    engine, core = make_core()
    for tag in range(5):
        core.app_send(AppMessage(src=0, dst=1, tag=tag, payload=0, size=64))
    # simulate the receiver's checkpoint covering seq <= 3
    note = wire.V2GcNote(rank=1, upto=3)
    log = core.send_log[1]
    while log and log[0][0] <= note.upto:
        log.popleft()
    assert [seq for seq, _ in core.send_log[1]] == [4, 5]


def test_attach_peer_resends_from_request():
    engine, core = make_core()
    for tag in (1, 2, 3):
        core.app_send(AppMessage(src=0, dst=1, tag=tag, payload=0, size=64))
    fresh = FakeSock()
    core.attach_peer(1, fresh, resend_from=2)
    assert [d.seq for d in fresh.sent] == [2, 3]


def test_attach_peer_zero_means_no_resend():
    engine, core = make_core()
    core.app_send(AppMessage(src=0, dst=1, tag=1, payload=0, size=64))
    fresh = FakeSock()
    core.attach_peer(1, fresh, resend_from=0)
    assert fresh.sent == []
