"""Tests for the FAIL daemon's serialized event handling and runtime
API corners (deploy idempotence, run-after-timeout state)."""

from repro.analysis.classify import Outcome
from repro.fail.scenario import Binding, deploy_scenario
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads.nas_bt import BTWorkload


def bt_runtime(n=4, seed=0, **cfg):
    cfg.setdefault("footprint", 1.2e8)
    config = VclConfig(n_procs=n, n_machines=n + 2, **cfg)
    wl = BTWorkload(n_procs=n, niters=20, total_compute=400.0,
                    footprint=cfg["footprint"])
    return VclRuntime(config, wl.make_factory(), seed=seed)


# ---------------------------------------------------------------------------
# FAIL daemon: serialized handling with per-event delay
# ---------------------------------------------------------------------------

def test_events_processed_serially_in_arrival_order():
    """Bursty messages must execute one at a time, FIFO — the FCI
    daemon is single-threaded over GDB."""
    rt = bt_runtime()
    scenario = """
        Daemon Counter {
          int n = 0;
          node 1:
            ?tick -> n = n + 1, goto 1;
        }
    """
    dep = deploy_scenario(rt, scenario, params={},
                          bindings={"C": Binding(daemon="Counter", nodes=None)})
    daemon = dep.daemon("C")
    for _ in range(10):
        daemon.deliver_msg("tick", "X")
    rt.engine.run(until=5.0)
    assert daemon.machine.vars["n"] == 10
    assert daemon.events_handled == 10


def test_handling_delay_spreads_processing_over_time():
    rt = bt_runtime()
    scenario = """
        Daemon Stamp {
          int n = 0;
          node 1:
            ?tick -> n = n + 1, goto 1;
        }
    """
    dep = deploy_scenario(rt, scenario, params={},
                          bindings={"S": Binding(daemon="Stamp", nodes=None)})
    daemon = dep.daemon("S")
    timing = rt.config.timing
    for _ in range(5):
        daemon.deliver_msg("tick", "X")
    # all five processed no earlier than 5 * min handling delay
    rt.engine.run(until=timing.fail_order_handling[0] * 5 - 1e-9)
    assert daemon.machine.vars["n"] < 5
    rt.engine.run(until=timing.fail_order_handling[1] * 5 + 0.01)
    assert daemon.machine.vars["n"] == 5


def test_messages_to_unknown_instance_are_counted_lost():
    rt = bt_runtime()
    scenario = """
        Daemon Talker {
          node 1:
            time g_timer = 1;
            timer -> !hello(Nobody), goto 2;
          node 2:
        }
    """
    dep = deploy_scenario(rt, scenario, params={},
                          bindings={"T": Binding(daemon="Talker", nodes=None)})
    rt.engine.run(until=5.0)
    assert dep.bus.messages_lost == 1
    assert rt.trace.count("fail_msg_lost") == 1


def test_halt_without_controlled_process_logs_noop():
    rt = bt_runtime()
    scenario = """
        Daemon Eager {
          node 1:
            time g_timer = 1;
            timer -> halt, goto 2;
          node 2:
        }
    """
    deploy_scenario(rt, scenario, params={},
                    bindings={"E": Binding(daemon="Eager", nodes=None)})
    rt.engine.run(until=5.0)
    assert rt.trace.count("halt_noop") == 1
    assert rt.trace.count("fault_injected") == 0


# ---------------------------------------------------------------------------
# runtime API corners
# ---------------------------------------------------------------------------

def test_deploy_is_idempotent():
    rt = bt_runtime()
    rt.deploy()
    disp = rt.dispatcher_proc
    rt.deploy()
    assert rt.dispatcher_proc is disp


def test_run_deploys_automatically():
    rt = bt_runtime()
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED


def test_run_returns_at_timeout_with_verdict():
    # make the work far exceed a tiny timeout
    config = VclConfig(n_procs=4, n_machines=6, footprint=1.2e8, timeout=50.0)
    wl = BTWorkload(n_procs=4, niters=50, total_compute=2000.0,
                    footprint=1.2e8)
    rt = VclRuntime(config, wl.make_factory(), seed=0)
    res = rt.run()
    assert res.sim_time == 50.0
    assert res.outcome is not Outcome.TERMINATED


def test_result_counters_consistent_with_trace():
    rt = bt_runtime(seed=5)
    rt.engine.call_at(45.0, lambda: rt.cluster.all_procs("vdaemon")[0].kill())
    res = rt.run()
    assert res.restarts == res.trace.count("restart_wave")
    assert res.failures_detected == res.trace.count("failure_detected")
    assert res.waves_committed == res.trace.count("ckpt_wave_complete")
