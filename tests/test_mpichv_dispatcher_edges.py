"""Edge-case tests for the dispatcher, scheduler and daemon protocol.

These cover the corners the integration tests don't reach directly:
kills during specific protocol windows, stale registrations, wave
aborts, spares, and the difference between launch-time and run-time
failure handling.
"""

from repro.analysis.classify import Outcome
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads.nas_bt import BTWorkload


def bt_runtime(n=4, seed=0, **cfg):
    cfg.setdefault("footprint", 1.2e8)
    config = VclConfig(n_procs=n, n_machines=n + 2, **cfg)
    wl = BTWorkload(n_procs=n, niters=20, total_compute=400.0,
                    footprint=cfg["footprint"])
    return VclRuntime(config, wl.make_factory(), seed=seed)


def assert_clean(rt):
    assert not getattr(rt.engine, "process_failures", []), \
        [(p.name, p.error) for p in rt.engine.process_failures]


def kill_nth_spawn(rt, n_th, at_breakpoint=None):
    """Kill the n-th vdaemon spawn (optionally at a trace point)."""
    counter = {"n": 0}

    def on_spawn(proc):
        if not proc.name.startswith("vdaemon"):
            return
        counter["n"] += 1
        if counter["n"] == n_th:
            if at_breakpoint:
                proc.set_breakpoint(at_breakpoint,
                                    lambda p, fn, resume: p.kill())
            else:
                proc.kill()

    for node in rt.cluster.nodes:
        node.on_spawn(on_spawn)


def test_kill_during_initial_launch_respawns():
    """A daemon dying before registration is a launch failure handled
    by the spawn watch (the ssh channel), not the bug path."""
    rt = bt_runtime(seed=3)
    kill_nth_spawn(rt, 2)          # second-ever spawn dies instantly
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("verify_ok") == 1
    launch_failures = [r for r in res.trace.of_kind("failure_detected")
                       if r.where == "launch"]
    assert len(launch_failures) == 1
    assert res.restarts == 0       # no restart wave: only a respawn
    assert_clean(rt)


def test_kill_at_setcommand_during_initial_launch():
    """Initial launch (no restart in progress): a registered daemon
    dying is detected normally even by the buggy dispatcher —
    pending_term is empty, the misattribution needs an ongoing
    cleanup."""
    rt = bt_runtime(seed=4, bug_compat=True)
    kill_nth_spawn(rt, 3, at_breakpoint="localMPI_setCommand")
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.bug_events == 0
    assert_clean(rt)


def test_two_simultaneous_kills_single_restart():
    """Both closures arrive before recovery finishes: the first opens
    the restart wave, the second is absorbed as an old-epoch
    termination ack — one restart, not two."""
    rt = bt_runtime(seed=5)

    def do():
        procs = rt.cluster.all_procs("vdaemon")
        procs[0].kill()
        procs[1].kill()

    rt.engine.call_at(45.0, do)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.restarts == 1
    assert res.trace.count("verify_ok") == 1
    assert_clean(rt)


def test_kill_terminating_daemon_is_harmless():
    """Killing an old-wave daemon mid-cleanup just accelerates its
    termination ack."""
    rt = bt_runtime(seed=6)

    def first():
        rt.cluster.all_procs("vdaemon")[0].kill()

    def second():
        # ~0.1 s into the restart: survivors are cleaning up
        procs = [p for p in rt.cluster.all_procs("vdaemon")]
        if procs:
            procs[-1].kill()

    rt.engine.call_at(45.0, first)
    rt.engine.call_at(45.1, second)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.restarts == 1
    assert_clean(rt)


def test_scheduler_aborts_wave_on_failure():
    """A fault landing mid-wave aborts that wave; the system rolls
    back to the previous committed one."""
    rt = bt_runtime(seed=7)
    # waves start at 30, 60...; image transfer takes a few seconds, so
    # t=61 is mid-wave-2
    rt.engine.call_at(61.0, lambda: rt.cluster.all_procs("vdaemon")[0].kill())
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("ckpt_wave_abort") >= 1
    rec = res.trace.last("restart_wave")
    assert rec.restore == 1
    assert_clean(rt)


def test_repeated_fig11_freezes_then_fix_restores(tmp_path):
    """The same seed freezes with the bug and terminates with the fix —
    the core §5.3 claim, one more time through the public API."""
    outcomes = {}
    for bug in (True, False):
        rt = bt_runtime(seed=8, bug_compat=bug, timeout=600.0)
        state = {"armed": False}

        def first_kill(rt=rt, state=state):
            rt.cluster.all_procs("vdaemon")[0].kill()
            state["armed"] = True

        rt.engine.call_at(45.0, first_kill)

        def on_spawn(proc, state=state):
            if state["armed"] and proc.name.startswith("vdaemon"):
                state["armed"] = False
                proc.set_breakpoint("localMPI_setCommand",
                                    lambda p, fn, resume: p.kill())

        for node in rt.cluster.nodes:
            node.on_spawn(on_spawn)
        outcomes[bug] = rt.run().outcome
    assert outcomes[True] is Outcome.BUGGY
    assert outcomes[False] is Outcome.TERMINATED


def test_spare_machines_remain_idle_without_failures():
    rt = bt_runtime(seed=9)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    # machines beyond n_procs never hosted anything
    for idx in (4, 5):
        node = rt.cluster.node(f"m{idx}")
        assert node.procs == []


def test_dispatcher_state_introspection():
    rt = bt_runtime(seed=10)
    res = rt.run()
    disp = rt.dispatcher_state
    assert disp.phase == "done"
    assert disp.epoch == 0
    assert len(disp.done_ranks) == 4
    sched = rt.scheduler_state
    assert sched.waves_committed == res.waves_committed
