"""Regression tests for deterministic FAIL_RANDOM seeding.

Every deployment owns one ``random.Random`` seeded from the trial
seed; FAIL_RANDOM (and destination-index evaluation) draws from it,
while the daemons' intrusion-cost timing stays on the engine stream.
Consequences pinned here:

* two same-seed deployments replay byte-identical fault schedules;
* scenario randomness does not consume (or depend on) the engine
  stream, so protocol/workload activity can never perturb *which*
  machines a scenario kills.
"""

from repro.experiments.harness import TrialSetup
from repro.fail import builtin_scenarios as bs
from repro.fail.scenario import Binding, deploy_scenario
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads.ring import RingWorkload


def fig5_setup(protocol="vcl"):
    # ~120 s of ring if unperturbed, faults every 20 s, killed at 70 s:
    # several injections guaranteed before the timeout
    return TrialSetup(
        n_procs=4, n_machines=6,
        scenario_source=bs.FIG5A_MASTER + bs.FIG4_NODE_DAEMON,
        scenario_params={"X": 20},
        protocol=protocol, workload="ring",
        workload_params={"rounds": 60, "work_per_hop": 0.5},
        bug_compat=False, timeout=70.0, keep_trace=True)


def fault_schedule(result):
    return [(round(rec.t, 6), rec.fields["instance"], rec.fields["node"])
            for rec in result.trace.records
            if rec.kind == "fault_injected"]


def test_same_seed_deployments_replay_identical_fault_schedules():
    first = fig5_setup().run_one(424242)
    second = fig5_setup().run_one(424242)
    schedule = fault_schedule(first)
    assert schedule, "scenario injected nothing — test is vacuous"
    assert schedule == fault_schedule(second)


def test_different_seeds_draw_different_schedules():
    a = fault_schedule(fig5_setup().run_one(1))
    b = fault_schedule(fig5_setup().run_one(2))
    assert a and b
    assert a != b                      # astronomically unlikely to collide


def test_fail_random_does_not_consume_the_engine_stream():
    """Deploying a scenario whose start node draws FAIL_RANDOM leaves
    the engine RNG untouched — scenario randomness is segregated."""
    config = VclConfig(n_procs=4, n_machines=6, footprint=4e7)
    wl = RingWorkload(n_procs=4, rounds=5)
    runtime = VclRuntime(config, wl.make_factory(), seed=99)
    before = runtime.engine.random.getstate()
    deployment = deploy_scenario(
        runtime, bs.FIG5A_MASTER, params={"X": 30, "N": 5},
        bindings={"P1": Binding(daemon="ADV1", nodes=None)})
    # building P1 entered node 1: 'always int ran = FAIL_RANDOM(0, N)'
    assert runtime.engine.random.getstate() == before
    assert deployment.daemon("P1").machine.always_vars["ran"] in range(6)


def test_deployment_rng_isolated_between_runtimes_not_shared():
    """Two deployments on engines with different seeds draw different
    streams (the deployment RNG derives from the engine seed)."""
    draws = {}
    for seed in (5, 6):
        config = VclConfig(n_procs=4, n_machines=6, footprint=4e7)
        wl = RingWorkload(n_procs=4, rounds=5)
        runtime = VclRuntime(config, wl.make_factory(), seed=seed)
        dep = deploy_scenario(
            runtime, bs.FIG5A_MASTER, params={"X": 30, "N": 5},
            bindings={"P1": Binding(daemon="ADV1", nodes=None)})
        draws[seed] = [dep.rng.random() for _ in range(8)]
    assert draws[5] != draws[6]
