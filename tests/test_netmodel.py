"""Unit tests for repro.netmodel: specs, fabric models, registry,
traffic accounting, the uniform fast path and the constants dedupe."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.network import Network
from repro.mpichv.config import TimingModel, VclConfig
from repro.netmodel import (DEFAULT_BANDWIDTH, DEFAULT_LATENCY, FABRICS,
                            TopologySpec, build_fabric, register_fabric)
from repro.netmodel.fabric import UniformFabric
from repro.simkernel.engine import Engine


# ---------------------------------------------------------------------------
# constants: single source of truth (satellite regression)
# ---------------------------------------------------------------------------

def test_network_constants_have_one_source_of_truth():
    """The old drift: cluster/network.py vs mpichv/config.py each kept
    their own copy of the GigE defaults.  Both must now read
    repro.netmodel.spec."""
    timing = TimingModel()
    assert timing.net_latency == DEFAULT_LATENCY
    assert timing.net_bandwidth == DEFAULT_BANDWIDTH
    net = Network(Engine(seed=0))
    assert net.latency == DEFAULT_LATENCY
    assert net.bandwidth == DEFAULT_BANDWIDTH
    # the re-export kept for cluster-level importers
    from repro.cluster import network as network_mod
    assert network_mod.DEFAULT_LATENCY is DEFAULT_LATENCY
    assert network_mod.DEFAULT_BANDWIDTH is DEFAULT_BANDWIDTH


# ---------------------------------------------------------------------------
# TopologySpec
# ---------------------------------------------------------------------------

def test_spec_coercion_accepts_name_dict_spec_and_none():
    assert TopologySpec.coerce(None) == TopologySpec()
    assert TopologySpec.coerce("star").model == "star"
    spec = TopologySpec.coerce({"model": "twotier", "rack_size": 4})
    assert (spec.model, spec.rack_size) == ("twotier", 4)
    assert TopologySpec.coerce(spec) is spec
    with pytest.raises(TypeError):
        TopologySpec.coerce(42)


def test_spec_validation_rejects_bad_knobs():
    with pytest.raises(ValueError):
        TopologySpec(latency=-1.0)
    with pytest.raises(ValueError):
        TopologySpec(bandwidth=0.0)
    with pytest.raises(ValueError):
        TopologySpec(rack_size=0)
    with pytest.raises(ValueError):
        TopologySpec(oversubscription=0.0)


def test_config_coerces_topology_and_rejects_unknown_models():
    cfg = VclConfig(n_procs=4, topology="star")
    assert isinstance(cfg.topology, TopologySpec)
    assert cfg.topology.model == "star"
    with pytest.raises(ValueError):
        VclConfig(n_procs=4, topology="hypercube")


def test_fabric_registry_guards_duplicates_and_unknowns():
    with pytest.raises(ValueError):
        register_fabric("uniform", UniformFabric)
    with pytest.raises(ValueError):
        build_fabric("nosuch")
    assert {"uniform", "star", "twotier"} <= set(FABRICS.available())


# ---------------------------------------------------------------------------
# fabric delivery semantics
# ---------------------------------------------------------------------------

def test_uniform_fabric_matches_seed_arithmetic():
    fabric = build_fabric("uniform")
    now, size = 5.0, 10**6
    expected = now + DEFAULT_LATENCY + size / DEFAULT_BANDWIDTH
    assert fabric.delivery(now, "a", "b", size, 0.0) == expected
    # per-connection FIFO clamp
    assert fabric.delivery(now, "a", "b", size, expected + 1) == expected + 1
    # no shared serialization: a second flow is not queued
    assert fabric.delivery(now, "c", "d", size, 0.0) == expected


def test_star_uplink_serializes_flows_from_one_host():
    fabric = build_fabric("star")
    size = 10**7                     # 0.1 s on the access link
    first = fabric.delivery(0.0, "h0", "h1", size, 0.0)
    second = fabric.delivery(0.0, "h0", "h2", size, 0.0)
    assert second > first            # queued behind the first on h0/up
    # uniform would have delivered both at the same instant
    uniform = build_fabric("uniform")
    assert uniform.delivery(0.0, "h0", "h1", size, 0.0) \
        == uniform.delivery(0.0, "h0", "h2", size, 0.0)


def test_star_downlink_serializes_flows_into_one_host():
    fabric = build_fabric("star")
    size = 10**7
    first = fabric.delivery(0.0, "h1", "h0", size, 0.0)
    second = fabric.delivery(0.0, "h2", "h0", size, 0.0)
    assert second > first            # queued on h0/down


def test_twotier_inter_rack_is_slower_than_intra_rack():
    spec = TopologySpec("twotier", rack_size=2, oversubscription=8.0)
    fabric = build_fabric(spec)
    for host in ("a0", "a1", "b0", "b1"):
        fabric.register_host(host)   # racks: {a0,a1}, {b0,b1}
    size = 10**6
    intra = fabric.delivery(0.0, "a0", "a1", size, 0.0)
    inter = fabric.delivery(0.0, "a1", "b0", size, 0.0)
    assert inter > intra             # core hop latency + oversubscription
    assert fabric.rack_of("a1") == 0 and fabric.rack_of("b0") == 1


def test_twotier_oversubscription_throttles_the_core():
    size = 10**7
    results = {}
    for factor in (1.0, 8.0):
        spec = TopologySpec("twotier", rack_size=2, oversubscription=factor)
        fabric = build_fabric(spec)
        for host in ("a0", "a1", "b0", "b1"):
            fabric.register_host(host)
        results[factor] = fabric.delivery(0.0, "a0", "b0", size, 0.0)
    assert results[8.0] > results[1.0]


def test_per_link_counters_and_hotspot():
    fabric = build_fabric("star")
    fabric.delivery(0.0, "h0", "h1", 1000, 0.0)
    fabric.delivery(0.0, "h0", "h2", 500, 0.0)
    stats = fabric.link_stats()
    assert stats["h0/up"] == {"bytes": 1500, "messages": 2}
    assert stats["h1/down"] == {"bytes": 1000, "messages": 1}
    assert fabric.hotspot() == ("h0/up", 1500)


# ---------------------------------------------------------------------------
# the network fast path (perf satellite: no per-message topology lookup)
# ---------------------------------------------------------------------------

def _relay(engine, cluster, n_msgs=5, size=1024):
    got = []

    def server(proc):
        ls = proc.node.listen(5000, owner=proc)
        sock = yield ls.accept()
        for _ in range(n_msgs):
            got.append((yield sock.recv()))

    def client(proc):
        sock = yield proc.node.connect(cluster.node(0).addr(5000), owner=proc)
        for i in range(n_msgs):
            sock.send(i, size=size)
        yield engine.timeout(5.0)

    cluster.node(0).spawn("server", server)
    cluster.node(1).spawn("client", client)
    engine.run(until=30.0)
    return got


def test_uniform_hot_path_never_consults_the_fabric(engine, cluster):
    """The structural perf guard: with the default uniform fabric and no
    cuts, Network._transmit must use the inline seed arithmetic — the
    fabric's delivery() must not run at all.  This is what keeps the
    uniform path within epsilon (not just 5%) of the seed throughput."""
    def boom(*_args, **_kwargs):
        raise AssertionError("fabric.delivery called on the uniform hot path")

    cluster.network.fabric.delivery = boom
    assert _relay(engine, cluster) == list(range(5))


def test_star_network_routes_through_the_fabric():
    engine = Engine(seed=1)
    cluster = Cluster(engine, 3, topology="star")
    calls = []
    real = cluster.network.fabric.delivery

    def spy(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    cluster.network.fabric.delivery = spy
    assert _relay(engine, cluster) == list(range(5))
    assert len(calls) == 5


def test_uniform_network_delivery_times_match_explicit_spec():
    """Network(topology=None) and Network(topology=uniform spec) are the
    same model, message for message."""
    times = {}
    for key, topology in (("default", None), ("spec", TopologySpec())):
        engine = Engine(seed=9)
        cluster = Cluster(engine, 2, topology=topology)
        got = []

        def server(proc, got=got):
            ls = proc.node.listen(5000, owner=proc)
            sock = yield ls.accept()
            while True:
                yield sock.recv()
                got.append(proc.engine.now)

        def client(proc, cluster=cluster):
            sock = yield proc.node.connect(cluster.node(0).addr(5000),
                                           owner=proc)
            for i in range(4):
                sock.send(i, size=10**6 * (i + 1))

        cluster.node(0).spawn("server", server)
        cluster.node(1).spawn("client", client)
        engine.run(until=10.0)
        times[key] = got
    assert times["default"] == times["spec"]
    assert len(times["default"]) == 4


def test_network_link_stats_uniform_and_star():
    engine = Engine(seed=2)
    cluster = Cluster(engine, 2)
    _relay(engine, cluster, n_msgs=3, size=100)
    stats = cluster.network.link_stats()
    assert stats["fabric"]["messages"] == 3
    # Uniform keeps no per-link books, so there is no hot spot to name
    # (the old ("fabric", total) answer misread as a saturated link).
    assert cluster.network.hotspot() == (None, 0)

    engine2 = Engine(seed=2)
    star = Cluster(engine2, 2, topology="star")
    _relay(engine2, star, n_msgs=3, size=100)
    link, volume = star.network.hotspot()
    assert link in ("node1/up", "node0/down")
    assert volume == 300
