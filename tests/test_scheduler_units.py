"""Direct unit tests of the checkpoint scheduler through a live (but
tiny) deployment, inspecting SchedulerState transitions."""

from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads.nas_bt import BTWorkload


def runtime(n=4, seed=0, period=30.0, **cfg):
    cfg.setdefault("footprint", 1.2e8)
    config = VclConfig(n_procs=n, n_machines=n + 2, ckpt_period=period, **cfg)
    wl = BTWorkload(n_procs=n, niters=20, total_compute=400.0,
                    footprint=cfg["footprint"])
    return VclRuntime(config, wl.make_factory(), seed=seed)


def test_no_wave_before_all_connected():
    rt = runtime()
    rt.deploy()
    rt.engine.run(until=1.0)        # daemons still launching at t<=0.2
    sched = rt.scheduler_state
    assert sched.waves_started == 0
    assert sched.wave_id == 0


def test_waves_commit_in_sequence():
    rt = runtime()
    res = rt.run()
    sched = rt.scheduler_state
    assert sched.waves_started == sched.waves_committed >= 2
    assert sched.waves_aborted == 0
    assert sched.committed_wave == sched.wave_id
    starts = [r.t for r in res.trace.of_kind("ckpt_wave_start")]
    completes = [r.t for r in res.trace.of_kind("ckpt_wave_complete")]
    # every wave completes before the next starts ("only after the end
    # of the previous one")
    for nxt, done in zip(starts[1:], completes):
        assert done < nxt


def test_wave_duration_scales_with_footprint():
    def duration(footprint):
        rt = runtime(footprint=footprint)
        res = rt.run()
        start = res.trace.first_t("ckpt_wave_start")
        done = res.trace.first_t("ckpt_wave_complete")
        return done - start

    assert duration(6e8) > duration(1.2e8)


def test_abort_then_recommit_after_failure():
    rt = runtime(seed=2)
    # strike during wave 2's image drain (waves start on the 30 s grid)
    rt.engine.call_at(60.5, lambda: rt.cluster.all_procs("vdaemon")[0].kill())
    res = rt.run()
    sched = rt.scheduler_state
    assert res.outcome.value == "terminated"
    assert sched.waves_aborted >= 1
    # the system still finished, so new waves committed after recovery
    assert sched.waves_committed >= 2


def test_longer_period_means_fewer_waves():
    waves_30 = runtime(period=30.0).run().waves_committed
    waves_60 = runtime(period=60.0, seed=0).run().waves_committed
    assert waves_60 < waves_30


def test_scheduler_conns_tracks_epoch_churn():
    rt = runtime(seed=3)
    rt.engine.call_at(45.0, lambda: rt.cluster.all_procs("vdaemon")[1].kill())
    res = rt.run()
    sched = rt.scheduler_state
    # after recovery all four ranks re-registered with the scheduler
    assert res.outcome.value == "terminated"
    assert set(sched.conns) == {0, 1, 2, 3}
