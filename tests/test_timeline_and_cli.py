"""Tests for the timeline renderer and the CLI dispatcher."""

import pytest

from repro.__main__ import COMMANDS, main, usage
from repro.analysis.timeline import lane_density, render_timeline
from repro.analysis.traces import Trace


def make_trace(records):
    tr = Trace()
    for t, kind in records:
        tr.record(t, kind)
    return tr


def test_timeline_marks_land_in_buckets():
    tr = make_trace([(0.0, "progress"), (50.0, "fault_injected"),
                     (100.0, "app_done")])
    text = render_timeline(tr, width=20)
    lines = {line.split()[0]: line for line in text.splitlines()[1:-1]}
    assert lines["progress"].split()[-1][0] == "█"
    assert lines["done"].split()[-1][-1] == "D"
    assert "x" in lines["fault"]


def test_timeline_empty_trace():
    text = render_timeline(Trace(), width=20)
    assert "(0 events shown" in text
    # an empty trace still gets a visible, non-zero-width time axis
    header = text.splitlines()[0]
    assert header.startswith("time") and "─" in header
    assert "0.0" in header and "1.0" in header


def test_timeline_counts_only_degrades_gracefully():
    """A keep=False trace (the campaign default) that saw events
    renders a per-lane count table instead of an empty swimlane."""
    tr = Trace(keep=False)
    tr.record(10.0, "fault_injected")
    tr.record(50.0, "fault_injected")
    tr.record(60.0, "restart_wave")
    assert not tr.records
    text = render_timeline(tr, width=20)
    assert "counts-only" in text
    fault_line = [ln for ln in text.splitlines()
                  if ln.startswith("fault")][0]
    assert "x2" in fault_line and "t=10.0..50.0" in fault_line
    restart_line = [ln for ln in text.splitlines()
                    if ln.startswith("restart")][0]
    assert "R x1" in restart_line
    assert "(3 events counted, 0 records kept)" in text


def test_timeline_counts_only_not_used_for_kept_traces():
    tr = make_trace([(10.0, "fault_injected")])
    assert "counts-only" not in render_timeline(tr, width=20)


def test_timeline_respects_window():
    tr = make_trace([(10.0, "fault_injected"), (90.0, "fault_injected")])
    text = render_timeline(tr, width=20, t0=0.0, t1=50.0)
    fault_line = [ln for ln in text.splitlines() if ln.startswith("fault")][0]
    assert fault_line.count("x") == 1


def test_timeline_width_validation():
    with pytest.raises(ValueError):
        render_timeline(Trace(), width=5)


def test_timeline_freeze_signature_visible():
    """A frozen run shows one early restart mark and then nothing —
    the visual the paper's red bars summarize."""
    tr = make_trace([(50.0, "restart_wave"), (51.0, "bug_misattribution")])
    text = render_timeline(tr, width=40, t0=0.0, t1=1500.0)
    restart_line = [ln for ln in text.splitlines()
                    if ln.startswith("restart")][0]
    marks = restart_line.split(None, 1)[1]
    assert marks.count("R") == 1
    assert marks.rstrip("·").endswith("R")     # nothing after the freeze


def test_lane_density():
    tr = make_trace([(t, "restart_wave") for t in (5.0, 15.0, 95.0)])
    density = lane_density(tr, ("restart_wave",), 0.0, 100.0, buckets=10)
    assert density[0] == 1 and density[1] == 1 and density[9] == 1
    assert sum(density) == 3


def test_timeline_on_real_run():
    from repro.mpichv.config import VclConfig
    from repro.mpichv.runtime import VclRuntime
    from repro.workloads.nas_bt import BTWorkload
    config = VclConfig(n_procs=4, n_machines=6, footprint=1.2e8)
    wl = BTWorkload(n_procs=4, niters=10, total_compute=200.0, footprint=1.2e8)
    rt = VclRuntime(config, wl.make_factory(), seed=0)
    res = rt.run()
    text = render_timeline(res.trace, width=60)
    assert "D" in text          # the run completed
    assert "C" in text          # checkpoints happened


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_usage_lists_all_commands():
    text = usage()
    for command in COMMANDS:
        assert command in text


def test_cli_help_exits_zero(capsys):
    assert main([]) == 0
    assert "usage" in capsys.readouterr().out


def test_cli_unknown_command(capsys):
    assert main(["nope"]) == 2
    assert "unknown command" in capsys.readouterr().err


def test_cli_table1_runs(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "FAIL-FCI" in out
