"""Shared fixtures and tiny builders for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis.traces import Trace
from repro.cluster.cluster import Cluster
from repro.simkernel.engine import Engine


@pytest.fixture
def engine():
    """A fresh seeded engine with a trace sink attached."""
    return Engine(seed=1234, trace=Trace())


@pytest.fixture
def cluster(engine):
    """A small 4-node cluster on the shared engine."""
    return Cluster(engine, 4)


def run_quiet(engine, until=None):
    """Run and assert that no simulated process crashed."""
    engine.run(until=until)
    failures = getattr(engine, "process_failures", [])
    assert not failures, [(p.name, p.error) for p in failures]
    return engine.now
