"""Tests for the two paper-motivated extensions.

1. The **blocking Chandy-Lamport variant** (§3 names both
   implementations; the paper evaluates the non-blocking one).
2. **FAIL_READ** — the paper's §6 planned feature: reading internal
   variables of the stressed application from FAIL scenarios.
"""

import pytest

from repro.analysis.classify import Outcome
from repro.fail.lang import ast
from repro.fail.lang.parser import parse_fail
from repro.fail.lang.pretty import pretty_print
from repro.fail.scenario import Binding, deploy_scenario
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import VclRuntime
from repro.workloads.nas_bt import BTWorkload


def bt_runtime(n=4, seed=0, blocking=False, niters=20, total_compute=400.0,
               footprint=1.2e8, **cfg):
    config = VclConfig(n_procs=n, n_machines=n + 2, footprint=footprint,
                       blocking=blocking, **cfg)
    wl = BTWorkload(n_procs=n, niters=niters, total_compute=total_compute,
                    footprint=footprint)
    return VclRuntime(config, wl.make_factory(), seed=seed)


def kill_at(rt, when, which=0):
    def do():
        procs = rt.cluster.all_procs("vdaemon")
        if procs:
            procs[which % len(procs)].kill()
    rt.engine.call_at(when, do)


def assert_clean(rt):
    assert not getattr(rt.engine, "process_failures", []), \
        [(p.name, p.error) for p in rt.engine.process_failures]


# ---------------------------------------------------------------------------
# blocking Chandy-Lamport
# ---------------------------------------------------------------------------

def test_blocking_variant_terminates_and_verifies():
    rt = bt_runtime(blocking=True)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.trace.count("verify_ok") == 1
    assert res.waves_committed >= 2
    assert_clean(rt)


def test_blocking_variant_survives_failures():
    rt = bt_runtime(blocking=True, seed=5)
    kill_at(rt, 45.0, which=1)
    kill_at(rt, 90.0, which=2)
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.restarts == 2
    assert res.trace.count("verify_ok") == 1
    assert_clean(rt)


def test_blocking_is_slower_fault_free():
    """The blocking variant freezes computation for the flush + local
    image write on every wave; the non-blocking variant hides it —
    the design rationale of MPICH-Vcl."""
    t_nonblocking = bt_runtime(seed=1, blocking=False).run().exec_time
    t_blocking = bt_runtime(seed=1, blocking=True).run().exec_time
    assert t_blocking > t_nonblocking


@pytest.mark.parametrize("seed", [3, 4, 5])
def test_blocking_checksum_exact_under_kills(seed):
    rt = bt_runtime(blocking=True, seed=seed, niters=16, total_compute=320.0)
    kill_at(rt, 40.0 + 3 * seed, which=seed)
    res = rt.run(timeout=900.0)
    assert_clean(rt)
    if res.outcome is Outcome.TERMINATED:
        assert res.trace.count("verify_ok") == 1


# ---------------------------------------------------------------------------
# FAIL_READ
# ---------------------------------------------------------------------------

def test_fail_read_parses_and_roundtrips():
    src = """
        Daemon D {
          node 1:
            ?go && FAIL_READ(iter) > 5 -> halt, goto 1;
        }
    """
    prog = parse_fail(src)
    guard = prog.daemons[0].node(1).transitions[0].guard
    assert guard.left == ast.ReadCall("iter")
    assert parse_fail(pretty_print(prog)) == prog


def test_fail_read_evaluates_via_reader():
    from repro.fail.machine import eval_expr
    import random
    expr = ast.BinOp(">", ast.ReadCall("iter"), ast.Num(5))
    rng = random.Random(0)
    assert eval_expr(expr, {}, rng, reader=lambda n: {"iter": 9}[n]) == 1
    assert eval_expr(expr, {}, rng, reader=lambda n: 3) == 0
    # without a reader, reads are 0
    assert eval_expr(ast.ReadCall("iter"), {}, rng) == 0


def test_fail_read_targets_application_progress():
    """Inject a fault only once the BT iteration counter passes a
    threshold — state-predicated injection, beyond what the paper's
    tool could do."""
    scenario = """
        Daemon Sniper {
          node 1:
            time g_timer = 5;
            timer && FAIL_READ(iter) >= 8 -> halt, goto 2;
            timer -> goto 1;
          node 2:
            onload -> continue, goto 2;
        }
    """
    rt = bt_runtime(seed=6, niters=20, total_compute=400.0)
    dep = deploy_scenario(
        rt, scenario, params={},
        bindings={"G1": Binding(daemon="Sniper", nodes=list(rt.machines))})
    res = rt.run()
    assert res.outcome is Outcome.TERMINATED
    assert res.failures_detected >= 1
    # the injection happened only after the target reached iteration 8:
    fault = res.trace.last("fault_injected")
    progress_before = [r for r in res.trace.of_kind("progress")
                       if r.t <= fault.t]
    assert progress_before and progress_before[-1].iter >= 8
    assert_clean(rt)


def test_fail_read_zero_when_no_controlled_process():
    scenario = """
        Daemon Reader {
          node 1:
            time g_timer = 1;
            timer && FAIL_READ(iter) == 0 -> !confirmed(Reader), goto 2;
          node 2:
        }
    """
    rt = bt_runtime(seed=7)
    dep = deploy_scenario(
        rt, scenario, params={},
        bindings={"Reader": Binding(daemon="Reader", nodes=None)})
    rt.run(timeout=60.0)
    # the coordinator controls no process: the read was 0, the guard
    # matched, the machine moved on
    assert dep.daemon("Reader").node_id == 2
