"""Tests for the protocol plugin registry and the shared daemon base.

Covers the registry error paths (unknown protocol, protocol/config
conflicts), the service plans, one-file protocol extension, the
enforced absence of protocol string branches outside the registry, and
the unified termination semantics of the shared daemon lifecycle.
"""

import pathlib
import re

import pytest

from repro.mpichv import protocols
from repro.mpichv.config import VclConfig
from repro.mpichv.daemonbase import MpichDaemon
from repro.mpichv.protocols import ProtocolSpec, ServiceSpec
from repro.mpichv.runtime import VclRuntime
from repro.mpichv.v1daemon import V1Daemon
from repro.mpichv.v2daemon import V2Daemon
from repro.mpichv.vdaemon import VclDaemon
from repro.workloads.nas_bt import BTWorkload


def make_runtime(protocol, n=4, seed=0, **cfg):
    cfg.setdefault("footprint", 1.2e8)
    config = VclConfig(n_procs=n, n_machines=n + 2, protocol=protocol, **cfg)
    wl = BTWorkload(n_procs=n, niters=10, total_compute=200.0,
                    footprint=cfg["footprint"])
    return VclRuntime(config, wl.make_factory(), seed=seed)


# ---------------------------------------------------------------------------
# registry lookups and error paths
# ---------------------------------------------------------------------------

def test_registry_lists_the_family():
    assert set(protocols.available()) >= {"vcl", "v2", "v1"}


def test_unknown_protocol_raises_with_candidates():
    with pytest.raises(ValueError, match="unknown protocol"):
        protocols.get_spec("v3")
    with pytest.raises(ValueError, match="v1.*v2.*vcl"):
        protocols.get_spec("nope")


def test_unknown_protocol_rejected_at_config_time():
    with pytest.raises(ValueError, match="unknown protocol"):
        VclConfig(n_procs=4, protocol="nope")


@pytest.mark.parametrize("protocol", ["v2", "v1"])
def test_blocking_conflicts_with_non_vcl_protocols(protocol):
    with pytest.raises(ValueError, match="blocking"):
        VclConfig(n_procs=4, protocol=protocol, blocking=True)
    # blocking remains valid for vcl
    VclConfig(n_procs=4, blocking=True)


def test_v1_needs_a_channel_memory():
    with pytest.raises(ValueError, match="channel memory"):
        VclConfig(n_procs=4, protocol="v1", n_channel_memories=0)
    # ...but other protocols ignore the knob entirely
    VclConfig(n_procs=4, protocol="vcl", n_channel_memories=0)


def test_double_registration_rejected():
    spec = protocols.get_spec("vcl")
    with pytest.raises(ValueError, match="already registered"):
        protocols.register(spec)


# ---------------------------------------------------------------------------
# service plans drive deployment
# ---------------------------------------------------------------------------

def test_service_plans_declare_the_right_services():
    for proto, expected in [
        ("vcl", {"ckptserver.0", "ckptserver.1", "scheduler"}),
        ("v2", {"ckptserver.0", "ckptserver.1", "eventlog"}),
        ("v1", {"ckptserver.0", "ckptserver.1",
                "channelmemory.0", "channelmemory.1"}),
    ]:
        config = VclConfig(n_procs=4, protocol=proto)
        plan = protocols.get_spec(proto).service_plan(config)
        assert {svc.name for svc in plan} == expected, proto


def test_deploy_follows_the_plan():
    rt = make_runtime("v1")
    rt.deploy()
    assert len(rt.cm_procs) == 2
    assert len(rt.server_procs) == 2
    assert rt.scheduler_proc is None
    assert rt.eventlog_proc is None
    assert set(rt.service_procs) == {"ckptserver.0", "ckptserver.1",
                                     "channelmemory.0", "channelmemory.1"}


def test_v1_gets_extra_service_nodes():
    config = VclConfig(n_procs=4, protocol="v1", n_channel_memories=3)
    assert config.n_service_nodes == 2 + config.n_ckpt_servers + 3
    assert VclConfig(n_procs=4, protocol="vcl").n_service_nodes == 4


# ---------------------------------------------------------------------------
# one-file extension: a toy protocol registers and runs
# ---------------------------------------------------------------------------

def test_registering_a_new_protocol_is_enough_to_deploy_it():
    class ToyDaemon(V2Daemon):
        protocol = "toy"

    spec = ProtocolSpec(
        name="toy",
        core_cls=ToyDaemon,
        service_plan=protocols.get_spec("v2").service_plan,
        single_rank_restart=True,
        description="V2 under another name (extension smoke test)",
        validate=None,
    )
    protocols.register(spec)
    try:
        rt = make_runtime("toy")
        res = rt.run()
        assert res.outcome.value == "terminated"
        assert res.trace.count("verify_ok") == 1
        # the toy daemon really ran: its tag is on the daemon processes
        procs = rt.cluster.all_procs("vdaemon")
        assert procs and all("toy" in p.tags for p in procs)
    finally:
        protocols.unregister("toy")
    with pytest.raises(ValueError):
        protocols.get_spec("toy")


# ---------------------------------------------------------------------------
# no protocol string branches outside the registry (acceptance criterion)
# ---------------------------------------------------------------------------

def test_no_protocol_string_branches_outside_registry():
    src_root = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    pattern = re.compile(r"protocol\s*(?:==|!=|\bin\b)\s*[(\"']")
    offenders = []
    for path in src_root.rglob("*.py"):
        if path.name == "protocols.py":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line) and not line.lstrip().startswith("#"):
                offenders.append(f"{path.name}:{lineno}: {line.strip()}")
    assert not offenders, offenders


# ---------------------------------------------------------------------------
# unified termination semantics (shared daemon base)
# ---------------------------------------------------------------------------

def test_every_daemon_shares_the_lifecycle_and_termination_path():
    for cls in (VclDaemon, V2Daemon, V1Daemon):
        assert issubclass(cls, MpichDaemon)
        # one dispatcher reader (and thus one Terminate behaviour):
        # protocols cannot drift apart again without overriding it
        assert cls.dispatcher_reader is MpichDaemon.dispatcher_reader
        assert cls._terminator is MpichDaemon._terminator


@pytest.mark.parametrize("protocol", ["vcl", "v2", "v1"])
def test_terminate_applies_cleanup_delay_for_every_protocol(protocol):
    """Regression: the V2 daemon used to exit immediately on Terminate
    while Vcl applied the ``terminate_cleanup`` delay — a timing
    artifact with no paper-grounded reason.  Drive the pre-command-map
    Terminate path against a fake dispatcher and time the exit."""
    from repro.analysis.traces import Trace
    from repro.cluster.cluster import Cluster
    from repro.mpichv import wire
    from repro.simkernel.engine import Engine
    from repro.simkernel.store import StoreClosed

    config = VclConfig(n_procs=2, n_machines=3, protocol=protocol,
                       footprint=1e8)
    engine = Engine(seed=5, trace=Trace())
    cluster = Cluster(engine, 1, name_prefix="m")
    cluster.add_node("svc0")
    observed = {}

    def fake_dispatcher(proc):
        listener = proc.node.listen(config.dispatcher_port, owner=proc)
        sock = yield listener.accept()
        reg = yield sock.recv()
        assert isinstance(reg, wire.Register)
        sock.send(wire.RegisterAck(rank=reg.rank))
        sock.send(wire.Terminate())
        observed["sent_at"] = engine.now
        try:
            yield sock.recv()
        except StoreClosed:
            observed["closed_at"] = engine.now

    cluster.node("svc0").spawn("dispatcher", fake_dispatcher, notify=False)

    def app(ep):
        yield ep.engine.event()

    spec = protocols.get_spec(protocol)
    cluster.node("m0").spawn(
        "vdaemon.0",
        lambda p: spec.daemon_main(p, config, 0, 0, 1, app),
        notify=False)
    engine.run(until=30.0)

    assert "closed_at" in observed, "daemon never exited"
    delay = observed["closed_at"] - observed["sent_at"]
    lo, hi = config.timing.terminate_cleanup
    # one network hop for the Terminate, then the cleanup delay
    assert delay >= lo, (protocol, delay)
    assert delay <= hi + 1.0, (protocol, delay)
