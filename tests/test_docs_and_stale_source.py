"""Docs tooling tests + the stale-docstring source scan.

Two kinds of rot guard:

* unit tests for ``scripts/check_docs.py`` (snippet extraction,
  link/anchor checking) plus a live link check over the real
  documentation set — CI's ``docs-check`` job additionally *executes*
  every ``python``/``console`` snippet;
* a source scan (à la ``tests/test_protocol_registry.py``) that greps
  ``src/`` for phrases describing architectures this repository no
  longer has — the single-checkpoint-server topology, the
  one-entry-per-event heap — and for ``svc``-node arithmetic outside
  the shard map, so stale descriptions and layout forks cannot creep
  back in.
"""

import pathlib
import re
import sys

import pytest

SCRIPTS = pathlib.Path(__file__).resolve().parent.parent / "scripts"
SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SCRIPTS))

import check_docs  # noqa: E402


# ---------------------------------------------------------------------------
# snippet extraction
# ---------------------------------------------------------------------------

def test_extract_snippets_classifies_fences(tmp_path):
    doc = tmp_path / "x.md"
    doc.write_text(
        "# t\n\n```python\nprint(1)\n```\n\n"
        "```console\n$ echo hi\nhi\n```\n\n"
        "```bash\nrm -rf /never-run\n```\n")
    snippets = check_docs.extract_snippets(str(doc))
    assert [(s.lang, s.line) for s in snippets] \
        == [("python", 3), ("console", 7), ("bash", 12)]
    assert snippets[0].body == "print(1)"
    assert "$ echo hi" in snippets[1].body


def test_run_snippets_python_and_console(tmp_path):
    doc = tmp_path / "x.md"
    doc.write_text(
        "```python\nassert 1 + 1 == 2\n```\n"
        "```console\n$ true\n```\n"
        "```bash\nfalse\n```\n"                       # display-only
        "```python\n# docs: skip\nraise SystemExit(3)\n```\n")
    assert check_docs.check_snippets([str(doc)]) == []


def test_run_snippets_reports_failures(tmp_path):
    doc = tmp_path / "x.md"
    doc.write_text("```python\nraise ValueError('boom')\n```\n")
    errors = check_docs.check_snippets([str(doc)])
    assert len(errors) == 1 and "x.md:1" in errors[0]
    doc.write_text("```console\n$ exit 7\n```\n")
    errors = check_docs.check_snippets([str(doc)])
    assert len(errors) == 1 and "exit 7" in errors[0]


# ---------------------------------------------------------------------------
# link checking
# ---------------------------------------------------------------------------

def test_link_checker_inside_repo(tmp_path, monkeypatch):
    monkeypatch.setattr(check_docs, "REPO", str(tmp_path))
    (tmp_path / "other.md").write_text("# Real Heading\n")
    doc = tmp_path / "doc.md"
    doc.write_text(
        "# Top\n"
        "[ok](other.md)\n"
        "[ok2](other.md#real-heading)\n"
        "[self](#top)\n"
        "[web](https://example.com/x)\n"
        "[gone](missing.md)\n"
        "[bad-anchor](other.md#nope)\n")
    errors = check_docs.check_links([str(doc)])
    assert len(errors) == 2
    assert any("missing.md" in e for e in errors)
    assert any("nope" in e for e in errors)


def test_link_checker_skips_links_leaving_the_repo(tmp_path, monkeypatch):
    monkeypatch.setattr(check_docs, "REPO", str(tmp_path / "repo"))
    (tmp_path / "repo").mkdir()
    doc = tmp_path / "repo" / "README.md"
    doc.write_text("[badge](../../actions/workflows/ci.yml)\n")
    assert check_docs.check_links([str(doc)]) == []


def test_fenced_blocks_are_not_scanned_for_links(tmp_path, monkeypatch):
    monkeypatch.setattr(check_docs, "REPO", str(tmp_path))
    doc = tmp_path / "doc.md"
    doc.write_text("```text\n[not-a-link](nowhere.md)\n```\n")
    assert check_docs.check_links([str(doc)]) == []


def test_repo_documentation_links_resolve():
    """The real README/EXPERIMENTS/docs link graph, checked live."""
    paths = check_docs.doc_files()
    names = {pathlib.Path(p).name for p in paths}
    assert {"README.md", "EXPERIMENTS.md", "architecture.md",
            "fail-language.md", "protocols.md"} <= names
    assert check_docs.check_links(paths) == []


def test_repo_docs_have_executable_snippets():
    """The docs-check CI job must have something to execute."""
    langs = [s.lang for p in check_docs.doc_files()
             for s in check_docs.extract_snippets(p)]
    assert langs.count("python") >= 4
    assert langs.count("console") >= 2


# ---------------------------------------------------------------------------
# stale-docstring source scan
# ---------------------------------------------------------------------------

#: phrases describing architectures this repo no longer has; add the
#: tell-tale wording here whenever a subsystem is replaced
STALE_PHRASES = [
    # pre-sharding: a fixed scheduler/servers layout spelled in prose
    r"checkpoint servers on ``svc2\.\.``",
    r"the single checkpoint server\b",
    # pre-slot-table engine
    r"deterministic event heap",
    r"pending-event heap",
    r"provides a virtual clock, an event heap",
    # pre-registry protocol dispatch
    r"string-match(?:ing|es) on the protocol name",
    r"if config\.protocol ==",
]


def _py_sources():
    return [p for p in SRC.rglob("*.py")]


@pytest.mark.parametrize("phrase", STALE_PHRASES)
def test_no_stale_phrases_in_source(phrase):
    pattern = re.compile(phrase)
    offenders = [
        f"{path.relative_to(SRC)}:{i}"
        for path in _py_sources()
        for i, line in enumerate(path.read_text().splitlines(), 1)
        if pattern.search(line)
    ]
    assert offenders == [], f"stale phrase {phrase!r} in {offenders}"


def test_service_node_arithmetic_only_in_shardmap():
    """``svc{2+...}``-style placement math must live in shardmap.py —
    a second copy is how daemons and deploy plans drift apart."""
    pattern = re.compile(r"svc\{2\s*\+|f\"svc\{.*\+")
    offenders = [
        f"{path.relative_to(SRC)}:{i}"
        for path in _py_sources()
        if path.name != "shardmap.py"
        for i, line in enumerate(path.read_text().splitlines(), 1)
        if pattern.search(line)
    ]
    assert offenders == [], offenders


def test_ckpt_shard_modulo_only_in_shardmap():
    pattern = re.compile(r"%\s*(self\.config\.|config\.)?n_ckpt_servers")
    offenders = [
        f"{path.relative_to(SRC)}:{i}"
        for path in _py_sources()
        if path.name != "shardmap.py"
        for i, line in enumerate(path.read_text().splitlines(), 1)
        if pattern.search(line)
    ]
    assert offenders == [], offenders
