"""Smoke + shape tests for the ``net-sensitivity`` experiment."""

import pytest

from repro.experiments import net_sensitivity
from repro.experiments.runner import TrialRunner
from repro.netmodel import TopologySpec


def test_topology_grid_shape():
    grid = net_sensitivity.topology_grid(oversubs=(2.0, 8.0))
    labels = [label for label, _spec in grid]
    assert labels == ["uniform", "star", "twotier/o2", "twotier/o8"]
    assert all(isinstance(spec, TopologySpec) for _l, spec in grid)


@pytest.mark.slow
def test_net_sensitivity_quick_sweep_reports_traffic(tmp_path):
    result = net_sensitivity.run_experiment(
        reps=1, protocol_names=("vcl",), oversubs=(4.0,),
        runner=TrialRunner(cache_dir=str(tmp_path)))
    assert [row.label for row in result.rows] == [
        "vcl/uniform", "vcl/star", "vcl/twotier/o4"]
    for row in result.rows:
        assert row.n == 1
        assert row.pct_terminated == 100.0
        assert row.mean_net_bytes > 0
    # uniform has no per-link accounting: no hot spot, not a 100 %
    # "fabric" pseudo-link (the misleading row this regression pins)
    assert result.row("vcl/uniform").hotspot_link is None
    assert result.row("vcl/uniform").hotspot_share == 0.0
    # non-uniform fabrics name a concrete link as the hot spot
    for label in ("vcl/star", "vcl/twotier/o4"):
        assert "/" in result.row(label).hotspot_link
        assert 0.0 < result.row(label).hotspot_share <= 1.0
    # summaries are JSON-shaped and complete; the uniform row carries
    # null hot-spot columns in the BENCH document
    rows = net_sensitivity.summarize(result)
    assert {r["label"] for r in rows} == {row.label for row in result.rows}
    assert all(r["mean_net_mb"] > 0 for r in rows)
    by_label = {r["label"]: r for r in rows}
    assert by_label["vcl/uniform"]["hotspot_link"] is None
    assert by_label["vcl/uniform"]["hotspot_share"] is None
    assert by_label["vcl/star"]["hotspot_share"] > 0.0
    text = net_sensitivity.render_hotspots(result)
    assert "fabric hot spots" in text and "vcl/star" in text
    # a warm cache re-run is free and identical
    rerun = net_sensitivity.run_experiment(
        reps=1, protocol_names=("vcl",), oversubs=(4.0,),
        runner=TrialRunner(cache_dir=str(tmp_path)))
    assert net_sensitivity.summarize(rerun) == rows
