"""Observability on real trials: span nesting on a kill + partition +
heal scenario for every protocol, the phase-sum acceptance check
against the trace, verdict identity with observation off, exporter
byte-determinism across execution paths, and the wire round trip."""

import json

import pytest

from repro.experiments.harness import TrialSetup
from repro.experiments.resultstore import (run_result_from_dict,
                                           run_result_to_dict)
from repro.experiments.runner import TrialRunner
from repro.explore import generators
from repro.explore.generators import (Heal, TimedKill, TimedPartition,
                                      render_plan)
from repro.mpichv import protocols
from repro.analysis.critpath import critical_paths, critpath_rollup
from repro.obs import (FIELDS, KIND, LANE, T0, T1, chrome_trace_json,
                       epoch_phase_table, span_rollups)
from repro.obs.causal import E_DST, E_SRC, E_TYPE, N_ID, N_KIND, N_T

CAL = dict(workload="ring", niters=40, total_compute=1280.0, footprint=1e8)

#: one real kill, one false suspicion (partition), then a heal — the
#: scenario the acceptance criteria name
PLAN = (TimedKill(at=20, target=0),
        TimedPartition(at=45, targets=(1,)),
        Heal(after=10))

PROTOCOLS = sorted(protocols.available())


def _setup(protocol, observe=True, keep_trace=False):
    return TrialSetup(
        n_procs=4, n_machines=6, protocol=protocol, timeout=200.0,
        scenario_source=render_plan(PLAN),
        master_daemon=generators.MASTER,
        node_daemon=generators.NODE_DAEMON,
        observe=observe, keep_trace=keep_trace, **CAL)


@pytest.fixture(scope="module")
def observed():
    """One observed kill/partition/heal trial per protocol."""
    return {p: _setup(p, keep_trace=True).run_one(7) for p in PROTOCOLS}


# ---------------------------------------------------------------------------
# span nesting / well-formedness
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_span_nesting_well_formed(observed, protocol):
    result = observed[protocol]
    obs = result.obs
    assert obs is not None and obs["version"] == 2
    spans = obs["spans"]
    assert spans and obs["dropped_spans"] == 0
    for row in spans:
        assert row[T1] is not None          # finalize closed everything
        assert row[T0] <= row[T1] <= result.sim_time + 1e-9
        assert isinstance(row[LANE], str) and row[LANE]
    kinds = {row[KIND] for row in spans}
    # the recovery anatomy the trial must decompose into
    assert {"detect", "relaunch", "restore", "catchup",
            "netsplit"} <= kinds
    # checkpoint-wave anatomy: initiate at the wave start, commit at
    # the end of every completed wave
    for wave in (r for r in spans if r[KIND] == "ckpt_wave"):
        f = wave[FIELDS] or {}
        if f.get("aborted") or f.get("_truncated"):
            continue
        assert any(r[KIND] == "initiate" and abs(r[T0] - wave[T0]) < 1e-9
                   and (r[FIELDS] or {}).get("wave") == f.get("wave")
                   for r in spans)
        assert any(r[KIND] == "commit" and abs(r[T0] - wave[T1]) < 1e-9
                   and (r[FIELDS] or {}).get("wave") == f.get("wave")
                   for r in spans)
    # every restore sits inside the window of a relaunch's epoch
    relaunch_starts = [r[T0] for r in spans if r[KIND] == "relaunch"]
    for restore in (r for r in spans if r[KIND] == "restore"):
        assert any(restore[T0] >= t0 - 1e-9 for t0 in relaunch_starts)


@pytest.mark.parametrize("protocol", ["v2", "v1"])
def test_logging_protocols_record_replay(observed, protocol):
    roll = span_rollups(observed[protocol].obs)
    assert roll.get("replay", {}).get("count", 0) >= 1


def test_heal_closes_the_netsplit_span(observed):
    spans = observed["vcl"].obs["spans"]
    splits = [r for r in spans if r[KIND] == "netsplit"]
    assert splits
    for row in splits:
        assert not (row[FIELDS] or {}).get("_truncated")
        # Heal(after=10) — plus the FAIL daemon's own stepping overhead
        assert 10.0 <= row[T1] - row[T0] < 11.0


# ---------------------------------------------------------------------------
# acceptance: phases tile the trace-derived recovery time
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_phase_sum_matches_trace_recovery(observed, protocol):
    result = observed[protocol]
    rows = epoch_phase_table(result.obs)
    assert rows, "a killed trial must produce recovery rows"
    detections = [rec.t for rec in result.trace.of_kind("failure_detected")]
    recoveries = [(rec.t, rec.fields.get("epoch"))
                  for rec in result.trace.of_kind("recovery_complete")]
    for row in (r for r in rows if not r["truncated"]):
        # the four phases tile the recovery interval exactly
        phase_sum = (row["detect"] + row["relaunch"] + row["restore"]
                     + row["replay"])
        assert phase_sum == pytest.approx(row["recovery"], abs=1e-9)
        # boundaries line up with the trace's own records: detection …
        t_detect = row["t_fault"] + row["detect"]
        assert any(t == pytest.approx(t_detect, abs=1e-9)
                   for t in detections)
        # … and, for full restarts, re-registration
        if row["rank"] is None:
            t_reg = t_detect + row["relaunch"]
            assert any(t == pytest.approx(t_reg, abs=1e-9)
                       and ep == row["epoch"] for t, ep in recoveries)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_verdict_carries_span_derived_fields(observed, protocol):
    verdict = observed[protocol].verdict
    assert verdict.detect_latency is not None and verdict.detect_latency >= 0
    assert verdict.replay_seconds is not None and verdict.replay_seconds >= 0


# ---------------------------------------------------------------------------
# causal graph + critical paths on real trials
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_causal_graph_well_formed(observed, protocol):
    causal = observed[protocol].obs["causal"]
    nodes, edges = causal["nodes"], causal["edges"]
    assert nodes and edges
    assert causal["dropped_nodes"] == 0 and causal["dropped_edges"] == 0
    # every recorded transmission contributed a send/recv pair (fanout
    # and adopted envelopes mean one minted id can back many pairs)
    assert causal["minted"] >= 1 and len(nodes) % 2 == 0
    ids = [n[N_ID] for n in nodes]
    assert len(ids) == len(set(ids)), "node ids must be unique"
    sim_time = observed[protocol].sim_time
    for n in nodes:
        assert 0.0 <= n[N_T] <= sim_time + 1e-9
        assert isinstance(n[N_KIND], str) and n[N_KIND]
    for e in edges:
        assert 0 <= e[E_SRC] < len(nodes) and 0 <= e[E_DST] < len(nodes)
        assert e[E_TYPE] in ("net", "causal")
        assert nodes[e[E_SRC]][N_T] <= nodes[e[E_DST]][N_T] + 1e-9
    # every net edge joins the two halves of one transmission
    for e in (e for e in edges if e[E_TYPE] == "net"):
        src, dst = nodes[e[E_SRC]], nodes[e[E_DST]]
        assert src[N_ID].endswith(":s") and dst[N_ID].endswith(":r")
        assert src[N_ID][:-2] == dst[N_ID][:-2]
        assert src[N_KIND] == dst[N_KIND]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_critical_path_segments_tile_recovery_exactly(observed, protocol):
    """The acceptance identity, on real trials: for every recovery
    epoch the per-phase segments sum to the recovery span duration —
    exactly, not approximately."""
    result = observed[protocol]
    rows = critical_paths(result.obs)
    assert rows, "a killed trial must produce critical-path rows"
    for row in (r for r in rows if not r["truncated"]):
        assert sum(s["dur"] for s in row["segments"]) == row["recovery"]
        assert [s["phase"] for s in row["segments"]] == \
            ["detect", "relaunch", "restore", "replay"]
        # segments abut: each starts where the previous ended
        for prev, nxt in zip(row["segments"], row["segments"][1:]):
            assert prev["t1"] == nxt["t0"]
        assert row["segments"][0]["t0"] == row["t_fault"]
        # attribution covers traced wire traffic inside the window
        assert row["attribution"], "recovery without any wire traffic"
    # the verdict carries the rollup of exactly these rows
    assert result.verdict.critpath_segments == critpath_rollup(result.obs)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_chrome_trace_flow_events_pair_up(observed, protocol):
    doc = json.loads(chrome_trace_json(observed[protocol].obs))
    starts = [e for e in doc["traceEvents"] if e.get("ph") == "s"]
    ends = [e for e in doc["traceEvents"] if e.get("ph") == "f"]
    assert starts, "an observed faulted trial must emit flow events"
    assert len(starts) == len(ends)
    by_id = {e["id"]: e for e in starts}
    assert len(by_id) == len(starts), "flow ids must be unique"
    lanes = {(e["pid"], e["tid"])
             for e in doc["traceEvents"]
             if e.get("ph") == "M" and e.get("name") == "thread_name"}
    for end in ends:
        start = by_id[end["id"]]
        assert (start["name"], start["cat"]) == (end["name"], end["cat"])
        assert end["cat"] == "critpath"
        assert start["ts"] <= end["ts"]
        assert end.get("bp") == "e"
        assert (start["pid"], start["tid"]) in lanes


# ---------------------------------------------------------------------------
# observation is inert: same simulation, same verdict
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_verdict_identical_with_observation_off(observed, protocol):
    on = observed[protocol]
    off = _setup(protocol, observe=False).run_one(7)
    assert off.obs is None
    # span-derived verdict extras disappear; nothing else may move
    assert off.verdict.detect_latency is None
    assert off.verdict.replay_seconds is None
    assert off.verdict.outcome == on.verdict.outcome
    assert off.verdict.exec_time == on.verdict.exec_time
    assert off.verdict.last_activity == on.verdict.last_activity
    assert off.verdict.reason == on.verdict.reason
    assert off.app_signature == on.app_signature
    assert off.events_processed == on.events_processed
    assert off.sim_time == on.sim_time


# ---------------------------------------------------------------------------
# exporter determinism across execution paths
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_chrome_trace_byte_identical_across_paths(tmp_path):
    """Serial, pooled, cold/warm cache and --engine-workers 2 must all
    produce byte-identical Chrome-trace JSON for the same trials."""
    jobs = [(_setup(protocol), 7) for protocol in PROTOCOLS]
    w2_jobs = [(s, seed) for s, seed in jobs]

    batches = {
        "serial": TrialRunner(workers=1).run_jobs(jobs),
        "pool": TrialRunner(workers=2).run_jobs(jobs),
        "cold": TrialRunner(workers=2,
                            cache_dir=str(tmp_path)).run_jobs(jobs),
        "warm": TrialRunner(workers=1,
                            cache_dir=str(tmp_path)).run_jobs(jobs),
        "ew2": TrialRunner(workers=1, engine_workers=2).run_jobs(w2_jobs),
    }
    reference = [chrome_trace_json(r.obs) for r in batches["serial"]]
    assert all(json.loads(blob)["traceEvents"] for blob in reference)
    for name, results in batches.items():
        blobs = [chrome_trace_json(r.obs) for r in results]
        assert blobs == reference, f"{name} diverged from serial"


def test_trace_out_exports_first_faulted_trial(tmp_path):
    out = tmp_path / "trial.trace.json"
    fault_free = TrialSetup(n_procs=4, n_machines=6, protocol="vcl",
                            timeout=200.0, **CAL)
    runner = TrialRunner(workers=1, trace_out=str(out))
    results = runner.run_jobs([(fault_free, 7), (_setup("vcl"), 7)])
    doc = json.loads(out.read_text())
    # the faulted trial (second submitted) wins over the fault-free one
    assert results[1].restarts > 0
    assert out.read_text() == chrome_trace_json(
        results[1].obs, title=doc["otherData"].get("title", "repro trial")) \
        or json.loads(chrome_trace_json(results[1].obs))["traceEvents"] \
        == doc["traceEvents"]


# ---------------------------------------------------------------------------
# wire round trip
# ---------------------------------------------------------------------------

def test_resultstore_roundtrip_preserves_obs(observed):
    result = observed["vcl"]
    doc = run_result_to_dict(result)
    blob = json.dumps(doc, sort_keys=True)     # must be JSON-safe
    back = run_result_from_dict(json.loads(blob))
    assert run_result_to_dict(back) == json.loads(blob) \
        or run_result_to_dict(back) == doc
    assert back.obs == result.obs
    assert back.obs["causal"] == result.obs["causal"]
    assert back.verdict.detect_latency == result.verdict.detect_latency
    assert back.verdict.replay_seconds == result.verdict.replay_seconds
    assert back.verdict.critpath_segments == result.verdict.critpath_segments
    assert back.verdict.critpath_segments is not None
