"""Unit tests for FAIL expression evaluation and machine semantics."""

import random

import pytest

from repro.fail.lang import ast
from repro.fail.lang.errors import FailSemanticError
from repro.fail.lang.parser import parse_fail
from repro.fail.machine import Machine, eval_expr


class FakeCtx:
    """Records actions; enough context for Machine in isolation."""

    def __init__(self, seed=0):
        self.rng = random.Random(seed)
        self.sent = []
        self.halted = 0
        self.stopped = 0
        self.continued = 0
        self.partitions = []
        self.healed = 0
        self.timers = []
        self.nodes_entered = []

    def send_msg(self, msg, dest):
        self.sent.append((msg, dest))

    def resolve_dest(self, dest, env, sender):
        if isinstance(dest, ast.DestSender):
            return sender
        if isinstance(dest, ast.DestName):
            return dest.name
        return f"{dest.group}[{eval_expr(dest.index, env, self.rng)}]"

    def act_halt(self):
        self.halted += 1

    def act_stop(self):
        self.stopped += 1

    def act_continue(self):
        self.continued += 1

    def act_partition(self, dest):
        self.partitions.append(dest)

    def act_heal(self):
        self.healed += 1

    def arm_timer(self, delay, gen):
        self.timers.append((delay, gen))

    def node_entered(self, node):
        self.nodes_entered.append(node.node_id)


def build(src, params=None, seed=0):
    prog = parse_fail(src)
    ctx = FakeCtx(seed=seed)
    machine = Machine(prog.daemons[0], params or {}, ctx, "T")
    return machine, ctx


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("expr_src,env,expected", [
    ("1 + 2 * 3", {}, 7),
    ("(1 + 2) * 3", {}, 9),
    ("10 - 4 - 3", {}, 3),          # left associativity
    ("7 % 3", {}, 1),
    ("7 / 2", {}, 3),               # integer division toward zero
    ("x + 1", {"x": 41}, 42),
    ("1 == 1", {}, 1),
    ("1 <> 1", {}, 0),
    ("2 <= 2", {}, 1),
    ("3 < 2", {}, 0),
    ("1 && 0", {}, 0),
    ("1 || 0", {}, 1),
    ("!0", {}, 1),
    ("!5", {}, 0),
    ("-3 + 5", {}, 2),
])
def test_eval_expr_table(expr_src, env, expected):
    prog = parse_fail(f"Daemon D {{ int r = {expr_src}; node 1: }}")
    expr = prog.daemons[0].variables[0].init
    env = dict(env)
    assert eval_expr(expr, env, random.Random(0)) == expected


def test_eval_undefined_var_raises():
    with pytest.raises(FailSemanticError):
        eval_expr(ast.Var("nope"), {}, random.Random(0))


def test_eval_division_by_zero():
    with pytest.raises(FailSemanticError):
        eval_expr(ast.BinOp("/", ast.Num(1), ast.Num(0)), {}, random.Random(0))
    with pytest.raises(FailSemanticError):
        eval_expr(ast.BinOp("%", ast.Num(1), ast.Num(0)), {}, random.Random(0))


def test_fail_random_inclusive_bounds():
    rng = random.Random(7)
    draws = {eval_expr(ast.RandCall(ast.Num(0), ast.Num(2)), {}, rng)
             for _ in range(300)}
    assert draws == {0, 1, 2}


def test_fail_random_swapped_bounds_tolerated():
    rng = random.Random(7)
    value = eval_expr(ast.RandCall(ast.Num(5), ast.Num(5)), {}, rng)
    assert value == 5


# ---------------------------------------------------------------------------
# machine semantics
# ---------------------------------------------------------------------------

def test_machine_starts_in_first_node_and_arms_timer():
    machine, ctx = build("""
        Daemon D {
          node 1:
            time g_timer = 50;
            timer -> goto 2;
          node 2:
        }
    """)
    assert machine.node_id == 1
    assert ctx.timers == [(50.0, 1)]


def test_params_substitute_into_timer_and_vars():
    machine, ctx = build("""
        Daemon D {
          int c = X;
          node 1:
            time g_timer = X;
            timer -> goto 1;
        }
    """, params={"X": 45})
    assert machine.vars["c"] == 45
    assert ctx.timers[0][0] == 45.0


def test_transition_first_match_wins():
    machine, ctx = build("""
        Daemon D {
          int w = 2;
          node 1:
            onload && w == 2 -> !first(P1), goto 1;
            onload -> !second(P1), goto 1;
        }
    """)
    assert machine.handle(("onload",))
    assert ctx.sent == [("first", "P1")]


def test_guard_false_falls_through():
    machine, ctx = build("""
        Daemon D {
          int w = 1;
          node 1:
            onload && w == 2 -> !first(P1), goto 1;
            onload -> !second(P1), goto 1;
        }
    """)
    machine.handle(("onload",))
    assert ctx.sent == [("second", "P1")]


def test_unmatched_event_returns_false():
    machine, ctx = build("Daemon D { node 1: onload -> goto 1; }")
    assert not machine.handle(("msg", "crash", "P1"))
    assert machine.node_id == 1


def test_assignment_updates_daemon_vars():
    machine, ctx = build("""
        Daemon D {
          int w = 1;
          node 1:
            onload -> w = w + 1, goto 1;
        }
    """)
    machine.handle(("onload",))
    machine.handle(("onload",))
    assert machine.vars["w"] == 3


def test_always_reevaluated_on_every_entry_including_self_goto():
    machine, ctx = build("""
        Daemon D {
          node 1:
            always int ran = FAIL_RANDOM(0, 1000000);
            ?go -> !m(G1[ran]), goto 1;
        }
    """, seed=3)
    seen = set()
    for _ in range(5):
        machine.handle(("msg", "go", "P1"))
        seen.add(ctx.sent[-1][1])
    assert len(seen) > 1      # re-drawn on re-entry


def test_stale_timer_ignored_after_goto():
    machine, ctx = build("""
        Daemon D {
          node 1:
            time g_timer = 10;
            timer -> !fired(P1), goto 2;
          node 2:
            ?back -> goto 1;
        }
    """)
    old_gen = ctx.timers[0][1]
    machine.handle(("timer", old_gen))          # fires, goto 2
    assert machine.node_id == 2
    assert not machine.handle(("timer", old_gen))   # stale now
    machine.handle(("msg", "back", "P1"))       # re-enter node 1
    assert ctx.timers[-1][1] == machine.entry_gen


def test_fail_sender_resolution():
    machine, ctx = build("""
        Daemon D {
          node 1:
            ?ping -> !pong(FAIL_SENDER), goto 1;
        }
    """)
    machine.handle(("msg", "ping", "G1[7]"))
    assert ctx.sent == [("pong", "G1[7]")]


def test_halt_stop_continue_reach_context():
    machine, ctx = build("""
        Daemon D {
          node 1:
            ?a -> halt, goto 1;
            ?b -> stop, goto 1;
            ?c -> continue, goto 1;
        }
    """)
    machine.handle(("msg", "a", "P1"))
    machine.handle(("msg", "b", "P1"))
    machine.handle(("msg", "c", "P1"))
    assert (ctx.halted, ctx.stopped, ctx.continued) == (1, 1, 1)


def test_before_trigger_matching():
    machine, ctx = build("""
        Daemon D {
          node 1:
            before(setCommand) -> halt, goto 1;
        }
    """)
    assert not machine.handle(("before", "otherFn"))
    assert machine.handle(("before", "setCommand"))
    assert ctx.halted == 1


def test_paper_fig7a_counting_logic():
    """Replays the Fig. 7a accounting: X crashes per batch."""
    machine, ctx = build("""
        Daemon ADV1 {
          int nb_crash = X;
          node 1:
            always int ran = FAIL_RANDOM(0, N);
            time g_timer = 50;
            timer -> !crash(G1[ran]), goto 2;
          node 2:
            always int ran = FAIL_RANDOM(0, N);
            ?ok && nb_crash > 1 -> !crash(G1[ran]), nb_crash = nb_crash - 1, goto 2;
            ?ok && nb_crash <= 1 -> nb_crash = X, goto 1;
            ?no -> !crash(G1[ran]), goto 2;
        }
    """, params={"X": 3, "N": 9})
    machine.handle(("timer", machine.entry_gen))        # crash #1
    machine.handle(("msg", "ok", "G1[0]"))              # crash #2
    machine.handle(("msg", "no", "G1[1]"))              # re-roll #2
    machine.handle(("msg", "ok", "G1[2]"))              # crash #3
    machine.handle(("msg", "ok", "G1[3]"))              # batch done
    crashes = [d for m, d in ctx.sent if m == "crash"]
    assert len(crashes) == 4        # 3 effective + 1 re-roll
    assert machine.node_id == 1     # back to the timer
    assert machine.vars["nb_crash"] == 3
