"""Unit tests for the FAIL parser and semantic checks."""

import pytest

from repro.fail import builtin_scenarios as scenarios
from repro.fail.lang import ast
from repro.fail.lang.errors import FailSemanticError, FailSyntaxError
from repro.fail.lang.parser import parse_fail
from repro.fail.lang.pretty import pretty_print
from repro.fail.lang.semantics import check_program

ALL_PAPER_SCENARIOS = [
    scenarios.FIG4_NODE_DAEMON,
    scenarios.FIG5A_MASTER,
    scenarios.FIG7A_MASTER,
    scenarios.FIG8A_MASTER,
    scenarios.FIG8B_NODE_DAEMON,
    scenarios.FIG10A_MASTER,
    scenarios.FIG10B_NODE_DAEMON,
]


@pytest.mark.parametrize("src", ALL_PAPER_SCENARIOS)
def test_paper_scenarios_parse_check_roundtrip(src):
    prog = parse_fail(src)
    check_program(prog, params={"X", "N"})
    assert parse_fail(pretty_print(prog)) == prog


def test_simple_daemon_structure():
    prog = parse_fail("""
        Daemon D {
          int x = 3;
          node 1:
            onload -> continue, goto 2;
          node 2:
            ?crash -> !ok(P1), halt, goto 1;
        }
    """)
    d = prog.daemon("D")
    assert [v.name for v in d.variables] == ["x"]
    assert [n.node_id for n in d.nodes] == [1, 2]
    assert d.start_node == 1
    tr = d.node(2).transitions[0]
    assert isinstance(tr.trigger, ast.MsgTrigger) and tr.trigger.name == "crash"
    assert isinstance(tr.actions[0], ast.SendAction)
    assert isinstance(tr.actions[1], ast.HaltAction)
    assert tr.actions[2] == ast.GotoAction(1)


def test_guard_binds_after_first_and():
    prog = parse_fail("""
        Daemon D {
          int n = 1;
          node 1:
            ?ok && n > 1 && n < 5 -> goto 1;
        }
    """)
    tr = prog.daemon("D").node(1).transitions[0]
    assert isinstance(tr.guard, ast.BinOp) and tr.guard.op == "&&"


def test_paper_inequality_operator():
    prog = parse_fail("""
        Daemon D {
          int w = 1;
          node 1:
            onload && w <> 2 -> continue, goto 1;
        }
    """)
    guard = prog.daemon("D").node(1).transitions[0].guard
    assert guard.op == "<>"


def test_listing_labels_accepted():
    with_labels = """
        Daemon D {
          1 int x = 0;
          node 1:
            2 onload -> continue, goto 1;
            3 ?crash -> halt, goto 1;
        }
    """
    without = """
        Daemon D {
          int x = 0;
          node 1:
            onload -> continue, goto 1;
            ?crash -> halt, goto 1;
        }
    """
    assert parse_fail(with_labels) == parse_fail(without)


def test_empty_node_allowed():
    prog = parse_fail("Daemon D { node 1: ?go -> goto 4; node 4: }")
    assert prog.daemon("D").node(4).transitions == ()


def test_paper_node_node_typo_tolerated():
    prog = parse_fail("Daemon D { node node 1: onload -> continue, goto 1; }")
    assert prog.daemon("D").node(1) is not None


def test_before_trigger_and_stop_action():
    prog = parse_fail("""
        Daemon D {
          node 4:
            before(localMPI_setCommand) -> halt, goto 4;
          node 5:
            onload -> stop, goto 5;
        }
    """)
    tr = prog.daemon("D").node(4).transitions[0]
    assert tr.trigger == ast.Before("localMPI_setCommand")
    assert prog.daemon("D").start_node == 4


def test_fail_random_and_dest_index():
    prog = parse_fail("""
        Daemon D {
          node 1:
            always int ran = FAIL_RANDOM(0, 52);
            time g_timer = 50;
            timer -> !crash(G1[ran]), goto 1;
        }
    """)
    node = prog.daemon("D").node(1)
    assert isinstance(node.always[0].init, ast.RandCall)
    assert node.timers[0].delay == ast.Num(50)
    send = node.transitions[0].actions[0]
    assert send.dest == ast.DestIndex("G1", ast.Var("ran"))


def test_fail_sender_dest():
    prog = parse_fail("""
        Daemon D {
          node 3:
            ?waveok -> !crash(FAIL_SENDER), goto 3;
        }
    """)
    send = prog.daemon("D").node(3).transitions[0].actions[0]
    assert isinstance(send.dest, ast.DestSender)


def test_deploy_block():
    prog = parse_fail("""
        Daemon A { node 1: }
        Daemon B { node 1: }
        Deploy {
          P1 = A;
          G1[53] = B;
        }
    """)
    assert prog.deploy == (
        ast.DeployDirective("P1", "A", None),
        ast.DeployDirective("G1", "B", 53),
    )


def test_expression_precedence():
    prog = parse_fail("""
        Daemon D {
          int x = 1 + 2 * 3;
          node 1:
        }
    """)
    init = prog.daemon("D").variables[0].init
    assert init == ast.BinOp("+", ast.Num(1),
                             ast.BinOp("*", ast.Num(2), ast.Num(3)))


def test_unary_and_parens():
    prog = parse_fail("""
        Daemon D {
          int x = -(1 + 2);
          node 1:
        }
    """)
    init = prog.daemon("D").variables[0].init
    assert isinstance(init, ast.UnOp) and init.op == "-"


# ---------------------------------------------------------------------------
# syntax errors
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("bad", [
    "Daemon { node 1: }",                       # missing name
    "Daemon D { }",                             # no nodes
    "Daemon D { node 1: onload -> ; }",         # empty actions
    "Daemon D { node 1: onload continue; }",    # missing arrow
    "Daemon D { node 1: ?ok -> goto; }",        # goto without target
    "Daemon D { node one: }",                   # non-integer node id
    "Garbage",                                  # not a program
])
def test_syntax_errors(bad):
    with pytest.raises(FailSyntaxError):
        parse_fail(bad)


# ---------------------------------------------------------------------------
# semantic errors
# ---------------------------------------------------------------------------

def test_goto_nonexistent_node_rejected():
    prog = parse_fail("Daemon D { node 1: onload -> goto 9; }")
    with pytest.raises(FailSemanticError):
        check_program(prog)


def test_undeclared_variable_rejected():
    prog = parse_fail("Daemon D { node 1: ?ok && mystery > 0 -> goto 1; }")
    with pytest.raises(FailSemanticError):
        check_program(prog)


def test_param_makes_variable_defined():
    prog = parse_fail("Daemon D { node 1: ?ok && X > 0 -> goto 1; }")
    check_program(prog, params={"X"})
    with pytest.raises(FailSemanticError):
        check_program(prog, params=set())


def test_assignment_to_undeclared_rejected():
    prog = parse_fail("Daemon D { node 1: ?ok -> y = 1, goto 1; }")
    with pytest.raises(FailSemanticError):
        check_program(prog)


def test_timer_trigger_without_timer_rejected():
    prog = parse_fail("Daemon D { node 1: timer -> goto 1; }")
    with pytest.raises(FailSemanticError):
        check_program(prog)


def test_duplicate_node_ids_rejected():
    prog = parse_fail("Daemon D { node 1: node 1: }")
    with pytest.raises(FailSemanticError):
        check_program(prog)


def test_duplicate_daemons_rejected():
    prog = parse_fail("Daemon D { node 1: } Daemon D { node 1: }")
    with pytest.raises(FailSemanticError):
        check_program(prog)


def test_deploy_unknown_daemon_rejected():
    prog = parse_fail("Daemon A { node 1: } Deploy { P1 = Z; }")
    with pytest.raises(FailSemanticError):
        check_program(prog)
