"""Trace recording, outcome classification and statistics helpers."""

from repro.analysis.traces import Trace, TraceRecord
from repro.analysis.classify import Outcome, classify_run
from repro.analysis.stats import mean, stdev, confidence_interval, summarize

__all__ = [
    "Trace",
    "TraceRecord",
    "Outcome",
    "classify_run",
    "mean",
    "stdev",
    "confidence_interval",
    "summarize",
]
