"""Outcome classification by trace analysis.

The paper (§5) distinguishes three outcomes per experiment:

* **terminated** — the benchmark finished before the 1500 s timeout;
* **non-terminating** — timeout, but the trace shows the application
  kept cycling through rollback/recovery (fault frequency too high for
  progress) — the *green* bars;
* **buggy** — timeout with the application *frozen*: some point after
  which no protocol activity occurs at all (a recovery wave that never
  completes) — the *red* bars.

We implement the same trace analysis: a run that timed out is *buggy*
iff protocol activity ceased well before the timeout, and
*non-terminating* if activity continued to the end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.analysis.traces import Trace

#: trace kinds that count as "the system is doing something"
ACTIVITY_KINDS = (
    "progress",
    "ckpt_wave_start",
    "ckpt_wave_complete",
    "failure_detected",
    "restart_wave",
    "recovery_complete",
    "fault_injected",
    "proc_launch",
    "ckpt_stored",
)


class Outcome(enum.Enum):
    """Classification of a single experiment run."""

    TERMINATED = "terminated"
    NON_TERMINATING = "non-terminating"
    BUGGY = "buggy"

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        return self.value


@dataclass
class RunVerdict:
    """Outcome plus the evidence used to reach it."""

    outcome: Outcome
    exec_time: Optional[float]
    last_activity: float
    reason: str
    #: mean failure-detection latency over the run's ``detect`` spans
    #: (simulated seconds), from the span rollups of the trial's
    #: ``obs`` document; None when observation was off or fault-free
    detect_latency: Optional[float] = None
    #: total time spent replaying logged/recomputed history across all
    #: recoveries (``replay`` span rollup); None when unobserved
    replay_seconds: Optional[float] = None
    #: per-phase critical-path seconds summed over recovery epochs
    #: (:func:`repro.analysis.critpath.critpath_rollup`); empty dict for
    #: an observed fault-free run, None when observation was off
    critpath_segments: Optional[Dict[str, float]] = None

    @property
    def terminated(self) -> bool:
        return self.outcome is Outcome.TERMINATED

    @property
    def buggy(self) -> bool:
        return self.outcome is Outcome.BUGGY

    @property
    def non_terminating(self) -> bool:
        return self.outcome is Outcome.NON_TERMINATING


def last_activity_time(trace: Trace) -> float:
    """Latest timestamp of any protocol-activity trace kind."""
    best = 0.0
    for kind in ACTIVITY_KINDS:
        t = trace.last_t(kind)
        if t is not None and t > best:
            best = t
    return best


def _span_durations(obs: Optional[Dict[str, Any]], kind: str) -> list:
    """Durations of one span kind from an ``obs`` document.

    Works on the plain wire rows (``[t0, t1, kind, lane, fields]``,
    see :mod:`repro.obs.spans`) so classification needs no obs import
    and handles legacy/unobserved results (``None``) uniformly.
    Truncated spans (closed artificially at end of run) are excluded —
    their duration measures the kill time, not the phase.
    """
    if not obs:
        return []
    out = []
    for row in obs.get("spans", ()):
        if row[2] != kind:
            continue
        fields = row[4] or {}
        if fields.get("_truncated"):
            continue
        t1 = row[1] if row[1] is not None else row[0]
        out.append(t1 - row[0])
    return out


def classify_run(trace: Trace, timeout: float,
                 freeze_threshold: float = 150.0,
                 obs: Optional[Dict[str, Any]] = None) -> RunVerdict:
    """Classify one run from its trace.

    Parameters
    ----------
    trace:
        The run's trace (counters suffice; full records not required).
    timeout:
        The experiment kill time (1500 s in the paper).
    freeze_threshold:
        How long a gap with zero protocol activity before the timeout
        counts as a freeze.  Must exceed the largest fault inter-arrival
        time used by the scenario (the paper's max is 65 s).
    obs:
        The trial's observability document, when recorded.  The verdict
        *outcome* never depends on it (trace-only classification is the
        paper's method and must hold for unobserved/legacy results);
        it only enriches the verdict with span-derived phase figures —
        detection latency and total replay time.
    """
    detects = _span_durations(obs, "detect")
    detect_latency = (round(sum(detects) / len(detects), 9)
                      if detects else None)
    replays = _span_durations(obs, "replay")
    # an observed run with no replay spans genuinely replayed nothing
    # (e.g. vcl, which logs no messages) — that is 0.0, not unknown
    replay_seconds = round(sum(replays), 9) if obs is not None else None
    if obs is not None:
        # function-level import keeps legacy/unobserved classification
        # free of the analysis layer's obs dependencies
        from repro.analysis.critpath import critpath_rollup
        critpath_segments: Optional[Dict[str, float]] = critpath_rollup(obs)
    else:
        critpath_segments = None

    done_t = trace.last_t("app_done")
    if done_t is not None:
        return RunVerdict(
            outcome=Outcome.TERMINATED,
            exec_time=done_t,
            last_activity=done_t,
            reason="application finalized",
            detect_latency=detect_latency,
            replay_seconds=replay_seconds,
            critpath_segments=critpath_segments,
        )
    t_act = last_activity_time(trace)
    idle = timeout - t_act
    if idle > freeze_threshold:
        return RunVerdict(
            outcome=Outcome.BUGGY,
            exec_time=None,
            last_activity=t_act,
            reason=(f"frozen: no protocol activity for {idle:.0f}s before "
                    f"timeout (last activity at t={t_act:.1f})"),
            detect_latency=detect_latency,
            replay_seconds=replay_seconds,
            critpath_segments=critpath_segments,
        )
    return RunVerdict(
        outcome=Outcome.NON_TERMINATING,
        exec_time=None,
        last_activity=t_act,
        reason=(f"no progress but protocol kept cycling (last activity "
                f"at t={t_act:.1f}, {idle:.0f}s before timeout)"),
        detect_latency=detect_latency,
        replay_seconds=replay_seconds,
        critpath_segments=critpath_segments,
    )
