"""Outcome classification by trace analysis.

The paper (§5) distinguishes three outcomes per experiment:

* **terminated** — the benchmark finished before the 1500 s timeout;
* **non-terminating** — timeout, but the trace shows the application
  kept cycling through rollback/recovery (fault frequency too high for
  progress) — the *green* bars;
* **buggy** — timeout with the application *frozen*: some point after
  which no protocol activity occurs at all (a recovery wave that never
  completes) — the *red* bars.

We implement the same trace analysis: a run that timed out is *buggy*
iff protocol activity ceased well before the timeout, and
*non-terminating* if activity continued to the end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.analysis.traces import Trace

#: trace kinds that count as "the system is doing something"
ACTIVITY_KINDS = (
    "progress",
    "ckpt_wave_start",
    "ckpt_wave_complete",
    "failure_detected",
    "restart_wave",
    "recovery_complete",
    "fault_injected",
    "proc_launch",
    "ckpt_stored",
)


class Outcome(enum.Enum):
    """Classification of a single experiment run."""

    TERMINATED = "terminated"
    NON_TERMINATING = "non-terminating"
    BUGGY = "buggy"

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        return self.value


@dataclass
class RunVerdict:
    """Outcome plus the evidence used to reach it."""

    outcome: Outcome
    exec_time: Optional[float]
    last_activity: float
    reason: str

    @property
    def terminated(self) -> bool:
        return self.outcome is Outcome.TERMINATED

    @property
    def buggy(self) -> bool:
        return self.outcome is Outcome.BUGGY

    @property
    def non_terminating(self) -> bool:
        return self.outcome is Outcome.NON_TERMINATING


def last_activity_time(trace: Trace) -> float:
    """Latest timestamp of any protocol-activity trace kind."""
    best = 0.0
    for kind in ACTIVITY_KINDS:
        t = trace.last_t(kind)
        if t is not None and t > best:
            best = t
    return best


def classify_run(trace: Trace, timeout: float,
                 freeze_threshold: float = 150.0) -> RunVerdict:
    """Classify one run from its trace.

    Parameters
    ----------
    trace:
        The run's trace (counters suffice; full records not required).
    timeout:
        The experiment kill time (1500 s in the paper).
    freeze_threshold:
        How long a gap with zero protocol activity before the timeout
        counts as a freeze.  Must exceed the largest fault inter-arrival
        time used by the scenario (the paper's max is 65 s).
    """
    done_t = trace.last_t("app_done")
    if done_t is not None:
        return RunVerdict(
            outcome=Outcome.TERMINATED,
            exec_time=done_t,
            last_activity=done_t,
            reason="application finalized",
        )
    t_act = last_activity_time(trace)
    idle = timeout - t_act
    if idle > freeze_threshold:
        return RunVerdict(
            outcome=Outcome.BUGGY,
            exec_time=None,
            last_activity=t_act,
            reason=(f"frozen: no protocol activity for {idle:.0f}s before "
                    f"timeout (last activity at t={t_act:.1f})"),
        )
    return RunVerdict(
        outcome=Outcome.NON_TERMINATING,
        exec_time=None,
        last_activity=t_act,
        reason=(f"no progress but protocol kept cycling (last activity "
                f"at t={t_act:.1f}, {idle:.0f}s before timeout)"),
    )
