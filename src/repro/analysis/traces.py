"""Structured execution traces.

Every subsystem logs through :meth:`Engine.log`, which lands here.  The
experiment harness classifies run outcomes *only* from the trace, the
same way the paper's authors "analyse the execution trace" to separate
non-progressing runs from buggy ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace line: a timestamp, a kind tag and fields."""

    t: float
    kind: str
    fields: Dict[str, Any]

    def __getattr__(self, item: str) -> Any:
        try:
            return self.fields[item]
        except KeyError as err:
            raise AttributeError(item) from err

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        kv = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.t:10.3f}] {self.kind} {kv}"


class Trace:
    """An append-only list of :class:`TraceRecord` with query helpers."""

    def __init__(self, keep: bool = True):
        self.records: List[TraceRecord] = []
        self.keep = keep
        #: running counters per kind, maintained even when keep=False so
        #: long runs can classify outcomes without storing every record.
        self.counts: Dict[str, int] = {}
        self.last_time: Dict[str, float] = {}
        self.first_time: Dict[str, float] = {}
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def record(self, t: float, kind: str, **fields: Any) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.last_time[kind] = t
        self.first_time.setdefault(kind, t)
        rec = TraceRecord(t, kind, fields)
        if self.keep:
            self.records.append(rec)
        for listener in self._listeners:
            listener(rec)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a live listener (used by FAIL trigger plumbing)."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Remove one registered listener (unknown listeners are a
        no-op, so teardown paths can be unconditional)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def clear_listeners(self) -> None:
        """Drop every listener — live wiring must not outlive the run
        whose records this trace now merely archives."""
        self._listeners.clear()

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def last(self, kind: str) -> Optional[TraceRecord]:
        for rec in reversed(self.records):
            if rec.kind == kind:
                return rec
        return None

    def last_t(self, kind: str) -> Optional[float]:
        return self.last_time.get(kind)

    def first_t(self, kind: str) -> Optional[float]:
        return self.first_time.get(kind)

    def between(self, t0: float, t1: float) -> List[TraceRecord]:
        return [r for r in self.records if t0 <= r.t <= t1]

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable dump (for debugging failed experiments)."""
        recs = self.records if limit is None else self.records[-limit:]
        return "\n".join(repr(r) for r in recs)
