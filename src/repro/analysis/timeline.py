"""ASCII timeline rendering of execution traces.

The paper's methodology is trace analysis ("The difference between the
two kinds of experiments is done by analysing the execution trace");
this module gives that analysis eyes: a swimlane view of checkpoints,
faults, restarts and application progress over simulated time, which
makes stalls and freezes visually obvious.

::

    time     0.0 ──────────────────────────────────────── 1500.0
    progress ▏██████████▏▏▏▏▏▏▏▏...
    ckpt     ·   C  C  C
    fault    ·     x     x
    restart  ·     R     R
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.traces import Trace

#: default swimlanes: label -> (trace kinds, mark character)
DEFAULT_LANES: Sequence[Tuple[str, Tuple[str, ...], str]] = (
    ("progress", ("progress",), "█"),
    ("ckpt", ("ckpt_wave_complete", "v2_ckpt"), "C"),
    ("ckpt?", ("ckpt_wave_abort",), "a"),
    ("fault", ("fault_injected",), "x"),
    ("detect", ("failure_detected",), "!"),
    ("restart", ("restart_wave",), "R"),
    ("recover", ("recovery_complete", "v2_replay_done"), "r"),
    ("bug", ("bug_misattribution",), "B"),
    ("done", ("app_done",), "D"),
)


@dataclass
class TimelineLane:
    label: str
    kinds: Tuple[str, ...]
    mark: str


def _bucket(t: float, t0: float, t1: float, width: int) -> int:
    if t1 <= t0:
        return 0
    idx = int((t - t0) / (t1 - t0) * width)
    return min(max(idx, 0), width - 1)


def _counts_only_timeline(trace: Trace,
                          lanes: Sequence[TimelineLane]) -> str:
    """Degraded rendering for a trace that dropped its records.

    ``Trace(keep=False)`` (the campaign default) still accumulates
    ``counts`` / ``first_time`` / ``last_time`` per kind, so instead of
    silently drawing an all-empty swimlane we render what survives: one
    row per lane with its event count and observed time range.
    """
    label_w = max(len(lane.label) for lane in lanes) if lanes else 8
    lines = ["(records not kept — counts-only timeline; run with "
             "keep_trace=True for swimlanes)"]
    total = 0
    for lane in lanes:
        n = sum(trace.counts.get(kind, 0) for kind in lane.kinds)
        total += n
        if not n:
            lines.append(f"{lane.label:<{label_w}} ·")
            continue
        firsts = [trace.first_time[k] for k in lane.kinds
                  if k in trace.first_time]
        lasts = [trace.last_time[k] for k in lane.kinds
                 if k in trace.last_time]
        span = (f" t={min(firsts):.1f}..{max(lasts):.1f}"
                if firsts and lasts else "")
        lines.append(f"{lane.label:<{label_w}} {lane.mark} x{n}{span}")
    lines.append(f"({total} events counted, 0 records kept)")
    return "\n".join(lines)


def render_timeline(trace: Trace, width: int = 72,
                    t0: Optional[float] = None,
                    t1: Optional[float] = None,
                    lanes: Optional[Sequence[Tuple[str, Tuple[str, ...], str]]] = None,
                    ) -> str:
    """Render the trace as fixed-width swimlanes.

    Wants a trace that kept its records (``Trace(keep=True)``); a
    counts-only trace that saw events degrades to a per-lane count
    table instead of an empty swimlane.  Empty buckets show ``·`` so
    gaps — the freeze signature — stand out.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    records = trace.records
    lanes = [TimelineLane(lbl, kinds, mark)
             for (lbl, kinds, mark) in (lanes or DEFAULT_LANES)]
    if not records and not trace.keep and trace.counts:
        return _counts_only_timeline(trace, lanes)
    if t0 is None:
        t0 = records[0].t if records else 0.0
    if t1 is None:
        t1 = records[-1].t if records else 1.0
    if t1 <= t0:
        # an empty or single-instant trace still gets a visible axis —
        # never a zero-width (or negative) time range
        t1 = t0 + 1.0

    rows: Dict[str, List[str]] = {lane.label: ["·"] * width for lane in lanes}
    kind_to_lane: Dict[str, TimelineLane] = {}
    for lane in lanes:
        for kind in lane.kinds:
            kind_to_lane[kind] = lane
    counted = 0
    for rec in records:
        lane = kind_to_lane.get(rec.kind)
        if lane is None or not (t0 <= rec.t <= t1):
            continue
        rows[lane.label][_bucket(rec.t, t0, t1, width)] = lane.mark
        counted += 1

    label_w = max(len(lane.label) for lane in lanes) if lanes else 8
    header = (f"{'time':<{label_w}} {t0:.1f} " + "─" * max(1, width - 16)
              + f" {t1:.1f}")
    lines = [header]
    for lane in lanes:
        lines.append(f"{lane.label:<{label_w}} " + "".join(rows[lane.label]))
    lines.append(f"({counted} events shown, {len(records)} in trace)")
    return "\n".join(lines)


def lane_density(trace: Trace, kinds: Sequence[str], t0: float, t1: float,
                 buckets: int = 10) -> List[int]:
    """Event counts per time bucket — a numeric view of a lane,
    used by tests and stall detectors."""
    out = [0] * buckets
    for rec in trace.records:
        if rec.kind in kinds and t0 <= rec.t <= t1:
            out[_bucket(rec.t, t0, t1, buckets)] += 1
    return out
