"""Recovery critical paths: phase segments + causal attribution.

Each recovery epoch of a trial decomposes into four phases whose
boundaries are span hand-off instants (:func:`repro.obs.phases
.epoch_phase_table`), so the segments tile the recovery interval
exactly.  This module turns every epoch into a *critical path* record:

* the four ``detect``/``relaunch``/``restore``/``replay`` segments with
  absolute ``t0``/``t1`` and duration — ``recovery`` is defined as the
  sum of the segment durations, so the tiling identity holds in exact
  floating point, not approximately;
* a per-epoch *attribution* of the causal graph's network transmissions
  falling inside the recovery window, grouped into recovery-relevant
  categories (checkpoint restore transfer, log fetch, replay
  redelivery, scheduler commit, relaunch control traffic);
* the backward *causal chain* from the recovery-complete instant to the
  triggering failure: starting at the last message received inside the
  window, alternating ``net`` edges (receive ← send) and ``causal``
  edges (send ← the receive that caused it) until the chain leaves the
  window.

Everything here is a pure function of the ``obs`` document — the same
document yields the same rows, byte for byte, on every execution path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.causal import E_DST, E_SRC, E_TYPE, N_ID, N_KIND, N_T
from repro.obs.phases import epoch_phase_table

#: phases of one recovery, in order (their durations tile the interval)
PHASES = ("detect", "relaunch", "restore", "replay")

#: wire message kind -> attribution category (anything else: "other")
ATTRIBUTION = {
    # pulling the checkpoint image back from its server
    "FetchReq": "restore_transfer",
    "FetchResp": "restore_transfer",
    # fetching the logged delivery history (V2 event logger, V1 CM)
    "EvFetch": "log_fetch",
    "EvFetchResp": "log_fetch",
    "CMAttach": "log_fetch",
    # redelivering logged messages to the recovering rank
    "CMDeliver": "replay",
    "V2Data": "replay",
    "DataMsg": "replay",
    # scheduler wave machinery
    "Marker": "sched_commit",
    "SchedAck": "sched_commit",
    "WaveCommit": "sched_commit",
    # dispatcher-driven restart control traffic
    "Register": "relaunch_control",
    "RegisterAck": "relaunch_control",
    "CommandMap": "relaunch_control",
    "Terminate": "relaunch_control",
    # mesh / service (re)connection chatter
    "Hello": "mesh",
    "V2Hello": "mesh",
    "SchedHello": "mesh",
}

#: backward-walk bound: a chain longer than this is cut (never loops —
#: edges always point backward in time — but stays bounded regardless)
MAX_CHAIN = 64

_EPS = 1e-9


def critical_paths(obs_doc: Optional[Dict[str, Any]]
                   ) -> List[Dict[str, Any]]:
    """One critical-path record per recovery epoch, in time order.

    Empty when observation was off or the trial had no recoveries
    (fault-free runs produce no relaunch spans).
    """
    phase_rows = epoch_phase_table(obs_doc)
    if not phase_rows:
        return []
    causal = (obs_doc or {}).get("causal") or {}
    nodes = causal.get("nodes", [])
    edges = causal.get("edges", [])
    # backward maps: receive <- send (net), send <- causing receive
    net_pred: Dict[int, int] = {}
    causal_pred: Dict[int, int] = {}
    recv_by_time: List[int] = []
    for e in edges:
        if e[E_TYPE] == "net":
            net_pred[e[E_DST]] = e[E_SRC]
            recv_by_time.append(e[E_DST])
        elif e[E_TYPE] == "causal":
            causal_pred[e[E_DST]] = e[E_SRC]
    recv_by_time.sort(key=lambda i: (nodes[i][N_T], i))

    out: List[Dict[str, Any]] = []
    for prow in phase_rows:
        t0 = prow["t_fault"]
        segments: List[Dict[str, Any]] = []
        t = t0
        for phase in PHASES:
            dur = prow[phase]
            segments.append({"phase": phase, "t0": t, "t1": t + dur,
                             "dur": dur})
            t = t + dur
        # the tiling identity, exact by construction
        recovery = 0.0
        for seg in segments:
            recovery += seg["dur"]
        t_end = segments[-1]["t1"]

        attribution: Dict[str, Dict[str, float]] = {}
        for e in edges:
            if e[E_TYPE] != "net":
                continue
            send, recv = nodes[e[E_SRC]], nodes[e[E_DST]]
            if send[N_T] < t0 - _EPS or send[N_T] > t_end + _EPS:
                continue
            kind = send[N_KIND]
            cat = ATTRIBUTION.get(kind, "other")
            entry = attribution.setdefault(cat,
                                           {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += recv[N_T] - send[N_T]
        for entry in attribution.values():
            entry["seconds"] = round(entry["seconds"], 9)

        # backward chain from the last receive inside the window
        chain: List[str] = []
        start = None
        for i in reversed(recv_by_time):
            if nodes[i][N_T] <= t_end + _EPS:
                if nodes[i][N_T] >= t0 - _EPS:
                    start = i
                break
        node = start
        while node is not None and len(chain) < MAX_CHAIN:
            if nodes[node][N_T] < t0 - _EPS:
                break
            chain.append(nodes[node][N_ID])
            prev = net_pred.get(node)
            if prev is None:
                prev = causal_pred.get(node)
            node = prev
        chain.reverse()         # chronological: cause first

        out.append({
            "epoch": prow["epoch"],
            "rank": prow["rank"],
            "lane": prow["lane"],
            "suspected": prow["suspected"],
            "truncated": prow["truncated"],
            "t_fault": t0,
            "t_end": t_end,
            "recovery": recovery,
            "segments": segments,
            "attribution": attribution,
            "chain": chain,
        })
    return out


def critpath_rollup(obs_doc: Optional[Dict[str, Any]]
                    ) -> Dict[str, float]:
    """Total per-phase critical-path seconds across a trial's epochs.

    ``{phase: seconds, "recovery": seconds}`` over non-truncated
    epochs; empty for fault-free or unobserved trials.
    """
    rollup: Dict[str, float] = {}
    for row in critical_paths(obs_doc):
        if row["truncated"]:
            continue
        for seg in row["segments"]:
            rollup[seg["phase"]] = rollup.get(seg["phase"], 0.0) \
                + seg["dur"]
        rollup["recovery"] = rollup.get("recovery", 0.0) + row["recovery"]
    return {k: round(v, 9) for k, v in rollup.items()}


def render_critical_paths(obs_doc: Optional[Dict[str, Any]]) -> str:
    """ASCII critical-path report (``repro timeline --phases``)."""
    rows = critical_paths(obs_doc)
    if not rows:
        return "no recovery critical paths (fault-free run or observation off)"
    lines: List[str] = []
    for row in rows:
        head = (f"epoch {row['epoch']}"
                + (f" rank {row['rank']}" if row["rank"] is not None
                   else " (full restart)")
                + f"  fault t={row['t_fault']:.3f}"
                + f"  recovery {row['recovery']:.3f}s")
        marks = [m for m, on in (("suspected", row["suspected"]),
                                 ("truncated", row["truncated"])) if on]
        if marks:
            head += "  (" + ", ".join(marks) + ")"
        lines.append(head)
        for seg in row["segments"]:
            lines.append(f"  {seg['phase']:<9} {seg['t0']:>10.3f} ->"
                         f" {seg['t1']:>10.3f}  {seg['dur']:>8.3f}s")
        if row["attribution"]:
            parts = [f"{cat} {v['count']}x/{v['seconds']:.3f}s"
                     for cat, v in sorted(row["attribution"].items())]
            lines.append("  wire: " + ", ".join(parts))
        if row["chain"]:
            lines.append(f"  causal chain ({len(row['chain'])} nodes): "
                         + " -> ".join(row["chain"][:6])
                         + (" ..." if len(row["chain"]) > 6 else ""))
    return "\n".join(lines)
