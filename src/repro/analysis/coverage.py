"""Per-trial coverage signatures for greybox fault exploration.

A fault-injection trial "covers" the protocol behaviours it forced the
system through: which wire message types crossed the dispatcher, which
closure-attribution branches fired, which restore path a restarted
daemon took, how many restart waves ran.  The explorer
(:mod:`repro.explore`) uses that as a search signal, the AFL/libFuzzer
recipe: trials whose signature lights up *new* bits join a corpus and
get mutated; trials that only retread known behaviour are discarded.

The signature is a fixed-width bitmap (:data:`BITS` bits).  Every
coverage *label* — a short stable string such as
``disp.closure.single_rank`` or ``trace.restart_wave.x4`` — hashes to
one bit (:func:`edge_bit`, sha256-based, stable across processes and
Python versions).  Two label families feed it:

* **probe labels**, recorded during the run via :meth:`Engine.cover`
  at the branch points the dispatcher and the daemon lifecycle already
  own (see :mod:`repro.mpichv.dispatcher` /
  :mod:`repro.mpichv.daemonbase`);
* **trace labels**, derived after the run from the structured trace's
  per-kind counters with AFL-style logarithmic hit buckets
  (:func:`trace_labels`): one restart is a different behaviour than
  eight, but eight and nine are the same.

Both are pure functions of the simulation history, so the signature
inherits the runner's determinism contract: same ``(setup, seed)`` ⇒
bit-identical signature, serial or pooled, live or cache-loaded.

The oracle layer folds its own labels (excuse branches, invariant
violations) on top — see
:func:`repro.explore.oracles.coverage_labels`.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

#: signature width in bits; 1024 bits ≈ a hundred-ish live labels with
#: negligible collision mass, and a 256-hex-char wire form
BITS = 1024

_EMPTY = bytes(BITS // 8)


def edge_bit(label: str) -> int:
    """Stable bit index of one coverage label (hash-stable everywhere)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % BITS


def hit_bucket(count: int) -> int:
    """AFL-style logarithmic hit-count bucket (1,2,4,8,...)."""
    bucket = 1
    while bucket * 2 <= count:
        bucket *= 2
    return bucket


class Signature:
    """An immutable coverage bitmap with set algebra.

    Hashable and comparable, so signatures can key dicts (corpus dedup)
    and sets directly.  The wire form is :attr:`hex` — compact enough
    to ride on every cached :class:`~repro.mpichv.runtime.RunResult`.
    """

    __slots__ = ("bits",)

    def __init__(self, bits: bytes = _EMPTY):
        if len(bits) != BITS // 8:
            raise ValueError(f"signature must be {BITS} bits wide")
        self.bits = bytes(bits)

    @classmethod
    def from_labels(cls, labels: Iterable[str]) -> "Signature":
        raw = bytearray(BITS // 8)
        for label in labels:
            bit = edge_bit(label)
            raw[bit // 8] |= 1 << (bit % 8)
        return cls(bytes(raw))

    @classmethod
    def from_hex(cls, text: str) -> "Signature":
        if not text:
            return cls()
        return cls(bytes.fromhex(text))

    @property
    def hex(self) -> str:
        return self.bits.hex()

    @property
    def popcount(self) -> int:
        """Number of set bits (distinct edges hit)."""
        return sum(bin(b).count("1") for b in self.bits)

    def __or__(self, other: "Signature") -> "Signature":
        return Signature(bytes(a | b for a, b in zip(self.bits, other.bits)))

    def __and__(self, other: "Signature") -> "Signature":
        return Signature(bytes(a & b for a, b in zip(self.bits, other.bits)))

    def minus(self, other: "Signature") -> "Signature":
        """Bits set here but not in ``other`` (the novelty mask)."""
        return Signature(bytes(a & ~b for a, b in zip(self.bits, other.bits)))

    def new_bits(self, accumulated: "Signature") -> int:
        """How many of this signature's bits ``accumulated`` lacks."""
        return self.minus(accumulated).popcount

    def covers(self, other: "Signature") -> bool:
        """Does this signature include every bit of ``other``?"""
        return all((a & b) == b for a, b in zip(self.bits, other.bits))

    def __bool__(self) -> bool:
        return self.bits != _EMPTY

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Signature) and self.bits == other.bits

    def __hash__(self) -> int:
        return hash(self.bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"Signature({self.popcount} bits)"


def trace_labels(counts: dict) -> List[str]:
    """Coverage labels derived from a trace's per-kind counters.

    Every kind contributes its existence plus its logarithmic hit
    bucket, so both *which* protocol events happened and their order of
    magnitude land in the signature.
    """
    labels: List[str] = []
    for kind, count in counts.items():
        if count > 0:
            labels.append(f"trace.{kind}")
            labels.append(f"trace.{kind}.x{hit_bucket(count)}")
    return labels


def run_signature(probe_labels: Iterable[str], counts: dict) -> Signature:
    """The execution-side signature of one finished run."""
    return Signature.from_labels(
        list(probe_labels) + trace_labels(counts))
