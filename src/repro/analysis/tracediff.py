"""Deterministic diffing of two trials' observability documents.

``python -m repro trace-diff A.json B.json`` aligns two trials —
typically the same scenario under two protocols, or a kill against a
partition — and prints what moved:

* the **span rollups** side by side (count and summed seconds per span
  kind, with the delta);
* the **recovery critical paths** aligned epoch by epoch (rows are
  already in fault-time order, so the n-th recovery of one trial lines
  up against the n-th of the other), with per-phase deltas;
* the **causal wire rollup** (transmission count and in-flight seconds
  per wire message kind).

Input files are either full result documents (the wire format of
:mod:`repro.experiments.resultstore`, e.g. ``repro timeline
--obs-out``) or bare ``obs`` documents; trials with no recoveries —
or with observation off — diff cleanly to empty sections rather than
erroring.  Output is a pure function of the two documents: same
inputs, same bytes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.critpath import PHASES, critical_paths
from repro.obs.causal import causal_kind_rollup
from repro.obs.spans import span_rollups


def load_obs_doc(path: str) -> Tuple[Optional[Dict[str, Any]], str]:
    """Read an ``obs`` document from a result file or a bare obs file.

    Returns ``(obs_doc_or_None, description)``; raises ``ValueError``
    for files that are neither.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a JSON object")
    if "format" in doc:                     # full result document
        verdict = doc.get("verdict") or {}
        desc = (f"result format {doc['format']}, "
                f"outcome {verdict.get('outcome', '?')}")
        return doc.get("obs"), desc
    if "spans" in doc:                      # bare obs document
        return doc, f"obs document version {doc.get('version', '?')}"
    raise ValueError(f"{path}: neither a result document (no 'format') "
                     f"nor an obs document (no 'spans')")


def _fmt(v: Any) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def _render(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return lines


def trace_diff_text(obs_a: Optional[Dict[str, Any]],
                    obs_b: Optional[Dict[str, Any]],
                    label_a: str = "A", label_b: str = "B") -> str:
    """The full delta report between two obs documents."""
    lines: List[str] = []

    # -- span rollups -------------------------------------------------------
    roll_a, roll_b = span_rollups(obs_a), span_rollups(obs_b)
    kinds = sorted(set(roll_a) | set(roll_b))
    lines.append(f"== span rollups ({label_a} vs {label_b}) ==")
    if kinds:
        rows = []
        for kind in kinds:
            a, b = roll_a.get(kind), roll_b.get(kind)
            ta = a["total"] if a else None
            tb = b["total"] if b else None
            delta = (tb or 0.0) - (ta or 0.0)
            rows.append([kind,
                         _fmt(a["count"] if a else None),
                         _fmt(b["count"] if b else None),
                         _fmt(ta), _fmt(tb), f"{delta:+.3f}"])
        lines.extend(_render(
            ["kind", f"{label_a} n", f"{label_b} n",
             f"{label_a} s", f"{label_b} s", "delta s"], rows))
    else:
        lines.append("(no spans on either side)")

    # -- critical paths, epoch by epoch -------------------------------------
    cp_a, cp_b = critical_paths(obs_a), critical_paths(obs_b)
    lines.append("")
    lines.append(f"== recovery critical paths "
                 f"({len(cp_a)} vs {len(cp_b)} epochs) ==")
    if cp_a or cp_b:
        rows = []
        for i in range(max(len(cp_a), len(cp_b))):
            ra = cp_a[i] if i < len(cp_a) else None
            rb = cp_b[i] if i < len(cp_b) else None
            for phase in PHASES + ("recovery",):
                va = (ra["recovery"] if phase == "recovery"
                      else ra["segments"][PHASES.index(phase)]["dur"]) \
                    if ra is not None else None
                vb = (rb["recovery"] if phase == "recovery"
                      else rb["segments"][PHASES.index(phase)]["dur"]) \
                    if rb is not None else None
                delta = ("-" if va is None or vb is None
                         else f"{vb - va:+.3f}")
                rows.append([str(i + 1), phase, _fmt(va), _fmt(vb), delta])
        lines.extend(_render(
            ["#", "phase", f"{label_a} s", f"{label_b} s", "delta"], rows))
    else:
        lines.append("(no recoveries on either side)")

    # -- causal wire rollup -------------------------------------------------
    wire_a, wire_b = causal_kind_rollup(obs_a), causal_kind_rollup(obs_b)
    kinds = sorted(set(wire_a) | set(wire_b))
    lines.append("")
    lines.append("== causal wire rollup ==")
    if kinds:
        rows = []
        for kind in kinds:
            a, b = wire_a.get(kind), wire_b.get(kind)
            na = a["count"] if a else 0
            nb = b["count"] if b else 0
            rows.append([kind, _fmt(a["count"] if a else None),
                         _fmt(b["count"] if b else None),
                         _fmt(a["seconds"] if a else None),
                         _fmt(b["seconds"] if b else None),
                         f"{nb - na:+d}"])
        lines.extend(_render(
            ["kind", f"{label_a} n", f"{label_b} n",
             f"{label_a} s", f"{label_b} s", "delta n"], rows))
    else:
        lines.append("(no causal graph on either side)")

    return "\n".join(lines)
