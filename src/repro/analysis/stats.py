"""Small statistics helpers for experiment aggregation.

Kept dependency-light on purpose: only the mean / standard deviation /
normal-approximation confidence intervals the paper's plots need.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on empty input."""
    if not xs:
        raise ValueError("mean of empty sequence")
    return sum(xs) / len(xs)


def stdev(xs: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0.0 for n<2."""
    n = len(xs)
    if n == 0:
        raise ValueError("stdev of empty sequence")
    if n == 1:
        return 0.0
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (n - 1))


def confidence_interval(xs: Sequence[float], z: float = 1.96) -> float:
    """Half-width of the z-based CI of the mean (0.0 for n<2)."""
    n = len(xs)
    if n < 2:
        return 0.0
    return z * stdev(xs) / math.sqrt(n)


def summarize(xs: Sequence[float]) -> Dict[str, Optional[float]]:
    """Mean/stdev/min/max/n summary; None-filled when empty."""
    if not xs:
        return {"n": 0, "mean": None, "stdev": None, "min": None, "max": None}
    return {
        "n": len(xs),
        "mean": mean(xs),
        "stdev": stdev(xs),
        "min": min(xs),
        "max": max(xs),
    }


def coefficient_of_variation(xs: Sequence[float]) -> float:
    """stdev/mean — the paper's Fig. 6 discussion is about variance
    growth with scale; this normalizes it for comparison."""
    m = mean(xs)
    if m == 0:
        return 0.0
    return stdev(xs) / m
