"""The Channel Memory service of the V1 protocol (MPICH-V1).

MPICH-V1 routes *every* application message through a stable Channel
Memory (CM) associated with the receiver: the sender's daemon puts the
message at the receiver's home CM, the CM appends it to the receiver's
totally-ordered log, and only then forwards it.  Because the log write
precedes the delivery, the logging is pessimistic — and because the
log lives on a stable service node rather than in the senders'
volatile memory (V2's approach), a recovering rank can always replay
its exact delivery history from its CM, even when *several* ranks
failed at the same instant.

The CM keeps, per receiver rank it is home to:

* the ordered message log ``(pos, src, seq, message)`` with ``pos``
  monotonically increasing (pruning never reuses positions);
* the last channel sequence number seen per sender, to drop the
  duplicate puts a recovering sender regenerates while re-executing;
* the forwarding socket of the currently-attached receiver daemon.

``CMAttach(rank, after)`` (re)binds the forwarding socket and replays
every logged entry past ``after`` — the whole V1 recovery protocol.
``CMPrune`` discards entries a receiver checkpoint covers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.unixproc import UnixProcess
from repro.mpi.message import AppMessage
from repro.mpichv import wire
from repro.obs import causal
from repro.simkernel.store import StoreClosed

#: log entry: (pos, src, src_seq, message)
LogEntry = Tuple[int, int, int, AppMessage]


class ChannelMemoryState:
    """Per-receiver ordered message logs (introspectable)."""

    def __init__(self) -> None:
        #: dst -> ordered log entries; pos strictly increasing
        self.logs: Dict[int, List[LogEntry]] = {}
        #: dst -> next position counter (survives pruning)
        self.next_pos: Dict[int, int] = {}
        #: dst -> src -> last channel seq logged (dedup for re-sends)
        self.last_seq: Dict[int, Dict[int, int]] = {}
        self.logged = 0
        self.duplicates = 0
        self.forwarded = 0
        self.pruned = 0

    def record(self, src: int, dst: int, seq: int,
               msg: AppMessage) -> Optional[int]:
        """Append one put to ``dst``'s log; None if it is a duplicate."""
        chan = self.last_seq.setdefault(dst, {})
        if seq <= chan.get(src, 0):
            self.duplicates += 1
            return None
        chan[src] = seq
        pos = self.next_pos.get(dst, 0) + 1
        self.next_pos[dst] = pos
        self.logs.setdefault(dst, []).append((pos, src, seq, msg))
        self.logged += 1
        return pos

    def replay_after(self, dst: int, after: int) -> List[LogEntry]:
        return [e for e in self.logs.get(dst, []) if e[0] > after]

    def prune(self, dst: int, upto: int) -> None:
        entries = self.logs.get(dst)
        if entries:
            kept = [e for e in entries if e[0] > upto]
            self.pruned += len(entries) - len(kept)
            self.logs[dst] = kept


def channel_memory_main(proc: UnixProcess, config, index: int):
    """Main generator of one channel-memory service process."""
    engine = proc.engine
    state = ChannelMemoryState()
    proc.tags["cm_state"] = state
    listener = proc.node.listen(config.channel_memory_port_base + index,
                                owner=proc)
    #: receiver rank -> forwarding socket of its attached daemon
    attached: Dict[int, Any] = {}

    def forward(sock, dst: int, entry: LogEntry, cause) -> None:
        pos, src, seq, msg = entry
        out = wire.CMDeliver(rank=dst, pos=pos, src=src, seq=seq, app=msg)
        # second hop: caused by the put (live) or the attach (replay)
        causal.derive(engine, out, f"cm{index}", cause)
        sock.send(out)
        state.forwarded += 1

    def handle_conn(sock):
        attached_rank = None         # rank attached through this socket
        while True:
            try:
                msg = yield sock.recv()
            except StoreClosed:
                # a dead receiver keeps its log; the new incarnation
                # re-attaches and replays
                if attached_rank is not None \
                        and attached.get(attached_rank) is sock:
                    del attached[attached_rank]
                return
            if isinstance(msg, wire.CMPut):
                pos = state.record(msg.src, msg.dst, msg.seq, msg.app)
                if pos is not None:
                    out = attached.get(msg.dst)
                    if out is not None and not out.closed and out.peer_alive:
                        forward(out, msg.dst,
                                (pos, msg.src, msg.seq, msg.app), msg)
            elif isinstance(msg, wire.CMAttach):
                attached_rank = msg.rank
                attached[msg.rank] = sock
                # cm_replay=False is the deliberately-broken knob used
                # by the exploration oracles: the log is kept but never
                # redelivered, so a recovering rank starves.
                entries = (state.replay_after(msg.rank, msg.after)
                           if config.cm_replay else [])
                engine.log("cm_attach", rank=msg.rank, cm=index,
                           after=msg.after, replayed=len(entries))
                if entries:
                    # redelivery is a burst of sends at this instant —
                    # a zero-length replay phase on the CM's lane
                    # (initial attaches replay nothing and stay silent)
                    engine.span("replay", lane=proc.node.name,
                                rank=msg.rank, cm=index,
                                replayed=len(entries)).close_at(engine.now)
                for entry in entries:
                    if sock.closed or not sock.peer_alive:
                        break
                    forward(sock, msg.rank, entry, msg)
            elif isinstance(msg, wire.CMPrune):
                state.prune(msg.rank, msg.upto)
            elif isinstance(msg, wire.Shutdown):
                engine.call_later(0.0, proc.kill)
                return

    while True:
        try:
            sock = yield listener.accept()
        except StoreClosed:
            return
        proc.spawn_thread(handle_conn(sock), name=f"cm{index}.conn{sock.conn_id}")
