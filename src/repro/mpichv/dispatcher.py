"""The MPICH-V dispatcher: launch, failure detection, restart.

Failure detection follows the paper exactly: *"A failure is assumed
after any unexpected socket closure"* — and since experiments kill
tasks (not machines), the closure is observed immediately.

Restart protocol (§3 + §5.3): on a failure the dispatcher orders every
surviving communication daemon of the current execution wave to
terminate, and relaunches a daemon on each machine as that machine
frees up (the failed machines are free at once, the surviving ones
when their termination acknowledgement — the socket closure — comes
back).  Relaunched daemons register, and once all N are registered the
dispatcher broadcasts the command map and the recovery wave is over.

THE BUG (``bug_compat=True``, faithful to the paper's diagnosis):
while a restart is in progress **and** terminations of the previous
wave are still pending, the dispatcher attributes *any* socket closure
to the previous wave's cleanup.  If the closed socket actually belonged
to an already-recovered daemon of the *new* wave, that daemon's death
goes unnoticed: its machine is never relaunched, every other daemon
retries connecting to it forever, and the application freezes — the
dispatcher "is confused about the state of each process and forgets to
launch at least one computing node".

The fix (``bug_compat=False``) tags each connection with its execution
epoch, so a new-wave closure during a restart is recognised as a fresh
failure and triggers a new restart wave.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.analysis.coverage import hit_bucket
from repro.cluster.unixproc import UnixProcess
from repro.mpichv import protocols, shardmap, wire
from repro.obs import causal
from repro.simkernel.store import StoreClosed

LAUNCHING = "launching"
RUNNING = "running"
RESTARTING = "restarting"
DONE = "done"


class DispatcherState:
    """Observable dispatcher state (tests and the harness read this)."""

    def __init__(self) -> None:
        self.epoch = 0
        self.phase = LAUNCHING
        self.assignment: Dict[int, str] = {}       # rank -> machine name
        self.incarnation: Dict[int, int] = {}
        self.status: Dict[int, str] = {}           # rank -> spawning|registered
        self.reg: Dict[int, Any] = {}              # rank -> socket (current epoch)
        self.addrs: Dict[int, Any] = {}
        self.proc_handles: Dict[int, Any] = {}     # rank -> UnixProcess
        self.pending_term: Dict[int, int] = {}     # rank -> old epoch awaited
        self.done_ranks: Set[int] = set()
        self.last_committed: Optional[int] = None
        self.restore_wave: Optional[int] = None
        self.restarts = 0
        self.bug_events = 0
        self.failures_detected = 0


def dispatcher_main(proc: UnixProcess, config, app_factory,
                    machines: List[str]):
    """Main generator of the dispatcher process."""
    engine = proc.engine
    cluster = proc.node.cluster
    n = config.n_procs
    spec = protocols.get_spec(config.protocol)
    daemon_entry = protocols.daemon_main_for(config)
    # message-logging protocols recover by restarting the failed rank
    # alone; coordinated checkpointing rolls the whole application back
    single_rank_restart = config.fault_tolerant and spec.single_rank_restart
    state = DispatcherState()
    proc.tags["disp_state"] = state
    listener = proc.node.listen(config.dispatcher_port, owner=proc)
    sched_conn = [None]
    # observability handles (no-ops when engine.obs is None): the
    # full-restart relaunch span of the epoch in progress, and the
    # per-rank relaunch spans of message-logging restarts
    epoch_relaunch: List[Any] = [None]
    relaunch_by_rank: Dict[int, Any] = {}

    def obs_inc(name: str) -> None:
        obs = engine.obs
        if obs is not None:
            obs.metrics.inc(name)

    def close_detect(rank: int, fallback: bool = True,
                     **fields: Any) -> None:
        """End the ``detect`` span of this rank's machine.

        The span was opened by the fault injector on the victim's lane
        (:func:`repro.fail.daemon`); matching on the machine name keeps
        simultaneous kills on different machines from cross-matching.
        A closure with no open span is a *false suspicion* (e.g. a
        partitioned-but-alive daemon): with ``fallback`` set, record a
        zero-length boundary so the phase table still shows the
        recovery row.  Launch deaths pass ``fallback=False`` — a
        partitioned rank respawns in a tight loop, and fabricating a
        span per lap would flood the trace with noise.
        """
        obs = engine.obs
        if obs is None:
            return
        node = state.assignment[rank]
        span = obs.end_oldest("detect", engine.now, match={"node": node},
                              rank=rank, **fields)
        if span is None and fallback:
            obs.open("detect", node,
                     engine.now, dict(node=node, rank=rank,
                                      suspected=True, **fields)
                     ).close_at(engine.now)

    if len(machines) < n:
        raise ValueError("not enough machines for the requested ranks")
    for rank in range(n):
        state.assignment[rank] = machines[rank]
        state.incarnation[rank] = 0

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    def spawn_slot(rank: int) -> None:
        state.incarnation[rank] += 1
        inc = state.incarnation[rank]
        ep = state.epoch
        state.status[rank] = "spawning"
        machine = state.assignment[rank]

        def main(p, _rank=rank, _ep=ep, _inc=inc, _entry=daemon_entry):
            return _entry(p, config, _rank, _ep, _inc, app_factory)

        def watch(up, _rank=rank, _ep=ep, _inc=inc):
            state.proc_handles[_rank] = up
            up.on_exit(lambda p, how: on_spawn_exit(_rank, _ep, _inc))

        cluster.remote_spawn(machine, f"vdaemon.{rank}", main,
                             tags={"rank": rank, "epoch": ep, "incarnation": inc},
                             notify=True, done=watch)

    def on_spawn_exit(rank: int, ep: int, inc: int) -> None:
        """ssh-side observation of the launched child exiting."""
        if state.phase == DONE:
            return
        if ep != state.epoch or inc != state.incarnation[rank]:
            return                      # stale incarnation
        if state.status.get(rank) == "registered":
            return                      # the socket-closure path owns it
        # Death during launch, before the argument exchange finished.
        # Both the buggy and the fixed dispatcher handle this correctly
        # (the paper's bug needs the daemon to be *running* already).
        state.failures_detected += 1
        engine.cover("disp.launch_death")
        engine.log("failure_detected", rank=rank, where="launch")
        close_detect(rank, fallback=False, where="launch")
        obs_inc("disp.detect.launch")
        spawn_slot(rank)

    # ------------------------------------------------------------------
    # wave management
    # ------------------------------------------------------------------
    def all_registered() -> None:
        cmd = wire.CommandMap(epoch=state.epoch, addrs=dict(state.addrs),
                              restore_wave=state.restore_wave)
        causal.stamp(engine, cmd, "disp")
        for sock in state.reg.values():
            if not sock.closed:
                sock.send(cmd)
        prev = state.phase
        state.phase = RUNNING
        if prev == RESTARTING:
            engine.cover("disp.wave.recovery_complete")
            engine.log("recovery_complete", epoch=state.epoch)
            span = epoch_relaunch[0]
            if span is not None:
                span.close(ranks=n)
                epoch_relaunch[0] = None
            # catch-up runs from here to the first application progress
            # (closed by the recorder's trace listener)
            engine.span("catchup", lane=shardmap.DISPATCHER_NODE,
                        epoch=state.epoch)
        else:
            engine.cover("disp.wave.app_start")
            engine.log("app_start", epoch=state.epoch)

    def initiate_restart(failed_ranks: Set[int]) -> None:
        state.epoch += 1
        state.restarts += 1
        engine.cover(f"disp.restart.epoch.x{hit_bucket(state.epoch)}")
        engine.cover(f"disp.restart.failed.x{hit_bucket(len(failed_ranks))}")
        state.phase = RESTARTING
        state.restore_wave = state.last_committed
        state.done_ranks.clear()
        engine.log("restart_wave", epoch=state.epoch,
                   restore=state.restore_wave, failed=sorted(failed_ranks))
        span = epoch_relaunch[0]
        if span is not None:
            # a failure mid-restart starts a fresh wave: the running
            # relaunch span is superseded, not completed
            span.close(superseded=True)
        epoch_relaunch[0] = engine.span(
            "relaunch", lane=shardmap.DISPATCHER_NODE, epoch=state.epoch,
            mode="full", restore=state.restore_wave)
        old_reg, state.reg = state.reg, {}
        state.addrs = {}
        for rank, sock in old_reg.items():
            if rank in failed_ranks or sock.closed:
                spawn_slot(rank)            # machine already free
            else:
                state.pending_term[rank] = state.epoch - 1
                term = wire.Terminate()
                causal.stamp(engine, term, "disp")
                sock.send(term)
        # Ranks that were mid-spawn (no socket yet) get torn down and
        # relaunched for the new epoch — their machine must be freed
        # before the new daemon can bind the port.
        for rank in range(n):
            if rank not in old_reg and rank not in failed_ranks \
                    and rank not in state.pending_term:
                engine.cover("disp.restart.midspawn_teardown")
                handle = state.proc_handles.get(rank)
                if handle is not None and handle.state.alive:
                    handle.kill()
                spawn_slot(rank)

    def finish() -> None:
        state.phase = DONE
        engine.log("app_done", epoch=state.epoch)
        down = wire.Shutdown()
        causal.stamp(engine, down, "disp")
        for sock in state.reg.values():
            if not sock.closed:
                sock.send(down)
        if sched_conn[0] is not None and not sched_conn[0].closed:
            sched_conn[0].send(down)
        engine.call_later(2.0, proc.exit)

    # ------------------------------------------------------------------
    # closure attribution — the heart of the reproduction
    # ------------------------------------------------------------------
    def on_closure(rank: int, ep: int, sock) -> None:
        if state.phase == DONE:
            return
        if ep == state.epoch and state.reg.get(rank) is sock:
            # a *current-wave, running* daemon's connection dropped
            if state.phase == RESTARTING and config.bug_compat \
                    and state.pending_term:
                # THE PAPER'S BUG: with terminations of the previous
                # wave outstanding, the closure is booked against that
                # cleanup; the new-wave failure goes unnoticed and the
                # machine is never relaunched.
                state.bug_events += 1
                engine.cover("disp.closure.bug_misattribution")
                engine.log("bug_misattribution", rank=rank, epoch=ep)
                # the failure *was* observable (the socket closed) but
                # the dispatcher booked it against the old wave — the
                # detect span ends here, marked missed, with no
                # relaunch ever following it
                close_detect(rank, missed=True, epoch=ep)
                obs_inc("disp.detect.missed")
                return
            state.failures_detected += 1
            engine.cover(f"disp.closure.failure.{state.phase}")
            engine.log("failure_detected", rank=rank, where=state.phase)
            close_detect(rank, where=state.phase, epoch=ep)
            obs_inc("disp.detect.closure")
            if single_rank_restart:
                # message logging: only the failed rank restarts
                engine.cover("disp.closure.single_rank_restart")
                state.restarts += 1
                del state.reg[rank]
                engine.log("restart_wave", epoch=state.epoch,
                           restore=spec.name, failed=[rank])
                prev_span = relaunch_by_rank.get(rank)
                if prev_span is not None and not prev_span.closed:
                    prev_span.close(superseded=True)
                relaunch_by_rank[rank] = engine.span(
                    "relaunch", lane=state.assignment[rank], rank=rank,
                    epoch=state.epoch, mode="single")
                spawn_slot(rank)
            else:
                engine.cover("disp.closure.full_restart")
                initiate_restart({rank})
        else:
            # old-epoch connection: expected termination acknowledgement
            if state.pending_term.get(rank) == ep:
                engine.cover("disp.closure.term_ack")
                del state.pending_term[rank]
                spawn_slot(rank)
            else:
                # stale residue, correctly ignored
                engine.cover("disp.closure.stale")

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def conn_handler(sock):
        try:
            first = yield sock.recv()
        except StoreClosed:
            return
        engine.cover(f"disp.rx.{type(first).__name__}")
        obs_inc(f"disp.rx.{type(first).__name__}")
        if isinstance(first, wire.WaveCommit):
            # the checkpoint scheduler's commit-note connection
            sched_conn[0] = sock
            msg = first
            while True:
                if isinstance(msg, wire.WaveCommit):
                    engine.cover(
                        f"disp.sched.commit.x{hit_bucket(max(1, msg.wave))}")
                    state.last_committed = msg.wave
                try:
                    msg = yield sock.recv()
                except StoreClosed:
                    return
        if not isinstance(first, wire.Register):
            sock.close()
            return
        msg = first
        rank, ep, inc = msg.rank, msg.epoch, msg.incarnation
        if state.phase == DONE or ep != state.epoch \
                or inc != state.incarnation.get(rank):
            engine.cover("disp.reg.stale")
            sock.close()                 # stale or late registration
            return
        state.reg[rank] = sock
        state.addrs[rank] = msg.addr
        state.status[rank] = "registered"
        ack = wire.RegisterAck(rank=rank)
        causal.derive(engine, ack, "disp", msg)
        sock.send(ack)
        if state.phase == RUNNING and single_rank_restart:
            # single-rank restart: the rest of the system never
            # stopped; hand the newcomer its command map directly.
            engine.cover("disp.reg.single_rank_cmdmap")
            cmd = wire.CommandMap(epoch=state.epoch,
                                  addrs=dict(state.addrs),
                                  restore_wave=None)
            causal.derive(engine, cmd, "disp", msg)
            sock.send(cmd)
            engine.log("recovery_complete", epoch=state.epoch, rank=rank,
                       protocol=spec.name)
            span = relaunch_by_rank.pop(rank, None)
            if span is not None:
                span.close()
            engine.span("catchup", lane=state.assignment[rank], rank=rank,
                        epoch=state.epoch)
        elif len(state.reg) == n and not state.pending_term:
            all_registered()
        # read loop: Done notifications until closure
        while True:
            try:
                msg = yield sock.recv()
            except StoreClosed:
                on_closure(rank, ep, sock)
                return
            engine.cover(f"disp.rx.{type(msg).__name__}")
            obs_inc(f"disp.rx.{type(msg).__name__}")
            if isinstance(msg, wire.Done):
                if state.phase == RUNNING and ep == state.epoch:
                    state.done_ranks.add(msg.rank)
                    if len(state.done_ranks) == n:
                        finish()

    def accept_loop():
        while True:
            try:
                sock = yield listener.accept()
            except StoreClosed:
                return
            proc.spawn_thread(conn_handler(sock),
                              name=f"disp.conn{sock.conn_id}")

    proc.spawn_thread(accept_loop(), name="disp.accept")

    # initial launch
    engine.log("launch", n_procs=n)
    for rank in range(n):
        spawn_slot(rank)

    yield engine.event(name="dispatcher.forever")
