"""Deterministic service placement and checkpoint-server sharding.

One deployment's service nodes follow a fixed layout (Fig. 2b of the
paper, generalized to ``k`` checkpoint servers):

========================  =================================================
``svc0``                  dispatcher
``svc1``                  protocol coordinator (vcl: checkpoint scheduler,
                          v2: stable event logger, v1: idle)
``svc2 .. svc{1+k}``      checkpoint servers, shard 0 .. k-1
``svc{2+k} ..``           protocol extras (v1: channel memories)
========================  =================================================

Every rank is assigned to exactly one checkpoint-server *shard* by
:func:`ckpt_shard` — a pure function of ``(rank, n_ckpt_servers)``, so
the daemon dialing its server, the restart path fetching a committed
image, and the scheduler's commit broadcast all agree without any
coordination, across every protocol and every incarnation.  ``k = 1``
degenerates to the single-server deployment (every rank maps to shard
0) and is bit-identical to it; ``k > n_procs`` is legal — the surplus
servers deploy and simply stay idle.

This module is the single source of truth for the layout: nothing
outside it may spell ``svc{2+...}`` arithmetic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: fixed service nodes of every deployment
DISPATCHER_NODE = "svc0"
COORDINATOR_NODE = "svc1"

#: service-node index of checkpoint shard 0
_CKPT_BASE = 2


def ckpt_shard(rank: int, n_ckpt_servers: int) -> int:
    """Shard owning ``rank``'s checkpoint images (``rank % k``)."""
    if n_ckpt_servers < 1:
        raise ValueError(f"need at least one checkpoint server, "
                         f"got {n_ckpt_servers}")
    if rank < 0:
        raise ValueError(f"negative rank {rank}")
    return rank % n_ckpt_servers


def ckpt_server_node(shard: int) -> str:
    """Service node hosting checkpoint shard ``shard``."""
    return f"svc{_CKPT_BASE + shard}"


def ckpt_server_port(config, shard: int) -> int:
    """Listen port of checkpoint shard ``shard``."""
    return config.ckpt_server_port_base + shard


def ckpt_server_for_rank(config, rank: int) -> Tuple[str, int]:
    """(node, port) of the checkpoint server owning ``rank``."""
    shard = ckpt_shard(rank, config.n_ckpt_servers)
    return ckpt_server_node(shard), ckpt_server_port(config, shard)


def shard_table(n_procs: int, n_ckpt_servers: int) -> Dict[int, List[int]]:
    """shard -> sorted ranks it owns (includes empty shards when
    ``k > n_procs``, so callers see every deployed server)."""
    table: Dict[int, List[int]] = {s: [] for s in range(n_ckpt_servers)}
    for rank in range(n_procs):
        table[ckpt_shard(rank, n_ckpt_servers)].append(rank)
    return table


def extras_base(config) -> int:
    """First service-node index after the checkpoint servers."""
    return _CKPT_BASE + config.n_ckpt_servers


def cm_node(config, cm_index: int) -> str:
    """Service node hosting Channel Memory ``cm_index`` (v1)."""
    return f"svc{extras_base(config) + cm_index}"


def cm_port(config, cm_index: int) -> int:
    """Listen port of Channel Memory ``cm_index`` (v1)."""
    return config.channel_memory_port_base + cm_index


def partition_hosts(config, engine_workers: int,
                    fabric=None) -> List[List[str]]:
    """Host groups for partitioned engine execution (the placement
    source of truth — see :mod:`repro.simkernel.parallel` and
    ``docs/parallel-engine.md``).

    Group 0 is the *service partition*: the dispatcher, coordinator,
    checkpoint servers and protocol extras all talk to every rank, so
    splitting them apart would turn nearly every message into
    cross-partition traffic.  The compute machines ``m0..m{M-1}``
    split into ``engine_workers`` groups along boundaries the system
    already has:

    * on a ``twotier`` fabric, cuts land on rack boundaries (hosts are
      racked in node-creation order, machines first — see
      :class:`repro.netmodel.fabric.TwoTierFabric`), so intra-rack
      traffic never crosses a partition and the cross-partition
      lookahead is the full core path;
    * otherwise (uniform, star, unknown) a balanced contiguous cut
      ``[i*M/w, (i+1)*M/w)`` — contiguity keeps ring-neighbor
      workloads mostly partition-local.

    ``engine_workers=1`` returns one group with every host.  The map
    is a pure function of ``(config, engine_workers, rack layout)`` —
    never of load — so the same trial always partitions identically.
    """
    if engine_workers < 1:
        raise ValueError(f"engine_workers must be >= 1, "
                         f"got {engine_workers}")
    machines = [f"m{i}" for i in range(config.n_machines)]
    services = [f"svc{i}" for i in range(config.n_service_nodes)]
    if engine_workers == 1:
        return [machines + services]
    w = min(engine_workers, config.n_machines)
    cuts: List[int]
    rack_size = _rack_size_of(config, fabric)
    if rack_size is not None and config.n_machines > rack_size:
        # twotier: whole racks per group, racks spread round-robin-less
        # (contiguous) so the cut count is minimal
        n_racks = -(-config.n_machines // rack_size)      # ceil
        w = min(w, n_racks)
        cuts = [(i * n_racks // w) * rack_size for i in range(w + 1)]
        cuts[-1] = config.n_machines
    else:
        cuts = [i * config.n_machines // w for i in range(w + 1)]
    groups = [machines[cuts[i]:cuts[i + 1]] for i in range(w)]
    groups[0] = groups[0] + services
    return [g for g in groups if g]


def _rack_size_of(config, fabric) -> Optional[int]:
    """Rack size when the deployment's fabric has racks, else None."""
    if fabric is not None and getattr(fabric, "name", "") == "twotier":
        return fabric.spec.rack_size
    spec = getattr(config, "topology", None)
    if spec is not None and getattr(spec, "model", "") == "twotier":
        return spec.rack_size
    return None
