"""The V1 communication daemon: remote pessimistic logging through
Channel Memories (MPICH-V1, the ``V1`` box of the paper's Fig. 2a).

Contrast with the other family members:

* like V2, checkpoints are per-rank and independent (no marker waves)
  and a failure restarts **only the failed rank**;
* unlike V2, nothing fault-critical is kept in volatile daemon memory:
  every application message transits the receiver's home **Channel
  Memory**, which logs it durably *before* forwarding it — remote
  pessimistic logging.  The price is a double network hop per message;
  the payoff is that **simultaneous failures are tolerated**: each
  recovering rank independently replays its delivery history from its
  CM, with no dependence on other (possibly also dead) ranks' state;
* daemons build **no peer mesh** — their only data connections are to
  the Channel Memories.

Recovery of rank ``r``: the new incarnation reloads ``r``'s latest
image (delivery position ``D``, per-destination send counters),
re-attaches to its home CM with ``CMAttach(r, after=D)``, and the CM
replays the logged messages past ``D`` in their original order while
the application deterministically re-executes.  Messages ``r`` re-sends
during re-execution carry the same channel sequence numbers and are
deduplicated at the destination CMs.

Bookkeeping lives in the application state dict (``_v1_delivered``,
``_v1_sent``), updated in the same atomic step as the delivery/send it
describes, so every snapshot is internally consistent.
"""

from __future__ import annotations

from repro.mpi.message import AppMessage
from repro.mpichv import shardmap, wire
from repro.mpichv.checkpoint import CheckpointImage
from repro.mpichv.daemonbase import MpichDaemon, daemon_lifecycle
from repro.obs import causal
from repro.simkernel.store import StoreClosed

DELIVERED = "_v1_delivered"      # position in the home CM's delivery order
SENT = "_v1_sent"                # dst -> last channel sequence number sent


def home_cm(rank: int, n_channel_memories: int) -> int:
    """Index of the Channel Memory that owns ``rank``'s delivery log."""
    return rank % n_channel_memories


class V1Daemon(MpichDaemon):
    """Channel-memory protocol logic of one daemon instance."""

    protocol = "v1"
    hello_cls = None            # no peer mesh: all traffic transits CMs

    def init_state_keys(self) -> None:
        self.app_state.setdefault(DELIVERED, 0)
        self.app_state.setdefault(SENT, {r: 0 for r in range(self.n)})

    def init_protocol(self) -> None:
        ncm = self.config.n_channel_memories
        self.cm_socks = [None] * ncm
        self.home_cm = home_cm(self.rank, ncm)

    # ------------------------------------------------------------------
    # transport interface used by MpiEndpoint
    # ------------------------------------------------------------------
    def app_send(self, msg: AppMessage) -> None:
        if msg.dst == self.rank:
            # self-sends need no fault-tolerance plumbing
            self.delivery.deliver(msg)
            return
        sent = self.app_state[SENT]
        seq = sent[msg.dst] + 1
        sent[msg.dst] = seq
        sock = self.cm_socks[home_cm(msg.dst, len(self.cm_socks))]
        if sock is not None and not sock.closed:
            put = wire.CMPut(src=self.rank, dst=msg.dst, seq=seq, app=msg)
            causal.adopt(put, msg)      # first hop of the double transit
            sock.send(put)
        # CMs live on service nodes and never fail in our scenarios, so
        # a closed socket here only happens during daemon teardown.

    # ------------------------------------------------------------------
    # inbound data path (the CM already logged the message)
    # ------------------------------------------------------------------
    def on_deliver(self, pos: int, msg: AppMessage) -> None:
        if pos <= self.app_state[DELIVERED]:
            return          # duplicate (replay overlapping live traffic)
        # atomic with the buffer append: the counter is in the same state
        self.app_state[DELIVERED] = pos
        self.delivery.deliver(msg)

    def cm_reader(self, sock):
        while True:
            try:
                msg = yield sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, wire.CMDeliver):
                self.on_deliver(msg.pos, msg.app)

    # ------------------------------------------------------------------
    # independent checkpointing (loop shared with V2 via the base)
    # ------------------------------------------------------------------
    def post_checkpoint(self, img: CheckpointImage) -> None:
        # the home CM may discard log entries this image covers
        sock = self.cm_socks[self.home_cm]
        if sock is not None and not sock.closed:
            prune = wire.CMPrune(rank=self.rank,
                                 upto=img.state[DELIVERED])
            causal.stamp(self.engine, prune, f"r{self.rank}")
            sock.send(prune)

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def connect_services(self, cmd):
        yield from self.connect_ckpt_server()
        for i in range(len(self.cm_socks)):
            self.cm_socks[i] = yield from self.connect_service(
                shardmap.cm_node(self.config, i),
                shardmap.cm_port(self.config, i))

    def restore_state(self, cmd):
        if self.restarted:
            yield from self.restore_latest_own()

    def mesh_dial_targets(self, cmd):
        return ()

    def after_mesh(self, cmd):
        # (Re)bind the forwarding channel: the CM replays everything
        # past the restored delivery position, then streams live.
        sock = self.cm_socks[self.home_cm]
        attach = wire.CMAttach(rank=self.rank,
                               after=self.app_state[DELIVERED])
        causal.stamp(self.engine, attach, f"r{self.rank}")
        sock.send(attach)
        self.proc.spawn_thread(self.cm_reader(sock),
                               name=f"v1.{self.rank}.cm")
        self.proc.spawn_thread(self.independent_ckpt_loop(),
                               name=f"v1.{self.rank}.ckpt")
        yield from ()


def v1daemon_main(proc, config, rank: int, epoch: int, incarnation: int,
                  app_factory):
    """Main generator of a V1 communication daemon process."""
    return daemon_lifecycle(V1Daemon, proc, config, rank, epoch,
                            incarnation, app_factory)
