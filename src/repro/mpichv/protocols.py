"""The fault-tolerance protocol registry of the MPICH-V family.

Every protocol the runtime can deploy is described by one
:class:`ProtocolSpec` and registered here; the dispatcher, the runtime
and the configuration validator all consult the registry instead of
string-matching protocol names.  Adding a protocol is a one-file
affair: subclass :class:`repro.mpichv.daemonbase.MpichDaemon`, declare
the services its deployment needs, and call :func:`register`.

A spec declares:

* ``core_cls`` — the daemon class; the generic lifecycle in
  :mod:`repro.mpichv.daemonbase` drives it;
* ``service_plan(config)`` — which service processes
  :meth:`repro.mpichv.runtime.VclRuntime.deploy` spawns (checkpoint
  servers, scheduler, event logger, channel memories, ...), as
  ``(process name, service node, main)`` triples;
* ``single_rank_restart`` — whether a failure restarts only the failed
  rank (message-logging protocols) or rolls the whole application back
  (coordinated checkpointing);
* ``validate(config)`` — protocol-specific configuration checks;
* ``extra_service_nodes(config)`` — service nodes needed beyond the
  family baseline (dispatcher + svc1 + checkpoint servers).

Built-in protocols:

========  =============================================================
``vcl``   Coordinated non-blocking Chandy-Lamport (the paper's
          subject).  Scheduler-driven marker waves; any failure rolls
          every rank back to the last committed wave.
``v2``    Pessimistic sender-based message logging [BCH+03].
          Independent checkpoints + a stable event logger; only the
          failed rank restarts, but simultaneous failures can stall on
          lost volatile sender logs.
``v1``    Remote pessimistic logging in Channel Memories (MPICH-V1).
          Every message transits the receiver's home CM; higher
          fault-free cost, but simultaneous failures are tolerated.
========  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.registry import Registry
from repro.mpichv import shardmap
from repro.mpichv.ckptserver import ckpt_server_main
from repro.mpichv.channelmemory import channel_memory_main
from repro.mpichv.daemonbase import daemon_lifecycle
from repro.mpichv.eventlog import eventlog_main
from repro.mpichv.scheduler import scheduler_main
from repro.mpichv.v1daemon import V1Daemon
from repro.mpichv.v2daemon import V2Daemon
from repro.mpichv.vdaemon import VclDaemon


@dataclass(frozen=True)
class ServiceSpec:
    """One service process a protocol's deployment spawns."""

    name: str                         # process name (e.g. "scheduler")
    node: str                         # service node (e.g. "svc1")
    main: Callable[[Any], Any]        # proc -> generator


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything the runtime needs to deploy one protocol."""

    name: str
    core_cls: type
    #: config -> [ServiceSpec]; spawned in order by deploy()
    service_plan: Callable[[Any], List[ServiceSpec]]
    #: failure recovery restarts only the failed rank (vs. everyone)
    single_rank_restart: bool
    description: str = ""
    #: protocol-specific config checks; raises ValueError
    validate: Optional[Callable[[Any], None]] = None
    #: service nodes beyond the baseline (dispatcher + svc1 + servers)
    extra_service_nodes: Callable[[Any], int] = field(
        default=lambda config: 0)
    #: post-run correctness invariants: ``runtime -> [violation, ...]``.
    #: Called by :meth:`repro.mpichv.runtime.VclRuntime.run` after the
    #: simulation finishes (service state objects outlive their
    #: processes); the exploration oracles (:mod:`repro.explore`)
    #: treat any returned string as a protocol bug.
    invariants: Optional[Callable[[Any], List[str]]] = None
    #: how many *simultaneous* failures the protocol promises to
    #: survive; ``None`` means no documented limit.  V2's volatile
    #: sender logs make concurrent failures beyond one a known, faithful
    #: stall mode (module docstring of :mod:`repro.mpichv.v2daemon`) —
    #: the exploration oracles excuse a non-terminating run only when
    #: the fault plan exceeded this.
    simultaneous_tolerance: Optional[int] = None

    def daemon_main(self, proc, config, rank: int, epoch: int,
                    incarnation: int, app_factory):
        """Main generator of this protocol's communication daemon."""
        return daemon_lifecycle(self.core_cls, proc, config, rank, epoch,
                                incarnation, app_factory)


_REGISTRY = Registry("protocol")


def register(spec: ProtocolSpec, replace: bool = False) -> ProtocolSpec:
    """Add a protocol to the registry (``replace=True`` to override)."""
    return _REGISTRY.register(spec.name, spec, replace=replace)


def unregister(name: str) -> None:
    """Remove a protocol (tests registering toy protocols clean up)."""
    _REGISTRY.unregister(name)


def available() -> List[str]:
    """Registered protocol names, sorted."""
    return _REGISTRY.available()


def get_spec(name: str) -> ProtocolSpec:
    """Look a protocol up; unknown names raise ``ValueError``."""
    return _REGISTRY.get(name)


def daemon_main_for(config) -> Callable:
    """The daemon entry point ``dispatcher.spawn_slot`` launches.

    Without fault tolerance every protocol degrades to the plain Vcl
    daemon relaying messages with no services attached (the paper's
    Vdummy baseline).
    """
    name = config.protocol if config.fault_tolerant else "vcl"
    return get_spec(name).daemon_main


def validate_config(config) -> None:
    """Registry-driven part of ``VclConfig.__post_init__``."""
    spec = get_spec(config.protocol)       # raises on unknown protocol
    if spec.validate is not None:
        spec.validate(config)


def extra_service_nodes(config) -> int:
    return get_spec(config.protocol).extra_service_nodes(config)


def check_invariants(runtime) -> List[str]:
    """Run the deployed protocol's invariant hook against ``runtime``.

    Returns the (possibly empty) list of violations; protocols without
    a hook — and non-fault-tolerant deployments, which run none of the
    protocol services — report none.
    """
    if not runtime.config.fault_tolerant:
        return []
    spec = get_spec(runtime.config.protocol)
    if spec.invariants is None:
        return []
    return list(spec.invariants(runtime))


# ---------------------------------------------------------------------------
# built-in protocols
# ---------------------------------------------------------------------------

def _ckpt_servers(config) -> List[ServiceSpec]:
    """One checkpoint server per shard (placement: repro.mpichv.shardmap)."""
    return [
        ServiceSpec(name=f"ckptserver.{i}", node=shardmap.ckpt_server_node(i),
                    main=(lambda p, i=i: ckpt_server_main(p, config, i)))
        for i in range(config.n_ckpt_servers)
    ]


def _vcl_plan(config) -> List[ServiceSpec]:
    return _ckpt_servers(config) + [
        ServiceSpec(name="scheduler", node=shardmap.COORDINATOR_NODE,
                    main=lambda p: scheduler_main(p, config)),
    ]


def _v2_plan(config) -> List[ServiceSpec]:
    # uncoordinated checkpoints need no scheduler; the coordinator slot
    # hosts the stable event logger instead
    return _ckpt_servers(config) + [
        ServiceSpec(name="eventlog", node=shardmap.COORDINATOR_NODE,
                    main=lambda p: eventlog_main(p, config)),
    ]


def _v1_plan(config) -> List[ServiceSpec]:
    # no scheduler and no event logger (the coordinator node stays
    # idle): the channel memories are both the transport and the
    # stable log
    return _ckpt_servers(config) + [
        ServiceSpec(
            name=f"channelmemory.{i}",
            node=shardmap.cm_node(config, i),
            main=(lambda p, i=i: channel_memory_main(p, config, i)))
        for i in range(config.n_channel_memories)
    ]


def _dense_suffix_violations(label: str, histories) -> List[str]:
    """Positions of a pessimistic log must stay strictly consecutive.

    Both stable logs (V2 delivery events, V1 CM entries) allocate
    strictly increasing positions and prune only prefixes, so whatever
    survives must be a dense run — any gap means a logged event was
    lost, i.e. the "logged before delivered" guarantee broke.
    """
    out: List[str] = []
    for rank, positions in histories:
        for prev, cur in zip(positions, positions[1:]):
            if cur != prev + 1:
                out.append(f"{label}: rank {rank} log gap "
                           f"(pos {prev} -> {cur})")
                break
    return out


def _vcl_invariants(runtime) -> List[str]:
    """Coordinated-checkpoint consistency (Chandy-Lamport)."""
    out: List[str] = []
    sched = runtime.scheduler_state
    disp = runtime.dispatcher_state
    if sched is not None:
        if sched.waves_committed + sched.waves_aborted > sched.waves_started:
            out.append(
                f"vcl: {sched.waves_committed} committed + "
                f"{sched.waves_aborted} aborted waves exceed "
                f"{sched.waves_started} started")
        if sched.committed_wave is not None \
                and sched.committed_wave > sched.wave_id:
            out.append(f"vcl: committed wave {sched.committed_wave} "
                       f"was never started (latest {sched.wave_id})")
    if disp is not None and disp.restore_wave is not None:
        committed = sched.committed_wave if sched is not None else None
        if committed is None or disp.restore_wave > committed:
            out.append(
                f"vcl: rollback restored wave {disp.restore_wave} which "
                f"the scheduler never committed (committed={committed})")
    return out


def _v2_invariants(runtime) -> List[str]:
    """Sender-based logging: the stable delivery log must be complete."""
    proc = runtime.eventlog_proc
    state = proc.tags.get("evlog_state") if proc is not None else None
    if state is None:
        return ["v2: event logger never deployed"]
    return _dense_suffix_violations(
        "v2 event log",
        [(rank, [pos for pos, _src, _seq in history])
         for rank, history in sorted(state.events.items())])


def _v1_invariants(runtime) -> List[str]:
    """Channel Memories: total order per receiver, FIFO per channel."""
    out: List[str] = []
    states = [proc.tags.get("cm_state") for proc in runtime.cm_procs]
    if not states or any(s is None for s in states):
        return ["v1: channel memories never deployed"]
    for cm_index, state in enumerate(states):
        out.extend(_dense_suffix_violations(
            f"v1 CM {cm_index}",
            [(dst, [pos for pos, _src, _seq, _msg in entries])
             for dst, entries in sorted(state.logs.items())]))
        for dst, entries in sorted(state.logs.items()):
            seen: dict = {}
            for pos, src, seq, _msg in entries:
                if seq <= seen.get(src, 0):
                    out.append(f"v1 CM {cm_index}: channel {src}->{dst} "
                               f"seq {seq} out of order at pos {pos}")
                    break
                seen[src] = seq
            last = state.next_pos.get(dst, 0)
            if entries and entries[-1][0] > last:
                out.append(f"v1 CM {cm_index}: receiver {dst} position "
                           f"counter {last} behind log tail {entries[-1][0]}")
    return out


def _require_non_blocking(config) -> None:
    if config.blocking:
        raise ValueError("blocking applies to the vcl protocol only")


def _validate_v1(config) -> None:
    _require_non_blocking(config)
    if config.n_channel_memories < 1:
        raise ValueError("v1 needs at least one channel memory")


register(ProtocolSpec(
    name="vcl",
    core_cls=VclDaemon,
    service_plan=_vcl_plan,
    single_rank_restart=False,
    description=("coordinated non-blocking Chandy-Lamport checkpointing "
                 "(the paper's protocol)"),
    invariants=_vcl_invariants,
))

register(ProtocolSpec(
    name="v2",
    core_cls=V2Daemon,
    service_plan=_v2_plan,
    single_rank_restart=True,
    description=("pessimistic sender-based message logging with "
                 "uncoordinated checkpoints [BCH+03]"),
    validate=_require_non_blocking,
    invariants=_v2_invariants,
    simultaneous_tolerance=1,
))

register(ProtocolSpec(
    name="v1",
    core_cls=V1Daemon,
    service_plan=_v1_plan,
    single_rank_restart=True,
    description=("remote pessimistic logging in stable Channel Memories "
                 "(MPICH-V1)"),
    validate=_validate_v1,
    extra_service_nodes=lambda config: config.n_channel_memories,
    invariants=_v1_invariants,
))
