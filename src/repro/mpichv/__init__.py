"""MPICH-V runtime with the Vcl protocol (non-blocking Chandy-Lamport).

Components (mirroring Fig. 2 of the paper):

* :mod:`repro.mpichv.vdaemon` — the communication daemon paired with
  each MPI computation thread; relays application messages, implements
  marker handling and in-transit message logging;
* :mod:`repro.mpichv.dispatcher` — launches the application, detects
  failures through socket closures and orchestrates restart waves.
  Carries the paper's §5.3 dispatcher bug, toggleable via
  ``bug_compat``;
* :mod:`repro.mpichv.ckptserver` — checkpoint servers with two-slot
  (current / last complete) storage and disk-rate-limited ingestion;
* :mod:`repro.mpichv.shardmap` — deterministic service placement and
  checkpoint-server sharding (``rank`` modulo the shard count); the
  single source of truth for the ``svc*`` node layout;
* :mod:`repro.mpichv.scheduler` — the checkpoint scheduler emitting a
  marker wave every ``ckpt_period`` seconds, committing waves when all
  ranks acknowledge;
* :mod:`repro.mpichv.runtime` — wiring: builds the cluster deployment
  and runs an application under the chosen protocol;
* :mod:`repro.mpichv.daemonbase` — the generic daemon lifecycle every
  protocol's daemon runs (listener, dispatcher exchange, trace point,
  service dialing, mesh build, uniform termination);
* :mod:`repro.mpichv.protocols` — the protocol registry: each family
  member declares its daemon class, its service plan and its config
  validation; the dispatcher/runtime/config consult the registry
  instead of string-matching protocol names;
* :mod:`repro.mpichv.v2daemon` / :mod:`repro.mpichv.eventlog` — the V2
  protocol (pessimistic sender-based message logging), selectable via
  ``VclConfig(protocol="v2")``;
* :mod:`repro.mpichv.v1daemon` / :mod:`repro.mpichv.channelmemory` —
  the V1 protocol (remote pessimistic logging through stable Channel
  Memories), selectable via ``VclConfig(protocol="v1")``.
"""

from repro.mpichv.config import TimingModel, VclConfig
from repro.mpichv.checkpoint import CheckpointImage, LocalCkptStore
from repro.mpichv.runtime import VclRuntime, RunResult

__all__ = [
    "TimingModel",
    "VclConfig",
    "CheckpointImage",
    "LocalCkptStore",
    "VclRuntime",
    "RunResult",
]
