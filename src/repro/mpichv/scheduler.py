"""The checkpoint scheduler (paper §3, "Checkpoint Scheduler").

Sends a marker wave to every MPI process on a fixed period (30 s in
the paper), waits for every rank's acknowledgement before declaring the
wave complete, and only then may a new wave start.  The tick grid is
anchored to absolute time (t = k·period), which is what creates the
phase interplay between faults and waves behind the paper's Fig. 5
"every 45 s" anomaly.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cluster.unixproc import UnixProcess
from repro.mpichv import shardmap, wire
from repro.obs import causal
from repro.simkernel.store import StoreClosed


class SchedulerState:
    """Introspectable state of the scheduler (tests reach in here)."""

    def __init__(self) -> None:
        self.wave_id = 0
        self.in_progress = False
        self.acks: Set[int] = set()
        self.committed_wave: Optional[int] = None
        #: rank -> socket of currently-connected daemons
        self.conns: Dict[int, object] = {}
        self.waves_started = 0
        self.waves_committed = 0
        self.waves_aborted = 0


def scheduler_main(proc: UnixProcess, config):
    """Main generator of the checkpoint scheduler process."""
    engine = proc.engine
    state = SchedulerState()
    proc.tags["sched_state"] = state
    n = config.n_procs
    listener = proc.node.listen(config.scheduler_port, owner=proc)

    server_socks = []
    dispatcher_sock = [None]
    #: the open ``ckpt_wave`` span of the wave in progress
    wave_span = [None]

    def connect_services():
        # every checkpoint-server shard: wave commits must reach all of
        # them, or a shard could serve an uncommitted image on restart
        for i in range(config.n_ckpt_servers):
            addr = proc.node.cluster.node(shardmap.ckpt_server_node(i)).addr(
                shardmap.ckpt_server_port(config, i))
            while True:
                try:
                    sock = yield proc.node.connect(addr, owner=proc)
                    break
                except Exception:
                    yield engine.timeout(0.05)
            server_socks.append(sock)
        # dispatcher (for commit notes)
        addr = proc.node.cluster.node(shardmap.DISPATCHER_NODE).addr(
            config.dispatcher_port)
        while True:
            try:
                sock = yield proc.node.connect(addr, owner=proc)
                break
            except Exception:
                yield engine.timeout(0.05)
        dispatcher_sock[0] = sock

    proc.spawn_thread(connect_services(), name="sched.connect")

    def abort_wave(reason: str) -> None:
        if state.in_progress:
            state.in_progress = False
            state.acks.clear()
            state.waves_aborted += 1
            engine.log("ckpt_wave_abort", wave=state.wave_id, reason=reason)
            span = wave_span[0]
            if span is not None:
                span.close(aborted=True, reason=reason)
                wave_span[0] = None

    def commit_wave(cause=None) -> None:
        state.in_progress = False
        state.committed_wave = state.wave_id
        state.waves_committed += 1
        engine.log("ckpt_wave_complete", wave=state.wave_id)
        # the commit point is a boundary, not an interval — a
        # zero-length child closing the wave
        engine.span("commit", lane=shardmap.COORDINATOR_NODE,
                    wave=state.wave_id).close()
        span = wave_span[0]
        if span is not None:
            span.close(acks=n)
            wave_span[0] = None
        note = wire.WaveCommit(wave=state.wave_id)
        # the commit is caused by the last ack that completed the wave
        causal.derive(engine, note, "sched", cause)
        for sock in server_socks:
            if not sock.closed:
                sock.send(note)
        disp = dispatcher_sock[0]
        if disp is not None and not disp.closed:
            disp.send(note)

    def handle_daemon(sock):
        rank = None
        while True:
            try:
                msg = yield sock.recv()
            except StoreClosed:
                if rank is not None and state.conns.get(rank) is sock:
                    del state.conns[rank]
                    # A participant vanished: the wave cannot complete.
                    abort_wave(f"rank {rank} disconnected")
                return
            if isinstance(msg, wire.SchedHello):
                rank = msg.rank
                state.conns[rank] = sock
            elif isinstance(msg, wire.SchedAck):
                if state.in_progress and msg.wave == state.wave_id:
                    state.acks.add(msg.rank)
                    if len(state.acks) == n:
                        commit_wave(msg)
            elif isinstance(msg, wire.Shutdown):
                engine.call_later(0.0, proc.kill)
                return

    def accept_loop():
        while True:
            try:
                sock = yield listener.accept()
            except StoreClosed:
                return
            proc.spawn_thread(handle_daemon(sock), name=f"sched.conn{sock.conn_id}")

    proc.spawn_thread(accept_loop(), name="sched.accept")

    # --- the tick grid: absolute multiples of ckpt_period ------------------
    tick = 1
    while True:
        next_t = tick * config.ckpt_period
        delay = next_t - engine.now
        if delay > 0:
            yield engine.timeout(delay)
        tick += 1
        if state.in_progress:
            continue            # previous wave still draining
        if len(state.conns) < n:
            continue            # system not stable (launch or recovery)
        state.wave_id += 1
        state.in_progress = True
        state.acks = set()
        state.waves_started += 1
        engine.log("ckpt_wave_start", wave=state.wave_id)
        wave_span[0] = engine.span("ckpt_wave",
                                   lane=shardmap.COORDINATOR_NODE,
                                   wave=state.wave_id)
        # marker broadcast happens at this instant: zero-length child
        engine.span("initiate", lane=shardmap.COORDINATOR_NODE,
                    wave=state.wave_id, ranks=n).close()
        marker = wire.Marker(wave=state.wave_id, src_rank=-1)
        causal.stamp(engine, marker, "sched")
        for sock in list(state.conns.values()):
            if not sock.closed:
                sock.send(marker)
