"""Wire-level message types of the MPICH-V runtime.

Each dataclass carries a ``size`` attribute so the network model can
charge realistic transfer times (checkpoint images are large; control
messages are tiny).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.mpi.message import AppMessage


@dataclass(frozen=True)
class Register:
    """Daemon -> dispatcher: initial argument exchange."""

    rank: int
    addr: Any                 # repro.cluster.network.Address of the daemon's listener
    epoch: int                # execution wave the daemon was launched for
    incarnation: int          # spawn attempt id for this (rank, epoch)
    size: int = 256


@dataclass(frozen=True)
class RegisterAck:
    """Dispatcher -> daemon: per-daemon completion of argument exchange.

    After receiving this the daemon is *running* from the dispatcher's
    point of view — the paper's ``localMPI_setCommand`` boundary.
    """

    rank: int
    size: int = 64


@dataclass(frozen=True)
class CommandMap:
    """Dispatcher -> daemons: everyone registered; addresses + restore info."""

    epoch: int
    addrs: Dict[int, Any]     # rank -> listener address
    restore_wave: Optional[int]   # committed wave to roll back to (None = fresh)
    size: int = 2048


@dataclass(frozen=True)
class Terminate:
    """Dispatcher -> daemon: stop for a restart wave (closure acks it)."""

    size: int = 64


@dataclass(frozen=True)
class Shutdown:
    """Dispatcher -> everyone: clean end of the experiment."""

    size: int = 64


@dataclass(frozen=True)
class Done:
    """Daemon -> dispatcher: local MPI rank reached MPI_Finalize."""

    rank: int
    size: int = 64


@dataclass(frozen=True)
class Hello:
    """Daemon -> daemon: mesh connection handshake."""

    rank: int
    epoch: int
    size: int = 64


@dataclass(frozen=True)
class DataMsg:
    """Daemon -> daemon: an application message in flight."""

    app: AppMessage

    @property
    def size(self) -> int:
        return self.app.size


@dataclass(frozen=True)
class Marker:
    """Chandy-Lamport marker, scheduler- or peer-originated."""

    wave: int
    src_rank: int             # -1 when sent by the scheduler
    size: int = 64


@dataclass(frozen=True)
class SchedHello:
    """Daemon -> scheduler: (re)connection of rank in epoch."""

    rank: int
    epoch: int
    size: int = 64


@dataclass(frozen=True)
class SchedAck:
    """Daemon -> scheduler: local checkpoint of ``wave`` fully stored."""

    rank: int
    wave: int
    size: int = 64


@dataclass(frozen=True)
class WaveCommit:
    """Scheduler -> servers/dispatcher: wave globally complete."""

    wave: int
    size: int = 64


@dataclass(frozen=True)
class CkptStore:
    """Daemon -> server: full image transfer (data connection).

    ``state`` is the snapshot of the MPI process, ``logs`` the
    channel-state messages collected per Chandy-Lamport; ``img_size``
    drives both network and server-disk time.
    """

    rank: int
    wave: int
    state: Any
    logs: List[AppMessage]
    img_size: int

    @property
    def size(self) -> int:
        return self.img_size


@dataclass(frozen=True)
class CkptLogAppend:
    """Daemon -> server: late channel-state messages for a wave
    (message connection; sent when logging finished after the image)."""

    rank: int
    wave: int
    logs: List[AppMessage]

    @property
    def size(self) -> int:
        return max(64, sum(m.size for m in self.logs))


@dataclass(frozen=True)
class CkptStoredAck:
    """Server -> daemon: image durably stored."""

    rank: int
    wave: int
    size: int = 64


@dataclass(frozen=True)
class FetchReq:
    """Daemon -> server: request the image of ``wave`` for ``rank``.

    Pinning the wave (rather than "latest committed") keeps a restart
    consistent even when a commit note races the failure detection.
    """

    rank: int
    wave: Optional[int] = None
    size: int = 64


@dataclass(frozen=True)
class FetchResp:
    """Server -> daemon: the image (or None: restart from scratch)."""

    rank: int
    wave: Optional[int]
    state: Any
    logs: List[AppMessage] = field(default_factory=list)
    img_size: int = 64

    @property
    def size(self) -> int:
        return self.img_size


# ---------------------------------------------------------------------------
# V2 protocol (pessimistic sender-based message logging, cf. [BCH+03])
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class V2Hello:
    """Daemon -> daemon mesh handshake for the V2 protocol.

    ``resend_from`` asks the peer to re-send its logged messages with
    sequence numbers >= this value (used by a restarted incarnation to
    recover in-flight traffic; 0 on the initial connection).
    """

    rank: int
    incarnation: int
    resend_from: int = 0
    size: int = 64


@dataclass(frozen=True)
class V2Data:
    """Daemon -> daemon: an application message with its channel
    sequence number (per sender->receiver channel, starting at 1)."""

    app: AppMessage
    seq: int

    @property
    def size(self) -> int:
        return self.app.size


@dataclass(frozen=True)
class V2GcNote:
    """Receiver -> sender: my latest checkpoint covers your messages up
    to ``upto`` — the sender may prune its volatile log."""

    rank: int
    upto: int
    size: int = 64


@dataclass(frozen=True)
class EvLog:
    """Daemon -> event logger: about to deliver (src, src_seq) as my
    delivery number ``pos`` (pessimistic: delivery waits for the ack)."""

    rank: int
    pos: int
    src: int
    src_seq: int
    size: int = 64


@dataclass(frozen=True)
class EvLogAck:
    """Event logger -> daemon: delivery event ``pos`` is stable."""

    rank: int
    pos: int
    size: int = 64


@dataclass(frozen=True)
class EvFetch:
    """Restarted daemon -> event logger: my delivery history after
    position ``after`` (the delivery count in my restored image)."""

    rank: int
    after: int
    size: int = 64


@dataclass(frozen=True)
class EvFetchResp:
    """Event logger -> daemon: ordered (src, src_seq) delivery events."""

    rank: int
    events: List[Any]          # [(src, src_seq), ...]
    size: int = 256


@dataclass(frozen=True)
class EvPrune:
    """Daemon -> event logger: my checkpoint covers deliveries up to
    ``upto``; earlier events may be discarded."""

    rank: int
    upto: int
    size: int = 64


# ---------------------------------------------------------------------------
# V1 protocol (remote pessimistic logging in Channel Memories, MPICH-V1)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CMPut:
    """Daemon -> channel memory: relay an application message to
    ``dst`` through its home CM.  ``seq`` is the per (src, dst) channel
    sequence number (starting at 1), used by the CM to deduplicate the
    re-sends a recovering sender regenerates."""

    src: int
    dst: int
    seq: int
    app: AppMessage

    @property
    def size(self) -> int:
        return self.app.size


@dataclass(frozen=True)
class CMDeliver:
    """Channel memory -> daemon: the next message of ``rank``'s total
    delivery order.  ``pos`` is the position the CM assigned when it
    logged the message — the log write precedes this forward, which is
    what makes the logging pessimistic."""

    rank: int                 # receiver
    pos: int                  # position in the receiver's delivery order
    src: int
    seq: int                  # sender's channel sequence number
    app: AppMessage

    @property
    def size(self) -> int:
        return self.app.size


@dataclass(frozen=True)
class CMAttach:
    """Daemon -> its home channel memory: start (or resume) forwarding
    my delivery order after position ``after`` (the delivery count in
    my restored image; 0 on a fresh start)."""

    rank: int
    after: int
    size: int = 64


@dataclass(frozen=True)
class CMPrune:
    """Daemon -> its home channel memory: my checkpoint covers
    deliveries up to position ``upto``; earlier log entries may go."""

    rank: int
    upto: int
    size: int = 64
