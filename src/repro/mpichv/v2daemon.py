"""The V2 communication daemon: pessimistic sender-based message
logging with uncoordinated checkpointing (MPICH-V2, [BCH+03] in the
paper's related work; the ``V2`` box of its Fig. 2a).

Contrast with Vcl:

* checkpoints are **per-rank and independent** (no marker waves, no
  checkpoint scheduler); each rank snapshots on its own staggered
  timer;
* every outbound message is kept in the **sender's volatile log**
  (pruned when the receiver's checkpoint covers it);
* every delivery is recorded at a **stable event logger** *before* the
  message reaches the application — the pessimistic property that
  makes single-failure recovery orphan-free;
* on a failure **only the failed rank restarts**: it reloads its own
  latest image, fetches its post-snapshot delivery history from the
  event logger, asks each peer to re-send logged messages, and
  re-executes deterministically — survivors keep running, deduplicate
  the re-sent traffic by sequence number, and never roll back.

Known (and faithful) limitation: with *simultaneous* failures the
senders' volatile logs needed by one recovering rank may have died
with another — recovery can then stall, which is precisely the kind of
behaviour the FAIL-MPI scenarios of the paper are designed to expose.
(MPICH-V1's remote channel memories, :mod:`repro.mpichv.v1daemon`,
trade per-message latency for immunity to exactly this.)

Checkpoint-safety bookkeeping lives inside the application state dict
(``_v2_delivered``, ``_v2_sent``, ``_v2_pos``), written by the daemon
in the same atomic step as the delivery/send it describes, so every
snapshot is internally consistent.

The generic daemon lifecycle lives in :mod:`repro.mpichv.daemonbase`;
this module contains only the message-logging protocol logic.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.mpi.message import AppMessage
from repro.mpichv import shardmap, wire
from repro.mpichv.checkpoint import CheckpointImage
from repro.mpichv.daemonbase import (MpichDaemon, connect_retry,
                                     daemon_lifecycle)
from repro.obs import causal
from repro.simkernel.store import StoreClosed

DELIVERED = "_v2_delivered"
SENT = "_v2_sent"
POS = "_v2_pos"


class V2Daemon(MpichDaemon):
    """Sender-based message-logging logic of one daemon instance."""

    protocol = "v2"
    hello_cls = wire.V2Hello

    def init_state_keys(self) -> None:
        self.app_state.setdefault(DELIVERED, {r: 0 for r in range(self.n)})
        self.app_state.setdefault(SENT, {r: 0 for r in range(self.n)})
        self.app_state.setdefault(POS, 0)

    def init_protocol(self) -> None:
        #: sender-side volatile logs: dst -> deque of (seq, AppMessage)
        self.send_log: Dict[int, deque] = {r: deque() for r in range(self.n)}

        #: pessimistic delivery pipeline: held messages awaiting their
        #: event-logger ack, in log order
        self.held: deque = deque()          # (pos, src, src_seq, AppMessage)
        self.next_pos_to_log = None         # filled from state at start

        #: replay mode: delivery events to reproduce, staged messages.
        #: A restarted incarnation starts *already* in replay mode:
        #: peers re-send their logged messages the moment the mesh
        #: handshake completes, which races the event-log fetch in
        #: :meth:`after_mesh` — delivering those early arrivals through
        #: the normal path can skip sequence numbers (``DELIVERED[src] =
        #: seq`` jumps the gap) and the dedup then drops the skipped
        #: messages forever, deadlocking the application.  Staging until
        #: :meth:`begin_replay` preserves the logged delivery order.
        self.replaying = self.restarted
        self.replay_events: deque = deque()            # (src, src_seq)
        self.staging: Dict[Tuple[int, int], AppMessage] = {}
        #: replay mode may only end once the delivery history has been
        #: fetched (begin_replay ran) — a resend arriving earlier must
        #: stay staged, not trick _drain_replay into an early exit
        self.history_fetched = not self.restarted

        self.evlog_sock = None

    # ------------------------------------------------------------------
    # transport interface used by MpiEndpoint
    # ------------------------------------------------------------------
    def app_send(self, msg: AppMessage) -> None:
        if msg.dst == self.rank:
            # self-sends need no fault-tolerance plumbing
            self.delivery.deliver(msg)
            return
        sent = self.app_state[SENT]
        seq = sent[msg.dst] + 1
        sent[msg.dst] = seq
        self.send_log[msg.dst].append((seq, msg))
        sock = self.peers.get(msg.dst)
        if sock is not None and not sock.closed:
            data = wire.V2Data(app=msg, seq=seq)
            causal.adopt(data, msg)     # envelope continues the trace
            sock.send(data)
        # else: peer down — the log holds it until the new incarnation
        # dials in and requests a resend.

    # ------------------------------------------------------------------
    # inbound data path (pessimistic logging)
    # ------------------------------------------------------------------
    def on_data(self, src: int, seq: int, msg: AppMessage) -> None:
        delivered = self.app_state[DELIVERED]
        if seq <= delivered.get(src, 0):
            return                      # duplicate (re-sent/re-executed)
        if self.replaying:
            self.staging[(src, seq)] = msg
            self._drain_replay()
            return
        self._log_then_deliver(src, seq, msg)

    def _log_then_deliver(self, src: int, seq: int, msg: AppMessage) -> None:
        pos = self.next_pos_to_log + 1
        self.next_pos_to_log = pos
        self.held.append((pos, src, seq, msg))
        if self.evlog_sock is not None and not self.evlog_sock.closed:
            ev = wire.EvLog(rank=self.rank, pos=pos, src=src, src_seq=seq)
            # the log record is caused by the message's arrival
            causal.derive(self.engine, ev, f"r{self.rank}", msg)
            self.evlog_sock.send(ev)

    def on_evlog_ack(self, pos: int) -> None:
        # acks arrive in order (FIFO connection); deliver the head
        while self.held and self.held[0][0] <= pos:
            _pos, src, seq, msg = self.held.popleft()
            self._deliver_now(src, seq, msg)

    def _deliver_now(self, src: int, seq: int, msg: AppMessage) -> None:
        # atomic with the buffer append: counters are in the same state
        self.app_state[DELIVERED][src] = seq
        self.app_state[POS] += 1
        self.delivery.deliver(msg)

    # ------------------------------------------------------------------
    # replay (restart of this rank only)
    # ------------------------------------------------------------------
    def begin_replay(self, events: List[Tuple[int, int]]) -> None:
        self.replay_events = deque(events)
        self.replaying = True
        self.history_fetched = True
        if self.replay_events:
            self.engine.log("v2_replay_start", rank=self.rank,
                            events=len(self.replay_events))
            self._replay_span = self.engine.span(
                "replay", lane=self.proc.node.name, rank=self.rank,
                replayed=len(self.replay_events))
        self._drain_replay()

    def _drain_replay(self) -> None:
        while self.replaying and self.replay_events:
            src, seq = self.replay_events[0]
            msg = self.staging.pop((src, seq), None)
            if msg is None:
                return                  # wait for the re-send to arrive
            self.replay_events.popleft()
            # already on the event log: deliver without re-logging
            self._deliver_now(src, seq, msg)
        if self.replaying and not self.replay_events and self.history_fetched:
            # replay finished (or the fetched history was empty); flush
            # anything that arrived while staged.  history_fetched keeps
            # a pre-fetch resend from ending replay mode early — it must
            # wait for the event-log response it might belong to.
            self.replaying = False
            # Replayed deliveries advanced POS without logging (their
            # events are already stable); resume logging *after* them,
            # or fresh events would collide with existing positions and
            # be dropped by the logger's idempotence check — corrupting
            # the history the next restore of this rank replays.
            self.next_pos_to_log = max(self.next_pos_to_log,
                                       self.app_state[POS])
            self.engine.log("v2_replay_done", rank=self.rank)
            span = getattr(self, "_replay_span", None)
            if span is not None:
                span.close()
                self._replay_span = None
            # post-replay traffic processes through the normal
            # pessimistic path, in (src, seq) order per source
            for (src, seq) in sorted(self.staging):
                msg = self.staging.pop((src, seq))
                if seq > self.app_state[DELIVERED].get(src, 0):
                    self._log_then_deliver(src, seq, msg)

    # ------------------------------------------------------------------
    # peer handling
    # ------------------------------------------------------------------
    def attach_peer(self, peer_rank: int, sock, resend_from: int) -> None:
        old = self.peers.get(peer_rank)
        if old is not None and not old.closed and old is not sock:
            old.close()
        self.peers[peer_rank] = sock
        if resend_from:
            for seq, msg in self.send_log[peer_rank]:
                if seq >= resend_from and not sock.closed:
                    data = wire.V2Data(app=msg, seq=seq)
                    causal.adopt(data, msg)     # replay: same trace, new hop
                    sock.send(data)
        self.check_mesh()

    def peer_reader(self, sock, peer_rank: int):
        while True:
            try:
                msg = yield sock.recv()
            except StoreClosed:
                # peer failed: keep its slot; the new incarnation dials in
                if self.peers.get(peer_rank) is sock:
                    del self.peers[peer_rank]
                return
            if isinstance(msg, wire.V2Data):
                self.on_data(peer_rank, msg.seq, msg.app)
            elif isinstance(msg, wire.V2GcNote):
                log = self.send_log[msg.rank]
                while log and log[0][0] <= msg.upto:
                    log.popleft()

    def evlog_reader(self):
        while True:
            try:
                msg = yield self.evlog_sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, wire.EvLogAck):
                self.on_evlog_ack(msg.pos)

    # ------------------------------------------------------------------
    # independent checkpointing (loop shared with V1 via the base)
    # ------------------------------------------------------------------
    def post_checkpoint(self, img: CheckpointImage) -> None:
        # sender logs + event log can be pruned up to this image
        for peer_rank, sock in self.peers.items():
            if not sock.closed:
                note = wire.V2GcNote(
                    rank=self.rank,
                    upto=img.state[DELIVERED].get(peer_rank, 0))
                causal.stamp(self.engine, note, f"r{self.rank}")
                sock.send(note)
        if self.evlog_sock is not None and not self.evlog_sock.closed:
            prune = wire.EvPrune(rank=self.rank, upto=img.state[POS])
            causal.stamp(self.engine, prune, f"r{self.rank}")
            self.evlog_sock.send(prune)

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def on_mesh_hello(self, sock, hello) -> None:
        self.proc.spawn_thread(self.peer_reader(sock, hello.rank),
                               name=f"v2.{self.rank}.peer{hello.rank}")
        self.attach_peer(hello.rank, sock, hello.resend_from)

    def connect_services(self, cmd):
        yield from self.connect_ckpt_server()
        self.evlog_sock = yield from self.connect_service(
            shardmap.COORDINATOR_NODE, self.config.eventlog_port)

    def restore_state(self, cmd):
        if self.restarted:
            yield from self.restore_latest_own()
        self.next_pos_to_log = self.app_state[POS]

    def mesh_dial_targets(self, cmd):
        # initial launch: dial lower ranks; a restarted incarnation dials
        # everyone (survivors only accept)
        if not self.restarted:
            return range(self.rank)
        return [r for r in range(self.n) if r != self.rank]

    def dial_peer(self, peer_rank: int, addr):
        sock = yield from connect_retry(
            self.proc, addr, self.timing.connect_retry_initial,
            self.timing.connect_retry_max, stop=lambda: self.terminating)
        if sock is None:
            return
        resend_from = (self.app_state[DELIVERED].get(peer_rank, 0) + 1
                       if self.restarted else 0)
        hello = wire.V2Hello(rank=self.rank, incarnation=self.incarnation,
                             resend_from=resend_from)
        causal.stamp(self.engine, hello, f"r{self.rank}")
        sock.send(hello)
        self.proc.spawn_thread(self.peer_reader(sock, peer_rank),
                               name=f"v2.{self.rank}.peer{peer_rank}")
        self.attach_peer(peer_rank, sock, 0)

    def after_mesh(self, cmd):
        # --- replay the delivery history of a restarted incarnation ---
        if self.restarted:
            fetch = wire.EvFetch(rank=self.rank, after=self.app_state[POS])
            causal.stamp(self.engine, fetch, f"r{self.rank}")
            self.evlog_sock.send(fetch)
            resp = yield self.evlog_sock.recv()
            assert isinstance(resp, wire.EvFetchResp), resp
            self.begin_replay(list(resp.events))
        self.proc.spawn_thread(self.evlog_reader(),
                               name=f"v2.{self.rank}.evlog")
        self.proc.spawn_thread(self.independent_ckpt_loop(),
                               name=f"v2.{self.rank}.ckpt")


def v2daemon_main(proc, config, rank: int, epoch: int, incarnation: int,
                  app_factory):
    """Main generator of a V2 communication daemon process."""
    return daemon_lifecycle(V2Daemon, proc, config, rank, epoch,
                            incarnation, app_factory)
