"""The V2 communication daemon: pessimistic sender-based message
logging with uncoordinated checkpointing (MPICH-V2, [BCH+03] in the
paper's related work; the ``V2`` box of its Fig. 2a).

Contrast with Vcl:

* checkpoints are **per-rank and independent** (no marker waves, no
  checkpoint scheduler); each rank snapshots on its own staggered
  timer;
* every outbound message is kept in the **sender's volatile log**
  (pruned when the receiver's checkpoint covers it);
* every delivery is recorded at a **stable event logger** *before* the
  message reaches the application — the pessimistic property that
  makes single-failure recovery orphan-free;
* on a failure **only the failed rank restarts**: it reloads its own
  latest image, fetches its post-snapshot delivery history from the
  event logger, asks each peer to re-send logged messages, and
  re-executes deterministically — survivors keep running, deduplicate
  the re-sent traffic by sequence number, and never roll back.

Known (and faithful) limitation: with *simultaneous* failures the
senders' volatile logs needed by one recovering rank may have died
with another — recovery can then stall, which is precisely the kind of
behaviour the FAIL-MPI scenarios of the paper are designed to expose.

Checkpoint-safety bookkeeping lives inside the application state dict
(``_v2_delivered``, ``_v2_sent``, ``_v2_pos``), written by the daemon
in the same atomic step as the delivery/send it describes, so every
snapshot is internally consistent.
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.unixproc import UnixProcess
from repro.mpi.endpoint import LocalDelivery, MpiEndpoint
from repro.mpi.message import AppMessage
from repro.mpichv import wire
from repro.mpichv.checkpoint import CheckpointImage, node_local_store
from repro.mpichv.vdaemon import connect_retry
from repro.simkernel.store import StoreClosed

DELIVERED = "_v2_delivered"
SENT = "_v2_sent"
POS = "_v2_pos"


class V2Daemon:
    """State + threads of one V2 communication daemon instance."""

    def __init__(self, proc: UnixProcess, config, rank: int, epoch: int,
                 incarnation: int, app_factory: Callable[[MpiEndpoint], Any]):
        self.proc = proc
        self.engine = proc.engine
        self.config = config
        self.timing = config.timing
        self.rank = rank
        self.epoch = epoch
        self.incarnation = incarnation
        self.app_factory = app_factory
        self.n = config.n_procs

        self.app_state: dict = {}
        self._init_state_keys()
        self.delivery = LocalDelivery(self.engine, self.app_state,
                                      name=f"v2inbox.r{rank}")
        self.endpoint: Optional[MpiEndpoint] = None

        self.peers: Dict[int, Any] = {}
        self.mesh_ready = self.engine.event(name=f"v2mesh.r{rank}")

        #: sender-side volatile logs: dst -> deque of (seq, AppMessage)
        self.send_log: Dict[int, deque] = {r: deque() for r in range(self.n)}

        #: pessimistic delivery pipeline: held messages awaiting their
        #: event-logger ack, in log order
        self.held: deque = deque()          # (pos, src, src_seq, AppMessage)
        self.next_pos_to_log = None         # filled from state at start

        #: replay mode: delivery events to reproduce, staged messages
        self.replaying = False
        self.replay_events: deque = deque()            # (src, src_seq)
        self.staging: Dict[Tuple[int, int], AppMessage] = {}

        self.ckpt_counter = 0
        self.disp_sock = None
        self.ckpt_sock = None
        self.evlog_sock = None
        self.terminating = False

    def _init_state_keys(self) -> None:
        self.app_state.setdefault(DELIVERED, {r: 0 for r in range(self.n)})
        self.app_state.setdefault(SENT, {r: 0 for r in range(self.n)})
        self.app_state.setdefault(POS, 0)

    # ------------------------------------------------------------------
    # transport interface used by MpiEndpoint
    # ------------------------------------------------------------------
    def app_send(self, msg: AppMessage) -> None:
        if msg.dst == self.rank:
            # self-sends need no fault-tolerance plumbing
            self.delivery.deliver(msg)
            return
        sent = self.app_state[SENT]
        seq = sent[msg.dst] + 1
        sent[msg.dst] = seq
        self.send_log[msg.dst].append((seq, msg))
        sock = self.peers.get(msg.dst)
        if sock is not None and not sock.closed:
            sock.send(wire.V2Data(app=msg, seq=seq))
        # else: peer down — the log holds it until the new incarnation
        # dials in and requests a resend.

    def app_inbox_get(self):
        return self.delivery.doorbell()

    def app_done(self) -> None:
        if self.disp_sock is not None and not self.disp_sock.closed:
            self.disp_sock.send(wire.Done(rank=self.rank))

    # ------------------------------------------------------------------
    # inbound data path (pessimistic logging)
    # ------------------------------------------------------------------
    def on_data(self, src: int, seq: int, msg: AppMessage) -> None:
        delivered = self.app_state[DELIVERED]
        if seq <= delivered.get(src, 0):
            return                      # duplicate (re-sent/re-executed)
        if self.replaying:
            self.staging[(src, seq)] = msg
            self._drain_replay()
            return
        self._log_then_deliver(src, seq, msg)

    def _log_then_deliver(self, src: int, seq: int, msg: AppMessage) -> None:
        pos = self.next_pos_to_log + 1
        self.next_pos_to_log = pos
        self.held.append((pos, src, seq, msg))
        if self.evlog_sock is not None and not self.evlog_sock.closed:
            self.evlog_sock.send(wire.EvLog(rank=self.rank, pos=pos,
                                            src=src, src_seq=seq))

    def on_evlog_ack(self, pos: int) -> None:
        # acks arrive in order (FIFO connection); deliver the head
        while self.held and self.held[0][0] <= pos:
            _pos, src, seq, msg = self.held.popleft()
            self._deliver_now(src, seq, msg)

    def _deliver_now(self, src: int, seq: int, msg: AppMessage) -> None:
        # atomic with the buffer append: counters are in the same state
        self.app_state[DELIVERED][src] = seq
        self.app_state[POS] += 1
        self.delivery.deliver(msg)

    # ------------------------------------------------------------------
    # replay (restart of this rank only)
    # ------------------------------------------------------------------
    def begin_replay(self, events: List[Tuple[int, int]]) -> None:
        self.replay_events = deque(events)
        self.replaying = bool(self.replay_events)
        if self.replaying:
            self.engine.log("v2_replay_start", rank=self.rank,
                            events=len(self.replay_events))
        self._drain_replay()

    def _drain_replay(self) -> None:
        while self.replaying and self.replay_events:
            src, seq = self.replay_events[0]
            msg = self.staging.pop((src, seq), None)
            if msg is None:
                return                  # wait for the re-send to arrive
            self.replay_events.popleft()
            # already on the event log: deliver without re-logging
            self._deliver_now(src, seq, msg)
        if self.replaying and not self.replay_events:
            self.replaying = False
            self.engine.log("v2_replay_done", rank=self.rank)
            # post-replay traffic processes through the normal
            # pessimistic path, in (src, seq) order per source
            for (src, seq) in sorted(self.staging):
                msg = self.staging.pop((src, seq))
                if seq > self.app_state[DELIVERED].get(src, 0):
                    self._log_then_deliver(src, seq, msg)

    # ------------------------------------------------------------------
    # peer handling
    # ------------------------------------------------------------------
    def attach_peer(self, peer_rank: int, sock, resend_from: int) -> None:
        old = self.peers.get(peer_rank)
        if old is not None and not old.closed and old is not sock:
            old.close()
        self.peers[peer_rank] = sock
        if resend_from:
            for seq, msg in self.send_log[peer_rank]:
                if seq >= resend_from and not sock.closed:
                    sock.send(wire.V2Data(app=msg, seq=seq))
        self._check_mesh()

    def _check_mesh(self) -> None:
        if len(self.peers) == self.n - 1 and not self.mesh_ready.triggered:
            self.mesh_ready.succeed()

    def peer_reader(self, sock, peer_rank: int):
        while True:
            try:
                msg = yield sock.recv()
            except StoreClosed:
                # peer failed: keep its slot; the new incarnation dials in
                if self.peers.get(peer_rank) is sock:
                    del self.peers[peer_rank]
                return
            if isinstance(msg, wire.V2Data):
                self.on_data(peer_rank, msg.seq, msg.app)
            elif isinstance(msg, wire.V2GcNote):
                log = self.send_log[msg.rank]
                while log and log[0][0] <= msg.upto:
                    log.popleft()

    def evlog_reader(self):
        while True:
            try:
                msg = yield self.evlog_sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, wire.EvLogAck):
                self.on_evlog_ack(msg.pos)

    def dispatcher_reader(self):
        while True:
            try:
                msg = yield self.disp_sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, (wire.Terminate, wire.Shutdown)):
                self.proc.exit()
                return

    # ------------------------------------------------------------------
    # independent checkpointing
    # ------------------------------------------------------------------
    def ckpt_loop(self):
        period = self.config.ckpt_period
        # stagger ranks across the period to spread server load
        offset = period * (self.rank + 1) / (self.n + 1)
        first = period + offset - (self.engine.now % period)
        yield self.engine.timeout(max(first, 1.0))
        while not self.terminating:
            yield from self._take_checkpoint()
            yield self.engine.timeout(period)

    def _take_checkpoint(self):
        self.ckpt_counter += 1
        wave = self.ckpt_counter
        img = CheckpointImage(
            rank=self.rank, wave=wave,
            state=copy.deepcopy(self.app_state),
            logs=[], img_size=int(self.config.image_size), complete=True)
        # fork-style: local write, then stream to the server
        yield self.engine.timeout(img.img_size / self.timing.local_disk_bw)
        node_local_store(self.proc.node).store(img)
        if self.ckpt_sock is not None and not self.ckpt_sock.closed:
            self.ckpt_sock.send(wire.CkptStore(
                rank=self.rank, wave=wave, state=img.state, logs=[],
                img_size=img.img_size))
        # sender logs + event log can be pruned up to this image
        for peer_rank, sock in self.peers.items():
            if not sock.closed:
                sock.send(wire.V2GcNote(
                    rank=self.rank,
                    upto=img.state[DELIVERED].get(peer_rank, 0)))
        if self.evlog_sock is not None and not self.evlog_sock.closed:
            self.evlog_sock.send(wire.EvPrune(rank=self.rank,
                                              upto=img.state[POS]))
        self.engine.log("v2_ckpt", rank=self.rank, wave=wave)

    # ------------------------------------------------------------------
    # restore (this rank only)
    # ------------------------------------------------------------------
    def restore_own(self):
        """Load the newest local/remote image of this rank, if any."""
        local = node_local_store(self.proc.node)
        waves = local.waves_for(self.rank)
        img = local.load(self.rank, waves[-1]) if waves else None
        if img is not None and img.complete:
            yield self.engine.timeout(img.img_size / self.timing.local_disk_bw)
            img = img.snapshot_of()
        else:
            self.ckpt_sock.send(wire.FetchReq(rank=self.rank, wave=None))
            resp = yield self.ckpt_sock.recv()
            assert isinstance(resp, wire.FetchResp), resp
            if resp.wave is None:
                return          # nothing stored: fresh start
            img = CheckpointImage(rank=self.rank, wave=resp.wave,
                                  state=copy.deepcopy(resp.state),
                                  logs=[], img_size=resp.img_size)
        self.app_state = img.state
        self._init_state_keys()
        self.delivery.rebind(self.app_state)
        self.ckpt_counter = img.wave
        self.engine.log("restore", rank=self.rank, wave=img.wave,
                        replayed=0, protocol="v2")

    # ------------------------------------------------------------------
    # app thread
    # ------------------------------------------------------------------
    def app_thread(self):
        ep = MpiEndpoint(self.rank, self.n, self.app_state, self, self.engine)
        self.endpoint = ep
        yield from self.app_factory(ep)


def v2daemon_main(proc: UnixProcess, config, rank: int, epoch: int,
                  incarnation: int, app_factory):
    """Main generator of a V2 communication daemon process."""
    engine = proc.engine
    timing = config.timing
    cluster = proc.node.cluster
    core = V2Daemon(proc, config, rank, epoch, incarnation, app_factory)
    proc.tags["v2"] = core
    proc.tags["vcl"] = core        # FAIL_READ looks here for app state

    listener = proc.node.listen(config.daemon_port_base + rank, owner=proc)

    def accept_loop():
        while True:
            try:
                sock = yield listener.accept()
            except StoreClosed:
                return
            try:
                hello = yield sock.recv()
            except StoreClosed:
                continue
            if isinstance(hello, wire.V2Hello):
                proc.spawn_thread(core.peer_reader(sock, hello.rank),
                                  name=f"v2.{rank}.peer{hello.rank}")
                core.attach_peer(hello.rank, sock, hello.resend_from)

    proc.spawn_thread(accept_loop(), name=f"v2.{rank}.accept")

    yield engine.timeout(timing.uniform(engine.random, timing.daemon_startup))

    # --- argument exchange with the dispatcher -----------------------------
    disp_addr = cluster.node("svc0").addr(config.dispatcher_port)
    core.disp_sock = yield from connect_retry(
        proc, disp_addr, timing.connect_retry_initial, timing.connect_retry_max)
    core.disp_sock.send(wire.Register(rank=rank, addr=listener.addr,
                                      epoch=epoch, incarnation=incarnation))
    try:
        ack = yield core.disp_sock.recv()
    except StoreClosed:
        proc.abort()
        return
    assert isinstance(ack, wire.RegisterAck), ack
    yield from proc.trace_point("localMPI_setCommand")
    try:
        cmd = yield core.disp_sock.recv()
    except StoreClosed:
        proc.abort()
        return
    if isinstance(cmd, (wire.Terminate, wire.Shutdown)):
        proc.exit()
        return
    assert isinstance(cmd, wire.CommandMap), cmd
    proc.spawn_thread(core.dispatcher_reader(), name=f"v2.{rank}.disp")

    # --- services ----------------------------------------------------------
    server_idx = rank % config.n_ckpt_servers
    ckpt_addr = cluster.node(f"svc{2 + server_idx}").addr(
        config.ckpt_server_port_base + server_idx)
    core.ckpt_sock = yield from connect_retry(
        proc, ckpt_addr, timing.connect_retry_initial, timing.connect_retry_max)
    evlog_addr = cluster.node("svc1").addr(config.eventlog_port)
    core.evlog_sock = yield from connect_retry(
        proc, evlog_addr, timing.connect_retry_initial, timing.connect_retry_max)

    restarted = incarnation > 1
    if restarted:
        yield from core.restore_own()
    core.next_pos_to_log = core.app_state[POS]

    # --- mesh ----------------------------------------------------------------
    def dial(peer_rank: int):
        addr = cmd.addrs[peer_rank]
        sock = yield from connect_retry(
            proc, addr, timing.connect_retry_initial, timing.connect_retry_max,
            stop=lambda: core.terminating)
        if sock is None:
            return
        resend_from = (core.app_state[DELIVERED].get(peer_rank, 0) + 1
                       if restarted else 0)
        sock.send(wire.V2Hello(rank=rank, incarnation=incarnation,
                               resend_from=resend_from))
        proc.spawn_thread(core.peer_reader(sock, peer_rank),
                          name=f"v2.{rank}.peer{peer_rank}")
        core.attach_peer(peer_rank, sock, 0)

    # initial launch: dial lower ranks; a restarted incarnation dials
    # everyone (survivors only accept)
    dial_targets = range(rank) if not restarted else \
        [r for r in range(config.n_procs) if r != rank]
    for peer_rank in dial_targets:
        proc.spawn_thread(dial(peer_rank), name=f"v2.{rank}.dial{peer_rank}")

    if config.n_procs > 1:
        yield core.mesh_ready

    # --- replay ------------------------------------------------------------------
    if restarted:
        core.evlog_sock.send(wire.EvFetch(rank=rank,
                                          after=core.app_state[POS]))
        resp = yield core.evlog_sock.recv()
        assert isinstance(resp, wire.EvFetchResp), resp
        core.begin_replay(list(resp.events))
    proc.spawn_thread(core.evlog_reader(), name=f"v2.{rank}.evlog")

    # --- run ----------------------------------------------------------------------
    proc.spawn_thread(core.ckpt_loop(), name=f"v2.{rank}.ckpt")
    core.app_proc = proc.spawn_thread(core.app_thread(), name=f"mpi.{rank}")

    yield engine.event(name=f"v2.{rank}.forever")
