"""The MPICH-V communication daemon (Vdaemon) running the Vcl protocol.

One daemon process per MPI rank.  It owns every connection of the rank
(dispatcher, scheduler, checkpoint server, peer mesh), relays
application messages, and implements the *non-blocking* Chandy-Lamport
algorithm:

* on the first marker of a wave it snapshots the MPI process state
  (the fork-clone of the paper).  Delivered-but-unprocessed messages
  are part of that state by construction — the delivery contract of
  :class:`repro.mpi.endpoint.Transport` places every inbound message
  into the checkpointable buffer *before* waking the application, so
  no message can sit in scheduling limbo during a snapshot;
* it then relays the marker on every outgoing channel and, per inbound
  channel, logs messages until that channel's marker arrives;
* the application keeps computing throughout; the image and the logged
  messages stream to the checkpoint server in the background;
* when the image and the channel logs are durably stored, the daemon
  acknowledges the wave to the checkpoint scheduler.

On restart the daemon restores the committed image (node-local disk if
present, checkpoint-server fetch otherwise), replays logged messages
into the application inbox, re-establishes the mesh and resumes the
application from the restored state.

The instrumentation point ``localMPI_setCommand`` sits exactly where
the paper places it: after the initial argument exchange with the
dispatcher (our ``Register``/``RegisterAck``), so the dispatcher
already counts the daemon as running when the trace point is reached.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Optional, Set

from repro.cluster.network import ConnectionRefused
from repro.cluster.unixproc import UnixProcess
from repro.mpi.endpoint import LocalDelivery, MpiEndpoint
from repro.mpi.message import AppMessage
from repro.mpichv import wire
from repro.mpichv.checkpoint import CheckpointImage, node_local_store
from repro.simkernel.store import StoreClosed


def connect_retry(proc: UnixProcess, addr, backoff_initial: float,
                  backoff_max: float, stop: Callable[[], bool] = lambda: False):
    """Connect with exponential backoff; loops while refused.

    This retry loop is load-bearing for the reproduction: daemons that
    keep retrying a peer that will never come back are *how the
    dispatcher bug manifests as a freeze* (§5.3).
    """
    delay = backoff_initial
    while not stop():
        try:
            sock = yield proc.node.connect(addr, owner=proc)
            return sock
        except ConnectionRefused:
            yield proc.engine.timeout(delay)
            delay = min(delay * 2, backoff_max)
    return None


class VclDaemon:
    """State + threads of one communication daemon instance."""

    def __init__(self, proc: UnixProcess, config, rank: int, epoch: int,
                 incarnation: int, app_factory: Callable[[MpiEndpoint], Any]):
        self.proc = proc
        self.engine = proc.engine
        self.config = config
        self.timing = config.timing
        self.rank = rank
        self.epoch = epoch
        self.incarnation = incarnation
        self.app_factory = app_factory
        self.n = config.n_procs

        # app-side plumbing: deliveries land directly in the
        # checkpointable state buffer (see repro.mpi.endpoint.Transport)
        self.app_state: dict = {}
        self.delivery = LocalDelivery(self.engine, self.app_state,
                                      name=f"inbox.r{rank}")
        self.endpoint: Optional[MpiEndpoint] = None
        #: blocking variant: arrivals on already-flushed channels, held
        #: out of the snapshot until the wave ends
        self.post_flush: List[AppMessage] = []

        # mesh
        self.peers: Dict[int, Any] = {}         # rank -> socket
        self.mesh_ready = self.engine.event(name=f"mesh_ready.r{rank}")

        # Chandy-Lamport bookkeeping
        self.current_wave = 0
        self.logging_wave: Optional[int] = None
        self.pending_markers: Set[int] = set()
        self.wave_img: Optional[CheckpointImage] = None
        self.late_logs: List[AppMessage] = []
        self.store_acks: Dict[int, int] = {}     # wave -> acks received (need 2)
        self.logging_done: Set[int] = set()

        # service sockets
        self.disp_sock = None
        self.sched_sock = None
        self.ckpt_sock = None

        self.terminating = False
        self.finished = False
        #: handle of the MPI computation thread (blocking mode freezes it)
        self.app_proc = None

    # ------------------------------------------------------------------
    # transport interface used by MpiEndpoint
    # ------------------------------------------------------------------
    def app_send(self, msg: AppMessage) -> None:
        if msg.dst == self.rank:
            self.delivery.deliver(msg)
            return
        sock = self.peers.get(msg.dst)
        if sock is not None and not sock.closed:
            sock.send(wire.DataMsg(msg))
        # else: peer dead — a failure is being detected; the rollback
        # will discard this whole execution line anyway.

    def app_inbox_get(self):
        return self.delivery.doorbell()

    def app_done(self) -> None:
        self.finished = True
        if self.disp_sock is not None and not self.disp_sock.closed:
            self.disp_sock.send(wire.Done(rank=self.rank))

    # ------------------------------------------------------------------
    # Chandy-Lamport
    # ------------------------------------------------------------------
    def handle_marker(self, marker: wire.Marker) -> None:
        wave = marker.wave
        if wave <= self.current_wave:
            return                      # duplicate / stale marker
        if self.logging_wave is None and wave > self.current_wave:
            self._begin_local_checkpoint(wave, from_rank=marker.src_rank)
        if marker.src_rank >= 0 and self.logging_wave == wave:
            self.pending_markers.discard(marker.src_rank)
            if not self.pending_markers:
                self._finish_logging()

    def _begin_local_checkpoint(self, wave: int, from_rank: int) -> None:
        self.logging_wave = wave
        self.store_acks[wave] = 0
        if self.config.blocking:
            # Blocking variant (§3): freeze the computation, flush the
            # channels with the markers, snapshot afterwards.
            if self.app_proc is not None and self.app_proc.alive:
                self.app_proc.suspend()
            self.wave_img = None
            self.late_logs = []
            self.post_flush = []
        else:
            # Non-blocking Vcl: snapshot now (the fork).  The deep copy
            # of the MPI process state already contains every delivered
            # message (delivery contract), so the image needs no
            # separate in-buffer capture — only the channel-state
            # messages still to arrive (late_logs).
            self.wave_img = CheckpointImage(
                rank=self.rank, wave=wave,
                state=copy.deepcopy(self.app_state),
                logs=[], img_size=int(self.config.image_size))
            self.late_logs = []
        # Relay the marker on every outgoing channel.
        out_marker = wire.Marker(wave=wave, src_rank=self.rank)
        for sock in self.peers.values():
            if not sock.closed:
                sock.send(out_marker)
        self.pending_markers = set(r for r in range(self.n) if r != self.rank)
        if from_rank >= 0:
            self.pending_markers.discard(from_rank)
        if not self.config.blocking:
            # Background transfer of the image (clone + pipeline of paper).
            self.proc.spawn_thread(self._ckpt_transfer(self.wave_img),
                                   name=f"vdaemon.{self.rank}.ckpt{wave}")
        if not self.pending_markers:
            self._finish_logging()

    def _finish_logging(self) -> None:
        wave = self.logging_wave
        if wave is None:
            return
        self.logging_wave = None
        self.current_wave = wave
        self.logging_done.add(wave)
        if self.config.blocking:
            # Channels are flushed (all markers in, computation frozen):
            # snapshot now — the flushed channel contents are already
            # in the state buffer.  Messages from channels that flushed
            # early (post-marker sends by peers) were held back; they
            # belong to the next execution interval, so deliver them
            # only after the snapshot is taken.
            img = CheckpointImage(
                rank=self.rank, wave=wave,
                state=copy.deepcopy(self.app_state),
                logs=[], img_size=int(self.config.image_size),
                complete=True)
            self.wave_img = img
            held, self.post_flush = self.post_flush, []
            for msg in held:
                self.delivery.deliver(msg)
            self.proc.spawn_thread(self._ckpt_transfer(img),
                                   name=f"vdaemon.{self.rank}.ckpt{wave}")
            return
        img = self.wave_img
        img.logs.extend(self.late_logs)
        img.complete = True
        if self.ckpt_sock is not None and not self.ckpt_sock.closed:
            self.ckpt_sock.send(wire.CkptLogAppend(rank=self.rank, wave=wave,
                                                   logs=list(self.late_logs)))
        self.late_logs = []

    def _ckpt_transfer(self, img: CheckpointImage):
        """Clone thread: write local image, stream it to the server."""
        # local disk write (the forked clone writing its file)
        yield self.engine.timeout(img.img_size / self.timing.local_disk_bw)
        node_local_store(self.proc.node).store(img)
        if self.config.blocking and self.app_proc is not None \
                and self.app_proc.alive:
            # blocking variant: computation resumes once the local
            # checkpoint file exists
            self.app_proc.resume()
        # pipeline to the checkpoint server over the data connection
        if self.ckpt_sock is not None and not self.ckpt_sock.closed:
            self.ckpt_sock.send(wire.CkptStore(
                rank=self.rank, wave=img.wave, state=img.state,
                logs=list(img.logs), img_size=img.img_size))

    def _note_store_ack(self, wave: int) -> None:
        self.store_acks[wave] = self.store_acks.get(wave, 0) + 1
        self._maybe_ack_scheduler(wave)

    def _maybe_ack_scheduler(self, wave: int) -> None:
        # Local checkpoint is finished when the image AND (non-blocking
        # only) the channel logs are durably stored, and logging ended.
        needed = 1 if self.config.blocking else 2
        if (self.store_acks.get(wave, 0) >= needed
                and wave in self.logging_done
                and self.sched_sock is not None and not self.sched_sock.closed):
            self.sched_sock.send(wire.SchedAck(rank=self.rank, wave=wave))

    def on_data(self, from_rank: int, msg: AppMessage) -> None:
        if self.logging_wave is not None:
            if self.config.blocking:
                if from_rank not in self.pending_markers:
                    # blocking: the channel already flushed — this is a
                    # post-snapshot message; hold it out of the image
                    self.post_flush.append(msg)
                    return
            elif from_rank in self.pending_markers:
                # non-blocking channel state: received after our
                # snapshot, sent before the peer's marker -> log it
                # (and deliver: the application never stalls).
                self.late_logs.append(msg)
        self.delivery.deliver(msg)

    # ------------------------------------------------------------------
    # restore path
    # ------------------------------------------------------------------
    def restore(self, restore_wave: Optional[int]):
        """Load the committed image and replay channel state."""
        if restore_wave is None:
            self.app_state = {}
            self.delivery.rebind(self.app_state)
            return
        local = node_local_store(self.proc.node).load(self.rank, restore_wave)
        if local is not None and local.complete:
            yield self.engine.timeout(local.img_size / self.timing.local_disk_bw)
            img = local.snapshot_of()
        else:
            self.ckpt_sock.send(wire.FetchReq(rank=self.rank, wave=restore_wave))
            resp = yield self.ckpt_sock.recv()
            assert isinstance(resp, wire.FetchResp), resp
            if resp.wave is None:
                self.app_state = {}
                self.delivery.rebind(self.app_state)
                return
            img = CheckpointImage(rank=self.rank, wave=resp.wave,
                                  state=copy.deepcopy(resp.state),
                                  logs=list(resp.logs), img_size=resp.img_size)
        self.app_state = img.state
        self.delivery.rebind(self.app_state)
        self.current_wave = img.wave
        for logged in img.logs:
            self.delivery.deliver(logged)
        self.engine.log("restore", rank=self.rank, wave=img.wave,
                        replayed=len(img.logs),
                        buffered=len(self.app_state.get("_mpi_unmatched", [])))

    # ------------------------------------------------------------------
    # reader threads
    # ------------------------------------------------------------------
    def peer_reader(self, sock, peer_rank: int):
        while True:
            try:
                msg = yield sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, wire.DataMsg):
                self.on_data(peer_rank, msg.app)
            elif isinstance(msg, wire.Marker):
                self.handle_marker(msg)

    def sched_reader(self):
        while True:
            try:
                msg = yield self.sched_sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, wire.Marker):
                self.handle_marker(msg)

    def ckpt_reader(self):
        while True:
            try:
                msg = yield self.ckpt_sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, wire.CkptStoredAck):
                self._note_store_ack(msg.wave)
            # FetchResp is consumed inline by restore(); it only occurs
            # before this reader is spawned.

    def dispatcher_reader(self):
        while True:
            try:
                msg = yield self.disp_sock.recv()
            except StoreClosed:
                return      # dispatcher gone: experiment is over
            if isinstance(msg, wire.Terminate):
                self.terminating = True
                self.proc.spawn_thread(self._terminator(), name="terminator")
            elif isinstance(msg, wire.Shutdown):
                self.proc.exit()
                return

    def _terminator(self):
        """Cleanup then clean exit; the dispatcher reads the resulting
        socket closure as the termination acknowledgement."""
        yield self.engine.timeout(
            self.timing.uniform(self.engine.random, self.timing.terminate_cleanup))
        self.proc.exit()

    # ------------------------------------------------------------------
    # app thread
    # ------------------------------------------------------------------
    def app_thread(self):
        ep = MpiEndpoint(self.rank, self.n, self.app_state, self, self.engine)
        self.endpoint = ep
        yield from self.app_factory(ep)


def vdaemon_main(proc: UnixProcess, config, rank: int, epoch: int,
                 incarnation: int, app_factory):
    """Main generator of a Vcl communication daemon process."""
    engine = proc.engine
    timing = config.timing
    cluster = proc.node.cluster
    core = VclDaemon(proc, config, rank, epoch, incarnation, app_factory)
    proc.tags["vcl"] = core

    # Bind the mesh listener before anything else so peers never race us.
    listener = proc.node.listen(config.daemon_port_base + rank, owner=proc)

    def accept_loop():
        while True:
            try:
                sock = yield listener.accept()
            except StoreClosed:
                return
            try:
                hello = yield sock.recv()
            except StoreClosed:
                continue
            if isinstance(hello, wire.Hello):
                core.peers[hello.rank] = sock
                proc.spawn_thread(core.peer_reader(sock, hello.rank),
                                  name=f"vdaemon.{rank}.peer{hello.rank}")
                _check_mesh()

    expected_peers = config.n_procs - 1

    def _check_mesh():
        if len(core.peers) == expected_peers and not core.mesh_ready.triggered:
            core.mesh_ready.succeed()

    proc.spawn_thread(accept_loop(), name=f"vdaemon.{rank}.accept")

    # exec + library initialisation time
    yield engine.timeout(timing.uniform(engine.random, timing.daemon_startup))

    # --- argument exchange with the dispatcher --------------------------------
    disp_addr = cluster.node("svc0").addr(config.dispatcher_port)
    core.disp_sock = yield from connect_retry(
        proc, disp_addr, timing.connect_retry_initial, timing.connect_retry_max)
    core.disp_sock.send(wire.Register(rank=rank, addr=listener.addr,
                                      epoch=epoch, incarnation=incarnation))
    try:
        ack = yield core.disp_sock.recv()
    except StoreClosed:
        proc.abort()
        return
    assert isinstance(ack, wire.RegisterAck), ack

    # The paper's instrumentation boundary: the dispatcher now counts
    # this daemon as running.
    yield from proc.trace_point("localMPI_setCommand")

    try:
        cmd = yield core.disp_sock.recv()
    except StoreClosed:
        proc.abort()
        return
    if isinstance(cmd, wire.Terminate):
        core.terminating = True
        yield engine.timeout(
            timing.uniform(engine.random, timing.terminate_cleanup))
        proc.exit()
        return
    if isinstance(cmd, wire.Shutdown):
        proc.exit()
        return
    assert isinstance(cmd, wire.CommandMap), cmd
    proc.spawn_thread(core.dispatcher_reader(), name=f"vdaemon.{rank}.disp")

    # --- connect to scheduler and checkpoint server ----------------------------
    if config.fault_tolerant:
        sched_addr = cluster.node("svc1").addr(config.scheduler_port)
        core.sched_sock = yield from connect_retry(
            proc, sched_addr, timing.connect_retry_initial, timing.connect_retry_max)
        server_idx = rank % config.n_ckpt_servers
        ckpt_addr = cluster.node(f"svc{2 + server_idx}").addr(
            config.ckpt_server_port_base + server_idx)
        core.ckpt_sock = yield from connect_retry(
            proc, ckpt_addr, timing.connect_retry_initial, timing.connect_retry_max)

        # --- restore state (rollback) before joining the mesh --------
        yield from core.restore(cmd.restore_wave)
        proc.spawn_thread(core.ckpt_reader(), name=f"vdaemon.{rank}.ckptr")
    else:
        core.app_state = {}
        core.delivery.rebind(core.app_state)

    # --- build the mesh: connect to every lower rank ----------------------------
    def dial(peer_rank: int):
        addr = cmd.addrs[peer_rank]
        sock = yield from connect_retry(
            proc, addr, timing.connect_retry_initial, timing.connect_retry_max,
            stop=lambda: core.terminating)
        if sock is None:
            return
        sock.send(wire.Hello(rank=rank, epoch=epoch))
        core.peers[peer_rank] = sock
        proc.spawn_thread(core.peer_reader(sock, peer_rank),
                          name=f"vdaemon.{rank}.peer{peer_rank}")
        _check_mesh()

    for peer_rank in range(rank):
        proc.spawn_thread(dial(peer_rank), name=f"vdaemon.{rank}.dial{peer_rank}")

    if expected_peers:
        yield core.mesh_ready

    # Announce to the scheduler only once the mesh is complete, so a
    # marker wave can never catch this daemon with missing outgoing
    # channels (which would strand the wave).
    if config.fault_tolerant:
        core.sched_sock.send(wire.SchedHello(rank=rank, epoch=epoch))
        proc.spawn_thread(core.sched_reader(), name=f"vdaemon.{rank}.sched")

    # --- run the application ------------------------------------------------------
    core.app_proc = proc.spawn_thread(core.app_thread(), name=f"mpi.{rank}")

    # Main thread idles; the process lives until Terminate/Shutdown.
    yield engine.event(name=f"vdaemon.{rank}.forever")
