"""The MPICH-V communication daemon (Vdaemon) running the Vcl protocol.

One daemon process per MPI rank.  It owns every connection of the rank
(dispatcher, scheduler, its checkpoint-server shard — see
:mod:`repro.mpichv.shardmap` — and the peer mesh), relays
application messages, and implements the *non-blocking* Chandy-Lamport
algorithm:

* on the first marker of a wave it snapshots the MPI process state
  (the fork-clone of the paper).  Delivered-but-unprocessed messages
  are part of that state by construction — the delivery contract of
  :class:`repro.mpi.endpoint.Transport` places every inbound message
  into the checkpointable buffer *before* waking the application, so
  no message can sit in scheduling limbo during a snapshot;
* it then relays the marker on every outgoing channel and, per inbound
  channel, logs messages until that channel's marker arrives;
* the application keeps computing throughout; the image and the logged
  messages stream to the checkpoint server in the background;
* when the image and the channel logs are durably stored, the daemon
  acknowledges the wave to the checkpoint scheduler.

On restart the daemon restores the committed image (node-local disk if
present, checkpoint-server fetch otherwise), replays logged messages
into the application inbox, re-establishes the mesh and resumes the
application from the restored state.

The generic lifecycle (listener, dispatcher exchange, trace point,
mesh build, termination) lives in :mod:`repro.mpichv.daemonbase`; this
module contains only the Chandy-Lamport protocol logic.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Set

from repro.mpi.message import AppMessage
from repro.mpichv import shardmap, wire
from repro.mpichv.checkpoint import CheckpointImage, node_local_store
from repro.mpichv.daemonbase import (MpichDaemon, connect_retry,
                                     daemon_lifecycle)
from repro.obs import causal
from repro.simkernel.store import StoreClosed

__all__ = ["VclDaemon", "vdaemon_main", "connect_retry"]


class VclDaemon(MpichDaemon):
    """Chandy-Lamport protocol logic of one communication daemon."""

    protocol = "vcl"
    hello_cls = wire.Hello

    def init_protocol(self) -> None:
        #: blocking variant: arrivals on already-flushed channels, held
        #: out of the snapshot until the wave ends
        self.post_flush: List[AppMessage] = []

        # Chandy-Lamport bookkeeping
        self.current_wave = 0
        self.logging_wave: Optional[int] = None
        self.pending_markers: Set[int] = set()
        self.wave_img: Optional[CheckpointImage] = None
        self.late_logs: List[AppMessage] = []
        self.store_acks: Dict[int, int] = {}     # wave -> acks received (need 2)
        self.logging_done: Set[int] = set()

        self.sched_sock = None

    # ------------------------------------------------------------------
    # transport interface used by MpiEndpoint
    # ------------------------------------------------------------------
    def app_send(self, msg: AppMessage) -> None:
        if msg.dst == self.rank:
            self.delivery.deliver(msg)
            return
        sock = self.peers.get(msg.dst)
        if sock is not None and not sock.closed:
            dm = wire.DataMsg(msg)
            causal.adopt(dm, msg)   # the envelope continues the trace
            sock.send(dm)
        # else: peer dead — a failure is being detected; the rollback
        # will discard this whole execution line anyway.

    # ------------------------------------------------------------------
    # Chandy-Lamport
    # ------------------------------------------------------------------
    def handle_marker(self, marker: wire.Marker) -> None:
        wave = marker.wave
        if wave <= self.current_wave:
            return                      # duplicate / stale marker
        if self.logging_wave is None and wave > self.current_wave:
            self._begin_local_checkpoint(wave, from_rank=marker.src_rank,
                                         cause=marker)
        if marker.src_rank >= 0 and self.logging_wave == wave:
            self.pending_markers.discard(marker.src_rank)
            if not self.pending_markers:
                self._finish_logging()

    def _begin_local_checkpoint(self, wave: int, from_rank: int,
                                cause=None) -> None:
        self.logging_wave = wave
        self.store_acks[wave] = 0
        if self.config.blocking:
            # Blocking variant (§3): freeze the computation, flush the
            # channels with the markers, snapshot afterwards.
            if self.app_proc is not None and self.app_proc.alive:
                self.app_proc.suspend()
            self.wave_img = None
            self.late_logs = []
            self.post_flush = []
        else:
            # Non-blocking Vcl: snapshot now (the fork).  The deep copy
            # of the MPI process state already contains every delivered
            # message (delivery contract), so the image needs no
            # separate in-buffer capture — only the channel-state
            # messages still to arrive (late_logs).
            self.wave_img = CheckpointImage(
                rank=self.rank, wave=wave,
                state=copy.deepcopy(self.app_state),
                logs=[], img_size=int(self.config.image_size))
            self.late_logs = []
        # Relay the marker on every outgoing channel.
        out_marker = wire.Marker(wave=wave, src_rank=self.rank)
        causal.derive(self.engine, out_marker, f"r{self.rank}", cause)
        for sock in self.peers.values():
            if not sock.closed:
                sock.send(out_marker)
        self.pending_markers = set(r for r in range(self.n) if r != self.rank)
        if from_rank >= 0:
            self.pending_markers.discard(from_rank)
        if not self.config.blocking:
            # Background transfer of the image (clone + pipeline of paper).
            self.proc.spawn_thread(self._ckpt_transfer(self.wave_img),
                                   name=f"vdaemon.{self.rank}.ckpt{wave}")
        if not self.pending_markers:
            self._finish_logging()

    def _finish_logging(self) -> None:
        wave = self.logging_wave
        if wave is None:
            return
        self.logging_wave = None
        self.current_wave = wave
        self.logging_done.add(wave)
        if self.config.blocking:
            # Channels are flushed (all markers in, computation frozen):
            # snapshot now — the flushed channel contents are already
            # in the state buffer.  Messages from channels that flushed
            # early (post-marker sends by peers) were held back; they
            # belong to the next execution interval, so deliver them
            # only after the snapshot is taken.
            img = CheckpointImage(
                rank=self.rank, wave=wave,
                state=copy.deepcopy(self.app_state),
                logs=[], img_size=int(self.config.image_size),
                complete=True)
            self.wave_img = img
            held, self.post_flush = self.post_flush, []
            for msg in held:
                self.delivery.deliver(msg)
            self.proc.spawn_thread(self._ckpt_transfer(img),
                                   name=f"vdaemon.{self.rank}.ckpt{wave}")
            return
        img = self.wave_img
        img.logs.extend(self.late_logs)
        img.complete = True
        if self.ckpt_sock is not None and not self.ckpt_sock.closed:
            append = wire.CkptLogAppend(rank=self.rank, wave=wave,
                                        logs=list(self.late_logs))
            causal.stamp(self.engine, append, f"r{self.rank}")
            self.ckpt_sock.send(append)
        self.late_logs = []

    def _ckpt_transfer(self, img: CheckpointImage):
        """Clone thread: write local image, stream it to the server."""
        span = self.engine.span("transfer", lane=self.proc.node.name,
                                rank=self.rank, wave=img.wave,
                                bytes=img.img_size)
        # local disk write (the forked clone writing its file)
        yield self.engine.timeout(img.img_size / self.timing.local_disk_bw)
        node_local_store(self.proc.node).store(img)
        if self.config.blocking and self.app_proc is not None \
                and self.app_proc.alive:
            # blocking variant: computation resumes once the local
            # checkpoint file exists
            self.app_proc.resume()
        # pipeline to the checkpoint server over the data connection
        if self.ckpt_sock is not None and not self.ckpt_sock.closed:
            store_msg = wire.CkptStore(
                rank=self.rank, wave=img.wave, state=img.state,
                logs=list(img.logs), img_size=img.img_size)
            causal.stamp(self.engine, store_msg, f"r{self.rank}")
            self.ckpt_sock.send(store_msg)
        span.close()

    def _note_store_ack(self, wave: int) -> None:
        self.store_acks[wave] = self.store_acks.get(wave, 0) + 1
        self._maybe_ack_scheduler(wave)

    def _maybe_ack_scheduler(self, wave: int) -> None:
        # Local checkpoint is finished when the image AND (non-blocking
        # only) the channel logs are durably stored, and logging ended.
        needed = 1 if self.config.blocking else 2
        if (self.store_acks.get(wave, 0) >= needed
                and wave in self.logging_done
                and self.sched_sock is not None and not self.sched_sock.closed):
            ack = wire.SchedAck(rank=self.rank, wave=wave)
            causal.stamp(self.engine, ack, f"r{self.rank}")
            self.sched_sock.send(ack)

    def on_data(self, from_rank: int, msg: AppMessage) -> None:
        if self.logging_wave is not None:
            if self.config.blocking:
                if from_rank not in self.pending_markers:
                    # blocking: the channel already flushed — this is a
                    # post-snapshot message; hold it out of the image
                    self.post_flush.append(msg)
                    return
            elif from_rank in self.pending_markers:
                # non-blocking channel state: received after our
                # snapshot, sent before the peer's marker -> log it
                # (and deliver: the application never stalls).
                self.late_logs.append(msg)
        self.delivery.deliver(msg)

    # ------------------------------------------------------------------
    # restore path
    # ------------------------------------------------------------------
    def restore(self, restore_wave: Optional[int]):
        """Load the committed image and replay channel state."""
        if restore_wave is None:
            self.app_state = {}
            self.delivery.rebind(self.app_state)
            return
        local = node_local_store(self.proc.node).load(self.rank, restore_wave)
        if local is not None and local.complete:
            yield self.engine.timeout(local.img_size / self.timing.local_disk_bw)
            img = local.snapshot_of()
        else:
            req = wire.FetchReq(rank=self.rank, wave=restore_wave)
            causal.stamp(self.engine, req, f"r{self.rank}")
            self.ckpt_sock.send(req)
            resp = yield self.ckpt_sock.recv()
            assert isinstance(resp, wire.FetchResp), resp
            if resp.wave is None:
                self.app_state = {}
                self.delivery.rebind(self.app_state)
                return
            img = CheckpointImage(rank=self.rank, wave=resp.wave,
                                  state=copy.deepcopy(resp.state),
                                  logs=list(resp.logs), img_size=resp.img_size)
        self.app_state = img.state
        self.delivery.rebind(self.app_state)
        self.current_wave = img.wave
        for logged in img.logs:
            self.delivery.deliver(logged)
        self.engine.log("restore", rank=self.rank, wave=img.wave,
                        replayed=len(img.logs),
                        buffered=len(self.app_state.get("_mpi_unmatched", [])))
        if img.logs:
            # channel-state redelivery is instantaneous in Vcl (the
            # logs rode inside the image): a zero-length replay phase
            self.engine.span("replay", lane=self.proc.node.name,
                             rank=self.rank, wave=img.wave,
                             replayed=len(img.logs)).close()

    # ------------------------------------------------------------------
    # reader threads
    # ------------------------------------------------------------------
    def peer_reader(self, sock, peer_rank: int):
        while True:
            try:
                msg = yield sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, wire.DataMsg):
                self.on_data(peer_rank, msg.app)
            elif isinstance(msg, wire.Marker):
                self.handle_marker(msg)

    def sched_reader(self):
        while True:
            try:
                msg = yield self.sched_sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, wire.Marker):
                self.handle_marker(msg)

    def ckpt_reader(self):
        while True:
            try:
                msg = yield self.ckpt_sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, wire.CkptStoredAck):
                self._note_store_ack(msg.wave)
            # FetchResp is consumed inline by restore(); it only occurs
            # before this reader is spawned.

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def on_mesh_hello(self, sock, hello) -> None:
        self.peers[hello.rank] = sock
        self.proc.spawn_thread(self.peer_reader(sock, hello.rank),
                               name=f"vcl.{self.rank}.peer{hello.rank}")
        self.check_mesh()

    def connect_services(self, cmd):
        if not self.config.fault_tolerant:
            return
        self.sched_sock = yield from self.connect_service(
            shardmap.COORDINATOR_NODE, self.config.scheduler_port)
        yield from self.connect_ckpt_server()

    def restore_state(self, cmd):
        if not self.config.fault_tolerant:
            self.app_state = {}
            self.delivery.rebind(self.app_state)
            return
        # --- restore state (rollback) before joining the mesh ---------
        yield from self.restore(cmd.restore_wave)
        self.proc.spawn_thread(self.ckpt_reader(),
                               name=f"vcl.{self.rank}.ckptr")

    def dial_peer(self, peer_rank: int, addr):
        sock = yield from connect_retry(
            self.proc, addr, self.timing.connect_retry_initial,
            self.timing.connect_retry_max, stop=lambda: self.terminating)
        if sock is None:
            return
        hello = wire.Hello(rank=self.rank, epoch=self.epoch)
        causal.stamp(self.engine, hello, f"r{self.rank}")
        sock.send(hello)
        self.peers[peer_rank] = sock
        self.proc.spawn_thread(self.peer_reader(sock, peer_rank),
                               name=f"vcl.{self.rank}.peer{peer_rank}")
        self.check_mesh()

    def after_mesh(self, cmd):
        # Announce to the scheduler only once the mesh is complete, so a
        # marker wave can never catch this daemon with missing outgoing
        # channels (which would strand the wave).
        if self.config.fault_tolerant:
            shello = wire.SchedHello(rank=self.rank, epoch=self.epoch)
            causal.stamp(self.engine, shello, f"r{self.rank}")
            self.sched_sock.send(shello)
            self.proc.spawn_thread(self.sched_reader(),
                                   name=f"vcl.{self.rank}.sched")
        yield from ()


def vdaemon_main(proc, config, rank: int, epoch: int, incarnation: int,
                 app_factory):
    """Main generator of a Vcl communication daemon process."""
    return daemon_lifecycle(VclDaemon, proc, config, rank, epoch,
                            incarnation, app_factory)
