"""Shared lifecycle of every MPICH-V communication daemon.

All members of the MPICH-V family (Vcl, V2, V1, ...) run the same
daemon skeleton — one process per MPI rank that owns every connection
of the rank and relays application traffic — and differ only in the
fault-tolerance protocol layered on top.  This module captures the
skeleton once:

1. bind the mesh listener (before anything else, so peers never race);
2. exec + library initialisation delay;
3. argument exchange with the dispatcher (``Register``/``RegisterAck``);
4. the paper's instrumentation boundary ``localMPI_setCommand``;
5. wait for the command map (handling early ``Terminate``/``Shutdown``);
6. connect to the protocol's services and restore state (hooks);
7. build the peer mesh (protocol-declared dial targets and handshake);
8. protocol post-mesh work (scheduler hello, replay, checkpoint loop);
9. spawn the MPI application thread and idle until told to stop.

Termination semantics are uniform across protocols: a ``Terminate``
order is acknowledged by socket closure *after* the
``terminate_cleanup`` delay (the daemon tearing its state down), and a
``Shutdown`` exits immediately.  Protocols plug in by subclassing
:class:`MpichDaemon` and registering a
:class:`repro.mpichv.protocols.ProtocolSpec`.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterable, Optional

from repro.analysis.coverage import hit_bucket
from repro.cluster.network import ConnectionRefused
from repro.cluster.unixproc import UnixProcess
from repro.mpi.endpoint import LocalDelivery, MpiEndpoint
from repro.mpi.message import AppMessage
from repro.mpichv import shardmap, wire
from repro.mpichv.checkpoint import CheckpointImage, node_local_store
from repro.obs import causal
from repro.simkernel.store import StoreClosed


def connect_retry(proc: UnixProcess, addr, backoff_initial: float,
                  backoff_max: float, stop: Callable[[], bool] = lambda: False):
    """Connect with exponential backoff; loops while refused.

    This retry loop is load-bearing for the reproduction: daemons that
    keep retrying a peer that will never come back are *how the
    dispatcher bug manifests as a freeze* (§5.3).
    """
    delay = backoff_initial
    while not stop():
        try:
            sock = yield proc.node.connect(addr, owner=proc)
            return sock
        except ConnectionRefused:
            proc.engine.cover("daemon.connect.refused")
            yield proc.engine.timeout(delay)
            delay = min(delay * 2, backoff_max)
    return None


class MpichDaemon:
    """State + threads shared by every communication daemon instance.

    Subclasses set :attr:`protocol` (the registry name, also used for
    thread names and the ``proc.tags`` entry) and :attr:`hello_cls`
    (the wire type their mesh handshake uses; ``None`` when the
    protocol builds no peer mesh), and implement the protocol hooks.
    """

    #: registry name of the protocol this daemon implements
    protocol: str = "?"
    #: mesh handshake message type accepted by the listener (None: no mesh)
    hello_cls: Optional[type] = None

    def __init__(self, proc: UnixProcess, config, rank: int, epoch: int,
                 incarnation: int, app_factory: Callable[[MpiEndpoint], Any]):
        self.proc = proc
        self.engine = proc.engine
        self.config = config
        self.timing = config.timing
        self.rank = rank
        self.epoch = epoch
        self.incarnation = incarnation
        self.app_factory = app_factory
        self.n = config.n_procs

        # app-side plumbing: deliveries land directly in the
        # checkpointable state buffer (see repro.mpi.endpoint.Transport)
        self.app_state: dict = {}
        self.init_state_keys()
        self.delivery = LocalDelivery(self.engine, self.app_state,
                                      name=f"{self.protocol}.inbox.r{rank}")
        self.endpoint: Optional[MpiEndpoint] = None

        # mesh
        self.peers: Dict[int, Any] = {}         # rank -> socket
        self.mesh_ready = self.engine.event(
            name=f"{self.protocol}.mesh.r{rank}")

        # service sockets
        self.disp_sock = None
        self.ckpt_sock = None

        self.terminating = False
        self.finished = False
        self.ckpt_counter = 0
        #: handle of the MPI computation thread (blocking mode freezes it)
        self.app_proc = None
        self.init_protocol()

    # ------------------------------------------------------------------
    # subclass extension points
    # ------------------------------------------------------------------
    def init_state_keys(self) -> None:
        """Seed protocol bookkeeping keys into ``app_state`` (also run
        after a restore, so old images gain any missing keys)."""

    def init_protocol(self) -> None:
        """Initialise protocol-private fields (runs at the end of
        ``__init__``)."""

    def app_send(self, msg: AppMessage) -> None:
        raise NotImplementedError

    def on_mesh_hello(self, sock, hello) -> None:
        """An inbound mesh connection completed its handshake."""
        raise NotImplementedError

    def connect_services(self, cmd: wire.CommandMap):
        """Generator: dial the services this protocol declares."""
        yield from ()

    def restore_state(self, cmd: wire.CommandMap):
        """Generator: load committed state before joining the mesh."""
        yield from ()

    def mesh_dial_targets(self, cmd: wire.CommandMap) -> Iterable[int]:
        """Peer ranks this daemon actively dials (it accepts the rest)."""
        return range(self.rank)

    def dial_peer(self, peer_rank: int, addr):
        """Generator: connect to one peer and perform the handshake."""
        raise NotImplementedError

    def after_mesh(self, cmd: wire.CommandMap):
        """Generator: protocol work once the mesh is complete (announce
        to services, replay history, start checkpoint loops, ...)."""
        yield from ()

    # ------------------------------------------------------------------
    # transport interface used by MpiEndpoint
    # ------------------------------------------------------------------
    def app_inbox_get(self):
        return self.delivery.doorbell()

    def app_done(self) -> None:
        self.finished = True
        if self.disp_sock is not None and not self.disp_sock.closed:
            done = wire.Done(rank=self.rank)
            causal.stamp(self.engine, done, f"r{self.rank}")
            self.disp_sock.send(done)

    def app_thread(self):
        ep = MpiEndpoint(self.rank, self.n, self.app_state, self, self.engine)
        self.endpoint = ep
        yield from self.app_factory(ep)

    # ------------------------------------------------------------------
    # mesh bookkeeping
    # ------------------------------------------------------------------
    @property
    def expected_peers(self) -> int:
        return (self.n - 1) if self.hello_cls is not None else 0

    @property
    def restarted(self) -> bool:
        return self.incarnation > 1

    def check_mesh(self) -> None:
        if len(self.peers) == self.expected_peers \
                and not self.mesh_ready.triggered:
            self.mesh_ready.succeed()

    # ------------------------------------------------------------------
    # service dialing helpers
    # ------------------------------------------------------------------
    def connect_service(self, node_name: str, port: int,
                        stop: Callable[[], bool] = lambda: False):
        """Generator: dial ``node_name:port`` with the standard backoff."""
        addr = self.proc.node.cluster.node(node_name).addr(port)
        sock = yield from connect_retry(
            self.proc, addr, self.timing.connect_retry_initial,
            self.timing.connect_retry_max, stop=stop)
        return sock

    def connect_ckpt_server(self):
        """Generator: dial this rank's checkpoint-server shard.

        The shard is a pure function of ``(rank, n_ckpt_servers)``
        (:func:`repro.mpichv.shardmap.ckpt_shard`), so every
        incarnation of a rank — including a restart fetching the
        committed image — dials the same server that stored it.
        """
        node, port = shardmap.ckpt_server_for_rank(self.config, self.rank)
        self.ckpt_sock = yield from self.connect_service(node, port)
        return self.ckpt_sock

    # ------------------------------------------------------------------
    # uncoordinated checkpointing (V2/V1-style protocols)
    # ------------------------------------------------------------------
    def independent_ckpt_loop(self):
        """Per-rank snapshots on a staggered timer (no marker waves)."""
        period = self.config.ckpt_period
        # stagger ranks across the period to spread server load
        offset = period * (self.rank + 1) / (self.n + 1)
        first = period + offset - (self.engine.now % period)
        yield self.engine.timeout(max(first, 1.0))
        while not self.terminating:
            yield from self._take_checkpoint()
            yield self.engine.timeout(period)

    def _take_checkpoint(self):
        self.ckpt_counter += 1
        wave = self.ckpt_counter
        img = CheckpointImage(
            rank=self.rank, wave=wave,
            state=copy.deepcopy(self.app_state),
            logs=[], img_size=int(self.config.image_size), complete=True)
        span = self.engine.span("transfer", lane=self.proc.node.name,
                                rank=self.rank, wave=wave,
                                bytes=img.img_size)
        # fork-style: local write, then stream to the server
        yield self.engine.timeout(img.img_size / self.timing.local_disk_bw)
        node_local_store(self.proc.node).store(img)
        if self.ckpt_sock is not None and not self.ckpt_sock.closed:
            store_msg = wire.CkptStore(
                rank=self.rank, wave=wave, state=img.state, logs=[],
                img_size=img.img_size)
            causal.stamp(self.engine, store_msg, f"r{self.rank}")
            self.ckpt_sock.send(store_msg)
        span.close()
        self.post_checkpoint(img)
        self.engine.log(f"{self.protocol}_ckpt", rank=self.rank, wave=wave)

    def post_checkpoint(self, img: CheckpointImage) -> None:
        """Hook: garbage-collection notes after an independent snapshot."""

    def restore_latest_own(self):
        """Generator: load the newest local/remote image of this rank.

        Used by the single-rank-restart protocols (V2, V1) where only
        the failed rank reloads — survivors never roll back.
        """
        local = node_local_store(self.proc.node)
        waves = local.waves_for(self.rank)
        img = local.load(self.rank, waves[-1]) if waves else None
        if img is not None and img.complete:
            self.engine.cover("daemon.restore.local")
            yield self.engine.timeout(img.img_size / self.timing.local_disk_bw)
            img = img.snapshot_of()
        else:
            req = wire.FetchReq(rank=self.rank, wave=None)
            causal.stamp(self.engine, req, f"r{self.rank}")
            self.ckpt_sock.send(req)
            resp = yield self.ckpt_sock.recv()
            assert isinstance(resp, wire.FetchResp), resp
            if resp.wave is None:
                self.engine.cover("daemon.restore.fresh")
                return          # nothing stored: fresh start
            self.engine.cover("daemon.restore.remote")
            img = CheckpointImage(rank=self.rank, wave=resp.wave,
                                  state=copy.deepcopy(resp.state),
                                  logs=[], img_size=resp.img_size)
        self.app_state = img.state
        self.init_state_keys()
        self.delivery.rebind(self.app_state)
        self.ckpt_counter = img.wave
        self.engine.log("restore", rank=self.rank, wave=img.wave,
                        replayed=0, protocol=self.protocol)

    # ------------------------------------------------------------------
    # dispatcher connection (uniform across protocols)
    # ------------------------------------------------------------------
    def dispatcher_reader(self):
        while True:
            try:
                msg = yield self.disp_sock.recv()
            except StoreClosed:
                return      # dispatcher gone: experiment is over
            if isinstance(msg, wire.Terminate):
                self.engine.cover("daemon.terminate_order")
                self.terminating = True
                self.proc.spawn_thread(self._terminator(), name="terminator")
            elif isinstance(msg, wire.Shutdown):
                self.engine.cover("daemon.shutdown_order")
                self.proc.exit()
                return

    def _terminator(self):
        """Cleanup then clean exit; the dispatcher reads the resulting
        socket closure as the termination acknowledgement."""
        yield self.engine.timeout(
            self.timing.uniform(self.engine.random,
                                self.timing.terminate_cleanup))
        self.proc.exit()


def daemon_lifecycle(core_cls, proc: UnixProcess, config, rank: int,
                     epoch: int, incarnation: int, app_factory):
    """Generic main generator of one communication daemon process.

    ``core_cls`` is the :class:`MpichDaemon` subclass implementing the
    protocol; everything else is the paper's daemon lifecycle, shared
    verbatim across the family.
    """
    engine = proc.engine
    timing = config.timing
    cluster = proc.node.cluster
    core = core_cls(proc, config, rank, epoch, incarnation, app_factory)
    proc.tags["vcl"] = core        # FAIL_READ inspects app state here
    proc.tags[core.protocol] = core
    name = core.protocol
    if incarnation > 1:
        # a restarted rank: the recovery path itself is coverage
        engine.cover(f"daemon.restarted.x{hit_bucket(incarnation - 1)}")
    if epoch > 0:
        engine.cover("daemon.launched_in_restart_epoch")

    # Bind the mesh listener before anything else so peers never race us.
    listener = proc.node.listen(config.daemon_port_base + rank, owner=proc)

    def accept_loop():
        while True:
            try:
                sock = yield listener.accept()
            except StoreClosed:
                return
            try:
                hello = yield sock.recv()
            except StoreClosed:
                continue
            if core.hello_cls is not None and isinstance(hello, core.hello_cls):
                core.on_mesh_hello(sock, hello)

    proc.spawn_thread(accept_loop(), name=f"{name}.{rank}.accept")

    # exec + library initialisation time
    yield engine.timeout(timing.uniform(engine.random, timing.daemon_startup))

    # --- argument exchange with the dispatcher ----------------------------
    disp_addr = cluster.node(shardmap.DISPATCHER_NODE).addr(config.dispatcher_port)
    core.disp_sock = yield from connect_retry(
        proc, disp_addr, timing.connect_retry_initial, timing.connect_retry_max)
    reg = wire.Register(rank=rank, addr=listener.addr,
                        epoch=epoch, incarnation=incarnation)
    causal.stamp(engine, reg, f"r{rank}")
    core.disp_sock.send(reg)
    try:
        ack = yield core.disp_sock.recv()
    except StoreClosed:
        engine.cover("daemon.register_closed")
        proc.abort()
        return
    assert isinstance(ack, wire.RegisterAck), ack

    # The paper's instrumentation boundary: the dispatcher now counts
    # this daemon as running.
    yield from proc.trace_point("localMPI_setCommand")

    try:
        cmd = yield core.disp_sock.recv()
    except StoreClosed:
        engine.cover("daemon.cmdmap_closed")
        proc.abort()
        return
    if isinstance(cmd, wire.Terminate):
        # Uniform termination semantics: cleanup delay, then the socket
        # closure acknowledges — identical for every protocol.
        engine.cover("daemon.terminate_before_cmdmap")
        core.terminating = True
        yield engine.timeout(
            timing.uniform(engine.random, timing.terminate_cleanup))
        proc.exit()
        return
    if isinstance(cmd, wire.Shutdown):
        engine.cover("daemon.shutdown_before_cmdmap")
        proc.exit()
        return
    assert isinstance(cmd, wire.CommandMap), cmd
    proc.spawn_thread(core.dispatcher_reader(), name=f"{name}.{rank}.disp")

    # --- protocol services + state restore --------------------------------
    yield from core.connect_services(cmd)
    if epoch > 0 or incarnation > 1:
        # a recovering daemon (restart epoch or single-rank respawn):
        # the restore phase spans service dialing through state load
        restore_span = engine.span("restore", lane=proc.node.name,
                                   rank=rank, epoch=epoch,
                                   incarnation=incarnation)
        yield from core.restore_state(cmd)
        restore_span.close()
    else:
        yield from core.restore_state(cmd)

    # --- build the peer mesh ----------------------------------------------
    for peer_rank in core.mesh_dial_targets(cmd):
        proc.spawn_thread(core.dial_peer(peer_rank, cmd.addrs[peer_rank]),
                          name=f"{name}.{rank}.dial{peer_rank}")
    if core.expected_peers:
        yield core.mesh_ready

    # --- protocol post-mesh work ------------------------------------------
    yield from core.after_mesh(cmd)

    # --- run the application ----------------------------------------------
    core.app_proc = proc.spawn_thread(core.app_thread(), name=f"mpi.{rank}")

    # Main thread idles; the process lives until Terminate/Shutdown.
    yield engine.event(name=f"{name}.{rank}.forever")
