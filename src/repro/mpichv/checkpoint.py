"""Checkpoint images and node-local checkpoint storage.

Stands in for BLCR/Condor/libckpt (paper §3): an image captures the
whole MPI process state — for our restartable applications that is the
deep-copied ``state`` dict — plus the Chandy-Lamport channel state
(the logged in-transit messages).

Node-local storage models the local disk the forked clone writes to:
it *survives process death* (it lives on the Node, not the process),
which is what makes same-node restarts fast ("all MPI processes
restart from the local checkpoint stored on the disk if it exists").
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.mpi.message import AppMessage


@dataclass
class CheckpointImage:
    """One rank's checkpoint for one wave."""

    rank: int
    wave: int
    state: Any
    logs: List[AppMessage] = field(default_factory=list)
    img_size: int = 0
    complete: bool = False      # logging finished (all peer markers seen)

    def snapshot_of(self) -> "CheckpointImage":
        """An independent deep copy (what a fork would capture)."""
        return CheckpointImage(
            rank=self.rank,
            wave=self.wave,
            state=copy.deepcopy(self.state),
            logs=list(self.logs),
            img_size=self.img_size,
            complete=self.complete,
        )


class LocalCkptStore:
    """Per-node local checkpoint files, two-slot alternation.

    Mirrors the server-side policy ("two files alternatively"): at most
    the two most recent waves per rank are kept; a restart may only use
    a wave the scheduler committed globally.
    """

    def __init__(self) -> None:
        self._images: Dict[int, Dict[int, CheckpointImage]] = {}

    def store(self, img: CheckpointImage) -> None:
        per_rank = self._images.setdefault(img.rank, {})
        per_rank[img.wave] = img
        # two-slot alternation: drop everything but the newest two
        for wave in sorted(per_rank)[:-2]:
            del per_rank[wave]

    def load(self, rank: int, wave: int) -> Optional[CheckpointImage]:
        return self._images.get(rank, {}).get(wave)

    def waves_for(self, rank: int) -> List[int]:
        return sorted(self._images.get(rank, {}))

    def clear(self) -> None:
        self._images.clear()


def node_local_store(node) -> LocalCkptStore:
    """The node's local checkpoint store, created on first use."""
    store = getattr(node, "_ckpt_store", None)
    if store is None:
        store = LocalCkptStore()
        node._ckpt_store = store
    return store
