"""The stable event logger of the V2 protocol.

Pessimistic message logging needs every *delivery event* — "rank r's
n-th delivery was message (src, src_seq)" — on stable storage before
the delivery happens, so a restarted process can replay its exact
reception order.  This service is that stable storage (MPICH-V2 keeps
it on the dispatcher's reliable node; we give it its own service
process on ``svc1``, the slot the Vcl scheduler occupies).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.unixproc import UnixProcess
from repro.mpichv import wire
from repro.obs import causal
from repro.simkernel.store import StoreClosed


class EventLogState:
    """Per-rank ordered delivery histories (introspectable)."""

    def __init__(self) -> None:
        #: rank -> list of (pos, src, src_seq); pos strictly increasing
        self.events: Dict[int, List[Tuple[int, int, int]]] = {}
        self.logged = 0
        self.pruned = 0

    def append(self, rank: int, pos: int, src: int, src_seq: int) -> None:
        history = self.events.setdefault(rank, [])
        # idempotent: a retransmitted log request must not duplicate
        if history and history[-1][0] >= pos:
            return
        history.append((pos, src, src_seq))
        self.logged += 1

    def fetch_after(self, rank: int, after: int) -> List[Tuple[int, int]]:
        return [(src, src_seq)
                for pos, src, src_seq in self.events.get(rank, [])
                if pos > after]

    def prune(self, rank: int, upto: int) -> None:
        history = self.events.get(rank)
        if history:
            kept = [e for e in history if e[0] > upto]
            self.pruned += len(history) - len(kept)
            self.events[rank] = kept


def eventlog_main(proc: UnixProcess, config):
    """Main generator of the event-logger service process."""
    engine = proc.engine
    state = EventLogState()
    proc.tags["evlog_state"] = state
    listener = proc.node.listen(config.eventlog_port, owner=proc)

    def handle_conn(sock):
        while True:
            try:
                msg = yield sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, wire.EvLog):
                state.append(msg.rank, msg.pos, msg.src, msg.src_seq)
                if not sock.closed and sock.peer_alive:
                    ack = wire.EvLogAck(rank=msg.rank, pos=msg.pos)
                    causal.derive(engine, ack, "evlog", msg)
                    sock.send(ack)
            elif isinstance(msg, wire.EvFetch):
                events = state.fetch_after(msg.rank, msg.after)
                if not sock.closed and sock.peer_alive:
                    resp = wire.EvFetchResp(
                        rank=msg.rank, events=events,
                        size=max(256, 32 * len(events)))
                    causal.derive(engine, resp, "evlog", msg)
                    sock.send(resp)
            elif isinstance(msg, wire.EvPrune):
                state.prune(msg.rank, msg.upto)
            elif isinstance(msg, wire.Shutdown):
                engine.call_later(0.0, proc.kill)
                return

    while True:
        try:
            sock = yield listener.accept()
        except StoreClosed:
            return
        proc.spawn_thread(handle_conn(sock), name=f"evlog.conn{sock.conn_id}")
