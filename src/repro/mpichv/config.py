"""Configuration and timing model for the MPICH-V stack.

All durations are in simulated seconds and calibrated so that absolute
magnitudes land in the paper's ballpark (BT-49 class B ≈ 190 s without
faults; checkpoint wave every 30 s taking a few seconds to drain to
the checkpoint servers; recovery in the low seconds).  EXPERIMENTS.md
records the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.netmodel import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, TopologySpec
from repro.netmodel import validate_model as _validate_fabric_model

MB = 1e6
GB = 1e9


@dataclass
class TimingModel:
    """Every latency/bandwidth knob of the simulated testbed.

    The stochastic entries are (lo, hi) uniform ranges sampled from the
    engine RNG, so runs remain reproducible per seed.
    """

    # network fabric (GigE-like); the defaults are the single source of
    # truth in repro.netmodel.spec, shared with repro.cluster.network
    net_latency: float = DEFAULT_LATENCY
    net_bandwidth: float = DEFAULT_BANDWIDTH

    # process management
    ssh_latency: float = 0.05
    #: daemon exec + library init before it contacts the dispatcher
    daemon_startup: Tuple[float, float] = (0.02, 0.12)
    #: cleanup time between receiving Terminate and exiting
    terminate_cleanup: Tuple[float, float] = (0.3, 1.5)

    # checkpointing
    local_disk_bw: float = 40 * MB      # clone writes local image
    server_disk_bw: float = 60 * MB     # server ingest (serialized per server)
    ckpt_fork_pause: float = 0.02       # brief stop while fork-cloning

    # failure injection (FAIL-side, see repro.fail)
    fail_bus_latency: float = 2e-4
    #: FCI daemon handling of an injection order (includes GDB verb cost)
    fail_order_handling: Tuple[float, float] = (0.004, 0.04)
    #: FCI daemon handling of a local event (onload/onexit/breakpoint)
    fail_event_handling: Tuple[float, float] = (0.001, 0.01)

    # mesh connection retry backoff (daemons waiting for peers)
    connect_retry_initial: float = 0.05
    connect_retry_max: float = 5.0

    def uniform(self, rng, rng_range: Tuple[float, float]) -> float:
        lo, hi = rng_range
        return rng.uniform(lo, hi)


@dataclass
class VclConfig:
    """Deployment + protocol parameters for one run."""

    #: number of MPI processes (BT needs a perfect square)
    n_procs: int = 4
    #: machines devoted to computation (>= n_procs; spares included).
    #: The paper uses 53 machines for BT-49.
    n_machines: Optional[int] = None
    #: seconds between checkpoint waves (paper: 30 s)
    ckpt_period: float = 30.0
    #: number of checkpoint-server shards; ranks are assigned by the
    #: deterministic shard map (:mod:`repro.mpichv.shardmap`,
    #: ``rank % k``) so checkpoint ingest spreads over k servers.
    #: ``k = 1`` is the classic single-server deployment;
    #: ``k > n_procs`` leaves the surplus servers idle.
    n_ckpt_servers: int = 2
    #: total application memory footprint in bytes (class B model);
    #: per-process image size = footprint / n_procs.
    footprint: float = 1.6 * GB
    #: reproduce the paper's dispatcher bug (True) or the fix (False)
    bug_compat: bool = True
    #: blocking Chandy-Lamport variant (paper §3: "The blocking
    #: implementation uses markers to flush the communication channels
    #: and freezes the communications during a checkpoint wave").
    #: False = the paper's non-blocking Vcl.
    blocking: bool = False
    #: experiment timeout (paper: 1500 s)
    timeout: float = 1500.0
    #: enable checkpoint/rollback at all (False = Vdummy baseline)
    fault_tolerant: bool = True
    #: fault-tolerance protocol, looked up in the registry of
    #: :mod:`repro.mpichv.protocols`.  Built-ins: "vcl" (coordinated
    #: Chandy-Lamport, the paper's subject), "v2" (pessimistic
    #: sender-based message logging, cf. MPICH-V2 [BCH+03]), "v1"
    #: (remote pessimistic logging in Channel Memories, MPICH-V1).
    protocol: str = "vcl"
    #: number of Channel Memory services (v1 protocol only); a rank's
    #: home CM is ``rank % n_channel_memories``
    n_channel_memories: int = 2
    #: v1 only: replay the Channel Memory log to a re-attaching rank.
    #: Disabling this *breaks the protocol on purpose* — it is the
    #: reference "planted bug" the exploration oracles must catch
    #: (``repro.explore``); never disable it for real experiments.
    cm_replay: bool = True
    #: network fabric shape (see :mod:`repro.netmodel`); accepts a
    #: :class:`TopologySpec`, a bare model name ("uniform", "star",
    #: "twotier") or a knob dict — coerced in ``__post_init__``.  The
    #: runtime builds the cluster's fabric from this.
    topology: object = field(default_factory=TopologySpec)
    timing: TimingModel = field(default_factory=TimingModel)

    # service ports
    dispatcher_port: int = 7000
    scheduler_port: int = 7001
    ckpt_server_port_base: int = 7100
    eventlog_port: int = 7002
    channel_memory_port_base: int = 7200
    daemon_port_base: int = 6000

    def __post_init__(self) -> None:
        if self.n_machines is None:
            # default: a handful of spares, like the paper's 53-for-49
            self.n_machines = self.n_procs + 4
        if self.n_machines < self.n_procs:
            raise ValueError("need at least n_procs machines")
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if self.n_ckpt_servers < 1:
            raise ValueError("need at least one checkpoint server")
        if self.ckpt_period <= 0:
            raise ValueError("ckpt_period must be positive")
        self.topology = TopologySpec.coerce(self.topology)
        _validate_fabric_model(self.topology.model)   # unknown model raises
        # Registry-driven: unknown protocols and protocol/config
        # conflicts (e.g. ``blocking`` with a non-vcl protocol) raise
        # from the protocol's own validate hook.
        from repro.mpichv.protocols import validate_config
        validate_config(self)

    @property
    def image_size(self) -> float:
        """Per-process checkpoint image size in bytes."""
        return self.footprint / self.n_procs

    @property
    def n_service_nodes(self) -> int:
        """dispatcher + svc1 + checkpoint servers + protocol extras"""
        from repro.mpichv.protocols import extra_service_nodes
        return 2 + self.n_ckpt_servers + extra_service_nodes(self)
