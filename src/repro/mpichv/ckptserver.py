"""The checkpoint server (paper §3, "Checkpoint server and checkpoint
mechanism").

Each server owns a disk whose bandwidth serializes image ingestion —
the reason a checkpoint wave takes several seconds and the lever behind
the Fig. 6 discussion (bigger per-process images at small scale).  A
deployment runs one server per *shard* (``n_ckpt_servers``); ranks are
assigned to servers by the deterministic shard map in
:mod:`repro.mpichv.shardmap`, so at scale the ingest load spreads over
k disks instead of funnelling through one.  Storage follows the
two-file alternation policy: at most the newest two waves per rank are
kept, and a wave becomes restorable only when the scheduler commits it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.unixproc import UnixProcess
from repro.mpichv.checkpoint import CheckpointImage
from repro.mpichv import wire
from repro.obs import causal
from repro.simkernel.store import Store, StoreClosed


class CkptServerState:
    """Shared state of one checkpoint server process."""

    def __init__(self) -> None:
        #: wave -> rank -> CheckpointImage
        self.images: Dict[int, Dict[int, CheckpointImage]] = {}
        self.committed_wave: Optional[int] = None
        #: log batches that arrived before their image (the message
        #: connection can outrun the pipelined data connection)
        self._early_logs: Dict[tuple, list] = {}
        #: shard load accounting: bytes written through this server's
        #: disk (images + logs), surfaced via
        #: ``RunResult.ckpt_shard_bytes`` — the Fig. 6 ingest hot
        #: spot, and how sharding dissolves it
        self.bytes_ingested: int = 0

    def store_image(self, img: CheckpointImage) -> None:
        early = self._early_logs.pop((img.wave, img.rank), None)
        if early is not None:
            img.logs.extend(early)
            img.complete = True
        self.images.setdefault(img.wave, {})[img.rank] = img
        # two-file alternation per rank: keep the newest two waves only
        waves = sorted(self.images)
        for wave in waves[:-2]:
            del self.images[wave]

    def append_logs(self, rank: int, wave: int, logs) -> None:
        img = self.images.get(wave, {}).get(rank)
        if img is not None:
            img.logs.extend(logs)
            img.complete = True
        else:
            self._early_logs.setdefault((wave, rank), []).extend(logs)

    def commit(self, wave: int) -> None:
        self.committed_wave = wave

    def lookup(self, rank: int, wave: Optional[int]) -> Optional[CheckpointImage]:
        if wave is None:
            wave = self.committed_wave
        if wave is None:
            return None
        return self.images.get(wave, {}).get(rank)


def ckpt_server_main(proc: UnixProcess, config, server_index: int):
    """Main generator of a checkpoint server process."""
    engine = proc.engine
    timing = config.timing
    state = CkptServerState()
    proc.tags["ckpt_state"] = state
    listener = proc.node.listen(config.ckpt_server_port_base + server_index, owner=proc)

    #: FIFO disk queue: (kind, nbytes, t_enqueued, fn) — fn runs when
    #: the disk I/O ends; kind/t_enqueued feed the store spans and the
    #: queue-wait histogram
    disk_q: Store = Store(engine, name=f"ckptsrv{server_index}.disk")

    def disk_writer():
        while True:
            try:
                kind, nbytes, t_enq, fn = yield disk_q.get()
            except StoreClosed:
                return
            obs = engine.obs
            if obs is not None:
                # the disk serializes, so store spans on this lane are
                # disjoint; the queue wait is what the Fig. 6 ingest
                # bottleneck looks like from a daemon's point of view
                obs.metrics.observe(
                    f"ckptsrv.{server_index}.disk.wait_ms",
                    (engine.now - t_enq) * 1000.0)
            span = engine.span("store", lane=proc.node.name,
                               op=kind, bytes=nbytes,
                               server=server_index)
            if nbytes > 0:
                yield engine.timeout(nbytes / timing.server_disk_bw)
            fn()
            span.close()

    proc.spawn_thread(disk_writer(), name=f"ckptsrv{server_index}.disk")

    def handle_conn(sock):
        while True:
            try:
                msg = yield sock.recv()
            except StoreClosed:
                return
            if isinstance(msg, wire.CkptStore):
                img = CheckpointImage(rank=msg.rank, wave=msg.wave,
                                      state=msg.state, logs=list(msg.logs),
                                      img_size=msg.img_size)

                def _stored(img=img, sock=sock, cause=msg):
                    state.store_image(img)
                    state.bytes_ingested += img.img_size
                    engine.log("ckpt_stored", rank=img.rank, wave=img.wave,
                               server=server_index)
                    if not sock.closed and sock.peer_alive:
                        ack = wire.CkptStoredAck(rank=img.rank, wave=img.wave)
                        causal.derive(engine, ack, f"ckpt{server_index}",
                                      cause)
                        sock.send(ack)

                disk_q.put(("image", msg.img_size, engine.now, _stored))
            elif isinstance(msg, wire.CkptLogAppend):

                def _logged(msg=msg, sock=sock):
                    state.append_logs(msg.rank, msg.wave, msg.logs)
                    state.bytes_ingested += msg.size
                    if not sock.closed and sock.peer_alive:
                        ack = wire.CkptStoredAck(rank=msg.rank, wave=msg.wave)
                        causal.derive(engine, ack, f"ckpt{server_index}", msg)
                        sock.send(ack)

                disk_q.put(("logs", msg.size, engine.now, _logged))
            elif isinstance(msg, wire.FetchReq):

                def _read(msg=msg, sock=sock):
                    img = state.lookup(msg.rank, msg.wave)
                    if img is None:
                        resp = wire.FetchResp(rank=msg.rank, wave=None, state=None)
                    else:
                        snap = img.snapshot_of()
                        resp = wire.FetchResp(rank=msg.rank, wave=snap.wave,
                                              state=snap.state, logs=snap.logs,
                                              img_size=snap.img_size)
                    causal.derive(engine, resp, f"ckpt{server_index}", msg)
                    if not sock.closed and sock.peer_alive:
                        sock.send(resp)

                img = state.lookup(msg.rank, msg.wave)
                read_bytes = img.img_size if img is not None else 0
                disk_q.put(("fetch", read_bytes, engine.now, _read))
            elif isinstance(msg, wire.WaveCommit):
                state.commit(msg.wave)
            elif isinstance(msg, wire.Shutdown):
                # End of experiment: take the whole server process down
                # (asynchronously — we are one of its threads).
                engine.call_later(0.0, proc.kill)
                return

    # accept loop
    while True:
        try:
            sock = yield listener.accept()
        except StoreClosed:
            return
        proc.spawn_thread(handle_conn(sock),
                          name=f"ckptsrv{server_index}.conn{sock.conn_id}")
