"""Top-level wiring: build a cluster, deploy MPICH-V, run an app.

A :class:`VclRuntime` owns one complete deployment (Fig. 2b of the
paper, generalized to sharded services): compute machines
``m0..m{M-1}`` plus the service nodes laid out by
:mod:`repro.mpichv.shardmap` — the dispatcher, the protocol's
coordinator (scheduler / event logger), ``n_ckpt_servers``
checkpoint-server shards, and any protocol extras (channel
memories).  The runtime is also what the FAIL-MPI platform attaches
to (it injects faults into the ``vdaemon.*`` processes spawned on the
compute machines).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.classify import Outcome, RunVerdict, classify_run
from repro.analysis.coverage import run_signature
from repro.analysis.traces import Trace
from repro.cluster.cluster import Cluster
from repro.mpichv import protocols, shardmap
from repro.mpichv.config import VclConfig
from repro.mpichv.dispatcher import dispatcher_main
from repro.obs import Obs
from repro.simkernel.engine import Engine, gc_paused


@dataclass
class RunResult:
    """Everything an experiment needs from a single run."""

    verdict: RunVerdict
    trace: Trace
    sim_time: float
    restarts: int
    bug_events: int
    failures_detected: int
    waves_committed: int
    events_processed: int
    #: workload verification checksum (the ``verify_ok`` record), or
    #: None when the run never verified — the exploration oracles
    #: compare it bit-for-bit against a fault-free golden run
    app_signature: Optional[int] = None
    #: violations reported by the protocol's invariant hook
    #: (:func:`repro.mpichv.protocols.check_invariants`)
    invariant_violations: List[str] = field(default_factory=list)
    #: fabric traffic accounting (see :mod:`repro.netmodel`): totals
    #: plus the busiest link and its byte count (the hot spot)
    net_bytes: int = 0
    net_messages: int = 0
    net_hotspot: Optional[str] = None
    net_hotspot_bytes: int = 0
    #: per-shard checkpoint-server ingest (bytes written through each
    #: server's disk, indexed by shard) — how evenly the shard map
    #: spreads the Fig. 6 ingest bottleneck over ``n_ckpt_servers``
    ckpt_shard_bytes: List[int] = field(default_factory=list)
    #: hex wire form of the run's coverage signature (see
    #: :mod:`repro.analysis.coverage`): dispatcher/daemon probe labels
    #: plus hit-bucketed trace counters, folded into a fixed-width
    #: bitmap.  Empty string on legacy results.
    coverage: str = ""
    #: engine-partition count the trial executed with (1 = reference
    #: single-engine mode).  Never part of the trial cache key: the
    #: simulated history is bit-identical at every value (guarded by
    #: ``tests/test_engine_workers_golden.py``), so this is execution
    #: metadata, like ``wall_seconds``.
    engine_workers: int = 1
    #: cross-partition synchronization accounting when
    #: ``engine_workers > 1`` (windows, channels, payload vs null
    #: messages, lookahead — see ``Network.partition_stats``), else None
    parallel: Optional[Dict[str, Any]] = None
    #: host wall-clock seconds spent inside the engine run (execution
    #: metadata — varies by machine and mode, not by simulation; live
    #: results only, never serialized to the result cache: a result
    #: loaded from the store or a pool worker reads 0.0)
    wall_seconds: float = 0.0
    #: the compact observability document (see :mod:`repro.obs`):
    #: span rows, the metrics registry and the ``exec`` execution-
    #: metadata section.  ``None`` when the trial ran with
    #: ``observe=False``.  Everything outside ``exec`` is a pure
    #: function of the simulated history — serialized, cached, and
    #: byte-compared across serial/pooled/cached execution.
    obs: Optional[Dict[str, Any]] = None

    @property
    def ckpt_shard_imbalance(self) -> float:
        """max/mean ingest ratio across shards (1.0 = perfectly even;
        0.0 when nothing was ingested)."""
        per_shard = self.ckpt_shard_bytes
        if not per_shard or not sum(per_shard):
            return 0.0
        return max(per_shard) / (sum(per_shard) / len(per_shard))

    @property
    def outcome(self) -> Outcome:
        return self.verdict.outcome

    @property
    def exec_time(self) -> Optional[float]:
        return self.verdict.exec_time


class VclRuntime:
    """One deployment of the MPICH-V(cl) environment."""

    def __init__(self, config: VclConfig,
                 app_factory: Callable,
                 seed: int = 0,
                 keep_trace: bool = True,
                 engine_workers: int = 1,
                 observe: bool = True):
        if engine_workers < 1:
            raise ValueError(f"engine_workers must be >= 1, "
                             f"got {engine_workers}")
        self.config = config
        self.trace = Trace(keep=keep_trace)
        self.engine = Engine(seed=seed, trace=self.trace)
        #: recovery-phase spans + metrics (see :mod:`repro.obs`); with
        #: ``observe=False`` every instrumented call site short-circuits
        #: to a shared null span and the result carries ``obs=None``
        self.obs: Optional[Obs] = Obs(self.engine) if observe else None
        if self.obs is not None:
            self.engine.obs = self.obs
            self.trace.subscribe(self.obs.on_trace)
        self.cluster = Cluster(
            self.engine, config.n_machines,
            latency=config.timing.net_latency,
            bandwidth=config.timing.net_bandwidth,
            name_prefix="m",
            topology=config.topology,
        )
        for i in range(config.n_service_nodes):
            self.cluster.add_node(f"svc{i}")
        self.machines: List[str] = [f"m{i}" for i in range(config.n_machines)]
        self.app_factory = app_factory
        self._deployed = False
        self.dispatcher_proc = None
        #: service-process name -> UnixProcess (protocol service plan)
        self.service_procs: Dict[str, Any] = {}
        #: engine partitioning (see docs/parallel-engine.md): >1 runs
        #: the trial in horizon windows over the shardmap/fabric
        #: partition map with full cross-partition accounting.  The
        #: simulated history is identical at every value.
        self.engine_workers = engine_workers
        self.partition_plan: Optional[List[List[str]]] = None
        if engine_workers > 1:
            network = self.cluster.network
            plan = shardmap.partition_hosts(config, engine_workers,
                                            fabric=network.fabric)
            network.set_partition_plan(
                plan, network.fabric.min_lookahead(plan))
            self.partition_plan = plan

    # -- deployment -----------------------------------------------------------
    def deploy(self) -> None:
        """Spawn the service processes (idempotent).

        Which services run — checkpoint servers, a scheduler, an event
        logger, channel memories — is the protocol's *service plan*,
        declared by its :class:`repro.mpichv.protocols.ProtocolSpec`.
        """
        if self._deployed:
            return
        self._deployed = True
        cfg = self.config
        if cfg.fault_tolerant:
            spec = protocols.get_spec(cfg.protocol)
            for svc in spec.service_plan(cfg):
                proc = self.cluster.node(svc.node).spawn(
                    svc.name, svc.main, notify=False)
                self.service_procs[svc.name] = proc
        self.dispatcher_proc = self.cluster.node(shardmap.DISPATCHER_NODE).spawn(
            "dispatcher",
            lambda p: dispatcher_main(p, cfg, self.app_factory, self.machines),
            notify=False)

    # -- service-process views (by conventional plan names) -------------------
    @property
    def scheduler_proc(self):
        return self.service_procs.get("scheduler")

    @property
    def eventlog_proc(self):
        return self.service_procs.get("eventlog")

    @property
    def server_procs(self) -> List[Any]:
        return [proc for name, proc in self.service_procs.items()
                if name.startswith("ckptserver.")]

    @property
    def cm_procs(self) -> List[Any]:
        return [proc for name, proc in self.service_procs.items()
                if name.startswith("channelmemory.")]

    @property
    def dispatcher_state(self):
        return self.dispatcher_proc.tags.get("disp_state") if self.dispatcher_proc else None

    @property
    def scheduler_state(self):
        return self.scheduler_proc.tags.get("sched_state") if self.scheduler_proc else None

    # -- execution --------------------------------------------------------------
    def run(self, timeout: Optional[float] = None) -> RunResult:
        """Deploy (if needed) and run until completion or ``timeout``.

        As in the paper, a run that has not finalized by the timeout is
        killed and classified from its trace.
        """
        timeout = timeout if timeout is not None else self.config.timeout
        self.deploy()

        # Stop the engine the moment the application finalizes so the
        # measured execution time is the app_done instant, not whatever
        # cleanup runs afterwards.
        def _stop_on_done(rec):
            if rec.kind == "app_done":
                self.engine.stop()

        self.trace.subscribe(_stop_on_done)
        # Capture the workload's verification checksum live: counters
        # survive keep_trace=False, record fields do not.
        signature: List[Any] = []

        def _capture(rec):
            if rec.kind == "verify_ok":
                signature.append(rec.fields.get("checksum"))

        self.trace.subscribe(_capture)
        # Large deployments are GC-bound, not CPU-bound: pause the
        # cyclic collector for the simulation (see
        # :func:`repro.simkernel.engine.gc_paused` for the policy).
        # Reclamation of the dead deployment happens via
        # :meth:`dispose` (cycle breaking), not a blanket collect.
        wall_start = time.perf_counter()
        try:
            with gc_paused():
                if self.engine_workers > 1:
                    self._run_windowed(timeout)
                else:
                    self.engine.run(until=timeout)
        finally:
            # Remove exactly the wiring this call added — other
            # subscribers (a caller's observer, FAIL trigger plumbing)
            # are not ours to drop; dispose() clears those.
            self.trace.unsubscribe(_stop_on_done)
            self.trace.unsubscribe(_capture)
        wall_seconds = time.perf_counter() - wall_start

        # Coverage signature: probe labels hit during the run (branch
        # points in the dispatcher / daemon lifecycle) plus
        # hit-bucketed trace-kind counters — the greybox search signal
        # of :mod:`repro.explore`.  Computed here so pooled and
        # cache-loaded results carry it identically to live ones.
        coverage = run_signature(self.engine.coverage,
                                 self.trace.counts).hex
        disp = self.dispatcher_state
        sched = self.scheduler_state
        network = self.cluster.network
        hotspot_link, hotspot_bytes = network.hotspot()
        # per-shard ingest accounting (service state outlives the procs)
        shard_bytes = []
        server_items = sorted(
            ((name, proc) for name, proc in self.service_procs.items()
             if name.startswith("ckptserver.")),
            key=lambda item: int(item[0].split(".")[-1]))
        for _name, proc in server_items:
            ckpt_state = proc.tags.get("ckpt_state")
            shard_bytes.append(int(ckpt_state.bytes_ingested)
                               if ckpt_state is not None else 0)
        obs_doc = self._finalize_obs(disp, sched, network, shard_bytes)
        verdict = classify_run(self.trace, timeout, obs=obs_doc)
        return RunResult(
            verdict=verdict,
            trace=self.trace,
            sim_time=self.engine.now,
            restarts=disp.restarts if disp else 0,
            bug_events=disp.bug_events if disp else 0,
            failures_detected=disp.failures_detected if disp else 0,
            waves_committed=sched.waves_committed if sched else 0,
            events_processed=self.engine.events_processed,
            app_signature=signature[0] if signature else None,
            invariant_violations=protocols.check_invariants(self),
            net_bytes=network.bytes_sent,
            net_messages=network.messages_sent,
            net_hotspot=hotspot_link,
            net_hotspot_bytes=hotspot_bytes,
            ckpt_shard_bytes=shard_bytes,
            coverage=coverage,
            engine_workers=self.engine_workers,
            parallel=(network.partition_stats()
                      if self.engine_workers > 1 else None),
            wall_seconds=wall_seconds,
            obs=obs_doc,
        )

    def _finalize_obs(self, disp, sched, network,
                      shard_bytes: List[int]) -> Optional[Dict[str, Any]]:
        """Fold end-of-run state into the recorder and freeze the doc.

        Simulation-determined quantities (dispatcher / scheduler /
        channel-memory counters, fabric traffic, per-shard checkpoint
        ingest) go into :attr:`Obs.metrics` and ship with the result;
        execution metadata (front-lane hits, slot dispatch totals, the
        null-message accounting of windowed runs) goes into the
        ``exec`` section, which deterministic exporters never read.
        """
        obs = self.obs
        if obs is None:
            return None
        m = obs.metrics
        if disp is not None:
            m.gauge("disp.restarts", disp.restarts)
            m.gauge("disp.failures_detected", disp.failures_detected)
            m.gauge("disp.bug_events", disp.bug_events)
        if sched is not None:
            m.gauge("sched.waves_committed", sched.waves_committed)
        m.gauge("net.bytes", network.bytes_sent)
        m.gauge("net.messages", network.messages_sent)
        for shard, nbytes in enumerate(shard_bytes):
            m.gauge(f"ckptsrv.{shard}.bytes_ingested", nbytes)
        cm_items = sorted(
            (name, proc) for name, proc in self.service_procs.items()
            if name.startswith("channelmemory."))
        for name, proc in cm_items:
            cm = proc.tags.get("cm_state")
            if cm is None:
                continue
            prefix = f"cm.{name.split('.')[-1]}"
            m.gauge(f"{prefix}.logged", cm.logged)
            m.gauge(f"{prefix}.duplicates", cm.duplicates)
            m.gauge(f"{prefix}.forwarded", cm.forwarded)
            m.gauge(f"{prefix}.pruned", cm.pruned)
        x = obs.exec_metrics
        x.gauge("engine.events_processed", self.engine.events_processed)
        x.gauge("engine.front_lane_hits", self.engine.front_lane_hits)
        x.gauge("engine.slots_drained", self.engine.slots_drained)
        if self.engine.slots_drained:
            # mean events dispatched per slot visit — the slot-table
            # occupancy, i.e. how much batching the slotted heap buys
            x.gauge("engine.slot_occupancy",
                    round(self.engine.events_processed
                          / self.engine.slots_drained, 6))
        x.gauge("engine.workers", self.engine_workers)
        if self.engine_workers > 1:
            stats = network.partition_stats()
            for key in ("windows", "channels", "cross_messages",
                        "payload_windows", "null_messages"):
                x.gauge(f"parallel.{key}", stats[key])
            grants = stats["windows"] * stats["channels"]
            if grants:
                x.gauge("parallel.null_ratio",
                        round(stats["null_messages"] / grants, 6))
        obs.finalize(self.engine.now)
        return obs.to_doc()

    def _run_windowed(self, timeout: float) -> None:
        """Engine-workers execution: horizon windows over the
        partition map.

        Each window grants the safe horizon ``next event +
        min cross-partition lookahead`` — exactly what a conservative
        coordinator could grant every partition at once
        (:func:`repro.simkernel.parallel.safe_horizons` with the
        fabric's uniform bound) — and runs the engine strictly below
        it.  The network meanwhile classifies traffic against the
        partition map, enforces the lookahead on every cross-partition
        delivery, and marks payload windows for the null-message
        accounting.  Because the deployment shares one object graph
        (paired sockets, shared listeners, FAIL injection into live
        processes), the partitions execute in one address space in
        global ``(time, priority, insertion)`` order — which is why
        this mode is bit-identical to the reference by construction;
        the multicore scaling of the same window protocol is delivered
        (and benchmarked) by :mod:`repro.simkernel.parallel`, whose
        process backend runs disjoint engines.  End-of-run semantics
        mirror ``run(until=timeout)``: events at exactly ``timeout``
        run, the clock then lands on ``timeout`` unless stopped early.
        """
        eng = self.engine
        network = self.cluster.network
        lookahead = network._group_lookahead
        cap = math.nextafter(timeout, math.inf)
        while True:
            nxt = eng.peek()
            if nxt >= cap:
                break
            horizon = nxt + lookahead
            if horizon <= nxt:      # lookahead lost to float absorption
                horizon = math.nextafter(nxt, math.inf)
            network.begin_window()
            eng.run_horizon(min(horizon, cap))
            if eng._stopped:
                return
        if eng.now < timeout:
            eng.now = timeout

    # -- teardown ---------------------------------------------------------------
    def dispose(self) -> None:
        """Break the finished deployment's reference cycles.

        A 512-rank deployment is hundreds of thousands of
        process ↔ generator-frame, socket ↔ socket and daemon ↔ process
        cycles; handing that to ``gc.collect`` costs ~10 s of scanning.
        Severing the cycle edges explicitly lets plain reference
        counting reclaim the graph at C speed instead.  After this the
        runtime is unusable — only the already-built
        :class:`RunResult` (whose trace was unpinned by :meth:`run`)
        remains meaningful.  Throughput paths
        (:meth:`repro.experiments.harness.TrialSetup.run_one`, i.e.
        every runner/campaign trial) call this; interactive users and
        tests that inspect runtime state afterwards simply don't.
        """
        self.engine.dispose()
        # Any remaining live wiring (FAIL trigger plumbing, caller
        # observers) would pin the dead graph through the result's
        # trace — the runtime is over, so drop it wholesale here.
        self.trace.clear_listeners()
        self.cluster.network.dispose()
        for node in self.cluster.nodes:
            node.dispose()
        self.service_procs.clear()
        self.dispatcher_proc = None
        self.obs = None
