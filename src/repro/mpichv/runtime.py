"""Top-level wiring: build a cluster, deploy MPICH-V, run an app.

A :class:`VclRuntime` owns one complete deployment (Fig. 2b of the
paper): compute machines ``m0..m{M-1}``, the dispatcher on ``svc0``,
the checkpoint scheduler on ``svc1`` and the checkpoint servers on
``svc2..``.  The runtime is also what the FAIL-MPI platform attaches
to (it injects faults into the ``vdaemon.*`` processes spawned on the
compute machines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.classify import Outcome, RunVerdict, classify_run
from repro.analysis.traces import Trace
from repro.cluster.cluster import Cluster
from repro.mpichv import protocols
from repro.mpichv.config import VclConfig
from repro.mpichv.dispatcher import dispatcher_main
from repro.simkernel.engine import Engine


@dataclass
class RunResult:
    """Everything an experiment needs from a single run."""

    verdict: RunVerdict
    trace: Trace
    sim_time: float
    restarts: int
    bug_events: int
    failures_detected: int
    waves_committed: int
    events_processed: int
    #: workload verification checksum (the ``verify_ok`` record), or
    #: None when the run never verified — the exploration oracles
    #: compare it bit-for-bit against a fault-free golden run
    app_signature: Optional[int] = None
    #: violations reported by the protocol's invariant hook
    #: (:func:`repro.mpichv.protocols.check_invariants`)
    invariant_violations: List[str] = field(default_factory=list)
    #: fabric traffic accounting (see :mod:`repro.netmodel`): totals
    #: plus the busiest link and its byte count (the hot spot)
    net_bytes: int = 0
    net_messages: int = 0
    net_hotspot: Optional[str] = None
    net_hotspot_bytes: int = 0

    @property
    def outcome(self) -> Outcome:
        return self.verdict.outcome

    @property
    def exec_time(self) -> Optional[float]:
        return self.verdict.exec_time


class VclRuntime:
    """One deployment of the MPICH-V(cl) environment."""

    def __init__(self, config: VclConfig,
                 app_factory: Callable,
                 seed: int = 0,
                 keep_trace: bool = True):
        self.config = config
        self.trace = Trace(keep=keep_trace)
        self.engine = Engine(seed=seed, trace=self.trace)
        self.cluster = Cluster(
            self.engine, config.n_machines,
            latency=config.timing.net_latency,
            bandwidth=config.timing.net_bandwidth,
            name_prefix="m",
            topology=config.topology,
        )
        for i in range(config.n_service_nodes):
            self.cluster.add_node(f"svc{i}")
        self.machines: List[str] = [f"m{i}" for i in range(config.n_machines)]
        self.app_factory = app_factory
        self._deployed = False
        self.dispatcher_proc = None
        #: service-process name -> UnixProcess (protocol service plan)
        self.service_procs: Dict[str, Any] = {}

    # -- deployment -----------------------------------------------------------
    def deploy(self) -> None:
        """Spawn the service processes (idempotent).

        Which services run — checkpoint servers, a scheduler, an event
        logger, channel memories — is the protocol's *service plan*,
        declared by its :class:`repro.mpichv.protocols.ProtocolSpec`.
        """
        if self._deployed:
            return
        self._deployed = True
        cfg = self.config
        if cfg.fault_tolerant:
            spec = protocols.get_spec(cfg.protocol)
            for svc in spec.service_plan(cfg):
                proc = self.cluster.node(svc.node).spawn(
                    svc.name, svc.main, notify=False)
                self.service_procs[svc.name] = proc
        self.dispatcher_proc = self.cluster.node("svc0").spawn(
            "dispatcher",
            lambda p: dispatcher_main(p, cfg, self.app_factory, self.machines),
            notify=False)

    # -- service-process views (by conventional plan names) -------------------
    @property
    def scheduler_proc(self):
        return self.service_procs.get("scheduler")

    @property
    def eventlog_proc(self):
        return self.service_procs.get("eventlog")

    @property
    def server_procs(self) -> List[Any]:
        return [proc for name, proc in self.service_procs.items()
                if name.startswith("ckptserver.")]

    @property
    def cm_procs(self) -> List[Any]:
        return [proc for name, proc in self.service_procs.items()
                if name.startswith("channelmemory.")]

    @property
    def dispatcher_state(self):
        return self.dispatcher_proc.tags.get("disp_state") if self.dispatcher_proc else None

    @property
    def scheduler_state(self):
        return self.scheduler_proc.tags.get("sched_state") if self.scheduler_proc else None

    # -- execution --------------------------------------------------------------
    def run(self, timeout: Optional[float] = None) -> RunResult:
        """Deploy (if needed) and run until completion or ``timeout``.

        As in the paper, a run that has not finalized by the timeout is
        killed and classified from its trace.
        """
        timeout = timeout if timeout is not None else self.config.timeout
        self.deploy()

        # Stop the engine the moment the application finalizes so the
        # measured execution time is the app_done instant, not whatever
        # cleanup runs afterwards.
        self.trace.subscribe(
            lambda rec: self.engine.stop() if rec.kind == "app_done" else None)
        # Capture the workload's verification checksum live: counters
        # survive keep_trace=False, record fields do not.
        signature: List[Any] = []

        def _capture(rec):
            if rec.kind == "verify_ok":
                signature.append(rec.fields.get("checksum"))

        self.trace.subscribe(_capture)
        self.engine.run(until=timeout)

        verdict = classify_run(self.trace, timeout)
        disp = self.dispatcher_state
        sched = self.scheduler_state
        network = self.cluster.network
        hotspot_link, hotspot_bytes = network.hotspot()
        return RunResult(
            verdict=verdict,
            trace=self.trace,
            sim_time=self.engine.now,
            restarts=disp.restarts if disp else 0,
            bug_events=disp.bug_events if disp else 0,
            failures_detected=disp.failures_detected if disp else 0,
            waves_committed=sched.waves_committed if sched else 0,
            events_processed=self.engine.events_processed,
            app_signature=signature[0] if signature else None,
            invariant_violations=protocols.check_invariants(self),
            net_bytes=network.bytes_sent,
            net_messages=network.messages_sent,
            net_hotspot=hotspot_link,
            net_hotspot_bytes=hotspot_bytes,
        )
