"""FAIL-MPI: the FAIL fault-injection language and the FCI platform.

This is the paper's contribution.  The package splits like the real
system:

* :mod:`repro.fail.lang` — the FAIL language: lexer, parser, AST,
  semantic checks and pretty-printer;
* :mod:`repro.fail.compile` — the "FCI compiler": FAIL source →
  executable state-machine specs (the paper emits C++; we emit Python
  objects, plus readable Python source via :mod:`repro.fail.codegen`);
* :mod:`repro.fail.machine` — the state-machine runtime;
* :mod:`repro.fail.daemon` — the FAIL-MPI daemon controlling the
  application process of its machine through the debugger interface;
* :mod:`repro.fail.bus` — inter-daemon messaging;
* :mod:`repro.fail.debugger` — the GDB-like control surface
  (halt / stop / continue / breakpoints);
* :mod:`repro.fail.scenario` — the user-facing API: parse, bind
  daemons to machines/groups, deploy onto a runtime;
* :mod:`repro.fail.builtin_scenarios` — the paper's Figs. 4, 5a, 7a,
  8a/8b and 10a/10b transcribed in FAIL.
"""

from repro.fail.scenario import Scenario, Binding, ScenarioDeployment, deploy_scenario
from repro.fail.lang.parser import parse_fail
from repro.fail.lang.errors import FailSyntaxError, FailSemanticError

__all__ = [
    "Scenario",
    "Binding",
    "ScenarioDeployment",
    "deploy_scenario",
    "parse_fail",
    "FailSyntaxError",
    "FailSemanticError",
]
