"""Inter-daemon messaging for the FCI platform.

FAIL daemons coordinate over the cluster network; we model their mesh
as a bus with the network's one-way latency per message.  Delivery is
reliable and per-pair FIFO (TCP between daemons); the *handling* time
at the receiver — the FCI daemon's processing plus the GDB verb cost —
is charged by :class:`repro.fail.daemon.FailDaemon`, not here.
"""

from __future__ import annotations

from typing import Dict

from repro.simkernel.engine import Engine


class FailBus:
    """Name-addressed message fabric between FAIL daemon instances."""

    def __init__(self, engine: Engine, latency: float = 2e-4):
        self.engine = engine
        self.latency = latency
        self._registry: Dict[str, "object"] = {}
        self.messages_sent = 0
        self.messages_lost = 0

    def register(self, instance: str, daemon) -> None:
        if instance in self._registry:
            raise ValueError(f"FAIL instance {instance!r} already registered")
        self._registry[instance] = daemon

    def lookup(self, instance: str):
        return self._registry.get(instance)

    def instances(self):
        return list(self._registry)

    def send(self, src: str, dst: str, msg: str) -> None:
        """Deliver ``msg`` (a bare name, as in the paper) to ``dst``."""
        target = self._registry.get(dst)
        self.messages_sent += 1
        if target is None:
            self.messages_lost += 1
            self.engine.log("fail_msg_lost", src=src, dst=dst, msg=msg)
            return
        self.engine.call_later(self.latency,
                               lambda: target.deliver_msg(msg, src))
