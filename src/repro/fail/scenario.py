"""User-facing scenario API: compile, bind, deploy.

A FAIL scenario text defines daemons; a *deployment* associates daemon
definitions with the machines of a runtime:

* a **computer** binding (``P1``) creates one coordinator instance,
  optionally attached to a machine;
* a **group** binding (``G1``) creates one instance per machine
  (``G1[0]``, ``G1[1]``, …) controlling the application processes that
  load on that machine.

Bindings can come from the scenario's own ``Deploy`` block or be given
programmatically; programmatic bindings win (they know the actual
cluster size).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fail.compile import CompiledScenario, compile_scenario
from repro.fail.bus import FailBus
from repro.fail.daemon import FailDaemon
from repro.fail.lang.errors import FailSemanticError


@dataclass
class Binding:
    """How one scenario instance name maps onto the cluster.

    ``nodes`` — list of cluster node names (group) or a single-element
    list / None (computer).  ``None`` means an unattached coordinator
    (it controls no process; e.g. the paper's P1).
    """

    daemon: str
    nodes: Optional[List[str]] = None


class Scenario:
    """A compiled scenario ready for deployment."""

    def __init__(self, compiled: CompiledScenario):
        self.compiled = compiled

    @classmethod
    def from_source(cls, source: str, params: Dict[str, int] = None) -> "Scenario":
        return cls(compile_scenario(source, params))

    @property
    def program(self):
        return self.compiled.program

    def default_bindings(self, group_nodes: List[str]) -> Dict[str, Binding]:
        """Bindings from the scenario's ``Deploy`` block.

        Group directives are spread over ``group_nodes``; a declared
        group size must not exceed the machines available.
        """
        out: Dict[str, Binding] = {}
        for d in self.program.deploy:
            if d.group_size is None:
                out[d.instance] = Binding(daemon=d.daemon, nodes=None)
            else:
                if d.group_size > len(group_nodes):
                    raise FailSemanticError(
                        f"deploy: group {d.instance!r} wants {d.group_size} "
                        f"machines, only {len(group_nodes)} available")
                out[d.instance] = Binding(
                    daemon=d.daemon, nodes=group_nodes[:d.group_size])
        return out


class ScenarioDeployment:
    """Live FAIL-MPI platform attached to a runtime."""

    def __init__(self, runtime, scenario: Scenario,
                 bindings: Dict[str, Binding],
                 app_prefix: str = "vdaemon"):
        self.runtime = runtime
        self.scenario = scenario
        self.engine = runtime.engine
        self.timing = runtime.config.timing
        # The scenario's own random stream: every FAIL_RANDOM draw of
        # every daemon comes from here, seeded from the trial seed, so
        # one (scenario, seed) pair always replays the same fault
        # schedule — regardless of how the protocol or workload under
        # test consumes the engine's shared RNG.  (String seeding is
        # hash-stable across processes.)
        self.rng = random.Random(f"fail-mpi:{getattr(self.engine, 'seed', 0)}")
        self.bus = FailBus(self.engine, latency=self.timing.fail_bus_latency)
        self.app_prefix = app_prefix
        self.daemons: Dict[str, FailDaemon] = {}
        self.groups: Dict[str, List[FailDaemon]] = {}
        compiled = scenario.compiled
        for instance, binding in bindings.items():
            daemon_ast = compiled.daemon(binding.daemon)
            if binding.nodes is None:
                self.daemons[instance] = FailDaemon(
                    self, instance, daemon_ast, compiled.params, node=None)
            elif len(binding.nodes) == 1 and "[" not in instance:
                node = runtime.cluster.node(binding.nodes[0])
                self.daemons[instance] = FailDaemon(
                    self, instance, daemon_ast, compiled.params, node=node)
            else:
                members: List[FailDaemon] = []
                for i, node_name in enumerate(binding.nodes):
                    name = f"{instance}[{i}]"
                    node = runtime.cluster.node(node_name)
                    fd = FailDaemon(self, name, daemon_ast,
                                    compiled.params, node=node)
                    self.daemons[name] = fd
                    members.append(fd)
                self.groups[instance] = members

    # -- platform services used by FailDaemon ---------------------------------
    def is_app_process(self, proc) -> bool:
        """The registration interface: which processes joined the
        application under test (paper §4's wrapper-script scheme)."""
        return proc.name.startswith(self.app_prefix)

    @property
    def network(self):
        """The runtime's network fabric (``partition``/``heal`` actions)."""
        return self.runtime.cluster.network

    def node_for_instance(self, name: str):
        """Cluster node a ``partition(dest)`` destination refers to.

        A FAIL instance name resolves to the machine its daemon
        controls; anything else falls back to a raw cluster node name
        (service machines carry no FAIL daemon), or ``None``.
        """
        daemon = self.daemons.get(name)
        if daemon is not None:
            return daemon.node
        try:
            return self.runtime.cluster.node(name)
        except KeyError:
            return None

    # -- introspection ------------------------------------------------------------
    def daemon(self, instance: str) -> FailDaemon:
        return self.daemons[instance]

    def group(self, name: str) -> List[FailDaemon]:
        return self.groups[name]

    def total_faults_injected(self) -> int:
        return sum(d.faults_injected for d in self.daemons.values())

    def total_partitions_injected(self) -> int:
        return sum(d.partitions_injected for d in self.daemons.values())


def deploy_scenario(runtime, source: str, params: Dict[str, int] = None,
                    bindings: Dict[str, Binding] = None,
                    app_prefix: str = "vdaemon") -> ScenarioDeployment:
    """One-call deployment: compile ``source`` and attach to ``runtime``.

    Without explicit ``bindings`` the scenario must carry a ``Deploy``
    block; groups then spread over the runtime's compute machines.
    """
    scenario = Scenario.from_source(source, params)
    if bindings is None:
        bindings = scenario.default_bindings(list(runtime.machines))
        if not bindings:
            raise FailSemanticError(
                "scenario has no Deploy block and no bindings were given")
    return ScenarioDeployment(runtime, scenario, bindings, app_prefix=app_prefix)
