"""Runtime for compiled FAIL state machines.

A :class:`Machine` interprets one daemon definition for one instance:
it tracks the current node, daemon variables, node-entry (``always``)
variables and the node timer, and turns delivered events into actions
through a :class:`MachineContext` (implemented by
:class:`repro.fail.daemon.FailDaemon`).

Determinism: ``FAIL_RANDOM`` draws from the context RNG (the engine's
seeded stream); transition matching is first-match in source order, as
in the paper's listings.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.fail.lang import ast
from repro.fail.lang.errors import FailSemanticError

# Event tuples delivered to Machine.handle():
#   ("timer", entry_gen)
#   ("msg", name, sender_instance)
#   ("onload",) / ("onexit",) / ("onerror",)
#   ("before", func_name, resume_callback_owner)


class MachineContext:
    """What a machine needs from its host daemon (duck-typed)."""

    rng: Any

    def send_msg(self, msg: str, dest_instance: str) -> None:
        raise NotImplementedError

    def resolve_dest(self, dest: ast.Dest, env: Dict[str, int],
                     sender: Optional[str]) -> str:
        raise NotImplementedError

    def act_halt(self) -> None:
        raise NotImplementedError

    def act_stop(self) -> None:
        raise NotImplementedError

    def act_continue(self) -> None:
        raise NotImplementedError

    def act_partition(self, dest_instance: str) -> None:
        """Isolate the machine hosting ``dest_instance`` from the fabric."""
        raise NotImplementedError

    def act_heal(self) -> None:
        """Restore every cut link of the fabric."""
        raise NotImplementedError

    def arm_timer(self, delay: float, entry_gen: int) -> None:
        raise NotImplementedError

    def node_entered(self, node: ast.NodeDef) -> None:
        """Hook for breakpoint (re)arming."""
        raise NotImplementedError


def _truthy(value: int) -> bool:
    return bool(value)


def eval_expr(expr: ast.Expr, env: Dict[str, int], rng, reader=None) -> int:
    """Evaluate a FAIL expression to an int (booleans are 0/1).

    ``reader`` resolves ``FAIL_READ(name)`` against the controlled
    application (the paper's planned variable-inspection feature);
    without one, reads evaluate to 0.
    """
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Var):
        try:
            return env[expr.name]
        except KeyError:
            raise FailSemanticError(f"undefined variable {expr.name!r} at runtime")
    if isinstance(expr, ast.ReadCall):
        if reader is None:
            return 0
        return int(reader(expr.name))
    if isinstance(expr, ast.RandCall):
        lo = eval_expr(expr.lo, env, rng, reader)
        hi = eval_expr(expr.hi, env, rng, reader)
        if hi < lo:
            lo, hi = hi, lo
        return rng.randint(lo, hi)      # bounds inclusive, like the paper
    if isinstance(expr, ast.UnOp):
        val = eval_expr(expr.operand, env, rng, reader)
        if expr.op == "-":
            return -val
        if expr.op == "!":
            return 0 if _truthy(val) else 1
        raise FailSemanticError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.BinOp):
        op = expr.op
        if op == "&&":
            return 1 if (_truthy(eval_expr(expr.left, env, rng, reader))
                         and _truthy(eval_expr(expr.right, env, rng, reader))) else 0
        if op == "||":
            return 1 if (_truthy(eval_expr(expr.left, env, rng, reader))
                         or _truthy(eval_expr(expr.right, env, rng, reader))) else 0
        lhs = eval_expr(expr.left, env, rng, reader)
        rhs = eval_expr(expr.right, env, rng, reader)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                raise FailSemanticError("division by zero in FAIL expression")
            return int(lhs / rhs)
        if op == "%":
            if rhs == 0:
                raise FailSemanticError("modulo by zero in FAIL expression")
            return lhs % rhs
        if op == "==":
            return 1 if lhs == rhs else 0
        if op == "<>":
            return 1 if lhs != rhs else 0
        if op == "<":
            return 1 if lhs < rhs else 0
        if op == "<=":
            return 1 if lhs <= rhs else 0
        if op == ">":
            return 1 if lhs > rhs else 0
        if op == ">=":
            return 1 if lhs >= rhs else 0
        raise FailSemanticError(f"unknown operator {op!r}")
    raise TypeError(f"not an expression: {expr!r}")


class Machine:
    """One executing instance of a FAIL daemon definition."""

    def __init__(self, daemon: ast.DaemonDef, params: Dict[str, int],
                 ctx: MachineContext, instance: str):
        self.daemon = daemon
        self.params = dict(params)
        self.ctx = ctx
        self.instance = instance
        self.vars: Dict[str, int] = {}
        self.always_vars: Dict[str, int] = {}
        self.entry_gen = 0
        self.current: Optional[ast.NodeDef] = None
        base_env = dict(self.params)
        reader = getattr(ctx, "read_app_var", None)
        for decl in daemon.variables:
            self.vars[decl.name] = eval_expr(decl.init, {**base_env, **self.vars},
                                             ctx.rng, reader)
        self.enter_node(daemon.start_node)

    @property
    def _reader(self):
        return getattr(self.ctx, "read_app_var", None)

    # -- environment -------------------------------------------------------
    def env(self) -> Dict[str, int]:
        out = dict(self.params)
        out.update(self.vars)
        out.update(self.always_vars)
        return out

    @property
    def node_id(self) -> int:
        return self.current.node_id if self.current is not None else -1

    # -- node transitions -----------------------------------------------------
    def enter_node(self, node_id: int) -> None:
        """Enter ``node_id`` (a self-goto still re-enters): re-evaluate
        ``always`` variables, re-arm timers, re-arm breakpoints."""
        node = self.daemon.node(node_id)
        self.current = node
        self.entry_gen += 1
        self.always_vars = {}
        for decl in node.always:
            self.always_vars[decl.name] = eval_expr(decl.init, self.env(),
                                                    self.ctx.rng, self._reader)
        for tdecl in node.timers:
            delay = eval_expr(tdecl.delay, self.env(), self.ctx.rng,
                              self._reader)
            self.ctx.arm_timer(float(delay), self.entry_gen)
        self.ctx.node_entered(node)

    # -- event handling -----------------------------------------------------------
    def _matches(self, trigger: ast.Trigger, event: Tuple) -> bool:
        kind = event[0]
        if kind == "timer":
            return isinstance(trigger, ast.TimerTrigger)
        if kind == "msg":
            return isinstance(trigger, ast.MsgTrigger) and trigger.name == event[1]
        if kind == "onload":
            return isinstance(trigger, ast.OnLoad)
        if kind == "onexit":
            return isinstance(trigger, ast.OnExit)
        if kind == "onerror":
            return isinstance(trigger, ast.OnError)
        if kind == "before":
            return isinstance(trigger, ast.Before) and trigger.func == event[1]
        return False

    def handle(self, event: Tuple, bp_controller=None) -> bool:
        """Deliver one event; returns True if a transition fired.

        ``bp_controller`` (for breakpoint events) is an object with
        ``consume()``/``consumed`` used by halt/stop/continue so the
        host daemon knows whether to auto-resume the paused process.
        """
        if event[0] == "timer" and event[1] != self.entry_gen:
            return False                    # stale timer from a left node
        sender = event[2] if event[0] == "msg" else None
        for tr in self.current.transitions:
            if not self._matches(tr.trigger, event):
                continue
            if tr.guard is not None and not _truthy(
                    eval_expr(tr.guard, self.env(), self.ctx.rng,
                              self._reader)):
                continue
            self._run_actions(tr, sender, bp_controller)
            return True
        return False

    def _run_actions(self, tr: ast.Transition, sender: Optional[str],
                     bp_controller) -> None:
        goto_target: Optional[int] = None
        for action in tr.actions:
            if isinstance(action, ast.SendAction):
                dest = self.ctx.resolve_dest(action.dest, self.env(), sender)
                self.ctx.send_msg(action.msg, dest)
            elif isinstance(action, ast.GotoAction):
                goto_target = action.node
            elif isinstance(action, ast.HaltAction):
                if bp_controller is not None:
                    bp_controller.consume()
                self.ctx.act_halt()
            elif isinstance(action, ast.StopAction):
                self.ctx.act_stop()
            elif isinstance(action, ast.ContinueAction):
                if bp_controller is not None:
                    bp_controller.consume_and_release()
                self.ctx.act_continue()
            elif isinstance(action, ast.PartitionAction):
                dest = self.ctx.resolve_dest(action.dest, self.env(), sender)
                self.ctx.act_partition(dest)
            elif isinstance(action, ast.HealAction):
                self.ctx.act_heal()
            elif isinstance(action, ast.AssignAction):
                self.vars[action.name] = eval_expr(action.expr, self.env(),
                                                   self.ctx.rng, self._reader)
            else:  # pragma: no cover - parser precludes this
                raise TypeError(f"unknown action {action!r}")
        if goto_target is not None:
            self.enter_node(goto_target)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Machine {self.instance} daemon={self.daemon.name} "
                f"node={self.node_id} vars={self.vars}>")
