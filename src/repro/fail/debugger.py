"""The GDB-like control surface FAIL-MPI drives processes through.

FAIL-FCI controlled processes "by using GDB with a command line
interface"; FAIL-MPI keeps the same verbs but attaches via the daemon
registration interface (and can attach to already-running processes by
pid).  Our debugger exposes exactly those verbs over simulated unix
processes:

* ``halt``  — kill the inferior (the injected crash),
* ``stop``  — freeze all its threads,
* ``cont``  — resume,
* ``breakpoint(fn)`` — intercept the inferior at a named trace point
  (``before(fn)`` in FAIL).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cluster.unixproc import UnixProcess


class Debugger:
    """Controls at most one inferior process at a time."""

    def __init__(self) -> None:
        self.target: Optional[UnixProcess] = None
        self._breakpoints: Dict[str, Callable] = {}

    # -- attachment -----------------------------------------------------------
    def attach(self, proc: UnixProcess) -> None:
        """Attach to ``proc`` (re-applying any armed breakpoints)."""
        self.detach()
        self.target = proc
        for fn, handler in self._breakpoints.items():
            proc.set_breakpoint(fn, handler)

    def attach_pid(self, node, pid: int) -> bool:
        """FAIL-MPI's attach-to-running-process-by-pid (paper §4)."""
        for proc in node.procs:
            if proc.pid == pid and proc.state.alive:
                self.attach(proc)
                return True
        return False

    def detach(self) -> None:
        if self.target is not None:
            for fn in self._breakpoints:
                self.target.clear_breakpoint(fn)
        self.target = None

    @property
    def attached(self) -> bool:
        return self.target is not None and self.target.state.alive

    # -- control verbs -----------------------------------------------------------
    def halt(self) -> bool:
        """Kill the inferior; returns True if something actually died."""
        if self.attached:
            self.target.kill()
            return True
        return False

    def stop(self) -> bool:
        if self.attached:
            self.target.suspend()
            return True
        return False

    def cont(self) -> bool:
        if self.attached:
            self.target.resume_all()
            return True
        return False

    # -- breakpoints --------------------------------------------------------------
    def set_breakpoint(self, fn: str, handler: Callable) -> None:
        """Arm ``fn``; applies to the current and future inferiors."""
        self._breakpoints[fn] = handler
        if self.attached:
            self.target.set_breakpoint(fn, handler)

    def clear_breakpoints(self) -> None:
        if self.attached:
            for fn in self._breakpoints:
                self.target.clear_breakpoint(fn)
        self._breakpoints.clear()
