"""The FAIL-MPI daemon: one per machine (plus coordinator instances).

Responsibilities (paper §4):

* receive registrations of the self-deploying application's processes
  (our :meth:`repro.cluster.node.Node.on_spawn` listener is the
  "wrapper script" automation the paper describes) — each newly loaded
  process is attached **suspended**, and the scenario decides when it
  may run (every paper scenario's ``onload`` handler carries an
  explicit ``continue``);
* observe process exits (``onexit`` / ``onerror``; an injected kill is
  neither);
* execute the scenario state machine: timers, inter-daemon messages,
  debugger actions (halt / stop / continue), breakpoints;
* serialize event handling with a per-event processing delay — the
  intrusion cost of the FCI daemon + debugger, and an experimentally
  important quantity (it paces multi-fault injection in Fig. 7).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.cluster.unixproc import ProcState, UnixProcess
from repro.fail.debugger import Debugger
from repro.fail.lang import ast
from repro.fail.machine import Machine, MachineContext


class _BpController:
    """Tracks what the scenario decided about a paused breakpoint."""

    def __init__(self, resume_event):
        self.resume_event = resume_event
        self.consumed = False

    def consume(self) -> None:
        """halt: the process dies at the breakpoint; never release."""
        self.consumed = True

    def consume_and_release(self) -> None:
        """continue: release the paused thread."""
        self.consumed = True
        if not self.resume_event.triggered:
            self.resume_event.succeed()

    def finish(self) -> None:
        """Default: a breakpoint nobody killed/held resumes (GDB
        'continue' after the handler)."""
        if not self.consumed and not self.resume_event.triggered:
            self.resume_event.succeed()


class FailDaemon(MachineContext):
    """One FAIL daemon instance executing one state machine."""

    def __init__(self, platform, instance: str, daemon_ast: ast.DaemonDef,
                 params: dict, node=None):
        self.platform = platform
        self.engine = platform.engine
        # Scenario semantics (FAIL_RANDOM, destination indices) draw
        # from the deployment's dedicated stream; intrusion-cost timing
        # stays on the engine stream (see _handling_delay).
        self.rng = getattr(platform, "rng", platform.engine.random)
        self.instance = instance
        self.node = node
        self.debugger = Debugger()
        self._queue: Deque[Tuple] = deque()
        self._busy = False
        self.events_handled = 0
        self.faults_injected = 0
        self.partitions_injected = 0
        platform.bus.register(instance, self)
        # Building the machine enters the start node, which may arm
        # timers/breakpoints through the context methods below.
        self.machine = Machine(daemon_ast, params, self, instance)
        if node is not None:
            node.on_spawn(self._on_spawn)

    # ------------------------------------------------------------------
    # inbound events (listeners; all asynchronous w.r.t. the machine)
    # ------------------------------------------------------------------
    def _on_spawn(self, proc: UnixProcess) -> None:
        if not self.platform.is_app_process(proc):
            return
        # Attach at launch: the process starts under debugger control,
        # suspended until the scenario continues it (or auto-continue
        # if the scenario has no onload transition here).
        proc.suspend()
        self.debugger.attach(proc)
        proc.on_exit(self._on_exit)
        self._enqueue(("onload",))

    def _on_exit(self, proc: UnixProcess, final: ProcState) -> None:
        if proc is not self.debugger.target:
            return
        if final is ProcState.EXITED:
            self._enqueue(("onexit",))
        elif final is ProcState.ERRORED:
            self._enqueue(("onerror",))
        # KILLED: the injected fault itself — not an application event.

    def deliver_msg(self, msg: str, src: str) -> None:
        self._enqueue(("msg", msg, src))

    def _on_breakpoint(self, proc: UnixProcess, fn: str, resume) -> None:
        self._enqueue(("before", fn, _BpController(resume)))

    # ------------------------------------------------------------------
    # serialized handling with per-event processing delay
    # ------------------------------------------------------------------
    def _handling_delay(self, event: Tuple) -> float:
        timing = self.platform.timing
        rng = self.engine.random      # timing noise, not scenario logic
        if event[0] == "msg":
            return timing.uniform(rng, timing.fail_order_handling)
        return timing.uniform(rng, timing.fail_event_handling)

    def _enqueue(self, event: Tuple) -> None:
        self._queue.append(event)
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        event = self._queue.popleft()
        self.engine.call_later(self._handling_delay(event),
                               lambda: self._process(event))

    def _process(self, event: Tuple) -> None:
        self.events_handled += 1
        kind = event[0]
        controller = event[2] if kind == "before" else None
        machine_event = ("before", event[1]) if kind == "before" else event
        matched = self.machine.handle(machine_event, bp_controller=controller)
        if kind == "onload" and not matched:
            # No scenario opinion: let the process run (documented
            # default; every paper scenario continues explicitly).
            self.debugger.cont()
        if controller is not None:
            controller.finish()
        self._busy = False
        self._pump()

    # ------------------------------------------------------------------
    # MachineContext — actions
    # ------------------------------------------------------------------
    def send_msg(self, msg: str, dest_instance: str) -> None:
        self.platform.bus.send(self.instance, dest_instance, msg)

    def resolve_dest(self, dest: ast.Dest, env, sender: Optional[str]) -> str:
        from repro.fail.machine import eval_expr
        if isinstance(dest, ast.DestSender):
            if sender is None:
                raise RuntimeError(
                    f"{self.instance}: FAIL_SENDER outside a message handler")
            return sender
        if isinstance(dest, ast.DestName):
            return dest.name
        if isinstance(dest, ast.DestIndex):
            idx = eval_expr(dest.index, env, self.rng, self.read_app_var)
            return f"{dest.group}[{idx}]"
        raise TypeError(f"bad destination {dest!r}")

    def read_app_var(self, name: str) -> int:
        """``FAIL_READ(name)``: inspect the controlled application's
        state through the debugger (the paper's §6 planned feature).

        Reads the named entry of the controlled MPI process's
        checkpointable state (e.g. the BT iteration counter); 0 when no
        process is controlled or the variable is absent.
        """
        target = self.debugger.target
        if target is None or not target.state.alive:
            return 0
        core = target.tags.get("vcl")
        if core is None:
            return 0
        value = core.app_state.get(name, 0)
        try:
            return int(value)
        except (TypeError, ValueError):
            return 0

    def act_halt(self) -> None:
        target = self.debugger.target
        if self.debugger.halt():
            self.faults_injected += 1
            self.engine.log("fault_injected", instance=self.instance,
                            pid=target.pid, name=target.name,
                            node=target.node.name)
            # detection starts the moment the fault lands; the
            # dispatcher closes this span when it attributes the
            # closure (see repro.mpichv.dispatcher.close_detect)
            self.engine.span("detect", lane=target.node.name,
                             node=target.node.name, pid=target.pid)
        else:
            self.engine.log("halt_noop", instance=self.instance)

    def act_stop(self) -> None:
        self.debugger.stop()

    def act_continue(self) -> None:
        self.debugger.cont()

    def act_partition(self, dest_instance: str) -> None:
        """``partition(dest)``: isolate the machine hosting the FAIL
        instance ``dest_instance`` (falling back to a raw cluster node
        name, so scenarios can cut service machines like ``svc2``)."""
        resolver = getattr(self.platform, "node_for_instance", None)
        node = resolver(dest_instance) if resolver is not None else None
        network = getattr(self.platform, "network", None)
        if node is None or network is None:
            self.engine.log("partition_noop", instance=self.instance,
                            target=dest_instance)
            return
        network.isolate(node.name)
        self.partitions_injected += 1
        self.engine.log("partition_injected", instance=self.instance,
                        target=dest_instance, node=node.name)

    def act_heal(self) -> None:
        """``heal``: restore every cut link of the fabric."""
        network = getattr(self.platform, "network", None)
        if network is None:
            self.engine.log("heal_noop", instance=self.instance)
            return
        network.heal()
        self.engine.log("heal_injected", instance=self.instance)

    def arm_timer(self, delay: float, entry_gen: int) -> None:
        self.engine.call_later(
            delay, lambda: self._timer_fired(entry_gen))

    def _timer_fired(self, entry_gen: int) -> None:
        # staleness re-checked at processing time by the machine
        if entry_gen == self.machine.entry_gen:
            self._enqueue(("timer", entry_gen))

    def node_entered(self, node: ast.NodeDef) -> None:
        self.debugger.clear_breakpoints()
        for tr in node.transitions:
            if isinstance(tr.trigger, ast.Before):
                self.debugger.set_breakpoint(tr.trigger.func, self._on_breakpoint)

    # -- introspection -------------------------------------------------------
    @property
    def controlled(self) -> Optional[UnixProcess]:
        return self.debugger.target

    @property
    def node_id(self) -> int:
        return self.machine.node_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FailDaemon {self.instance} node={self.node_id}>"
