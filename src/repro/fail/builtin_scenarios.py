"""The paper's FAIL scenarios, transcribed from Figs. 4, 5a, 7a, 8a/8b
and 10a/10b (including the listings' line labels, which the parser
accepts verbatim).

Meta-parameters (bound per experiment via ``params``):

* ``X`` — fault period in seconds (Figs. 5a) or the simultaneous-fault
  count (Fig. 7a);
* ``N`` — highest machine index, i.e. ``n_machines - 1`` (the paper
  hardcodes 52 for its 53 machines; we keep it a parameter so every
  scale works).
"""

# Fig. 4 — the generic per-machine daemon: control whatever MPI node
# loads locally, crash it on order, negative-ack when nothing runs.
FIG4_NODE_DAEMON = """
Daemon ADV2 {
  node 1:
    1 onload -> continue, goto 2;
    2 ?crash -> !no(P1), goto 1;
  node 2:
    3 onexit -> goto 1;
    4 onerror -> goto 1;
    5 onload -> continue, goto 2;
    6 ?crash -> !ok(P1), halt, goto 1;
}
"""

# Fig. 5a — P1 for the fault-frequency experiment: every X seconds
# crash one uniformly chosen machine, re-drawing on negative acks.
FIG5A_MASTER = """
Daemon ADV1 {
  node 1:
    1 always int ran = FAIL_RANDOM(0, N);
    2 time g_timer = X;
    3 timer -> !crash(G1[ran]), goto 2;
  node 2:
    4 always int ran = FAIL_RANDOM(0, N);
    5 ?ok -> goto 1;
    6 ?no -> !crash(G1[ran]), goto 2;
}
"""

# Fig. 7a — P1 for the simultaneous-faults experiment: every 50 s
# inject X crashes back-to-back.
FIG7A_MASTER = """
Daemon ADV1 {
  1 int nb_crash = X;
  node 1:
    2 always int ran = FAIL_RANDOM(0, N);
    3 time g_timer = 50;
    4 timer -> !crash(G1[ran]), goto 2;
  node 2:
    5 always int ran = FAIL_RANDOM(0, N);
    6 ?ok && nb_crash > 1 -> !crash(G1[ran]), nb_crash = nb_crash - 1, goto 2;
    7 ?ok && nb_crash <= 1 -> nb_crash = X, goto 1;
    8 ?no -> !crash(G1[ran]), goto 2;
}
"""

# Fig. 8a — P1 for the synchronized-faults experiment (Fig. 9): one
# random crash, then crash the first machine that reports a recovery
# wave (second onload), then nothing.
FIG8A_MASTER = """
Daemon ADV1 {
  node 1:
    1 always int ran = FAIL_RANDOM(0, N);
    2 time g_timer = 50;
    3 timer -> !crash(G1[ran]), goto 2;
  node 2:
    4 always int ran = FAIL_RANDOM(0, N);
    5 ?ok -> goto 3;
    6 ?no -> !crash(G1[ran]), goto 2;
  node 3:
    7 ?waveok -> !crash(FAIL_SENDER), goto 4;
  node 4:
}
"""

# Fig. 8b — the per-machine daemon for Fig. 9: counts its own loads;
# the second load is the first recovery wave -> tell P1.
FIG8B_NODE_DAEMON = """
Daemon ADVnodes {
  1 int wave = 1;
  node 1:
    2 onload && wave <> 2 -> continue, wave = wave + 1, goto 2;
    3 onload && wave == 2 -> continue, wave = wave + 1, !waveok(P1), goto 2;
    4 ?crash -> !no(P1), goto 1;
  node 2:
    5 onexit -> goto 1;
    6 onerror -> goto 1;
    7 onload && wave <> 2 -> continue, wave = wave + 1, goto 2;
    8 onload && wave == 2 -> continue, wave = wave + 1, !waveok(P1), goto 2;
    9 ?crash -> !ok(P1), halt, goto 1;
}
"""

# Fig. 10a — P1 for the state-synchronized experiment (Fig. 11): as
# Fig. 8a, but machines that report the recovery wave after the first
# get an explicit nocrash so they are released from their stop.
FIG10A_MASTER = """
Daemon ADV1 {
  node 1:
    1 always int ran = FAIL_RANDOM(0, N);
    2 time g_timer = 50;
    3 timer -> !crash(G1[ran]), goto 2;
  node 2:
    4 always int ran = FAIL_RANDOM(0, N);
    5 ?ok -> goto 3;
    6 ?no -> !crash(G1[ran]), goto 2;
  node 3:
    7 ?waveok -> !crash(FAIL_SENDER), goto 4;
  node 4:
    8 ?waveok -> !nocrash(FAIL_SENDER), goto 4;
}
"""

# Fig. 10b — the per-machine daemon for Fig. 11: stop every recovery
# launch, ask P1, and if designated, kill the daemon *just before
# localMPI_setCommand* — after it registered with the dispatcher.
FIG10B_NODE_DAEMON = """
Daemon ADVnodes {
  node 1:
    1 onload -> continue, goto 2;
    2 ?crash -> !no(P1), goto 1;
  node 11:
    3 onload -> !waveok(P1), stop, goto 3;
    4 ?crash -> !no(P1), goto 11;
  node 2:
    5 ?crash -> !ok(P1), halt, goto 11;
    6 onload -> !waveok(P1), stop, goto 3;
  node 3:
    7 ?crash -> !ok(P1), continue, goto 4;
    8 ?nocrash -> continue, goto 5;
  node 4:
    9 before(localMPI_setCommand) -> halt, goto 5;
  node 5:
    10 onload -> continue, goto 5;
}
"""
