"""Programmatic construction of FAIL scenarios.

The paper writes adversaries by hand; the exploration subsystem
(:mod:`repro.explore`) writes them *programmatically*.  This module is
the construction API: thin, composable builders over the AST in
:mod:`repro.fail.lang.ast` plus :func:`render`, which semantic-checks
the program and pretty-prints it to canonical FAIL source.

Everything built here flows through the same pipeline as the
hand-transcribed listings — ``render`` → ``parse`` → ``check`` →
interpret/codegen — and the pretty-printer round-trip property
(``parse(render(p)) == p``, see ``tests/test_fail_build.py``) is what
entitles generators to treat the *source text* as the scenario's
canonical, cache-keyable form.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.fail.lang import ast
from repro.fail.lang.pretty import pretty_print
from repro.fail.lang.semantics import check_program

ExprLike = Union[int, str, ast.Num, ast.Var, ast.BinOp, ast.UnOp,
                 ast.RandCall, ast.ReadCall]

#: singleton triggers/actions (the AST nodes are frozen dataclasses)
TIMER = ast.TimerTrigger()
ONLOAD = ast.OnLoad()
ONEXIT = ast.OnExit()
ONERROR = ast.OnError()
HALT = ast.HaltAction()
STOP = ast.StopAction()
CONTINUE = ast.ContinueAction()
HEAL = ast.HealAction()
SENDER = ast.DestSender()


def expr(value: ExprLike) -> ast.Expr:
    """Coerce an int (literal) or str (variable name) to an expression."""
    if isinstance(value, bool):
        raise TypeError("FAIL has no booleans; use 0/1")
    if isinstance(value, int):
        return ast.Num(value)
    if isinstance(value, str):
        return ast.Var(value)
    return value


def rand(lo: ExprLike, hi: ExprLike) -> ast.RandCall:
    """``FAIL_RANDOM(lo, hi)`` — bounds inclusive."""
    return ast.RandCall(expr(lo), expr(hi))


def group(name: str, index: ExprLike) -> ast.DestIndex:
    """A group member destination, e.g. ``G1[ran]``."""
    return ast.DestIndex(name, expr(index))


def computer(name: str) -> ast.DestName:
    """A computer-instance destination, e.g. ``P1``."""
    return ast.DestName(name)


def send(msg: str, dest: ast.Dest) -> ast.SendAction:
    return ast.SendAction(msg, dest)


def crash(dest: ast.Dest) -> ast.SendAction:
    """The conventional injection order of the paper's scenarios."""
    return send("crash", dest)


def partition(dest: ast.Dest) -> ast.PartitionAction:
    """``partition(dest)`` — cut ``dest``'s machine off the fabric."""
    return ast.PartitionAction(dest)


def goto(node_id: int) -> ast.GotoAction:
    return ast.GotoAction(node_id)


def assign(name: str, value: ExprLike) -> ast.AssignAction:
    return ast.AssignAction(name, expr(value))


def on_msg(name: str) -> ast.MsgTrigger:
    """``?name`` — a FAIL message arrived."""
    return ast.MsgTrigger(name)


def before(func: str) -> ast.Before:
    return ast.Before(func)


def when(trigger: ast.Trigger, *actions: ast.Action,
         guard: Optional[ExprLike] = None) -> ast.Transition:
    """One ``trigger [&& guard] -> actions;`` transition."""
    g = expr(guard) if guard is not None else None
    return ast.Transition(trigger=trigger, guard=g, actions=tuple(actions))


def int_var(name: str, init: ExprLike) -> ast.VarDecl:
    """Daemon-scope ``int name = init;``"""
    return ast.VarDecl(name, expr(init))


def always_int(name: str, init: ExprLike) -> ast.AlwaysDecl:
    """Node-entry ``always int name = init;`` (re-drawn on every entry)."""
    return ast.AlwaysDecl(name, expr(init))


def timer(delay: ExprLike, name: str = "g_timer") -> ast.TimerDecl:
    """Node timer ``time name = delay;`` armed on node entry."""
    return ast.TimerDecl(name, expr(delay))


def node(node_id: int, *transitions: ast.Transition,
         always: Sequence[ast.AlwaysDecl] = (),
         timers: Sequence[ast.TimerDecl] = ()) -> ast.NodeDef:
    return ast.NodeDef(node_id=node_id, always=tuple(always),
                       timers=tuple(timers), transitions=tuple(transitions))


def daemon(name: str, *nodes: ast.NodeDef,
           variables: Sequence[ast.VarDecl] = ()) -> ast.DaemonDef:
    return ast.DaemonDef(name=name, variables=tuple(variables),
                         nodes=tuple(nodes))


def deploy_computer(instance: str, daemon_name: str) -> ast.DeployDirective:
    return ast.DeployDirective(instance=instance, daemon=daemon_name)


def deploy_group(instance: str, size: int,
                 daemon_name: str) -> ast.DeployDirective:
    return ast.DeployDirective(instance=instance, daemon=daemon_name,
                               group_size=size)


def program(*daemons: ast.DaemonDef,
            deploy: Sequence[ast.DeployDirective] = ()) -> ast.Program:
    return ast.Program(daemons=tuple(daemons), deploy=tuple(deploy))


def render(prog: ast.Program, params: Iterable[str] = ()) -> str:
    """Semantic-check ``prog`` (with meta-parameter names ``params``)
    and return canonical FAIL source.

    Checking *before* printing means a buggy generator fails loudly at
    generation time, not deep inside a campaign trial.
    """
    check_program(prog, params=params)
    return pretty_print(prog)
