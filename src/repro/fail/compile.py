"""The "FCI compiler": FAIL source → executable scenario.

The real FCI compiler emits C++ sources plus configuration files that
get distributed and built per machine.  Here compilation means:
parse → semantic check (with the experiment's meta-parameters) →
a :class:`CompiledScenario` of daemon definitions ready for
instantiation by :mod:`repro.fail.scenario`.  A readable Python
rendition of each state machine is available via
:mod:`repro.fail.codegen` (the analogue of inspecting the generated
C++).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.fail.lang import ast
from repro.fail.lang.errors import FailSemanticError
from repro.fail.lang.parser import parse_fail
from repro.fail.lang.semantics import check_program


@dataclass(frozen=True)
class CompiledScenario:
    """A validated FAIL program plus its meta-parameter values."""

    program: ast.Program
    params: Dict[str, int] = field(default_factory=dict)

    def daemon(self, name: str) -> ast.DaemonDef:
        try:
            return self.program.daemon(name)
        except KeyError:
            raise FailSemanticError(f"no daemon named {name!r} in scenario")

    @property
    def daemon_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.program.daemons)


def compile_scenario(source: str, params: Dict[str, int] = None) -> CompiledScenario:
    """Parse + check ``source`` with meta-parameters ``params``.

    ``params`` plays the role of the paper's meta variables (X, N):
    identifiers left free in the scenario text and bound per experiment.
    """
    params = dict(params or {})
    for key, value in params.items():
        if not isinstance(value, int):
            raise FailSemanticError(
                f"parameter {key!r} must be an int, got {value!r}")
    program = parse_fail(source)
    check_program(program, params=params.keys())
    return CompiledScenario(program=program, params=params)
