"""Errors raised by the FAIL front end."""

from __future__ import annotations

from typing import Optional


class FailError(Exception):
    """Base class for FAIL language errors."""

    def __init__(self, message: str, line: Optional[int] = None,
                 col: Optional[int] = None):
        self.line = line
        self.col = col
        if line is not None:
            message = f"line {line}" + (f":{col}" if col is not None else "") + f": {message}"
        super().__init__(message)


class FailSyntaxError(FailError):
    """Lexing or parsing failure."""


class FailSemanticError(FailError):
    """Well-formed but meaningless scenario (bad goto, undeclared var…)."""
