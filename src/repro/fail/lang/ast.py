"""Abstract syntax tree of the FAIL language.

The structure matches the paper's description: a scenario is a set of
``Daemon`` definitions, each a state machine of numbered ``node``\\ s
holding declarations and trigger→actions transitions, plus an optional
``Deploy`` block associating daemons with computers or groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Num:
    value: int


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class BinOp:
    op: str            # + - * / % == <> < <= > >= && ||
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnOp:
    op: str            # - !
    operand: "Expr"


@dataclass(frozen=True)
class RandCall:
    """``FAIL_RANDOM(lo, hi)`` — uniform integer, bounds inclusive."""

    lo: "Expr"
    hi: "Expr"


@dataclass(frozen=True)
class ReadCall:
    """``FAIL_READ(name)`` — read a variable of the *stressed
    application* through the debugger.

    The paper lists this as a planned feature (§6: the tool "should be
    able to read and modify internal variables of the stressed
    application"); we implement the read half.  Evaluates to the named
    entry of the controlled process's application state (0 when absent
    or when no process is controlled).
    """

    name: str


Expr = Union[Num, Var, BinOp, UnOp, RandCall, ReadCall]


# ---------------------------------------------------------------------------
# destinations (message targets)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DestName:
    """A computer instance, e.g. ``P1``."""

    name: str


@dataclass(frozen=True)
class DestIndex:
    """A group member, e.g. ``G1[ran]``."""

    group: str
    index: Expr


@dataclass(frozen=True)
class DestSender:
    """``FAIL_SENDER`` — reply to the sender of the handled message."""


Dest = Union[DestName, DestIndex, DestSender]


# ---------------------------------------------------------------------------
# triggers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TimerTrigger:
    """``timer`` — the node's timer expired."""


@dataclass(frozen=True)
class MsgTrigger:
    """``?name`` — a message arrived from another FAIL daemon."""

    name: str


@dataclass(frozen=True)
class OnLoad:
    """A process joined the application under test on this machine."""


@dataclass(frozen=True)
class OnExit:
    """The controlled process exited normally."""


@dataclass(frozen=True)
class OnError:
    """The controlled process exited abnormally."""


@dataclass(frozen=True)
class Before:
    """``before(fn)`` — the controlled process is about to enter fn."""

    func: str


Trigger = Union[TimerTrigger, MsgTrigger, OnLoad, OnExit, OnError, Before]


# ---------------------------------------------------------------------------
# actions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SendAction:
    """``!name(dest)``"""

    msg: str
    dest: Dest


@dataclass(frozen=True)
class GotoAction:
    node: int


@dataclass(frozen=True)
class HaltAction:
    """Kill the controlled process (the injected fault)."""


@dataclass(frozen=True)
class StopAction:
    """Suspend the controlled process under the debugger."""


@dataclass(frozen=True)
class ContinueAction:
    """Resume the controlled process."""


@dataclass(frozen=True)
class AssignAction:
    name: str
    expr: Expr


@dataclass(frozen=True)
class PartitionAction:
    """``partition(dest)`` — cut the machine hosting instance ``dest``
    off the rest of the network fabric.

    Isolation accumulates into one minority partition (isolated
    machines stay connected to each other), so a transition can carve
    out a whole neighborhood with several ``partition`` actions.  A
    destination naming no daemon instance falls back to a cluster node
    name (e.g. ``partition(svc2)`` isolates a checkpoint server).
    """

    dest: Dest


@dataclass(frozen=True)
class HealAction:
    """``heal`` — restore every cut link of the fabric.

    Severed connections stay dead; a heal landing within one network
    latency of the cut wins the race against the closure notification,
    so the failure detector never fires (see
    :class:`repro.cluster.network.Network`).
    """


Action = Union[SendAction, GotoAction, HaltAction, StopAction,
               ContinueAction, AssignAction, PartitionAction, HealAction]


# ---------------------------------------------------------------------------
# daemon structure
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VarDecl:
    """Daemon-scope variable: ``int nb_crash = X;``"""

    name: str
    init: Expr


@dataclass(frozen=True)
class AlwaysDecl:
    """Node-entry variable: ``always int ran = FAIL_RANDOM(0, N);``
    Re-evaluated every time the node is entered (including self-goto)."""

    name: str
    init: Expr


@dataclass(frozen=True)
class TimerDecl:
    """Node timer: ``time g_timer = 50;`` armed on node entry."""

    name: str
    delay: Expr


@dataclass(frozen=True)
class Transition:
    trigger: Trigger
    guard: Optional[Expr]
    actions: Tuple[Action, ...]
    #: source line, excluded from equality so ASTs compare structurally
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class NodeDef:
    node_id: int
    always: Tuple[AlwaysDecl, ...] = ()
    timers: Tuple[TimerDecl, ...] = ()
    transitions: Tuple[Transition, ...] = ()


@dataclass(frozen=True)
class DaemonDef:
    name: str
    variables: Tuple[VarDecl, ...] = ()
    nodes: Tuple[NodeDef, ...] = ()

    def node(self, node_id: int) -> NodeDef:
        for nd in self.nodes:
            if nd.node_id == node_id:
                return nd
        raise KeyError(node_id)

    @property
    def start_node(self) -> int:
        return self.nodes[0].node_id


@dataclass(frozen=True)
class DeployDirective:
    """``P1 = ADV1;`` or ``G1[53] = ADVnodes;``"""

    instance: str
    daemon: str
    group_size: Optional[int] = None   # None -> single computer


@dataclass(frozen=True)
class Program:
    daemons: Tuple[DaemonDef, ...] = ()
    deploy: Tuple[DeployDirective, ...] = ()

    def daemon(self, name: str) -> DaemonDef:
        for d in self.daemons:
            if d.name == name:
                return d
        raise KeyError(name)
