"""Pretty-printer: AST → canonical FAIL source.

Round-trip property (tested with hypothesis): parsing the output of
``pretty_print`` reproduces the same AST.  This is the anchor that
keeps the lexer, parser and printer honest against each other.
"""

from __future__ import annotations

from repro.fail.lang import ast

_PRECEDENCE = {
    "||": 1, "&&": 2, "==": 3, "<>": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "*": 6, "/": 6, "%": 6,
}


def expr_str(expr: ast.Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, ast.Num):
        return str(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.RandCall):
        return f"FAIL_RANDOM({expr_str(expr.lo)}, {expr_str(expr.hi)})"
    if isinstance(expr, ast.ReadCall):
        return f"FAIL_READ({expr.name})"
    if isinstance(expr, ast.UnOp):
        inner = expr_str(expr.operand, parent_prec=7)
        return f"{expr.op}{inner}"
    if isinstance(expr, ast.BinOp):
        prec = _PRECEDENCE[expr.op]
        # left-associative: the right child needs parens at equal prec
        left = expr_str(expr.left, parent_prec=prec)
        right = expr_str(expr.right, parent_prec=prec + 1)
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"not an expression: {expr!r}")


def dest_str(dest: ast.Dest) -> str:
    if isinstance(dest, ast.DestSender):
        return "FAIL_SENDER"
    if isinstance(dest, ast.DestName):
        return dest.name
    if isinstance(dest, ast.DestIndex):
        return f"{dest.group}[{expr_str(dest.index)}]"
    raise TypeError(f"not a destination: {dest!r}")


def trigger_str(trigger: ast.Trigger) -> str:
    if isinstance(trigger, ast.TimerTrigger):
        return "timer"
    if isinstance(trigger, ast.MsgTrigger):
        return f"?{trigger.name}"
    if isinstance(trigger, ast.OnLoad):
        return "onload"
    if isinstance(trigger, ast.OnExit):
        return "onexit"
    if isinstance(trigger, ast.OnError):
        return "onerror"
    if isinstance(trigger, ast.Before):
        return f"before({trigger.func})"
    raise TypeError(f"not a trigger: {trigger!r}")


def action_str(action: ast.Action) -> str:
    if isinstance(action, ast.SendAction):
        return f"!{action.msg}({dest_str(action.dest)})"
    if isinstance(action, ast.GotoAction):
        return f"goto {action.node}"
    if isinstance(action, ast.HaltAction):
        return "halt"
    if isinstance(action, ast.StopAction):
        return "stop"
    if isinstance(action, ast.ContinueAction):
        return "continue"
    if isinstance(action, ast.PartitionAction):
        return f"partition({dest_str(action.dest)})"
    if isinstance(action, ast.HealAction):
        return "heal"
    if isinstance(action, ast.AssignAction):
        return f"{action.name} = {expr_str(action.expr)}"
    raise TypeError(f"not an action: {action!r}")


def transition_str(tr: ast.Transition) -> str:
    head = trigger_str(tr.trigger)
    if tr.guard is not None:
        head += f" && {expr_str(tr.guard, parent_prec=3)}"
    body = ", ".join(action_str(a) for a in tr.actions)
    return f"{head} -> {body};"


def pretty_print(program: ast.Program) -> str:
    """Render a whole program as canonical FAIL source."""
    lines = []
    for daemon in program.daemons:
        lines.append(f"Daemon {daemon.name} {{")
        for var in daemon.variables:
            lines.append(f"  int {var.name} = {expr_str(var.init)};")
        for nd in daemon.nodes:
            lines.append(f"  node {nd.node_id}:")
            for a in nd.always:
                lines.append(f"    always int {a.name} = {expr_str(a.init)};")
            for t in nd.timers:
                lines.append(f"    time {t.name} = {expr_str(t.delay)};")
            for tr in nd.transitions:
                lines.append(f"    {transition_str(tr)}")
        lines.append("}")
    if program.deploy:
        lines.append("Deploy {")
        for d in program.deploy:
            if d.group_size is None:
                lines.append(f"  {d.instance} = {d.daemon};")
            else:
                lines.append(f"  {d.instance}[{d.group_size}] = {d.daemon};")
        lines.append("}")
    return "\n".join(lines) + "\n"
