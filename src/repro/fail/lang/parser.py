"""Recursive-descent parser for FAIL.

Grammar (see DESIGN.md §S5 and the listings in the paper):

.. code-block:: text

    program     := (daemon_def | deploy_block)* EOF
    daemon_def  := "Daemon" IDENT "{" var_decl* node_def+ "}"
    var_decl    := "int" IDENT "=" expr ";"
    node_def    := "node" INT ":" item*
    item        := [INT]                       # optional listing label
                   ( "always" "int" IDENT "=" expr ";"
                   | "time" IDENT "=" expr ";"
                   | transition )
    transition  := trigger ["&&" expr] "->" action ("," action)* ";"
    trigger     := "timer" | "?" IDENT | "onload" | "onexit" | "onerror"
                 | "before" "(" IDENT ")"
    action      := "!" IDENT "(" dest ")" | "goto" INT | "halt" | "stop"
                 | "continue" | "partition" "(" dest ")" | "heal"
                 | IDENT "=" expr
    dest        := "FAIL_SENDER" | IDENT [ "[" expr "]" ]
    deploy_block:= "Deploy" "{" (IDENT ["[" INT "]"] "=" IDENT ";")* "}"

Expressions use C precedence with the paper's ``<>`` inequality.  The
optional integer labels let the paper's listings be pasted verbatim.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.fail.lang import ast
from repro.fail.lang.errors import FailSyntaxError
from repro.fail.lang.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value or kind
            raise FailSyntaxError(f"expected {want!r}, got {tok.value!r}",
                                  line=tok.line, col=tok.col)
        return tok

    def at(self, kind: str, value: Optional[str] = None, ahead: int = 0) -> bool:
        tok = self.peek(ahead)
        return tok.kind == kind and (value is None or tok.value == value)

    # -- program -------------------------------------------------------------
    def program(self) -> ast.Program:
        daemons: List[ast.DaemonDef] = []
        deploy: List[ast.DeployDirective] = []
        while not self.at("eof"):
            if self.at("keyword", "Daemon"):
                daemons.append(self.daemon_def())
            elif self.at("keyword", "Deploy"):
                deploy.extend(self.deploy_block())
            else:
                tok = self.peek()
                raise FailSyntaxError(
                    f"expected 'Daemon' or 'Deploy', got {tok.value!r}",
                    line=tok.line, col=tok.col)
        return ast.Program(daemons=tuple(daemons), deploy=tuple(deploy))

    def daemon_def(self) -> ast.DaemonDef:
        self.expect("keyword", "Daemon")
        name = self.expect("ident").value
        self.expect("{")
        variables: List[ast.VarDecl] = []
        while True:
            # optional listing label before a daemon-scope declaration
            if self.at("number") and self.at("keyword", "int", ahead=1):
                self.next()
            if not self.at("keyword", "int"):
                break
            self.next()
            var = self.expect("ident").value
            self.expect("=")
            init = self.expr()
            self.expect(";")
            variables.append(ast.VarDecl(var, init))
        nodes: List[ast.NodeDef] = []
        while self.at("keyword", "node"):
            nodes.append(self.node_def())
        self.expect("}")
        if not nodes:
            tok = self.peek()
            raise FailSyntaxError(f"daemon {name!r} has no nodes",
                                  line=tok.line, col=tok.col)
        return ast.DaemonDef(name=name, variables=tuple(variables),
                             nodes=tuple(nodes))

    def node_def(self) -> ast.NodeDef:
        self.expect("keyword", "node")
        # tolerate the paper's "node node 1:" typo
        if self.at("keyword", "node"):
            self.next()
        node_id = int(self.expect("number").value)
        self.expect(":")
        always: List[ast.AlwaysDecl] = []
        timers: List[ast.TimerDecl] = []
        transitions: List[ast.Transition] = []
        while True:
            # optional listing label: an integer not followed by ':'
            if self.at("number") and not self.at(":", ahead=1):
                self.next()
            if self.at("keyword", "always"):
                self.next()
                self.expect("keyword", "int")
                var = self.expect("ident").value
                self.expect("=")
                init = self.expr()
                self.expect(";")
                always.append(ast.AlwaysDecl(var, init))
            elif self.at("keyword", "time"):
                self.next()
                var = self.expect("ident").value
                self.expect("=")
                delay = self.expr()
                self.expect(";")
                timers.append(ast.TimerDecl(var, delay))
            elif self._at_trigger():
                transitions.append(self.transition())
            else:
                break
        return ast.NodeDef(node_id=node_id, always=tuple(always),
                           timers=tuple(timers), transitions=tuple(transitions))

    # -- transitions --------------------------------------------------------
    _TRIGGER_KEYWORDS = ("timer", "onload", "onexit", "onerror", "before")

    def _at_trigger(self) -> bool:
        if self.at("?"):
            return True
        return any(self.at("keyword", kw) for kw in self._TRIGGER_KEYWORDS)

    def transition(self) -> ast.Transition:
        line = self.peek().line
        trigger = self.trigger()
        guard: Optional[ast.Expr] = None
        if self.at("&&"):
            self.next()
            guard = self.expr()
        self.expect("->")
        actions = [self.action()]
        while self.at(","):
            self.next()
            actions.append(self.action())
        self.expect(";")
        return ast.Transition(trigger=trigger, guard=guard,
                              actions=tuple(actions), line=line)

    def trigger(self) -> ast.Trigger:
        if self.at("?"):
            self.next()
            return ast.MsgTrigger(self.expect("ident").value)
        tok = self.next()
        if tok.kind != "keyword":
            raise FailSyntaxError(f"expected a trigger, got {tok.value!r}",
                                  line=tok.line, col=tok.col)
        if tok.value == "timer":
            return ast.TimerTrigger()
        if tok.value == "onload":
            return ast.OnLoad()
        if tok.value == "onexit":
            return ast.OnExit()
        if tok.value == "onerror":
            return ast.OnError()
        if tok.value == "before":
            self.expect("(")
            func = self.expect("ident").value
            self.expect(")")
            return ast.Before(func)
        raise FailSyntaxError(f"unknown trigger {tok.value!r}",
                              line=tok.line, col=tok.col)

    def action(self) -> ast.Action:
        if self.at("!"):
            self.next()
            msg = self.expect("ident").value
            self.expect("(")
            dest = self.dest()
            self.expect(")")
            return ast.SendAction(msg=msg, dest=dest)
        if self.at("keyword", "goto"):
            self.next()
            return ast.GotoAction(int(self.expect("number").value))
        if self.at("keyword", "halt"):
            self.next()
            return ast.HaltAction()
        if self.at("keyword", "stop"):
            self.next()
            return ast.StopAction()
        if self.at("keyword", "continue"):
            self.next()
            return ast.ContinueAction()
        if self.at("keyword", "partition"):
            self.next()
            self.expect("(")
            dest = self.dest()
            self.expect(")")
            return ast.PartitionAction(dest=dest)
        if self.at("keyword", "heal"):
            self.next()
            return ast.HealAction()
        if self.at("ident") and self.at("=", ahead=1):
            name = self.next().value
            self.next()
            return ast.AssignAction(name=name, expr=self.expr())
        tok = self.peek()
        raise FailSyntaxError(f"expected an action, got {tok.value!r}",
                              line=tok.line, col=tok.col)

    def dest(self) -> ast.Dest:
        tok = self.expect("ident")
        if tok.value == "FAIL_SENDER":
            return ast.DestSender()
        if self.at("["):
            self.next()
            index = self.expr()
            self.expect("]")
            return ast.DestIndex(group=tok.value, index=index)
        return ast.DestName(tok.value)

    # -- expressions (precedence climbing) --------------------------------------
    _BIN_LEVELS: Tuple[Tuple[str, ...], ...] = (
        ("||",),
        ("&&",),
        ("==", "<>"),
        ("<", "<=", ">", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def expr(self, level: int = 0) -> ast.Expr:
        if level == len(self._BIN_LEVELS):
            return self.unary()
        left = self.expr(level + 1)
        ops = self._BIN_LEVELS[level]
        while any(self.at(op) for op in ops):
            op = self.next().value
            right = self.expr(level + 1)
            left = ast.BinOp(op=op, left=left, right=right)
        return left

    def unary(self) -> ast.Expr:
        if self.at("-"):
            self.next()
            return ast.UnOp("-", self.unary())
        if self.at("!"):
            self.next()
            return ast.UnOp("!", self.unary())
        return self.atom()

    def atom(self) -> ast.Expr:
        if self.at("number"):
            return ast.Num(int(self.next().value))
        if self.at("("):
            self.next()
            inner = self.expr()
            self.expect(")")
            return inner
        tok = self.expect("ident")
        if tok.value == "FAIL_RANDOM":
            self.expect("(")
            lo = self.expr()
            self.expect(",")
            hi = self.expr()
            self.expect(")")
            return ast.RandCall(lo=lo, hi=hi)
        if tok.value == "FAIL_READ":
            self.expect("(")
            name = self.expect("ident").value
            self.expect(")")
            return ast.ReadCall(name=name)
        return ast.Var(tok.value)

    # -- deploy ---------------------------------------------------------------
    def deploy_block(self) -> List[ast.DeployDirective]:
        self.expect("keyword", "Deploy")
        self.expect("{")
        out: List[ast.DeployDirective] = []
        while not self.at("}"):
            instance = self.expect("ident").value
            group_size: Optional[int] = None
            if self.at("["):
                self.next()
                group_size = int(self.expect("number").value)
                self.expect("]")
            self.expect("=")
            daemon = self.expect("ident").value
            self.expect(";")
            out.append(ast.DeployDirective(instance=instance, daemon=daemon,
                                           group_size=group_size))
        self.expect("}")
        return out


def parse_fail(source: str) -> ast.Program:
    """Parse FAIL source text into a :class:`repro.fail.lang.ast.Program`."""
    return _Parser(tokenize(source)).program()
