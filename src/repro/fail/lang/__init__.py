"""The FAIL language front end (lexer, parser, AST, checks, printer)."""

from repro.fail.lang.errors import FailSemanticError, FailSyntaxError
from repro.fail.lang.lexer import Token, tokenize
from repro.fail.lang.parser import parse_fail
from repro.fail.lang.pretty import pretty_print

__all__ = [
    "FailSyntaxError",
    "FailSemanticError",
    "Token",
    "tokenize",
    "parse_fail",
    "pretty_print",
]
