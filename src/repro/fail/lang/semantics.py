"""Semantic checks for FAIL programs.

Run after parsing and before compilation: catches dangling ``goto``\\ s,
undeclared variables, duplicate names — the errors the FCI compiler
would reject before generating code.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.fail.lang import ast
from repro.fail.lang.errors import FailSemanticError


def _expr_vars(expr: ast.Expr) -> Set[str]:
    if isinstance(expr, ast.Num):
        return set()
    if isinstance(expr, ast.Var):
        return {expr.name}
    if isinstance(expr, ast.BinOp):
        return _expr_vars(expr.left) | _expr_vars(expr.right)
    if isinstance(expr, ast.UnOp):
        return _expr_vars(expr.operand)
    if isinstance(expr, ast.RandCall):
        return _expr_vars(expr.lo) | _expr_vars(expr.hi)
    if isinstance(expr, ast.ReadCall):
        return set()        # resolved against the application at runtime
    raise TypeError(f"not an expression: {expr!r}")


def check_daemon(daemon: ast.DaemonDef, params: Iterable[str] = ()) -> None:
    """Validate one daemon definition.

    ``params`` are externally-substituted names (the paper's meta
    variables like X and N) that count as defined.
    """
    params = set(params)
    node_ids = [nd.node_id for nd in daemon.nodes]
    dupes = {i for i in node_ids if node_ids.count(i) > 1}
    if dupes:
        raise FailSemanticError(
            f"daemon {daemon.name!r}: duplicate node id(s) {sorted(dupes)}")
    node_set = set(node_ids)
    daemon_vars = {v.name for v in daemon.variables}
    var_dupes = [v.name for v in daemon.variables
                 if sum(1 for w in daemon.variables if w.name == v.name) > 1]
    if var_dupes:
        raise FailSemanticError(
            f"daemon {daemon.name!r}: duplicate variable(s) {sorted(set(var_dupes))}")

    for decl in daemon.variables:
        undef = _expr_vars(decl.init) - params
        if undef:
            raise FailSemanticError(
                f"daemon {daemon.name!r}: variable {decl.name!r} initialised "
                f"from undefined name(s) {sorted(undef)}")

    for nd in daemon.nodes:
        local = set(daemon_vars)
        for a in nd.always:
            undef = _expr_vars(a.init) - local - params
            if undef:
                raise FailSemanticError(
                    f"daemon {daemon.name!r} node {nd.node_id}: always "
                    f"variable {a.name!r} uses undefined name(s) {sorted(undef)}")
            local.add(a.name)
        timer_count = len(nd.timers)
        for t in nd.timers:
            undef = _expr_vars(t.delay) - local - params
            if undef:
                raise FailSemanticError(
                    f"daemon {daemon.name!r} node {nd.node_id}: timer "
                    f"{t.name!r} uses undefined name(s) {sorted(undef)}")
        for tr in nd.transitions:
            if isinstance(tr.trigger, ast.TimerTrigger) and timer_count == 0:
                raise FailSemanticError(
                    f"daemon {daemon.name!r} node {nd.node_id}: 'timer' "
                    f"trigger but no timer declared in this node",
                    line=tr.line)
            if tr.guard is not None:
                undef = _expr_vars(tr.guard) - local - params
                if undef:
                    raise FailSemanticError(
                        f"daemon {daemon.name!r} node {nd.node_id}: guard "
                        f"uses undefined name(s) {sorted(undef)}", line=tr.line)
            for action in tr.actions:
                if isinstance(action, ast.GotoAction):
                    if action.node not in node_set:
                        raise FailSemanticError(
                            f"daemon {daemon.name!r} node {nd.node_id}: goto "
                            f"{action.node} targets a nonexistent node",
                            line=tr.line)
                elif isinstance(action, ast.AssignAction):
                    if action.name not in daemon_vars:
                        raise FailSemanticError(
                            f"daemon {daemon.name!r} node {nd.node_id}: "
                            f"assignment to undeclared variable "
                            f"{action.name!r}", line=tr.line)
                    undef = _expr_vars(action.expr) - local - params
                    if undef:
                        raise FailSemanticError(
                            f"daemon {daemon.name!r} node {nd.node_id}: "
                            f"assignment uses undefined name(s) "
                            f"{sorted(undef)}", line=tr.line)
                elif isinstance(action, (ast.SendAction, ast.PartitionAction)):
                    if isinstance(action.dest, ast.DestIndex):
                        undef = _expr_vars(action.dest.index) - local - params
                        if undef:
                            raise FailSemanticError(
                                f"daemon {daemon.name!r} node {nd.node_id}: "
                                f"destination index uses undefined name(s) "
                                f"{sorted(undef)}", line=tr.line)


def check_program(program: ast.Program, params: Iterable[str] = ()) -> None:
    """Validate a whole scenario program."""
    names = [d.name for d in program.daemons]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise FailSemanticError(f"duplicate daemon definition(s) {sorted(dupes)}")
    for d in program.daemons:
        check_daemon(d, params)
    known = set(names)
    for directive in program.deploy:
        if directive.daemon not in known:
            raise FailSemanticError(
                f"deploy: instance {directive.instance!r} references "
                f"unknown daemon {directive.daemon!r}")
