"""Tokenizer for the FAIL language.

The token set covers everything appearing in the paper's scenario
listings (Figs. 4, 5a, 7a, 8a/8b, 10a/10b): keywords, integer
literals, identifiers, the ``<>`` inequality of the paper's dialect,
``?msg`` receive triggers, ``!msg(dest)`` send actions and C-style
comments (``//`` and ``/* */``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.fail.lang.errors import FailSyntaxError

KEYWORDS = {
    "Daemon", "Deploy", "node", "int", "time", "always", "goto",
    "halt", "stop", "continue", "timer", "onload", "onexit", "onerror",
    "before", "after", "on", "group", "partition", "heal",
}

#: multi-char operators first so maximal munch works
_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><>|==|<=|>=|&&|\|\||->|[{}():;,!?\[\]<>=+\-*/%\.])
""", re.VERBOSE | re.DOTALL)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str       # 'number' | 'ident' | 'keyword' | operator literal | 'eof'
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"Token({self.kind!r}, {self.value!r}, L{self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list ending with an ``eof`` token."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            col = pos - line_start + 1
            raise FailSyntaxError(f"unexpected character {source[pos]!r}",
                                  line=line, col=col)
        text = m.group(0)
        kind = m.lastgroup
        col = pos - line_start + 1
        if kind in ("ws", "comment"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = pos + text.rfind("\n") + 1
        elif kind == "number":
            tokens.append(Token("number", text, line, col))
        elif kind == "ident":
            if text in KEYWORDS:
                tokens.append(Token("keyword", text, line, col))
            else:
                tokens.append(Token("ident", text, line, col))
        else:  # operator
            tokens.append(Token(text, text, line, col))
        pos = m.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
