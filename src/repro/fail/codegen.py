"""Python code generation from FAIL daemons.

The real FCI compiler emits C++ sources that are shipped to every
machine and compiled there.  The equivalent artifact here is readable
Python: :func:`generate_python` renders a daemon definition as a
self-contained handler class whose structure mirrors the generated C++
(one method per node, a dispatch table, explicit variable slots).  The
output is primarily documentation/debugging aid — the interpreter in
:mod:`repro.fail.machine` is what actually runs scenarios — but it is
executable and covered by tests, which pins down the semantics twice.
"""

from __future__ import annotations

from typing import List

from repro.fail.lang import ast
from repro.fail.lang.pretty import action_str, trigger_str


def _py_expr(expr: ast.Expr) -> str:
    """FAIL expression → Python expression over ``self.vars``/``env``."""
    if isinstance(expr, ast.Num):
        return str(expr.value)
    if isinstance(expr, ast.Var):
        return f"env[{expr.name!r}]"
    if isinstance(expr, ast.RandCall):
        # _rand() mirrors the interpreter: inclusive, swapped if reversed
        return f"self._rand({_py_expr(expr.lo)}, {_py_expr(expr.hi)})"
    if isinstance(expr, ast.ReadCall):
        return f"self.ctx.read_app_var({expr.name!r})"
    if isinstance(expr, ast.UnOp):
        if expr.op == "-":
            return f"(-{_py_expr(expr.operand)})"
        return f"(0 if {_py_expr(expr.operand)} else 1)"
    if isinstance(expr, ast.BinOp):
        op = {"&&": "and", "||": "or", "<>": "!=", "==": "==",
              "/": "//"}.get(expr.op, expr.op)
        lhs, rhs = _py_expr(expr.left), _py_expr(expr.right)
        if expr.op in ("==", "<>", "<", "<=", ">", ">=", "&&", "||"):
            return f"(1 if ({lhs} {op} {rhs}) else 0)"
        return f"({lhs} {op} {rhs})"
    raise TypeError(f"not an expression: {expr!r}")


def _trigger_cond(trigger: ast.Trigger) -> str:
    if isinstance(trigger, ast.TimerTrigger):
        return "kind == 'timer'"
    if isinstance(trigger, ast.MsgTrigger):
        return f"kind == 'msg' and arg == {trigger.name!r}"
    if isinstance(trigger, ast.OnLoad):
        return "kind == 'onload'"
    if isinstance(trigger, ast.OnExit):
        return "kind == 'onexit'"
    if isinstance(trigger, ast.OnError):
        return "kind == 'onerror'"
    if isinstance(trigger, ast.Before):
        return f"kind == 'before' and arg == {trigger.func!r}"
    raise TypeError(f"not a trigger: {trigger!r}")


def _dest_py(dest: ast.Dest) -> str:
    if isinstance(dest, ast.DestSender):
        return "sender"
    if isinstance(dest, ast.DestName):
        return repr(dest.name)
    if isinstance(dest, ast.DestIndex):
        return f"'{dest.group}[' + str({_py_expr(dest.index)}) + ']'"
    raise TypeError(f"not a destination: {dest!r}")


def generate_python(daemon: ast.DaemonDef, params=None) -> str:
    """Render ``daemon`` as a Python handler class (source text)."""
    params = dict(params or {})
    lines: List[str] = []
    emit = lines.append
    emit(f"class {daemon.name}Handler:")
    emit(f'    """Generated from FAIL daemon {daemon.name!r} — one method')
    emit('    per node, mirroring the FCI compiler\'s C++ output."""')
    emit("")
    emit("    PARAMS = " + repr(params))
    emit("")
    emit("    def __init__(self, ctx, rng):")
    emit("        self.ctx = ctx")
    emit("        self.rng = rng")
    emit("        self.vars = dict(self.PARAMS)")
    for var in daemon.variables:
        emit(f"        self.vars[{var.name!r}] = "
             f"{_py_expr(var.init).replace('env[', 'self.vars[')}")
    emit(f"        self.node = {daemon.start_node}")
    emit("        self.enter_node()")
    emit("")
    emit("    def env(self):")
    emit("        return dict(self.vars)")
    emit("")
    emit("    def _rand(self, lo, hi):")
    emit("        if hi < lo:")
    emit("            lo, hi = hi, lo")
    emit("        return self.rng.randint(lo, hi)")
    emit("")
    emit("    def enter_node(self):")
    emit("        getattr(self, f'enter_{self.node}')()")
    emit("")
    emit("    def handle(self, kind, arg=None, sender=None):")
    emit("        return getattr(self, f'node_{self.node}')(kind, arg, sender)")
    emit("")
    for node in daemon.nodes:
        emit(f"    def enter_{node.node_id}(self):")
        emit("        env = self.env()")
        emit("        self.always_vars = {}")
        for decl in node.always:
            emit(f"        env[{decl.name!r}] = "
                 f"self.always_vars[{decl.name!r}] = {_py_expr(decl.init)}")
        for tdecl in node.timers:
            emit(f"        self.ctx.arm_timer({_py_expr(tdecl.delay)})")
        emit("")
        emit(f"    def node_{node.node_id}(self, kind, arg, sender):")
        emit("        # env rebuilt per event: assignments without a goto")
        emit("        # must be visible to later guards, as in the")
        emit("        # interpreter (repro.fail.machine)")
        emit("        env = self.env()")
        emit("        env.update(self.always_vars)")
        for tr in node.transitions:
            cond = _trigger_cond(tr.trigger)
            if tr.guard is not None:
                cond += f" and ({_py_expr(tr.guard)})"
            emit(f"        # {trigger_str(tr.trigger)} -> "
                 + ", ".join(action_str(a) for a in tr.actions))
            emit(f"        if {cond}:")
            goto = None
            for action in tr.actions:
                if isinstance(action, ast.SendAction):
                    emit(f"            self.ctx.send({action.msg!r}, "
                         f"{_dest_py(action.dest)})")
                elif isinstance(action, ast.GotoAction):
                    goto = action.node
                elif isinstance(action, ast.HaltAction):
                    emit("            self.ctx.halt()")
                elif isinstance(action, ast.StopAction):
                    emit("            self.ctx.stop()")
                elif isinstance(action, ast.ContinueAction):
                    emit("            self.ctx.cont()")
                elif isinstance(action, ast.PartitionAction):
                    emit(f"            self.ctx.partition("
                         f"{_dest_py(action.dest)})")
                elif isinstance(action, ast.HealAction):
                    emit("            self.ctx.heal()")
                elif isinstance(action, ast.AssignAction):
                    emit(f"            self.vars[{action.name!r}] = "
                         f"{_py_expr(action.expr)}")
            if goto is not None:
                emit(f"            self.node = {goto}")
                emit("            self.enter_node()")
            emit("            return True")
        emit("        return False")
        emit("")
    return "\n".join(lines) + "\n"


def generate_module(program: ast.Program, params=None) -> str:
    """Render every daemon of a program into one Python module text."""
    header = (
        '"""Generated by repro.fail.codegen — the Python analogue of the\n'
        'FCI compiler\'s per-machine C++ output.  Do not edit."""\n\n'
    )
    return header + "\n\n".join(
        generate_python(d, params) for d in program.daemons)
