"""repro — a full reproduction of "FAIL-MPI: How fault-tolerant is
fault-tolerant MPI?" (Hérault et al., CLUSTER 2006).

Layers (bottom-up):

* :mod:`repro.simkernel` — deterministic discrete-event kernel;
* :mod:`repro.cluster` — simulated nodes, unix processes, TCP network;
* :mod:`repro.mpi` — a mini-MPI over the cluster substrate;
* :mod:`repro.mpichv` — the MPICH-Vcl fault-tolerant runtime
  (non-blocking Chandy-Lamport, dispatcher, checkpoint servers);
* :mod:`repro.fail` — the FAIL language and the FAIL-MPI injection
  platform (the paper's contribution);
* :mod:`repro.workloads` — NAS-BT-like benchmark and demo apps;
* :mod:`repro.experiments` — per-figure drivers and the run harness;
* :mod:`repro.analysis` — traces, outcome classification, statistics.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
