"""repro.netmodel — pluggable network topologies for the simulated cluster.

The subsystem has two halves:

* :mod:`repro.netmodel.spec` — :class:`TopologySpec` (per-deployment
  topology configuration; hashes into trial cache keys) and the
  network default constants every other layer imports;
* :mod:`repro.netmodel.fabric` — the :class:`FabricModel` registry and
  the built-in ``uniform`` / ``star`` / ``twotier`` models with
  per-link counters.

Runtime-mutable link state (``cut_link`` / ``partition`` / ``heal``)
lives on :class:`repro.cluster.network.Network`, which owns the live
connections a cut must sever; the fabric only shapes delivery times.
"""

from repro.netmodel.spec import (DEFAULT_BANDWIDTH, DEFAULT_LATENCY,
                                 TopologySpec)
from repro.netmodel.fabric import (FABRICS, FabricModel, Link, StarFabric,
                                   TwoTierFabric, UniformFabric,
                                   available_fabrics, build_fabric,
                                   register_fabric, validate_model)

__all__ = [
    "DEFAULT_BANDWIDTH", "DEFAULT_LATENCY", "TopologySpec",
    "FABRICS", "FabricModel", "Link", "StarFabric", "TwoTierFabric",
    "UniformFabric", "available_fabrics", "build_fabric",
    "register_fabric", "validate_model",
]
