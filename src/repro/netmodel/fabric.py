"""Pluggable fabric models behind the :class:`repro.cluster.network.Network` API.

A *fabric model* turns (source host, destination host, message size)
into a delivery time by walking per-link queues, and carries per-link
byte/message counters the experiments surface as traffic accounting.
Models register by name in :data:`FABRICS` (the same
:class:`repro.registry.Registry` the protocol and workload plugin
systems use), selected per deployment through a
:class:`~repro.netmodel.spec.TopologySpec`.

Built-in models:

``uniform``
    Today's single homogeneous fabric: per-connection pipelining only,
    infinite switching capacity.  This is the default and is
    bit-identical to the historical :class:`Network` arithmetic — the
    network hot path special-cases it so no per-message topology
    lookup happens at all (guarded by ``tests/test_netmodel.py`` and
    ``benchmarks/test_micro.py::test_network_delivery_throughput``).
``star``
    Every host hangs off one shared switch through a private
    access-link pair (up/down).  Uplinks serialize: concurrent
    transfers from one host contend for its uplink, concurrent
    transfers *to* one host contend for its downlink — the
    checkpoint-server ingest pattern of the paper's Fig. 6.
``twotier``
    Racks of ``rack_size`` hosts with fast intra-rack switching and an
    oversubscribed inter-rack core: the core link of a rack carries
    ``bandwidth * rack_size / oversubscription``, so rack-crossing
    checkpoint waves queue behind each other.

Transmission is store-and-forward: each link adds its own latency and
serialization delay, and a link busy until ``free_at`` queues the
message (``max(free_at, ...)``).  Per-connection FIFO is preserved on
top by the network layer's per-socket pipe clamp.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.netmodel.spec import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, TopologySpec
from repro.registry import Registry

FABRICS = Registry("fabric model")


def register_fabric(name: str, cls, replace: bool = False):
    """Register a :class:`FabricModel` subclass under ``name``."""
    return FABRICS.register(name, cls, replace=replace)


def available_fabrics() -> List[str]:
    return FABRICS.available()


def validate_model(name: str) -> None:
    """Raise ``ValueError`` for unknown fabric model names."""
    FABRICS.get(name)


def build_fabric(topology, latency: Optional[float] = None,
                 bandwidth: Optional[float] = None) -> "FabricModel":
    """Instantiate the fabric a :class:`TopologySpec` describes.

    ``latency``/``bandwidth`` are the deployment defaults used when the
    spec leaves its own ``None``.
    """
    spec = TopologySpec.coerce(topology)
    cls = FABRICS.get(spec.model)
    base_latency = spec.latency if spec.latency is not None else (
        latency if latency is not None else DEFAULT_LATENCY)
    base_bandwidth = spec.bandwidth if spec.bandwidth is not None else (
        bandwidth if bandwidth is not None else DEFAULT_BANDWIDTH)
    return cls(spec, base_latency, base_bandwidth)


class Link:
    """One directed link: latency, bandwidth, a queue, and counters."""

    __slots__ = ("name", "latency", "bandwidth", "free_at", "bytes",
                 "messages")

    def __init__(self, name: str, latency: float, bandwidth: float):
        self.name = name
        self.latency = latency
        self.bandwidth = bandwidth
        self.free_at = 0.0
        self.bytes = 0
        self.messages = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (f"<Link {self.name} lat={self.latency} bw={self.bandwidth} "
                f"bytes={self.bytes}>")


class FabricModel:
    """Base class: host registry, cached paths, store-and-forward."""

    #: registry name (informational; lookup goes through FABRICS)
    name = "?"
    #: True only for the uniform model, enabling the network fast path
    is_uniform = False

    def __init__(self, spec: TopologySpec, latency: float, bandwidth: float):
        self.spec = spec
        self.latency = latency
        self.bandwidth = bandwidth
        self._hosts: Dict[str, int] = {}       # host -> registration index
        self._links: Dict[str, Link] = {}
        self._paths: Dict[Tuple[str, str], Tuple[Link, ...]] = {}

    # -- hosts ---------------------------------------------------------------
    def register_host(self, host: str) -> None:
        """Declare a host (idempotent).  Registration order is the
        cluster's node-creation order, which pins rack assignment."""
        if host not in self._hosts:
            self._hosts[host] = len(self._hosts)
            self._host_added(host)

    def _host_added(self, host: str) -> None:
        """Hook: build the host's access links."""

    def _link(self, name: str, latency: float, bandwidth: float) -> Link:
        link = self._links.get(name)
        if link is None:
            link = self._links[name] = Link(name, latency, bandwidth)
        return link

    # -- paths ---------------------------------------------------------------
    def path(self, src: str, dst: str) -> Tuple[Link, ...]:
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is None:
            self.register_host(src)
            self.register_host(dst)
            cached = self._paths[key] = self._build_path(src, dst)
        return cached

    def _build_path(self, src: str, dst: str) -> Tuple[Link, ...]:
        raise NotImplementedError

    def latency_between(self, src: str, dst: str) -> float:
        """One-way zero-byte latency (connection setup, close notify)."""
        if src == dst:
            return self.latency
        path = self.path(src, dst)
        if not path:
            return self.latency
        return sum(link.latency for link in path)

    # -- lookahead ------------------------------------------------------------
    def lookahead_between(self, src: str, dst: str) -> float:
        """Conservative lower bound on any ``src -> dst`` delivery.

        This is the *lookahead* of partitioned execution
        (:mod:`repro.simkernel.parallel`): no payload sent at ``t`` can
        affect ``dst`` before ``t + lookahead_between(src, dst)``.  The
        store-and-forward walk only ever adds latency on top of the
        path's propagation sum (serialization and queueing delay
        payloads further), so the zero-byte path latency is exactly
        that bound.
        """
        return self.latency_between(src, dst)

    def min_lookahead(self, groups: Sequence[Sequence[str]]) -> float:
        """Smallest cross-group lookahead — the safe-horizon increment
        a partitioning of the hosts into ``groups`` can bank on.

        The generic walk is pairwise over cross-group host pairs
        (cached paths make repeats cheap); the uniform fabric has one
        homogeneous latency, so it answers in O(1) without ever
        materializing paths.  Returns ``inf`` for fewer than two
        groups (no cross traffic to bound).
        """
        if len(groups) < 2:
            return float("inf")
        if self.is_uniform:
            return self.latency
        best = float("inf")
        for i, ga in enumerate(groups):
            for gb in groups[i + 1:]:
                for a in ga:
                    for b in gb:
                        d = min(self.lookahead_between(a, b),
                                self.lookahead_between(b, a))
                        if d < best:
                            best = d
        return best

    # -- transmission ---------------------------------------------------------
    def delivery(self, now: float, src: str, dst: str, size: int,
                 pipe_free: float) -> float:
        """Arrival time of a ``size``-byte message sent at ``now``.

        Walks the path store-and-forward, queueing on busy links, and
        clamps with ``pipe_free`` so per-connection FIFO survives any
        topology.  Also accounts the bytes on every traversed link.
        """
        path = self.path(src, dst)
        if not path:        # same host (or degenerate): uniform formula
            return max(pipe_free, now + self.latency + size / self.bandwidth)
        t = now
        for link in path:
            # serialization gates the start: the link transmits one
            # message at a time; propagation latency then pipelines
            start = max(t, link.free_at)
            link.free_at = start + size / link.bandwidth
            t = link.free_at + link.latency
            link.bytes += size
            link.messages += 1
        return max(t, pipe_free)

    # -- accounting -----------------------------------------------------------
    def link_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-link byte/message counters, keyed by link name."""
        return {name: {"bytes": link.bytes, "messages": link.messages}
                for name, link in sorted(self._links.items())}

    def hotspot(self) -> Tuple[Optional[str], int]:
        """``(link name, bytes)`` of the busiest link (deterministic
        tie-break on name); ``(None, 0)`` before any traffic."""
        best: Optional[Link] = None
        for _name, link in sorted(self._links.items()):
            if best is None or link.bytes > best.bytes:
                best = link
        if best is None or best.bytes == 0:
            return (None, 0)
        return (best.name, best.bytes)


class UniformFabric(FabricModel):
    """The historical model: one homogeneous fabric, per-connection
    pipelining only, infinite switching capacity.

    ``delivery`` reproduces the seed arithmetic bit for bit; the
    network layer additionally short-circuits it entirely while no
    links are cut (the fast path), so fault-free uniform runs never
    consult the fabric per message.
    """

    name = "uniform"
    is_uniform = True

    def _build_path(self, src: str, dst: str) -> Tuple[Link, ...]:
        return ()

    def delivery(self, now: float, src: str, dst: str, size: int,
                 pipe_free: float) -> float:
        return max(pipe_free, now + self.latency + size / self.bandwidth)


class StarFabric(FabricModel):
    """Per-host access links feeding one shared switch."""

    name = "star"

    def _host_added(self, host: str) -> None:
        spec = self.spec
        up_bw = (spec.uplink_bandwidth if spec.uplink_bandwidth is not None
                 else self.bandwidth)
        self._link(f"{host}/up", self.latency / 2 + spec.switch_latency,
                   up_bw)
        self._link(f"{host}/down", self.latency / 2, self.bandwidth)

    def _build_path(self, src: str, dst: str) -> Tuple[Link, ...]:
        if src == dst:
            return ()
        return (self._links[f"{src}/up"], self._links[f"{dst}/down"])

    def min_lookahead(self, groups: Sequence[Sequence[str]]) -> float:
        # Every distinct-host path is up + down: structurally O(1).
        if len(groups) < 2:
            return float("inf")
        return self.latency + self.spec.switch_latency


class TwoTierFabric(FabricModel):
    """Racks with fast intra-rack links and an oversubscribed core.

    Hosts are assigned to racks in registration (node-creation) order:
    ``rack = index // rack_size``.  Intra-rack traffic crosses only the
    two access links; inter-rack traffic additionally queues on the
    source rack's core uplink and the destination rack's core
    downlink, each carrying ``bandwidth * rack_size /
    oversubscription``.
    """

    name = "twotier"

    def _core_bandwidth(self) -> float:
        spec = self.spec
        return self.bandwidth * spec.rack_size / spec.oversubscription

    def _core_latency(self) -> float:
        core = self.spec.core_latency
        return core if core is not None else self.latency

    def rack_of(self, host: str) -> int:
        self.register_host(host)
        return self._hosts[host] // self.spec.rack_size

    def _host_added(self, host: str) -> None:
        spec = self.spec
        self._link(f"{host}/up", self.latency / 2 + spec.switch_latency,
                   self.bandwidth)
        self._link(f"{host}/down", self.latency / 2, self.bandwidth)
        rack = self._hosts[host] // spec.rack_size
        half_core = self._core_latency() / 2
        self._link(f"rack{rack}/up", half_core, self._core_bandwidth())
        self._link(f"rack{rack}/down", half_core, self._core_bandwidth())

    def _build_path(self, src: str, dst: str) -> Tuple[Link, ...]:
        if src == dst:
            return ()
        src_rack = self._hosts[src] // self.spec.rack_size
        dst_rack = self._hosts[dst] // self.spec.rack_size
        if src_rack == dst_rack:
            return (self._links[f"{src}/up"], self._links[f"{dst}/down"])
        return (self._links[f"{src}/up"],
                self._links[f"rack{src_rack}/up"],
                self._links[f"rack{dst_rack}/down"],
                self._links[f"{dst}/down"])

    def min_lookahead(self, groups: Sequence[Sequence[str]]) -> float:
        # Structural, O(hosts): the bound is intra-rack (access links
        # only) when any two groups share a rack, else it includes the
        # core hop.  No path materialization for 512-rank group maps.
        if len(groups) < 2:
            return float("inf")
        intra = self.latency + self.spec.switch_latency
        rack_sets = []
        for group in groups:
            racks = set()
            for host in group:
                racks.add(self.rack_of(host))
            rack_sets.append(racks)
        for i, ra in enumerate(rack_sets):
            for rb in rack_sets[i + 1:]:
                if ra & rb:
                    return intra        # a cut splits a rack
        return intra + self._core_latency()


register_fabric("uniform", UniformFabric)
register_fabric("star", StarFabric)
register_fabric("twotier", TwoTierFabric)
