"""Topology specification — the single source of truth for network
defaults.

:data:`DEFAULT_LATENCY` and :data:`DEFAULT_BANDWIDTH` used to be
duplicated between :mod:`repro.cluster.network` and the
``net_latency`` / ``net_bandwidth`` defaults of
:class:`repro.mpichv.config.TimingModel`; both now import from here
(regression-tested in ``tests/test_netmodel.py``).

A :class:`TopologySpec` names a fabric model from the registry in
:mod:`repro.netmodel.fabric` plus its knobs; it is a frozen dataclass
so it hashes into trial cache keys like every other
:class:`~repro.experiments.harness.TrialSetup` ingredient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

DEFAULT_LATENCY = 1e-4          # 100 us — GigE-ish
DEFAULT_BANDWIDTH = 100e6       # 100 MB/s effective GigE payload rate


@dataclass(frozen=True)
class TopologySpec:
    """One fabric model plus its parameters.

    ``latency``/``bandwidth`` of ``None`` inherit the deployment's
    network defaults (:class:`~repro.mpichv.config.TimingModel`
    ``net_latency``/``net_bandwidth``), so a bare
    ``TopologySpec("star")`` reshapes the fabric without recalibrating
    it.
    """

    #: fabric model name, resolved in :data:`repro.netmodel.fabric.FABRICS`
    #: ("uniform", "star", "twotier", ...)
    model: str = "uniform"
    #: base one-way host-to-host latency (None -> deployment default)
    latency: Optional[float] = None
    #: per-host access-link bandwidth (None -> deployment default)
    bandwidth: Optional[float] = None
    #: forwarding delay added once per switch traversal (star/twotier)
    switch_latency: float = 5e-6
    #: star only: per-node uplink into the shared switch
    #: (None -> ``bandwidth``); lowering it models uplink contention
    uplink_bandwidth: Optional[float] = None
    #: twotier only: hosts per rack (assigned in node-creation order)
    rack_size: int = 8
    #: twotier only: rack uplink oversubscription — the shared core
    #: link carries ``bandwidth * rack_size / oversubscription``
    oversubscription: float = 4.0
    #: twotier only: extra one-way latency of the inter-rack core
    #: (None -> same as ``latency``)
    core_latency: Optional[float] = None

    def __post_init__(self) -> None:
        if self.latency is not None and self.latency < 0:
            raise ValueError("topology latency must be >= 0")
        for name in ("bandwidth", "uplink_bandwidth"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"topology {name} must be > 0")
        if self.rack_size < 1:
            raise ValueError("rack_size must be >= 1")
        if self.oversubscription <= 0:
            raise ValueError("oversubscription must be > 0")

    @classmethod
    def coerce(cls, value) -> "TopologySpec":
        """Accept a spec, a bare model name, a knob dict, or ``None``.

        This is what lets ``--override topology=star`` (a string from
        the CLI) and ``config_overrides={"topology": {...}}`` both
        reach :class:`~repro.mpichv.config.VclConfig` unharmed.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(model=value)
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(f"cannot build a TopologySpec from {value!r}")
