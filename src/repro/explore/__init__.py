"""``repro.explore`` — property-based fault-space exploration.

The paper demonstrates six hand-written fault scenarios; this
subsystem *generates* adversaries, checks every run against recovery
oracles, and shrinks failures to minimal reproducers:

* :mod:`repro.explore.generators` — seeded scenario families compiled
  to FAIL source through :mod:`repro.fail.build`;
* :mod:`repro.explore.oracles` — per-trial correctness checks against
  a fault-free golden run plus per-protocol invariants;
* :mod:`repro.explore.campaign` — the protocol × workload × generator
  sweep through the cached parallel :class:`TrialRunner`
  (``python -m repro explore``);
* :mod:`repro.explore.shrink` — delta-debugging of failing fault
  plans down to minimal ``.fail`` scenarios.
"""

from repro.explore.campaign import (CampaignResult, ExploreConfig,
                                    quick_config, replay_scenario,
                                    run_campaign)
from repro.explore.generators import (FAMILIES, GeneratedScenario,
                                      GeneratorContext, generate,
                                      generate_suite, render_plan)
from repro.explore.oracles import ORACLE_NAMES, OracleReport, run_oracles
from repro.explore.shrink import ShrinkResult

# NOTE: the minimizer itself is reached as ``repro.explore.shrink.shrink``
# — re-exporting the function here would shadow the submodule name.

__all__ = [
    "CampaignResult",
    "ExploreConfig",
    "FAMILIES",
    "GeneratedScenario",
    "GeneratorContext",
    "ORACLE_NAMES",
    "OracleReport",
    "ShrinkResult",
    "generate",
    "generate_suite",
    "quick_config",
    "render_plan",
    "replay_scenario",
    "run_campaign",
    "run_oracles",
]
