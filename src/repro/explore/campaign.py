"""Exploration campaigns: sweep protocol × workload × generator grids.

A campaign turns a trial budget into a deterministic matrix of
generated fault scenarios, executes every trial through the shared
:class:`~repro.experiments.runner.TrialRunner` (inheriting worker
fan-out, the on-disk result cache and the parallel == serial
bit-for-bit guarantee), checks each result against the recovery
oracles, and delta-debugs any failure down to a minimal ``.fail``
reproducer.

Everything that lands in the verdict table is a pure function of the
campaign seed and configuration: scenario text, trial seeds, row order
and formatting.  Two runs of ``python -m repro explore --quick --seed
7`` produce byte-identical tables — wall-clock numbers go only to the
benchmark JSON.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import TrialSetup
from repro.experiments.runner import (TrialRunner, add_runner_arguments,
                                      runner_from_args)
import repro.analysis.coverage as coveragelib
import repro.explore.shrink as shrinklib
from repro.explore import generators
from repro.explore.generators import (GeneratedScenario, GeneratorContext,
                                      render_plan)
from repro.explore.corpus import Corpus, CorpusEntry, default_corpus_dir
from repro.explore.mutate import mutate
from repro.explore.oracles import (OracleReport, coverage_labels,
                                   failed_names, run_oracles)
from repro.mpichv import protocols
from repro.mpichv.runtime import RunResult
from repro.workloads import available_workloads

#: per-workload calibration at the campaign's default 4-process scale:
#: long enough that the fault window (default 10–80 s) lands mid-run,
#: short enough that a quick campaign stays CI-sized.
CALIBRATIONS: Dict[str, Dict[str, float]] = {
    "ring": {"niters": 40, "total_compute": 1280.0},      # ≈80 s fault-free
    "bt": {"niters": 30, "total_compute": 480.0},         # ≈120 s fault-free
    "masterworker": {"niters": 40, "total_compute": 480.0},
}


def derive_seed(*parts: object) -> int:
    """Stable 31-bit seed from arbitrary labels (hash-stable)."""
    text = ":".join(map(str, parts))
    return int(hashlib.sha256(text.encode("utf-8")).hexdigest()[:8], 16)


@dataclass(frozen=True)
class ExploreConfig:
    """One campaign, fully determined (with a seed) by these knobs."""

    protocols: Tuple[str, ...] = ()          # () -> every registered one
    workloads: Tuple[str, ...] = ("ring",)
    families: Tuple[str, ...] = ()           # () -> every family
    #: total fault-trial budget, split evenly over the grid
    budget: int = 90
    seed: int = 0
    n_procs: int = 4
    n_machines: int = 7
    #: simulated-time budget per trial (the oracle's progress horizon)
    timeout: float = 300.0
    #: explore the fixed dispatcher by default; True hunts the paper's bug
    bug_compat: bool = False
    window: Tuple[int, int] = (10, 80)
    max_faults: int = 4
    #: extra VclConfig attributes (e.g. {"cm_replay": False})
    config_overrides: Dict[str, object] = field(default_factory=dict)
    #: candidate-trial budget per shrink, and how many failures to shrink
    shrink_budget: int = 48
    max_shrinks: int = 4
    #: candidate-trial budget for minimize-on-admit in the guided loop
    #: (kept small: corpus plans only need to be *lean*, not minimal)
    corpus_shrink_budget: int = 12

    def resolved_protocols(self) -> Tuple[str, ...]:
        return tuple(self.protocols) or tuple(protocols.available())

    def resolved_families(self) -> Tuple[str, ...]:
        return tuple(sorted(self.families or generators.FAMILIES))

    def resolved_workloads(self) -> Tuple[str, ...]:
        for name in self.workloads:
            if name not in available_workloads():
                raise ValueError(f"unknown workload {name!r}")
        return tuple(self.workloads)

    def generator_context(self) -> GeneratorContext:
        stride = int(self.config_overrides.get("n_channel_memories", 2))
        servers = int(self.config_overrides.get("n_ckpt_servers", 2))
        return GeneratorContext(
            n_machines=self.n_machines, n_busy=self.n_procs,
            window=self.window, max_faults=self.max_faults,
            cm_stride=max(1, stride), n_ckpt_servers=max(1, servers))


def quick_config(seed: int = 0, **overrides) -> ExploreConfig:
    """The CI-sized campaign: one scenario per grid cell, ring only."""
    overrides.setdefault("workloads", ("ring",))
    cfg = ExploreConfig(seed=seed, budget=0, **overrides)
    cells = (len(cfg.resolved_families()) * len(cfg.resolved_protocols())
             * len(cfg.resolved_workloads()))
    return replace(cfg, budget=cells)


# ---------------------------------------------------------------------------
# trial construction
# ---------------------------------------------------------------------------

def _base_setup(cfg: ExploreConfig, workload: str,
                protocol: str) -> TrialSetup:
    calibration = CALIBRATIONS.get(workload, {})
    return TrialSetup(
        n_procs=cfg.n_procs, n_machines=cfg.n_machines,
        bug_compat=cfg.bug_compat, timeout=cfg.timeout,
        protocol=protocol, workload=workload,
        niters=int(calibration.get("niters", 30)),
        total_compute=float(calibration.get("total_compute", 480.0)),
        footprint=1e8,
        config_overrides=dict(cfg.config_overrides),
    )


def scenario_setup(cfg: ExploreConfig, scenario: GeneratedScenario,
                   workload: str, protocol: str) -> TrialSetup:
    base = _base_setup(cfg, workload, protocol)
    return replace(
        base,
        scenario_source=scenario.source,
        scenario_meta=scenario.meta(),
        master_daemon=generators.MASTER,
        node_daemon=generators.NODE_DAEMON,
    )


def golden_setup(cfg: ExploreConfig, workload: str,
                 protocol: str) -> TrialSetup:
    """The fault-free reference run (no scenario deployed)."""
    return _base_setup(cfg, workload, protocol)


# ---------------------------------------------------------------------------
# verdicts
# ---------------------------------------------------------------------------

@dataclass
class Verdict:
    """One trial's classification plus its oracle reports."""

    scenario: GeneratedScenario
    protocol: str
    workload: str
    trial_seed: int
    result: RunResult
    oracles: List[OracleReport]

    @property
    def failed(self) -> List[str]:
        return failed_names(self.oracles)

    def signature(self) -> coveragelib.Signature:
        """The trial's full coverage signature: the runtime's probe
        bitmap (``RunResult.coverage``) OR-ed with the oracle-branch
        and invariant-violation labels — the novelty signal of the
        guided explorer."""
        return (coveragelib.Signature.from_hex(self.result.coverage)
                | coveragelib.Signature.from_labels(
                    coverage_labels(self.oracles, self.result)))

    def sort_key(self):
        return (self.scenario.family, self.scenario.index, self.protocol,
                self.workload)

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario.scenario_id,
            "family": self.scenario.family,
            "index": self.scenario.index,
            "description": self.scenario.description,
            "plan": repr(self.scenario.plan),
            "protocol": self.protocol,
            "workload": self.workload,
            "trial_seed": self.trial_seed,
            "outcome": self.result.outcome.value,
            "exec_time": self.result.exec_time,
            "failures_detected": self.result.failures_detected,
            "restarts": self.result.restarts,
            "app_signature": self.result.app_signature,
            "oracles": {r.name: {"passed": r.passed, "detail": r.detail,
                                 "branch": r.branch}
                        for r in self.oracles},
            "failed": self.failed,
        }


@dataclass
class ShrinkReport:
    """A failing trial reduced to its minimal reproducer."""

    verdict: Verdict
    outcome: shrinklib.ShrinkResult
    #: written .fail path (None when the campaign has no output dir)
    fail_file: Optional[str]
    command: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.verdict.scenario.scenario_id,
            "protocol": self.verdict.protocol,
            "workload": self.verdict.workload,
            "minimal_plan": repr(self.outcome.plan),
            "n_machines": self.outcome.n_machines,
            "trials_used": self.outcome.trials_used,
            "reductions": list(self.outcome.reductions),
            "fail_file": self.fail_file,
            "command": self.command,
        }


@dataclass
class GuidedStats:
    """What the greybox loop did with its budget (all deterministic)."""

    corpus_dir: str
    corpus_size_start: int
    corpus_size_end: int
    edges_start: int
    edges_end: int
    #: trial index (1-based) of every novel-coverage admission
    admit_trials: List[int]
    replayed: int
    seeded: int
    mutants: int
    first_failure_trial: Optional[int]
    baseline_first_failure_trial: Optional[int]

    @property
    def novel_admits(self) -> int:
        return len(self.admit_trials)

    def trials_to_novelty(self, total_trials: int) -> Optional[float]:
        """Mean trials spent per novel admission (search efficiency)."""
        if not self.admit_trials:
            return None
        return total_trials / len(self.admit_trials)

    def to_dict(self, total_trials: int) -> Dict[str, object]:
        return {
            "corpus_dir": self.corpus_dir,
            "corpus_size_start": self.corpus_size_start,
            "corpus_size_end": self.corpus_size_end,
            "edges_start": self.edges_start,
            "edges_end": self.edges_end,
            "novel_admits": self.novel_admits,
            "admit_trials": list(self.admit_trials),
            "trials_to_novelty": self.trials_to_novelty(total_trials),
            "replayed": self.replayed,
            "seeded": self.seeded,
            "mutants": self.mutants,
            "first_failure_trial": self.first_failure_trial,
            "baseline_first_failure_trial":
                self.baseline_first_failure_trial,
        }


@dataclass
class CampaignResult:
    config: ExploreConfig
    rows: List[Verdict]
    goldens: Dict[Tuple[str, str], RunResult]
    shrinks: List[ShrinkReport]
    executed: int
    cache_hits: int
    wall_seconds: float
    #: present on guided (--guided) campaigns only
    guided: Optional[GuidedStats] = None

    @property
    def failures(self) -> List[Verdict]:
        return [v for v in self.rows if v.failed]

    def oracle_pass_rates(self) -> Dict[str, float]:
        rates: Dict[str, float] = {}
        if not self.rows:
            return rates
        for name in [r.name for r in self.rows[0].oracles]:
            passed = sum(1 for v in self.rows
                         for r in v.oracles if r.name == name and r.passed)
            rates[name] = passed / len(self.rows)
        return rates

    def family_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for v in self.rows:
            counts[v.scenario.family] = counts.get(v.scenario.family, 0) + 1
        return counts

    # -- rendering (fully deterministic) -----------------------------------
    def render_table(self) -> str:
        header = (f"{'scenario':>26} | {'protocol':>8} | {'workload':>12} | "
                  f"{'outcome':>15} | {'time':>7} | {'inj':>3} | oracles")
        lines = [f"== explore campaign (seed {self.config.seed}, "
                 f"{len(self.rows)} trials) ==", header, "-" * len(header)]
        for v in self.rows:
            t = v.result.exec_time
            timing = f"{t:7.1f}" if t is not None else "      -"
            status = "ok" if not v.failed else ",".join(v.failed)
            lines.append(
                f"{v.scenario.scenario_id:>26} | {v.protocol:>8} | "
                f"{v.workload:>12} | {v.result.outcome.value:>15} | "
                f"{timing} | {v.result.failures_detected:>3} | {status}")
        lines.append("-" * len(header))
        for name, rate in sorted(self.oracle_pass_rates().items()):
            lines.append(f"oracle {name:>22}: {100.0 * rate:6.1f} % pass")
        for family, count in sorted(self.family_counts().items()):
            lines.append(f"family {family:>22}: {count} trial(s)")
        if self.guided is not None:
            g = self.guided
            lines.append(
                f"guided: corpus {g.corpus_size_start} -> "
                f"{g.corpus_size_end} entries, edges {g.edges_start} -> "
                f"{g.edges_end}, {g.novel_admits} admits "
                f"({g.replayed} replayed, {g.seeded} seeded, "
                f"{g.mutants} mutants)")
            if g.first_failure_trial is not None:
                lines.append(
                    f"guided: first unexcused failure at trial "
                    f"{g.first_failure_trial}")
        lines.append(f"failures: {len(self.failures)}")
        for report in self.shrinks:
            lines.append(
                f"shrunk {report.verdict.scenario.scenario_id} "
                f"[{report.verdict.protocol}/{report.verdict.workload}]: "
                + shrinklib.describe(report.outcome,
                                     report.verdict.scenario.plan))
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, object]:
        """Deterministic document (no wall-clock entries)."""
        return {
            "seed": self.config.seed,
            "protocols": list(self.config.resolved_protocols()),
            "workloads": list(self.config.resolved_workloads()),
            "families": list(self.config.resolved_families()),
            "budget": self.config.budget,
            "trials": len(self.rows),
            "rows": [v.to_dict() for v in self.rows],
            "oracle_pass_rates": self.oracle_pass_rates(),
            "family_counts": self.family_counts(),
            "failures": len(self.failures),
            "shrinks": [s.to_dict() for s in self.shrinks],
            "guided": (self.guided.to_dict(len(self.rows))
                       if self.guided is not None else None),
        }

    def bench_json(self) -> Dict[str, object]:
        """Benchmark document (includes wall-clock)."""
        total = self.executed + self.cache_hits
        return {
            "campaign": {
                "seed": self.config.seed,
                "trials": len(self.rows),
                "goldens": len(self.goldens),
                "failures": len(self.failures),
            },
            "wall_seconds": self.wall_seconds,
            "trials_per_second": (total / self.wall_seconds
                                  if self.wall_seconds > 0 else None),
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "oracle_pass_rates": self.oracle_pass_rates(),
            "shrink_steps": [s.to_dict() for s in self.shrinks],
            "guided": (self.guided.to_dict(len(self.rows))
                       if self.guided is not None else None),
        }


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

def _repro_command(cfg: ExploreConfig, verdict: Verdict,
                   outcome: shrinklib.ShrinkResult,
                   fail_file: Optional[str]) -> str:
    """One line that replays the minimal scenario."""
    parts = [
        "python -m repro explore",
        f"--replay {fail_file or '<scenario.fail>'}",
        f"--protocols {verdict.protocol}",
        f"--workloads {verdict.workload}",
        f"--procs {cfg.n_procs}",
        f"--machines {outcome.n_machines}",
        f"--trial-seed {verdict.trial_seed}",
        f"--timeout {cfg.timeout:g}",
    ]
    if cfg.bug_compat:
        parts.append("--bug-compat")
    for key, value in sorted(cfg.config_overrides.items()):
        parts.append(f"--override {key}={value}")
    return " ".join(parts)


def run_campaign(cfg: ExploreConfig,
                 runner: Optional[TrialRunner] = None,
                 out_dir: Optional[str] = None) -> CampaignResult:
    """Execute one campaign; see the module docstring for guarantees."""
    t0 = time.perf_counter()
    runner = runner or TrialRunner()
    before = runner.stats.snapshot()
    families = cfg.resolved_families()
    protos = cfg.resolved_protocols()
    workloads = cfg.resolved_workloads()
    ctx = cfg.generator_context()

    cells = len(families) * len(protos) * len(workloads)
    per_family = max(1, cfg.budget // max(1, cells))
    scenarios = generators.generate_suite(families, per_family, cfg.seed, ctx)

    # one flat job list: goldens first, then every (scenario, cell) trial
    golden_keys = [(protocol, workload)
                   for protocol in protos for workload in workloads]
    jobs: List[Tuple[TrialSetup, int]] = [
        (golden_setup(cfg, workload, protocol),
         derive_seed(cfg.seed, "golden", protocol, workload))
        for protocol, workload in golden_keys]
    trial_plan: List[Tuple[GeneratedScenario, str, str, int]] = []
    for scenario in scenarios:
        for protocol in protos:
            for workload in workloads:
                seed = derive_seed(cfg.seed, scenario.family, scenario.index,
                                   protocol, workload)
                trial_plan.append((scenario, protocol, workload, seed))
                jobs.append((scenario_setup(cfg, scenario, workload,
                                            protocol), seed))
    results = runner.run_jobs(jobs)

    goldens = dict(zip(golden_keys, results[:len(golden_keys)]))
    rows = [
        Verdict(scenario=scenario, protocol=protocol, workload=workload,
                trial_seed=seed, result=result,
                oracles=run_oracles(result, goldens[(protocol, workload)],
                                    plan=scenario.plan, protocol=protocol))
        for (scenario, protocol, workload, seed), result
        in zip(trial_plan, results[len(golden_keys):])]
    rows.sort(key=Verdict.sort_key)

    shrinks = _shrink_failures(cfg, rows, goldens, runner, out_dir)
    executed, hits = runner.stats.snapshot()
    return CampaignResult(
        config=cfg, rows=rows, goldens=goldens, shrinks=shrinks,
        executed=executed - before[0], cache_hits=hits - before[1],
        wall_seconds=time.perf_counter() - t0)


def _shrink_failures(cfg: ExploreConfig, rows: List[Verdict],
                     goldens: Dict[Tuple[str, str], RunResult],
                     runner: TrialRunner,
                     out_dir: Optional[str]) -> List[ShrinkReport]:
    reports: List[ShrinkReport] = []
    for verdict in [v for v in rows if v.failed][:cfg.max_shrinks]:
        golden = goldens[(verdict.protocol, verdict.workload)]
        base = _base_setup(cfg, verdict.workload, verdict.protocol)

        def still_fails(plan, n_machines, _base=base, _golden=golden,
                        _seed=verdict.trial_seed,
                        _protocol=verdict.protocol):
            source = render_plan(plan)
            setup = replace(
                _base, n_machines=n_machines, scenario_source=source,
                scenario_meta={"shrink": generators.plan_digest(
                    plan, n_machines)},
                master_daemon=generators.MASTER,
                node_daemon=generators.NODE_DAEMON)
            result = runner.run_jobs([(setup, _seed)])[0]
            return bool(failed_names(run_oracles(
                result, _golden, plan=plan, protocol=_protocol)))

        outcome = shrinklib.shrink(
            verdict.scenario.plan, cfg.n_machines,
            still_fails=still_fails, min_machines=cfg.n_procs,
            budget=cfg.shrink_budget)
        fail_file = None
        if out_dir is not None:
            os.makedirs(out_dir, exist_ok=True)
            name = (f"shrunk_{verdict.scenario.family}"
                    f"{verdict.scenario.index}_{verdict.protocol}"
                    f"_{verdict.workload}.fail")
            fail_file = os.path.join(out_dir, name)
            with open(fail_file, "w", encoding="utf-8") as fh:
                fh.write(outcome.source)
        reports.append(ShrinkReport(
            verdict=verdict, outcome=outcome, fail_file=fail_file,
            command=_repro_command(cfg, verdict, outcome, fail_file)))
    return reports


# ---------------------------------------------------------------------------
# the guided (greybox) driver
# ---------------------------------------------------------------------------

def _guided_scenario(cfg: ExploreConfig, plan,
                     description: str) -> GeneratedScenario:
    """Wrap a plan for a guided trial with digest-only identity.

    The scenario id is a pure function of the plan (no trial counter,
    no campaign seed), so re-running the same plan — in this campaign,
    the next one, or a corpus replay — reconstructs a byte-identical
    :class:`TrialSetup` and lands on the same trial-cache key.
    """
    digest = generators.plan_digest(plan, cfg.n_machines)
    return GeneratedScenario(
        family=f"g{digest[:10]}", index=0, seed=0, plan=plan,
        n_machines=cfg.n_machines, source=render_plan(plan),
        description=description)


def _guided_seed(cfg: ExploreConfig, scenario: GeneratedScenario,
                 protocol: str, workload: str) -> int:
    return derive_seed(cfg.seed, "guided", scenario.family, protocol,
                       workload)


def _evaluate(cfg: ExploreConfig, runner: TrialRunner,
              goldens: Dict[Tuple[str, str], RunResult],
              scenario: GeneratedScenario, protocol: str, workload: str,
              trial_seed: int) -> Verdict:
    """Run (or load) one fault trial and judge it."""
    setup = scenario_setup(cfg, scenario, workload, protocol)
    result = runner.run_jobs([(setup, trial_seed)])[0]
    return Verdict(
        scenario=scenario, protocol=protocol, workload=workload,
        trial_seed=trial_seed, result=result,
        oracles=run_oracles(result, goldens[(protocol, workload)],
                            plan=scenario.plan, protocol=protocol))


def _minimize_for_corpus(cfg: ExploreConfig, runner: TrialRunner,
                         goldens: Dict[Tuple[str, str], RunResult],
                         verdict: Verdict,
                         mask: "coveragelib.Signature") -> Verdict:
    """Minimize-on-admit: shrink the plan while it keeps ``mask``.

    Reuses the delta-debugging shrinker with "still hits every novel
    coverage bit" as the predicate (machine count pinned — corpus
    plans must all fit the campaign deployment).  Returns the verdict
    of the reduced plan, so the corpus entry's signature and failure
    flags describe what was actually admitted.
    """
    plan = verdict.scenario.plan
    if len(plan) <= 1 or cfg.corpus_shrink_budget <= 0:
        return verdict
    protocol, workload = verdict.protocol, verdict.workload

    def keeps_novelty(candidate, _n_machines):
        scenario = _guided_scenario(cfg, candidate, "corpus minimization")
        v = _evaluate(cfg, runner, goldens, scenario, protocol, workload,
                      _guided_seed(cfg, scenario, protocol, workload))
        return v.signature().covers(mask)

    outcome = shrinklib.shrink(
        plan, cfg.n_machines, still_fails=keeps_novelty,
        min_machines=cfg.n_machines, budget=cfg.corpus_shrink_budget)
    if outcome.plan == plan:
        return verdict
    scenario = _guided_scenario(cfg, outcome.plan,
                                f"minimized: {verdict.scenario.description}")
    return _evaluate(cfg, runner, goldens, scenario, protocol, workload,
                     _guided_seed(cfg, scenario, protocol, workload))


def seeded_first_failure(cfg: ExploreConfig, runner: TrialRunner,
                         goldens: Dict[Tuple[str, str], RunResult],
                         cap: int) -> Optional[int]:
    """Trials the *seeded* families need to hit an unexcused failure.

    Walks the canonical campaign order (scenario index outermost, then
    sorted families × protocols × workloads — exactly the stream
    ``run_campaign`` would execute) and returns the 1-based trial count
    at the first oracle failure, or None within ``cap`` trials.  Seeds
    and scenario identity match the seeded campaign, so against a
    shared cache this baseline costs almost nothing.
    """
    families = cfg.resolved_families()
    protos = cfg.resolved_protocols()
    workloads = cfg.resolved_workloads()
    ctx = cfg.generator_context()
    trial = 0
    for index in range(max(1, cap)):
        for family in families:
            for protocol in protos:
                for workload in workloads:
                    scenario = generators.generate(family, index, cfg.seed,
                                                   ctx)
                    seed = derive_seed(cfg.seed, family, index, protocol,
                                       workload)
                    trial += 1
                    verdict = _evaluate(cfg, runner, goldens, scenario,
                                        protocol, workload, seed)
                    if verdict.failed:
                        return trial
                    if trial >= cap:
                        return None
    return None


def run_guided(cfg: ExploreConfig,
               runner: Optional[TrialRunner] = None,
               out_dir: Optional[str] = None,
               corpus_dir: Optional[str] = None) -> CampaignResult:
    """The coverage-guided campaign: replay → seed → mutate.

    The greybox loop spends ``cfg.budget`` fault trials:

    1. **replay** the persisted corpus (failing entries first) — on a
       second run this re-establishes the accumulated coverage mostly
       from cache and surfaces known failures immediately;
    2. **seed** fresh scenarios from the generator families
       (round-robin) while the corpus is thin;
    3. **mutate** corpus plans (:mod:`repro.explore.mutate`), admitting
       every trial whose signature lights up bits the corpus lacks —
       minimized on admit via the shrinker.

    A seeded-family baseline (same budget cap, same cache) runs after
    the loop so the benchmark JSON can state both trials-to-first-
    failure counts side by side.
    """
    t0 = time.perf_counter()
    runner = runner or TrialRunner()
    before = runner.stats.snapshot()
    corpus = Corpus(corpus_dir or
                    default_corpus_dir(None, out_dir or "explore_out"))
    size_start, edges_start = len(corpus), corpus.accumulated.popcount

    families = cfg.resolved_families()
    protos = cfg.resolved_protocols()
    workloads = cfg.resolved_workloads()
    ctx = cfg.generator_context()
    cells = [(p, w) for p in protos for w in workloads]
    goldens = dict(zip(cells, runner.run_jobs([
        (golden_setup(cfg, w, p), derive_seed(cfg.seed, "golden", p, w))
        for p, w in cells])))

    rows: List[Verdict] = []
    admit_trials: List[int] = []
    first_failure: Optional[int] = None
    replayed = seeded = mutants = 0
    tried: set = set()
    rng = random.Random(f"explore-guided:{cfg.seed}")

    def consider(verdict: Verdict) -> None:
        """Account one finished trial; admit it if coverage is novel."""
        nonlocal first_failure
        rows.append(verdict)
        trial = len(rows)
        tried.add(verdict.scenario.family)
        if verdict.failed and first_failure is None:
            first_failure = trial
        sig = verdict.signature()
        mask = sig.minus(corpus.accumulated)
        if not mask:
            return
        lean = _minimize_for_corpus(cfg, runner, goldens, verdict, mask)
        if corpus.admit(CorpusEntry(
                seq=0, plan=lean.scenario.plan, signature=lean.signature(),
                family=lean.scenario.family, protocol=lean.protocol,
                workload=lean.workload, trial_seed=lean.trial_seed,
                description=lean.scenario.description,
                failed=lean.failed)):
            admit_trials.append(trial)

    # 1. replay the persisted corpus (crashers first), budget-capped
    for entry in corpus.entries():
        if len(rows) >= cfg.budget:
            break
        if (entry.protocol, entry.workload) not in goldens:
            continue
        scenario = _guided_scenario(cfg, entry.plan, entry.description)
        consider(_evaluate(cfg, runner, goldens, scenario, entry.protocol,
                           entry.workload, entry.trial_seed))
        replayed += 1

    # 2./3. the search loop: seed while thin, mutate once fed
    seeded_next = 0
    while len(rows) < cfg.budget:
        protocol, workload = cells[len(rows) % len(cells)]
        use_seed = not corpus.plans() or rng.random() < 0.25
        if use_seed:
            family = families[seeded_next % len(families)]
            index = seeded_next // len(families)
            seeded_next += 1
            scenario = generators.generate(family, index, cfg.seed, ctx)
            scenario = _guided_scenario(
                cfg, scenario.plan,
                f"seeded {family}[{index}]: {scenario.description}")
            seeded += 1
        else:
            donors = corpus.plans()
            parent = donors[rng.randrange(len(donors))]
            plan = mutate(parent, rng, ctx, donors=donors)
            for _ in range(4):      # skip mutants already scheduled
                scenario = _guided_scenario(cfg, plan, "mutant")
                if scenario.family not in tried:
                    break
                plan = mutate(plan, rng, ctx, donors=donors)
            scenario = _guided_scenario(cfg, plan, "mutant")
            mutants += 1
        consider(_evaluate(cfg, runner, goldens, scenario, protocol,
                           workload,
                           _guided_seed(cfg, scenario, protocol, workload)))

    baseline = seeded_first_failure(cfg, runner, goldens, cap=cfg.budget)
    shrinks = _shrink_failures(cfg, rows, goldens, runner, out_dir)
    executed, hits = runner.stats.snapshot()
    return CampaignResult(
        config=cfg, rows=rows, goldens=goldens, shrinks=shrinks,
        executed=executed - before[0], cache_hits=hits - before[1],
        wall_seconds=time.perf_counter() - t0,
        guided=GuidedStats(
            corpus_dir=corpus.root,
            corpus_size_start=size_start, corpus_size_end=len(corpus),
            edges_start=edges_start,
            edges_end=corpus.accumulated.popcount,
            admit_trials=admit_trials, replayed=replayed, seeded=seeded,
            mutants=mutants, first_failure_trial=first_failure,
            baseline_first_failure_trial=baseline))


# ---------------------------------------------------------------------------
# replay: re-run one (possibly shrunk) .fail scenario
# ---------------------------------------------------------------------------

def replay_scenario(source: str, cfg: ExploreConfig, protocol: str,
                    workload: str, trial_seed: int,
                    runner: Optional[TrialRunner] = None
                    ) -> Tuple[RunResult, List[OracleReport]]:
    """Run one scenario + its golden and evaluate the oracles."""
    runner = runner or TrialRunner()
    base = _base_setup(cfg, workload, protocol)
    setup = replace(base, scenario_source=source,
                    scenario_meta={"replay": hashlib.sha256(
                        source.encode("utf-8")).hexdigest()[:12]},
                    master_daemon=generators.MASTER,
                    node_daemon=generators.NODE_DAEMON)
    golden_seed = derive_seed(cfg.seed, "golden", protocol, workload)
    golden, result = runner.run_jobs([
        (golden_setup(cfg, workload, protocol), golden_seed),
        (setup, trial_seed)])
    return result, run_oracles(result, golden)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _parse_override(text: str) -> Tuple[str, object]:
    key, _, raw = text.partition("=")
    if not _:
        raise argparse.ArgumentTypeError(
            f"override {text!r} is not of the form key=value")
    value: object
    lowered = raw.lower()
    if lowered in ("true", "false"):
        value = lowered == "true"
    else:
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
    return key, value


def _csv(values: List[str]) -> Tuple[str, ...]:
    out: List[str] = []
    for chunk in values:
        out.extend(p for p in chunk.split(",") if p)
    return tuple(out)


def main() -> None:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(
        description="property-based fault-space exploration")
    parser.add_argument("--budget", type=int, default=90,
                        help="total fault-trial budget (default: 90)")
    parser.add_argument("--protocols", action="append", default=[],
                        metavar="NAME[,NAME]",
                        help="protocols to race (default: all registered)")
    parser.add_argument("--workloads", action="append", default=[],
                        metavar="NAME[,NAME]",
                        help="workloads to stress (default: ring)")
    parser.add_argument("--families", action="append", default=[],
                        metavar="NAME[,NAME]",
                        help="generator families (default: all)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized campaign: one scenario per grid cell")
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--machines", type=int, default=7)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--bug-compat", action="store_true",
                        help="hunt with the paper's dispatcher bug present")
    parser.add_argument("--override", action="append", default=[],
                        type=_parse_override, metavar="KEY=VALUE",
                        help="extra VclConfig attribute (e.g. "
                             "cm_replay=false plants the broken-replay bug)")
    parser.add_argument("--topology", default=None, metavar="MODEL",
                        help="network fabric model for every trial "
                             "(uniform/star/twotier; see repro.netmodel)")
    parser.add_argument("--max-shrinks", type=int, default=4)
    parser.add_argument("--shrink-budget", type=int, default=48)
    parser.add_argument("--guided", action="store_true",
                        help="coverage-guided greybox campaign: replay the "
                             "persisted corpus, then mutate plans that hit "
                             "novel coverage")
    parser.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="corpus location for --guided (default: "
                             "<cache-dir>/corpus)")
    parser.add_argument("--self-check", action="store_true",
                        help="run the campaign twice in-process and fail "
                             "unless both outputs are byte-identical "
                             "(the determinism contract)")
    parser.add_argument("--out", default="explore_out", metavar="DIR",
                        help="verdict/shrink output directory")
    parser.add_argument("--json", default="BENCH_explore.json",
                        metavar="PATH", help="benchmark JSON path")
    parser.add_argument("--require-clean", action="store_true",
                        help="exit 1 if any oracle failed")
    parser.add_argument("--replay", default=None, metavar="FILE.fail",
                        help="replay one scenario file instead of a campaign")
    parser.add_argument("--trial-seed", type=int, default=0,
                        help="trial seed for --replay")
    add_runner_arguments(parser)
    args = parser.parse_args()

    overrides = dict(args.override)
    if args.topology is not None:
        overrides["topology"] = args.topology
    common = dict(
        protocols=_csv(args.protocols), workloads=_csv(args.workloads)
        or ("ring",), families=_csv(args.families), seed=args.seed,
        n_procs=args.procs, n_machines=args.machines, timeout=args.timeout,
        bug_compat=args.bug_compat, config_overrides=overrides,
        max_shrinks=args.max_shrinks, shrink_budget=args.shrink_budget)
    if args.self_check and args.guided:
        parser.error("--self-check needs a seeded campaign: the guided "
                     "loop mutates corpus state between runs")
    if args.guided and args.cache_dir is None and not args.no_cache:
        # guided exploration without a cache forfeits both cheap corpus
        # replay and the shared-baseline comparison; default one in
        args.cache_dir = os.path.join(args.out, "cache")
    runner = runner_from_args(args)

    if args.replay is not None:
        with open(args.replay, "r", encoding="utf-8") as fh:
            source = fh.read()
        cfg = ExploreConfig(budget=1, **common)
        protocol = cfg.resolved_protocols()[0]
        workload = cfg.resolved_workloads()[0]
        result, reports = replay_scenario(source, cfg, protocol, workload,
                                          args.trial_seed, runner=runner)
        print(f"replay {args.replay}: protocol={protocol} "
              f"workload={workload} seed={args.trial_seed}")
        print(f"outcome: {result.outcome} ({result.verdict.reason})")
        for report in reports:
            print(f"  {report}")
        raise SystemExit(1 if failed_names(reports) else 0)

    if args.quick:
        cfg = quick_config(**common)
    else:
        cfg = ExploreConfig(budget=args.budget, **common)
    if args.guided:
        corpus_dir = args.corpus_dir or default_corpus_dir(
            getattr(args, "cache_dir", None), args.out)
        result = run_guided(cfg, runner=runner, out_dir=args.out,
                            corpus_dir=corpus_dir)
        g = result.guided
        print(f"[guided] corpus {g.corpus_size_start} -> "
              f"{g.corpus_size_end} entries at {g.corpus_dir}")
    else:
        result = run_campaign(cfg, runner=runner, out_dir=args.out)
    if args.self_check:
        second = run_campaign(cfg, runner=runner_from_args(args),
                              out_dir=args.out)
        first_doc = json.dumps(result.to_json(), sort_keys=True)
        second_doc = json.dumps(second.to_json(), sort_keys=True)
        if (second.render_table() != result.render_table()
                or first_doc != second_doc):
            print("self-check FAILED: two runs of the same campaign "
                  "disagree — the determinism contract is broken",
                  file=sys.stderr)
            raise SystemExit(2)
        print("self-check ok: verdict table and JSON byte-identical "
              "across two runs")

    table = result.render_table()
    print(table, end="")
    os.makedirs(args.out, exist_ok=True)
    with open(os.path.join(args.out, "verdicts.txt"), "w",
              encoding="utf-8") as fh:
        fh.write(table)
    with open(os.path.join(args.out, "verdicts.json"), "w",
              encoding="utf-8") as fh:
        json.dump(result.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    if args.json:
        bench_doc = result.bench_json()
        bench_doc["runner_stats"] = runner.stats.to_doc()
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(bench_doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    for report in result.shrinks:
        print(f"minimal reproducer: {report.fail_file}")
        print(f"  {report.command}")
    stats = runner.stats
    print(f"[runner] {stats.describe()}")
    if args.require_clean and result.failures:
        raise SystemExit(1)


if __name__ == "__main__":  # pragma: no cover
    main()
