"""Recovery-correctness oracles.

A fault-injection campaign is only as good as its notion of "survived":
the paper separates terminated / non-terminating / buggy runs by trace
analysis, and the oracles here sharpen that into per-trial correctness
checks against a *golden* (fault-free) run of the same configuration:

``no_deadlock``
    The run must not freeze: a ``BUGGY`` classification — protocol
    activity ceased long before the simulated-time budget — is the
    failure signature of every dispatcher/recovery bug in the paper.
``golden_result``
    A run that terminates must produce the workload's verification
    checksum *bit-identical* to the golden run's (and must have
    verified at all).  Catches lost/duplicated messages that slip
    through recovery.
``progress``
    Generated fault plans are *finite*: after the last injection a
    correct protocol must recover and the workload must finish inside
    the simulated-time budget (the trial timeout, sized at several
    golden durations).  A non-terminating run therefore fails — unless
    the deployed protocol *documents* that it cannot survive the
    plan's simultaneity (``ProtocolSpec.simultaneous_tolerance``, e.g.
    V2's volatile sender logs under concurrent failures), the plan
    leaves a machine or service partitioned forever, or the partition
    triggered a *false failure suspicion* (see below), in which case
    the stall is a faithful limitation, not a bug.  The same two
    partition excuses apply to a frozen (``BUGGY``) classification in
    ``no_deadlock`` — a run stranded behind a permanently cut link is
    the cut's doing, not a protocol deadlock.
``false_suspicion``
    Partition plans stress the family's shared assumption that a
    socket closure means death.  A cut severs connections exactly like
    a kill, so the dispatcher "detects" a failure of a rank that is
    still running — and its restart wave then collides with the zombie
    daemon still holding the victim machine's mesh port.  The oracle
    *excuses* a resulting stall (documented substitution: the paper's
    experiments kill tasks, never links) and *flags* the truly broken
    outcomes: terminating with a wrong or missing checksum after a
    false suspicion, or deadlocking outright.
``protocol_invariants``
    The per-protocol invariant hook (V1 CM log order, V2 event-log
    completeness, Vcl committed-wave consistency) reported no
    violations — see :func:`repro.mpichv.protocols.check_invariants`.

Oracles read only the :class:`~repro.mpichv.runtime.RunResult` wire
form (counters, signature, violations), so they work identically on
live, pooled and cache-loaded results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.classify import Outcome
from repro.explore.generators import (FaultPlan, KillReporter, RekillRace,
                                      TimedKill, has_unhealed_partition,
                                      kill_steps, partition_steps)
from repro.mpichv import protocols
from repro.mpichv.runtime import RunResult


def simultaneous_batch(plan: FaultPlan) -> int:
    """Largest group of timed kills sharing one injection instant."""
    counts: dict = {}
    for step in plan:
        if isinstance(step, TimedKill):
            counts[step.at] = counts.get(step.at, 0) + 1
    return max(counts.values(), default=0)


def max_concurrent_failures(plan: FaultPlan) -> int:
    """Most failures a plan can have in flight at one instant.

    Beyond same-instant batches, the *reactive* steps overlap by
    construction: the recovery report (``waveok``) fires at the
    victim's relaunch, before its replay completes, so a reactive kill
    of a *different* machine lands while that recovery is still in
    flight — two concurrent failures.  Re-killing the recovering
    machine itself keeps the failure count at one.
    """
    concurrent = simultaneous_batch(plan)
    last_victim: Optional[int] = None
    for step in plan:
        if isinstance(step, TimedKill):
            last_victim = step.target
        elif isinstance(step, RekillRace):
            if step.target != last_victim:
                concurrent = max(concurrent, 2)
            last_victim = step.target
        elif isinstance(step, KillReporter):
            pass                  # kills the recovering machine itself
    return concurrent


@dataclass(frozen=True)
class OracleReport:
    """One oracle's verdict on one trial."""

    name: str
    passed: bool
    detail: str
    #: which branch of the oracle produced this verdict — a short
    #: stable tag ("ok", "fail", "excused_unhealed", ...) that feeds
    #: the coverage signature: an *excused* stall is different
    #: behaviour than a clean pass, and the guided explorer must see
    #: the difference to search its way out of the excuse region.
    branch: str = "ok"

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        flag = "ok" if self.passed else "FAIL"
        return f"{self.name}: {flag} ({self.detail})"


@dataclass(frozen=True)
class OracleContext:
    """Everything the oracles may consult about one trial."""

    result: RunResult
    golden: Optional[RunResult]
    #: the generated fault plan (None when replaying a bare .fail file)
    plan: Optional[FaultPlan] = None
    #: deployed protocol name (for documented-limitation lookups)
    protocol: Optional[str] = None


def _no_deadlock(ctx: OracleContext) -> OracleReport:
    result = ctx.result
    name = "no_deadlock"
    if result.outcome is Outcome.BUGGY:
        if ctx.plan is not None and partition_steps(ctx.plan):
            if has_unhealed_partition(ctx.plan):
                return OracleReport(
                    name, True,
                    "excused: frozen behind a permanently cut link — "
                    "recovery cannot cross an unhealed partition",
                    branch="excused_unhealed")
            if _false_suspicions(ctx) > 0:
                return OracleReport(
                    name, True,
                    "excused: frozen after partition-induced false "
                    "failure suspicion (documented substitution)",
                    branch="excused_false_suspicion")
        return OracleReport(name, False, result.verdict.reason,
                            branch="fail")
    return OracleReport(name, True, str(result.outcome))


def _golden_result(ctx: OracleContext) -> OracleReport:
    result, golden = ctx.result, ctx.golden
    name = "golden_result"
    if golden is None or golden.outcome is not Outcome.TERMINATED \
            or golden.app_signature is None:
        return OracleReport(name, False,
                            "no valid golden run for this configuration",
                            branch="no_golden")
    if result.outcome is not Outcome.TERMINATED:
        return OracleReport(name, True, "n/a (run did not terminate)",
                            branch="not_terminated")
    if result.app_signature is None:
        return OracleReport(name, False,
                            "terminated without workload verification",
                            branch="missing_checksum")
    if result.app_signature != golden.app_signature:
        return OracleReport(
            name, False, f"checksum {result.app_signature} != golden "
                         f"{golden.app_signature}",
            branch="checksum_mismatch")
    return OracleReport(name, True, f"checksum {result.app_signature}")


def _false_suspicions(ctx: OracleContext) -> int:
    """Failure detections beyond what the plan's kills account for.

    Every kill step can trigger at most one genuine detection, so any
    surplus came from partition-severed connections (and the restart
    churn they cause) — false suspicions of live processes.
    """
    if ctx.plan is None:
        return 0
    return max(0, ctx.result.failures_detected - len(kill_steps(ctx.plan)))


def _progress(ctx: OracleContext) -> OracleReport:
    result = ctx.result
    name = "progress"
    if result.outcome is not Outcome.NON_TERMINATING:
        return OracleReport(name, True, str(result.outcome))
    if ctx.plan is not None and partition_steps(ctx.plan):
        if has_unhealed_partition(ctx.plan):
            return OracleReport(
                name, True,
                "excused: a machine or service stays partitioned forever "
                "— neither the application nor its recovery can finish "
                "across a permanently cut link",
                branch="excused_unhealed")
        if _false_suspicions(ctx) > 0:
            return OracleReport(
                name, True,
                "excused: partition-induced false failure suspicion "
                "(socket closure != death); the restart wave collides "
                "with the zombie daemon still holding the mesh port",
                branch="excused_false_suspicion")
    if ctx.plan is not None and ctx.protocol is not None:
        tolerance = protocols.get_spec(ctx.protocol).simultaneous_tolerance
        concurrent = max_concurrent_failures(ctx.plan)
        if tolerance is not None and concurrent > tolerance:
            return OracleReport(
                name, True,
                f"excused: up to {concurrent} concurrent faults exceed "
                f"the protocol's documented tolerance of {tolerance}",
                branch="excused_tolerance")
    return OracleReport(
        name, False,
        "finite fault plan but the run never finished "
        f"({result.failures_detected} failures detected, last activity "
        f"t={result.verdict.last_activity:.1f})",
        branch="fail")


def _false_suspicion(ctx: OracleContext) -> OracleReport:
    """Excuse or flag protocol behaviour under false failure suspicion."""
    name = "false_suspicion"
    if ctx.plan is None or not partition_steps(ctx.plan):
        return OracleReport(name, True, "n/a (no partitions planned)",
                            branch="no_partitions")
    extra = _false_suspicions(ctx)
    if extra == 0:
        return OracleReport(
            name, True,
            "no false suspicion (partitions healed before detection or "
            "never crossed a live connection)",
            branch="none")
    result = ctx.result
    if result.outcome is Outcome.TERMINATED:
        golden = ctx.golden
        if golden is not None and result.app_signature is not None \
                and result.app_signature == golden.app_signature:
            return OracleReport(
                name, True,
                f"recovered from {extra} false suspicion(s) with the "
                f"golden checksum",
                branch="recovered")
        return OracleReport(
            name, False,
            f"terminated after {extra} false suspicion(s) with a wrong "
            f"or missing checksum — corruption under false suspicion",
            branch="corruption")
    if result.outcome is Outcome.NON_TERMINATING:
        return OracleReport(
            name, True,
            f"excused: {extra} false suspicion(s) — the socket-closure "
            f"detector cannot distinguish a partition from a death "
            f"(documented substitution), and the relaunch loops on the "
            f"zombie daemon's mesh port",
            branch="excused_stall")
    if has_unhealed_partition(ctx.plan):
        return OracleReport(
            name, True,
            f"excused: {extra} false suspicion(s) with the partition "
            f"never healed — the freeze is the cut link's doing",
            branch="excused_unhealed")
    return OracleReport(
        name, False,
        f"deadlock after {extra} false suspicion(s)",
        branch="fail_deadlock")


def _protocol_invariants(ctx: OracleContext) -> OracleReport:
    result = ctx.result
    name = "protocol_invariants"
    if result.invariant_violations:
        return OracleReport(name, False,
                            "; ".join(result.invariant_violations),
                            branch="fail")
    return OracleReport(name, True, "all protocol invariants held")


#: evaluation order (also the report order in verdict tables)
ORACLES = (_no_deadlock, _golden_result, _progress, _false_suspicion,
           _protocol_invariants)

#: oracle names, in evaluation order
ORACLE_NAMES = ("no_deadlock", "golden_result", "progress",
                "false_suspicion", "protocol_invariants")


def run_oracles(result: RunResult, golden: Optional[RunResult],
                plan: Optional[FaultPlan] = None,
                protocol: Optional[str] = None) -> List[OracleReport]:
    """Evaluate every oracle against one trial.

    ``plan`` and ``protocol`` feed the documented-limitation excuse of
    the ``progress`` oracle; without them (replaying a bare ``.fail``
    file) non-termination is judged strictly.
    """
    ctx = OracleContext(result=result, golden=golden, plan=plan,
                        protocol=protocol)
    return [oracle(ctx) for oracle in ORACLES]


def failed_names(reports: List[OracleReport]) -> List[str]:
    return [r.name for r in reports if not r.passed]


def coverage_labels(reports: List[OracleReport],
                    result: Optional[RunResult] = None) -> List[str]:
    """Coverage-signature labels for one trial's oracle verdicts.

    One label per oracle *branch* (``oracle.progress.excused_unhealed``
    is a different behaviour than ``oracle.progress.ok``) plus one per
    distinct invariant violation (hashed — the violation text embeds
    ranks and counters, so the hash keys the violation *kind* site
    without exploding the label space).
    """
    labels = [f"oracle.{r.name}.{r.branch}" for r in reports]
    if result is not None:
        for violation in result.invariant_violations:
            digest = hashlib.sha256(violation.encode("utf-8")).hexdigest()
            labels.append(f"invariant.{digest[:8]}")
    return labels
