"""The guided campaign's persistent corpus of coverage-novel plans.

A corpus entry is one :class:`~repro.explore.generators.FaultPlan`
whose trial lit up coverage bits no earlier entry had — the seeds of
the greybox mutation loop.  Entries live as one JSON file each under a
directory (by convention ``<cache_dir>/corpus/``, so the same CI cache
key restores the trial cache *and* the corpus together), named by the
signature digest: admitting a behaviourally-identical plan twice is a
filesystem-level no-op.

Admit order is preserved via a ``seq`` counter inside each document;
:meth:`Corpus.entries` yields failing entries first (a fuzzer replays
its crashers before its merely-interesting inputs), then admit order.
Writes are atomic (temp file + ``os.replace``), matching the result
store's crash-resumability.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.coverage import Signature
from repro.explore.generators import (FaultPlan, plan_digest, plan_from_doc,
                                      plan_to_doc)

#: bump when the entry layout changes; readers skip other versions
CORPUS_FORMAT = 1


@dataclass
class CorpusEntry:
    """One admitted plan plus the provenance the mutation loop uses."""

    seq: int
    plan: FaultPlan
    signature: Signature
    family: str
    protocol: str
    workload: str
    trial_seed: int
    description: str = ""
    #: oracle names that failed on the admitting trial ([] = survived)
    failed: List[str] = field(default_factory=list)

    @property
    def digest(self) -> str:
        return hashlib.sha256(self.signature.bits).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": CORPUS_FORMAT,
            "seq": self.seq,
            "plan": plan_to_doc(self.plan),
            "signature": self.signature.hex,
            "family": self.family,
            "protocol": self.protocol,
            "workload": self.workload,
            "trial_seed": self.trial_seed,
            "description": self.description,
            "failed": list(self.failed),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "CorpusEntry":
        return cls(
            seq=int(doc["seq"]),
            plan=plan_from_doc(doc["plan"]),
            signature=Signature.from_hex(str(doc["signature"])),
            family=str(doc["family"]),
            protocol=str(doc["protocol"]),
            workload=str(doc["workload"]),
            trial_seed=int(doc["trial_seed"]),
            description=str(doc.get("description", "")),
            failed=[str(n) for n in doc.get("failed", [])],
        )


class Corpus:
    """Directory-backed set of coverage-novel plans."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._entries: List[CorpusEntry] = []
        self._digests: set = set()
        self.accumulated = Signature()
        self._load()

    def _load(self) -> None:
        docs: List[CorpusEntry] = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
                if doc.get("format") != CORPUS_FORMAT:
                    continue
                docs.append(CorpusEntry.from_dict(doc))
            except (OSError, ValueError, KeyError, TypeError):
                continue               # truncated/foreign file: skip
        docs.sort(key=lambda e: e.seq)
        for entry in docs:
            self._entries.append(entry)
            self._digests.add(entry.digest)
            self.accumulated = self.accumulated | entry.signature

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[CorpusEntry]:
        """Replay order: failing entries first, then admit order."""
        return sorted(self._entries, key=lambda e: (not e.failed, e.seq))

    def plans(self) -> List[FaultPlan]:
        return [e.plan for e in self._entries]

    def novelty(self, signature: Signature) -> int:
        """Bits ``signature`` would add to the accumulated coverage."""
        return signature.new_bits(self.accumulated)

    def admit(self, entry: CorpusEntry) -> bool:
        """Persist ``entry`` if its signature is new; True on admit.

        Dedup is by exact signature (the digest doubles as the file
        name); the accumulated bitmap grows either way, so a caller
        can feed every trial through here and only the novel ones
        stick.
        """
        self.accumulated = self.accumulated | entry.signature
        if entry.digest in self._digests:
            return False
        entry.seq = self.next_seq()
        path = os.path.join(self.root, f"{entry.digest}.json")
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry.to_dict(), fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._entries.append(entry)
        self._digests.add(entry.digest)
        return True

    def next_seq(self) -> int:
        return max((e.seq for e in self._entries), default=0) + 1

    def stats(self) -> Dict[str, object]:
        return {
            "size": len(self._entries),
            "edges": self.accumulated.popcount,
            "failing": sum(1 for e in self._entries if e.failed),
        }


def default_corpus_dir(cache_dir: Optional[str],
                       out_dir: str) -> str:
    """Where the corpus lives: beside the trial cache when there is
    one (a single CI cache key restores both), else under the
    campaign's output directory."""
    base = cache_dir if cache_dir else os.path.join(out_dir, "cache")
    return os.path.join(base, "corpus")


__all__ = ["Corpus", "CorpusEntry", "default_corpus_dir", "plan_digest"]
