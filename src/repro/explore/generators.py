"""Fault-scenario generators: adversarial FAIL programs from a seed.

The paper's six listings probe six hand-picked fault patterns; this
module *generates* them.  Every generator family turns a seeded
``random.Random`` into a :class:`FaultPlan` — a small, shrinkable IR of
injection steps — and :func:`render_plan` compiles any plan into a
complete two-daemon FAIL scenario (a master adversary ``XADV`` plus a
per-machine daemon ``XNODE``) through the construction API of
:mod:`repro.fail.build`.  The rendered *source text* is the scenario's
canonical form: it feeds the ordinary compile → interpret pipeline and
the trial cache key, and the pretty-printer round-trip property
guarantees it parses back to the same program.

Plan steps
----------

:class:`TimedKill`
    At absolute time ``at``, order ``crash`` to machine ``target``.
:class:`RekillRace`
    Wait until a previously-killed machine reports its recovery
    relaunch, then immediately kill ``target`` — the restart-then-
    rekill race of Figs. 8/9.
:class:`KillReporter`
    Wait for a recovery report and kill *whichever machine sent it*
    (``FAIL_SENDER``) — the fault-during-recovery pattern.
:class:`TimedPartition`
    At absolute time ``at``, cut a machine group (and optionally
    service nodes) off the network fabric — the partition-class fault
    no paper scenario expresses.  Isolation accumulates, so a
    neighborhood cut in one step stays internally connected.
:class:`Heal`
    ``after`` seconds later, restore every cut link.  ``after == 0``
    folds the heal into the partition's own transition, which lands
    *before* the severance notification (one network latency) — the
    failure detector never fires, probing the false-suspicion race.

Steps execute strictly in sequence: a timed kill arms its timer only
after the previous step's acknowledgement (``ok`` — fault injected —
or ``no`` — nothing ran there, a no-op fault), exactly how the paper's
masters chain injections.  Partition/heal steps need no ack — the
master executes them locally and moves on.

Families (``FAMILIES``)
-----------------------

``random_schedule``
    2–``max_faults`` kills at random times/targets — the baseline sweep.
``burst``
    One batch of back-to-back kills at a single instant (Fig. 7's
    regime, with randomized batch size, time and victims).
``targeted``
    Correlated kills: either always rank 0's machine, or the machines
    whose ranks share home Channel Memory 0 (the ``rank %
    n_channel_memories`` neighborhood, which also concentrates load on
    one checkpoint-server pairing).
``rekill_race``
    Kill, await the victim's recovery relaunch, kill again.
``fault_during_recovery``
    Kill, then kill the first machine that reports a recovery wave.
``partition_storm``
    Timed partitions isolating CM/checkpoint-server neighborhoods
    (the machines of the ranks homed on one Channel Memory, a single
    machine, or a checkpoint-server service node), healed before or
    after the socket-closure failure detector fires — or never.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.fail import build as fb

#: generated daemon names (bound via TrialSetup.master_daemon / node_daemon)
MASTER = "XADV"
NODE_DAEMON = "XNODE"


@dataclass(frozen=True)
class TimedKill:
    at: int              # absolute injection time, integer seconds
    target: int          # machine index in the G1 group


@dataclass(frozen=True)
class RekillRace:
    target: int


@dataclass(frozen=True)
class KillReporter:
    pass


@dataclass(frozen=True)
class TimedPartition:
    at: int                        # absolute injection time, seconds
    targets: Tuple[int, ...]       # machine indices isolated together
    #: service-node names isolated with them (e.g. ``("svc2",)``)
    services: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Heal:
    after: int                     # seconds after the previous step


Step = Union[TimedKill, RekillRace, KillReporter, TimedPartition, Heal]
FaultPlan = Tuple[Step, ...]


def kill_steps(plan: FaultPlan) -> List[Step]:
    """The process-killing steps of a plan."""
    return [s for s in plan
            if isinstance(s, (TimedKill, RekillRace, KillReporter))]


def partition_steps(plan: FaultPlan) -> List["TimedPartition"]:
    return [s for s in plan if isinstance(s, TimedPartition)]


def has_unhealed_partition(plan: FaultPlan) -> bool:
    """Does any partition survive to the end of the plan?

    Each :class:`Heal` restores *every* cut, so only partitions after
    the last heal stay active.  A surviving cut of *any* kind can
    legitimately block the run: a compute cut stops the application
    itself, and a service cut (e.g. a checkpoint server) strands any
    recovery that must fetch state across the dead link.
    """
    unhealed = False
    for step in plan:
        if isinstance(step, TimedPartition):
            unhealed = True
        elif isinstance(step, Heal):
            unhealed = False
    return unhealed


def plan_digest(plan: FaultPlan, n_machines: int) -> str:
    """Short stable digest of a plan (cache-key provenance)."""
    text = f"{n_machines}|" + "|".join(map(repr, plan))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def plan_to_doc(plan: FaultPlan) -> List[Dict[str, object]]:
    """JSON-safe document form of a plan (corpus persistence)."""
    doc: List[Dict[str, object]] = []
    for step in plan:
        if isinstance(step, TimedKill):
            doc.append({"step": "kill", "at": step.at,
                        "target": step.target})
        elif isinstance(step, RekillRace):
            doc.append({"step": "rekill", "target": step.target})
        elif isinstance(step, KillReporter):
            doc.append({"step": "kill_reporter"})
        elif isinstance(step, TimedPartition):
            doc.append({"step": "partition", "at": step.at,
                        "targets": list(step.targets),
                        "services": list(step.services)})
        elif isinstance(step, Heal):
            doc.append({"step": "heal", "after": step.after})
        else:  # pragma: no cover - Step union is closed
            raise TypeError(f"unknown plan step {step!r}")
    return doc


def plan_from_doc(doc: Sequence[Dict[str, object]]) -> FaultPlan:
    """Inverse of :func:`plan_to_doc`."""
    steps: List[Step] = []
    for entry in doc:
        kind = entry["step"]
        if kind == "kill":
            steps.append(TimedKill(at=int(entry["at"]),
                                   target=int(entry["target"])))
        elif kind == "rekill":
            steps.append(RekillRace(target=int(entry["target"])))
        elif kind == "kill_reporter":
            steps.append(KillReporter())
        elif kind == "partition":
            steps.append(TimedPartition(
                at=int(entry["at"]),
                targets=tuple(int(t) for t in entry["targets"]),
                services=tuple(str(s) for s in entry["services"])))
        elif kind == "heal":
            steps.append(Heal(after=int(entry["after"])))
        else:
            raise ValueError(f"unknown plan-step kind {kind!r}")
    return tuple(steps)


# ---------------------------------------------------------------------------
# plan -> FAIL source
# ---------------------------------------------------------------------------

def _node_daemon():
    """The generated per-machine daemon.

    Like Fig. 4's ``ADV2`` (control the local process, ack crash
    orders) plus one extension: a machine that was *killed* reports its
    recovery relaunch to the master (``waveok``), which is what the
    reactive plan steps synchronize on.  Exactly one report per kill,
    for every protocol — single-rank restarts reload only the victim.
    """
    P1 = fb.computer("P1")
    return fb.daemon(
        NODE_DAEMON,
        fb.node(
            1,
            fb.when(fb.ONLOAD, fb.CONTINUE, fb.goto(2)),
            fb.when(fb.on_msg("crash"), fb.send("no", P1), fb.goto(1)),
        ),
        fb.node(
            2,
            fb.when(fb.ONEXIT, fb.goto(1)),
            fb.when(fb.ONERROR, fb.goto(1)),
            fb.when(fb.ONLOAD, fb.CONTINUE, fb.goto(2)),
            fb.when(fb.on_msg("crash"), fb.send("ok", P1), fb.HALT,
                    fb.goto(3)),
        ),
        fb.node(
            3,
            fb.when(fb.ONLOAD, fb.send("waveok", P1), fb.CONTINUE,
                    fb.goto(2)),
            fb.when(fb.on_msg("crash"), fb.send("no", P1), fb.goto(3)),
        ),
    )


def _master_daemon(plan: FaultPlan):
    """Compile a plan into the sequential master adversary.

    Kill steps chain through the node daemons' ``ok``/``no`` acks;
    partition and heal steps execute locally at the master and advance
    directly.  A :class:`Heal` with ``after == 0`` immediately after a
    partition folds into the *same* transition: the heal lands before
    the severance notification (one network latency), so the failure
    detector never observes the cut.
    """
    nodes = []
    cursor = 0
    next_id = 1
    i = 0
    while i < len(plan):
        step = plan[i]
        if isinstance(step, (TimedPartition, Heal)):
            trigger_id, after_id = next_id, next_id + 1
            if isinstance(step, TimedPartition):
                delta = max(0, step.at - cursor)
                cursor = max(cursor, step.at)
                actions = [fb.partition(fb.group("G1", t))
                           for t in step.targets]
                actions += [fb.partition(fb.computer(svc))
                            for svc in step.services]
                if i + 1 < len(plan) and isinstance(plan[i + 1], Heal) \
                        and plan[i + 1].after == 0:
                    actions.append(fb.HEAL)   # heal-before-detection race
                    i += 1
            else:
                delta = max(0, step.after)
                cursor += delta
                actions = [fb.HEAL]
            nodes.append(fb.node(
                trigger_id,
                fb.when(fb.TIMER, *actions, fb.goto(after_id)),
                timers=[fb.timer(delta)],
            ))
            next_id = after_id
            i += 1
            continue
        trigger_id, ack_id, after_id = next_id, next_id + 1, next_id + 2
        if isinstance(step, TimedKill):
            delta = max(0, step.at - cursor)
            cursor = max(cursor, step.at)
            nodes.append(fb.node(
                trigger_id,
                fb.when(fb.TIMER, fb.crash(fb.group("G1", step.target)),
                        fb.goto(ack_id)),
                timers=[fb.timer(delta)],
            ))
        elif isinstance(step, RekillRace):
            nodes.append(fb.node(
                trigger_id,
                fb.when(fb.on_msg("waveok"),
                        fb.crash(fb.group("G1", step.target)),
                        fb.goto(ack_id)),
            ))
        elif isinstance(step, KillReporter):
            nodes.append(fb.node(
                trigger_id,
                fb.when(fb.on_msg("waveok"), fb.crash(fb.SENDER),
                        fb.goto(ack_id)),
            ))
        else:  # pragma: no cover - plan construction precludes this
            raise TypeError(f"unknown plan step {step!r}")
        nodes.append(fb.node(
            ack_id,
            fb.when(fb.on_msg("ok"), fb.goto(after_id)),
            fb.when(fb.on_msg("no"), fb.goto(after_id)),
        ))
        next_id = after_id
        i += 1
    nodes.append(fb.node(next_id))       # terminal: injection done
    return fb.daemon(MASTER, *nodes)


def render_plan(plan: FaultPlan) -> str:
    """Plan → canonical FAIL source (master + node daemon)."""
    return fb.render(fb.program(_master_daemon(plan), _node_daemon()))


# ---------------------------------------------------------------------------
# generator families
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GeneratorContext:
    """Shared envelope every family draws inside."""

    n_machines: int
    #: machines that actually host MPI ranks (``n_procs``); targets are
    #: biased here — a kill on an idle spare is a no-op fault.  0 means
    #: "all machines are fair game".
    n_busy: int = 0
    #: absolute-time window for timed kills (integer seconds)
    window: Tuple[int, int] = (10, 80)
    #: most kills any one scenario may plan
    max_faults: int = 4
    #: CM-neighborhood stride (``n_channel_memories`` of the v1 config)
    cm_stride: int = 2
    #: deployed checkpoint servers (svc2..): partition targets
    n_ckpt_servers: int = 2

    def pick_time(self, rng: random.Random) -> int:
        return rng.randint(self.window[0], self.window[1])

    def pick_target(self, rng: random.Random) -> int:
        busy = self.n_busy or self.n_machines
        if busy < self.n_machines and rng.random() < 0.125:
            return rng.randrange(self.n_machines)   # occasional spare:
            # exercises the negative-ack path without wasting the trial
        return rng.randrange(busy)


def _gen_random_schedule(rng, ctx) -> Tuple[FaultPlan, str]:
    k = rng.randint(2, ctx.max_faults)
    times = sorted(ctx.pick_time(rng) for _ in range(k))
    plan = tuple(TimedKill(at=t, target=ctx.pick_target(rng))
                 for t in times)
    return plan, f"{k} kills at random times"


def _gen_burst(rng, ctx) -> Tuple[FaultPlan, str]:
    k = rng.randint(2, ctx.max_faults)
    at = ctx.pick_time(rng)
    pool = range(ctx.n_busy or ctx.n_machines)
    victims = rng.sample(pool, min(k, len(pool)))
    plan = tuple(TimedKill(at=at, target=v) for v in victims)
    return plan, f"burst of {len(victims)} simultaneous kills at t={at}"


def _gen_targeted(rng, ctx) -> Tuple[FaultPlan, str]:
    k = rng.randint(2, ctx.max_faults)
    start = ctx.pick_time(rng)
    period = rng.randint(15, 40)
    if rng.random() < 0.5:
        targets = [0] * k                  # always rank 0's machine
        label = "rank 0"
    else:
        # machines of the ranks homed on CM 0: rank % stride == 0
        pool = list(range(0, ctx.n_busy or ctx.n_machines,
                          max(1, ctx.cm_stride)))
        targets = [pool[i % len(pool)] for i in range(k)]
        label = "CM-0 neighborhood"
    plan = tuple(TimedKill(at=start + i * period, target=t)
                 for i, t in enumerate(targets))
    return plan, f"{k} correlated kills on {label} every {period}s"


def _gen_rekill_race(rng, ctx) -> Tuple[FaultPlan, str]:
    first = ctx.pick_target(rng)
    plan: List[Step] = [TimedKill(at=ctx.pick_time(rng), target=first)]
    for _ in range(rng.randint(1, max(1, ctx.max_faults - 1))):
        plan.append(RekillRace(
            target=first if rng.random() < 0.5 else ctx.pick_target(rng)))
    return tuple(plan), f"kill then re-kill on recovery ({len(plan)} steps)"


def _gen_fault_during_recovery(rng, ctx) -> Tuple[FaultPlan, str]:
    plan: List[Step] = [TimedKill(at=ctx.pick_time(rng),
                                  target=ctx.pick_target(rng))]
    for _ in range(rng.randint(1, max(1, ctx.max_faults - 1))):
        plan.append(KillReporter())
    return tuple(plan), f"kill the recovering machine ({len(plan)} steps)"


def _gen_partition_storm(rng, ctx) -> Tuple[FaultPlan, str]:
    """Timed partitions isolating CM/checkpoint-server neighborhoods,
    healed before or after the failure-detection race — or never."""
    busy = ctx.n_busy or ctx.n_machines
    stride = max(1, ctx.cm_stride)
    steps: List[Step] = []
    parts: List[str] = []
    at = ctx.pick_time(rng)
    for _ in range(rng.randint(1, 2)):
        mode = rng.random()
        if mode < 0.4:
            cm = rng.randrange(stride)
            targets = tuple(range(cm, busy, stride)) or (0,)
            services: Tuple[str, ...] = ()
            what = f"CM-{cm} neighborhood"
        elif mode < 0.75:
            targets = (rng.randrange(busy),)
            services = ()
            what = f"machine {targets[0]}"
        else:
            from repro.mpichv.shardmap import ckpt_server_node
            targets = ()
            services = (ckpt_server_node(
                rng.randrange(max(1, ctx.n_ckpt_servers))),)
            what = f"ckpt server {services[0]}"
        steps.append(TimedPartition(at=at, targets=targets,
                                    services=services))
        if rng.random() < 0.85:
            heal_after = 0 if rng.random() < 0.35 else rng.randint(2, 30)
            steps.append(Heal(after=heal_after))
            timing = ("before detection" if heal_after == 0
                      else f"after {heal_after}s")
            parts.append(f"{what} healed {timing}")
        else:
            parts.append(f"{what} never healed")
        at += rng.randint(15, 40)
    if rng.random() < 0.4:
        # storm finale: a real death amid the partition churn — the
        # detector now faces true and false suspicions in one run
        victim = rng.randrange(busy)
        steps.append(TimedKill(at=at, target=victim))
        parts.append(f"then kill machine {victim} at t={at}")
    return tuple(steps), "partition " + "; ".join(parts)


#: family name -> (rng, ctx) -> (plan, description); sorted-name order
#: is the canonical iteration order everywhere in the subsystem
FAMILIES: Dict[str, Callable] = {
    "burst": _gen_burst,
    "fault_during_recovery": _gen_fault_during_recovery,
    "partition_storm": _gen_partition_storm,
    "random_schedule": _gen_random_schedule,
    "rekill_race": _gen_rekill_race,
    "targeted": _gen_targeted,
}


@dataclass(frozen=True)
class GeneratedScenario:
    """One generated adversary, ready to hand to a :class:`TrialSetup`."""

    family: str
    index: int
    seed: int                    # generator stream seed
    plan: FaultPlan
    n_machines: int
    source: str                  # rendered FAIL text
    description: str

    @property
    def scenario_id(self) -> str:
        return f"{self.family}[{self.index}]"

    def meta(self) -> Dict[str, object]:
        """Provenance for ``TrialSetup.scenario_meta`` (cache keying)."""
        return {
            "family": self.family,
            "index": self.index,
            "gen_seed": self.seed,
            "plan": repr(self.plan),
            "digest": plan_digest(self.plan, self.n_machines),
        }


def generate(family: str, index: int, seed: int,
             ctx: GeneratorContext) -> GeneratedScenario:
    """Deterministically generate the ``index``-th scenario of a family.

    The family's random stream is seeded from ``(seed, family, index)``
    only — string seeding, hash-stable across processes — so a campaign
    seed pins every scenario byte-for-byte.
    """
    fn = FAMILIES.get(family)
    if fn is None:
        raise ValueError(f"unknown generator family {family!r}; "
                         f"known: {sorted(FAMILIES)}")
    rng = random.Random(f"explore-gen:{seed}:{family}:{index}")
    plan, description = fn(rng, ctx)
    return GeneratedScenario(
        family=family, index=index, seed=seed, plan=plan,
        n_machines=ctx.n_machines, source=render_plan(plan),
        description=description)


def generate_suite(families: Sequence[str], per_family: int, seed: int,
                   ctx: GeneratorContext) -> List[GeneratedScenario]:
    """``per_family`` scenarios for each family, in canonical order."""
    return [generate(family, i, seed, ctx)
            for family in sorted(families)
            for i in range(per_family)]
