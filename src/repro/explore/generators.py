"""Fault-scenario generators: adversarial FAIL programs from a seed.

The paper's six listings probe six hand-picked fault patterns; this
module *generates* them.  Every generator family turns a seeded
``random.Random`` into a :class:`FaultPlan` — a small, shrinkable IR of
injection steps — and :func:`render_plan` compiles any plan into a
complete two-daemon FAIL scenario (a master adversary ``XADV`` plus a
per-machine daemon ``XNODE``) through the construction API of
:mod:`repro.fail.build`.  The rendered *source text* is the scenario's
canonical form: it feeds the ordinary compile → interpret pipeline and
the trial cache key, and the pretty-printer round-trip property
guarantees it parses back to the same program.

Plan steps
----------

:class:`TimedKill`
    At absolute time ``at``, order ``crash`` to machine ``target``.
:class:`RekillRace`
    Wait until a previously-killed machine reports its recovery
    relaunch, then immediately kill ``target`` — the restart-then-
    rekill race of Figs. 8/9.
:class:`KillReporter`
    Wait for a recovery report and kill *whichever machine sent it*
    (``FAIL_SENDER``) — the fault-during-recovery pattern.

Steps execute strictly in sequence: a timed kill arms its timer only
after the previous step's acknowledgement (``ok`` — fault injected —
or ``no`` — nothing ran there, a no-op fault), exactly how the paper's
masters chain injections.

Families (``FAMILIES``)
-----------------------

``random_schedule``
    2–``max_faults`` kills at random times/targets — the baseline sweep.
``burst``
    One batch of back-to-back kills at a single instant (Fig. 7's
    regime, with randomized batch size, time and victims).
``targeted``
    Correlated kills: either always rank 0's machine, or the machines
    whose ranks share home Channel Memory 0 (the ``rank %
    n_channel_memories`` neighborhood, which also concentrates load on
    one checkpoint-server pairing).
``rekill_race``
    Kill, await the victim's recovery relaunch, kill again.
``fault_during_recovery``
    Kill, then kill the first machine that reports a recovery wave.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.fail import build as fb

#: generated daemon names (bound via TrialSetup.master_daemon / node_daemon)
MASTER = "XADV"
NODE_DAEMON = "XNODE"


@dataclass(frozen=True)
class TimedKill:
    at: int              # absolute injection time, integer seconds
    target: int          # machine index in the G1 group


@dataclass(frozen=True)
class RekillRace:
    target: int


@dataclass(frozen=True)
class KillReporter:
    pass


Step = Union[TimedKill, RekillRace, KillReporter]
FaultPlan = Tuple[Step, ...]


def plan_kills(plan: FaultPlan) -> int:
    """Number of injection steps in a plan."""
    return len(plan)


def plan_digest(plan: FaultPlan, n_machines: int) -> str:
    """Short stable digest of a plan (cache-key provenance)."""
    text = f"{n_machines}|" + "|".join(map(repr, plan))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


# ---------------------------------------------------------------------------
# plan -> FAIL source
# ---------------------------------------------------------------------------

def _node_daemon():
    """The generated per-machine daemon.

    Like Fig. 4's ``ADV2`` (control the local process, ack crash
    orders) plus one extension: a machine that was *killed* reports its
    recovery relaunch to the master (``waveok``), which is what the
    reactive plan steps synchronize on.  Exactly one report per kill,
    for every protocol — single-rank restarts reload only the victim.
    """
    P1 = fb.computer("P1")
    return fb.daemon(
        NODE_DAEMON,
        fb.node(
            1,
            fb.when(fb.ONLOAD, fb.CONTINUE, fb.goto(2)),
            fb.when(fb.on_msg("crash"), fb.send("no", P1), fb.goto(1)),
        ),
        fb.node(
            2,
            fb.when(fb.ONEXIT, fb.goto(1)),
            fb.when(fb.ONERROR, fb.goto(1)),
            fb.when(fb.ONLOAD, fb.CONTINUE, fb.goto(2)),
            fb.when(fb.on_msg("crash"), fb.send("ok", P1), fb.HALT,
                    fb.goto(3)),
        ),
        fb.node(
            3,
            fb.when(fb.ONLOAD, fb.send("waveok", P1), fb.CONTINUE,
                    fb.goto(2)),
            fb.when(fb.on_msg("crash"), fb.send("no", P1), fb.goto(3)),
        ),
    )


def _master_daemon(plan: FaultPlan):
    """Compile a plan into the sequential master adversary."""
    nodes = []
    cursor = 0
    next_id = 1
    for step in plan:
        trigger_id, ack_id, after_id = next_id, next_id + 1, next_id + 2
        if isinstance(step, TimedKill):
            delta = max(0, step.at - cursor)
            cursor = max(cursor, step.at)
            nodes.append(fb.node(
                trigger_id,
                fb.when(fb.TIMER, fb.crash(fb.group("G1", step.target)),
                        fb.goto(ack_id)),
                timers=[fb.timer(delta)],
            ))
        elif isinstance(step, RekillRace):
            nodes.append(fb.node(
                trigger_id,
                fb.when(fb.on_msg("waveok"),
                        fb.crash(fb.group("G1", step.target)),
                        fb.goto(ack_id)),
            ))
        elif isinstance(step, KillReporter):
            nodes.append(fb.node(
                trigger_id,
                fb.when(fb.on_msg("waveok"), fb.crash(fb.SENDER),
                        fb.goto(ack_id)),
            ))
        else:  # pragma: no cover - plan construction precludes this
            raise TypeError(f"unknown plan step {step!r}")
        nodes.append(fb.node(
            ack_id,
            fb.when(fb.on_msg("ok"), fb.goto(after_id)),
            fb.when(fb.on_msg("no"), fb.goto(after_id)),
        ))
        next_id = after_id
    nodes.append(fb.node(next_id))       # terminal: injection done
    return fb.daemon(MASTER, *nodes)


def render_plan(plan: FaultPlan) -> str:
    """Plan → canonical FAIL source (master + node daemon)."""
    return fb.render(fb.program(_master_daemon(plan), _node_daemon()))


# ---------------------------------------------------------------------------
# generator families
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GeneratorContext:
    """Shared envelope every family draws inside."""

    n_machines: int
    #: machines that actually host MPI ranks (``n_procs``); targets are
    #: biased here — a kill on an idle spare is a no-op fault.  0 means
    #: "all machines are fair game".
    n_busy: int = 0
    #: absolute-time window for timed kills (integer seconds)
    window: Tuple[int, int] = (10, 80)
    #: most kills any one scenario may plan
    max_faults: int = 4
    #: CM-neighborhood stride (``n_channel_memories`` of the v1 config)
    cm_stride: int = 2

    def pick_time(self, rng: random.Random) -> int:
        return rng.randint(self.window[0], self.window[1])

    def pick_target(self, rng: random.Random) -> int:
        busy = self.n_busy or self.n_machines
        if busy < self.n_machines and rng.random() < 0.125:
            return rng.randrange(self.n_machines)   # occasional spare:
            # exercises the negative-ack path without wasting the trial
        return rng.randrange(busy)


def _gen_random_schedule(rng, ctx) -> Tuple[FaultPlan, str]:
    k = rng.randint(2, ctx.max_faults)
    times = sorted(ctx.pick_time(rng) for _ in range(k))
    plan = tuple(TimedKill(at=t, target=ctx.pick_target(rng))
                 for t in times)
    return plan, f"{k} kills at random times"


def _gen_burst(rng, ctx) -> Tuple[FaultPlan, str]:
    k = rng.randint(2, ctx.max_faults)
    at = ctx.pick_time(rng)
    pool = range(ctx.n_busy or ctx.n_machines)
    victims = rng.sample(pool, min(k, len(pool)))
    plan = tuple(TimedKill(at=at, target=v) for v in victims)
    return plan, f"burst of {len(victims)} simultaneous kills at t={at}"


def _gen_targeted(rng, ctx) -> Tuple[FaultPlan, str]:
    k = rng.randint(2, ctx.max_faults)
    start = ctx.pick_time(rng)
    period = rng.randint(15, 40)
    if rng.random() < 0.5:
        targets = [0] * k                  # always rank 0's machine
        label = "rank 0"
    else:
        # machines of the ranks homed on CM 0: rank % stride == 0
        pool = list(range(0, ctx.n_busy or ctx.n_machines,
                          max(1, ctx.cm_stride)))
        targets = [pool[i % len(pool)] for i in range(k)]
        label = "CM-0 neighborhood"
    plan = tuple(TimedKill(at=start + i * period, target=t)
                 for i, t in enumerate(targets))
    return plan, f"{k} correlated kills on {label} every {period}s"


def _gen_rekill_race(rng, ctx) -> Tuple[FaultPlan, str]:
    first = ctx.pick_target(rng)
    plan: List[Step] = [TimedKill(at=ctx.pick_time(rng), target=first)]
    for _ in range(rng.randint(1, max(1, ctx.max_faults - 1))):
        plan.append(RekillRace(
            target=first if rng.random() < 0.5 else ctx.pick_target(rng)))
    return tuple(plan), f"kill then re-kill on recovery ({len(plan)} steps)"


def _gen_fault_during_recovery(rng, ctx) -> Tuple[FaultPlan, str]:
    plan: List[Step] = [TimedKill(at=ctx.pick_time(rng),
                                  target=ctx.pick_target(rng))]
    for _ in range(rng.randint(1, max(1, ctx.max_faults - 1))):
        plan.append(KillReporter())
    return tuple(plan), f"kill the recovering machine ({len(plan)} steps)"


#: family name -> (rng, ctx) -> (plan, description); sorted-name order
#: is the canonical iteration order everywhere in the subsystem
FAMILIES: Dict[str, Callable] = {
    "burst": _gen_burst,
    "fault_during_recovery": _gen_fault_during_recovery,
    "random_schedule": _gen_random_schedule,
    "rekill_race": _gen_rekill_race,
    "targeted": _gen_targeted,
}


@dataclass(frozen=True)
class GeneratedScenario:
    """One generated adversary, ready to hand to a :class:`TrialSetup`."""

    family: str
    index: int
    seed: int                    # generator stream seed
    plan: FaultPlan
    n_machines: int
    source: str                  # rendered FAIL text
    description: str

    @property
    def scenario_id(self) -> str:
        return f"{self.family}[{self.index}]"

    def meta(self) -> Dict[str, object]:
        """Provenance for ``TrialSetup.scenario_meta`` (cache keying)."""
        return {
            "family": self.family,
            "index": self.index,
            "gen_seed": self.seed,
            "plan": repr(self.plan),
            "digest": plan_digest(self.plan, self.n_machines),
        }


def generate(family: str, index: int, seed: int,
             ctx: GeneratorContext) -> GeneratedScenario:
    """Deterministically generate the ``index``-th scenario of a family.

    The family's random stream is seeded from ``(seed, family, index)``
    only — string seeding, hash-stable across processes — so a campaign
    seed pins every scenario byte-for-byte.
    """
    fn = FAMILIES.get(family)
    if fn is None:
        raise ValueError(f"unknown generator family {family!r}; "
                         f"known: {sorted(FAMILIES)}")
    rng = random.Random(f"explore-gen:{seed}:{family}:{index}")
    plan, description = fn(rng, ctx)
    return GeneratedScenario(
        family=family, index=index, seed=seed, plan=plan,
        n_machines=ctx.n_machines, source=render_plan(plan),
        description=description)


def generate_suite(families: Sequence[str], per_family: int, seed: int,
                   ctx: GeneratorContext) -> List[GeneratedScenario]:
    """``per_family`` scenarios for each family, in canonical order."""
    return [generate(family, i, seed, ctx)
            for family in sorted(families)
            for i in range(per_family)]
