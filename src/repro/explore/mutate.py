"""Plan mutations: the greybox half of coverage-guided exploration.

The seeded generator families (:mod:`repro.explore.generators`) sample
from hand-designed fault patterns; once their coverage saturates, the
guided campaign (:func:`repro.explore.campaign.run_guided`) keeps the
search moving by *mutating* corpus plans that previously lit up novel
coverage — the AFL recipe applied to the fault-plan IR instead of a
byte buffer.

Every operator is a pure function ``(plan, rng, ctx) -> plan-or-None``
(None = not applicable to this plan) drawn from :data:`MUTATORS`:

``shift_time``
    Jitter one timed step's injection instant — moves a kill across
    the checkpoint-wave boundary or a partition across the
    failure-detection race.
``retarget``
    Re-aim one step at another machine, biased toward the busy set and
    the CM-0 neighborhood (``rank % cm_stride == 0``) that the
    targeted family identified as load-bearing.
``heal_race``
    Snap a partition's heal to ``after=0`` — the heal-before-detection
    race — or give a never-healed partition a late heal.  This is the
    operator that walks a plan *out* of the unhealed-partition excuse
    region, where every oracle politely looks away.
``splice``
    Insert a short chunk of a donor plan (another corpus entry or a
    fresh seeded plan): partition churn + a real kill in one schedule
    is exactly the mixed true/false-suspicion regime no single family
    generates on its own.
``add_kill`` / ``drop_step`` / ``duplicate_kill``
    Grow, shrink, or burst-ify the schedule.
``grid_snap``
    Round every injection time to a coarse grid — collapses
    near-coincident steps into genuinely simultaneous ones.

:func:`mutate` composes one or two operators and guarantees the result
passes :func:`valid_plan` (renderable, reactive steps have a kill to
react to, heals have a partition to heal) and differs from the input.
Everything is driven by the caller's ``random.Random``, so the guided
campaign's determinism contract extends through mutation: same seed ⇒
same mutant sequence.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.explore.generators import (FaultPlan, GeneratorContext, Heal,
                                      KillReporter, RekillRace, Step,
                                      TimedKill, TimedPartition, kill_steps)

#: schedule-size ceilings: mutation may grow a plan past the seeded
#: families' ``max_faults``, but not without bound
MAX_STEPS = 12
EXTRA_FAULTS = 2


def valid_plan(plan: FaultPlan, ctx: GeneratorContext) -> bool:
    """Is this plan renderable and sensible for ``ctx``'s deployment?

    Reactive steps (:class:`RekillRace`, :class:`KillReporter`) block
    on a recovery report, so they need an earlier :class:`TimedKill`
    to ever fire; a :class:`Heal` needs an earlier partition.  Targets
    must exist, times must be non-negative integers inside a bounded
    horizon.
    """
    if not 1 <= len(plan) <= MAX_STEPS:
        return False
    if len(kill_steps(plan)) > ctx.max_faults + EXTRA_FAULTS:
        return False
    horizon = ctx.window[1] + 120
    saw_kill = saw_partition = False
    for step in plan:
        if isinstance(step, TimedKill):
            if not (0 <= step.at <= horizon
                    and 0 <= step.target < ctx.n_machines):
                return False
            saw_kill = True
        elif isinstance(step, (RekillRace, KillReporter)):
            if not saw_kill:
                return False
            if isinstance(step, RekillRace) \
                    and not 0 <= step.target < ctx.n_machines:
                return False
        elif isinstance(step, TimedPartition):
            if not 0 <= step.at <= horizon:
                return False
            if not step.targets and not step.services:
                return False
            if any(not 0 <= t < ctx.n_machines for t in step.targets):
                return False
            saw_partition = True
        elif isinstance(step, Heal):
            if not saw_partition or step.after < 0:
                return False
        else:  # pragma: no cover - Step union is closed
            return False
    return True


# ---------------------------------------------------------------------------
# operators
# ---------------------------------------------------------------------------

def _timed_indices(plan: FaultPlan) -> List[int]:
    return [i for i, s in enumerate(plan)
            if isinstance(s, (TimedKill, TimedPartition))]


def _replace_at(plan: FaultPlan, i: int, step: Step) -> FaultPlan:
    return plan[:i] + (step,) + plan[i + 1:]


def _shift_time(plan: FaultPlan, rng: random.Random,
                ctx: GeneratorContext) -> Optional[FaultPlan]:
    candidates = _timed_indices(plan)
    if not candidates:
        return None
    i = rng.choice(candidates)
    step = plan[i]
    delta = rng.choice((-20, -10, -5, -2, 2, 5, 10, 20))
    at = min(max(0, step.at + delta), ctx.window[1] + 60)
    if isinstance(step, TimedKill):
        return _replace_at(plan, i, TimedKill(at=at, target=step.target))
    return _replace_at(plan, i, TimedPartition(
        at=at, targets=step.targets, services=step.services))


def _retarget(plan: FaultPlan, rng: random.Random,
              ctx: GeneratorContext) -> Optional[FaultPlan]:
    candidates = [i for i, s in enumerate(plan)
                  if isinstance(s, (TimedKill, RekillRace, TimedPartition))]
    if not candidates:
        return None
    i = rng.choice(candidates)
    step = plan[i]
    busy = ctx.n_busy or ctx.n_machines
    if isinstance(step, TimedPartition):
        # re-aim the cut at another neighborhood / machine
        stride = max(1, ctx.cm_stride)
        if rng.random() < 0.5:
            cm = rng.randrange(stride)
            targets: Tuple[int, ...] = tuple(range(cm, busy, stride)) or (0,)
        else:
            targets = (rng.randrange(busy),)
        return _replace_at(plan, i, TimedPartition(
            at=step.at, targets=targets, services=step.services))
    if rng.random() < 0.35:        # CM-0 neighborhood bias
        pool = list(range(0, busy, max(1, ctx.cm_stride)))
        target = rng.choice(pool)
    else:
        target = ctx.pick_target(rng)
    if isinstance(step, TimedKill):
        return _replace_at(plan, i, TimedKill(at=step.at, target=target))
    return _replace_at(plan, i, RekillRace(target=target))


def _heal_race(plan: FaultPlan, rng: random.Random,
               ctx: GeneratorContext) -> Optional[FaultPlan]:
    heals = [i for i, s in enumerate(plan) if isinstance(s, Heal)]
    if heals:
        i = rng.choice(heals)
        step = plan[i]
        after = 0 if step.after > 0 else rng.randint(2, 30)
        return _replace_at(plan, i, Heal(after=after))
    parts = [i for i, s in enumerate(plan)
             if isinstance(s, TimedPartition)]
    if not parts:
        return None
    i = rng.choice(parts)          # never-healed cut -> heal it
    after = 0 if rng.random() < 0.5 else rng.randint(2, 30)
    return plan[:i + 1] + (Heal(after=after),) + plan[i + 1:]


def _splice(plan: FaultPlan, rng: random.Random, ctx: GeneratorContext,
            donors: Sequence[FaultPlan] = ()) -> Optional[FaultPlan]:
    if not donors:
        return None
    donor = donors[rng.randrange(len(donors))]
    if not donor:
        return None
    start = rng.randrange(len(donor))
    chunk = donor[start:start + rng.randint(1, 2)]
    pos = rng.randint(0, len(plan))
    return plan[:pos] + chunk + plan[pos:]


def _add_kill(plan: FaultPlan, rng: random.Random,
              ctx: GeneratorContext) -> Optional[FaultPlan]:
    step = TimedKill(at=ctx.pick_time(rng), target=ctx.pick_target(rng))
    # append mostly: a finale kill after partition churn is the move
    # that pairs true and false suspicions in one schedule
    pos = len(plan) if rng.random() < 0.7 else rng.randint(0, len(plan))
    return plan[:pos] + (step,) + plan[pos:]


def _drop_step(plan: FaultPlan, rng: random.Random,
               ctx: GeneratorContext) -> Optional[FaultPlan]:
    if len(plan) <= 1:
        return None
    i = rng.randrange(len(plan))
    return plan[:i] + plan[i + 1:]


def _duplicate_kill(plan: FaultPlan, rng: random.Random,
                    ctx: GeneratorContext) -> Optional[FaultPlan]:
    kills = [i for i, s in enumerate(plan) if isinstance(s, TimedKill)]
    if not kills:
        return None
    i = rng.choice(kills)
    step = plan[i]
    if rng.random() < 0.5:         # same-instant twin: a 2-burst
        twin = TimedKill(at=step.at, target=ctx.pick_target(rng))
    else:
        twin = TimedKill(at=min(step.at + rng.randint(1, 15),
                                ctx.window[1] + 60),
                         target=step.target)
    return plan[:i + 1] + (twin,) + plan[i + 1:]


def _grid_snap(plan: FaultPlan, rng: random.Random,
               ctx: GeneratorContext) -> Optional[FaultPlan]:
    grid = rng.choice((5, 10, 30))
    out: List[Step] = []
    for step in plan:
        if isinstance(step, TimedKill):
            out.append(TimedKill(at=max(grid, (step.at // grid) * grid),
                                 target=step.target))
        elif isinstance(step, TimedPartition):
            out.append(TimedPartition(
                at=max(grid, (step.at // grid) * grid),
                targets=step.targets, services=step.services))
        else:
            out.append(step)
    return tuple(out)


#: operator registry, canonical order (name -> operator); splice takes
#: the donor pool as an extra argument and is dispatched specially
MUTATORS: Dict[str, Callable] = {
    "add_kill": _add_kill,
    "drop_step": _drop_step,
    "duplicate_kill": _duplicate_kill,
    "grid_snap": _grid_snap,
    "heal_race": _heal_race,
    "retarget": _retarget,
    "shift_time": _shift_time,
    "splice": _splice,
}

_ATTEMPTS = 12


def mutate(plan: FaultPlan, rng: random.Random, ctx: GeneratorContext,
           donors: Sequence[FaultPlan] = ()) -> FaultPlan:
    """One mutant of ``plan``: valid, and different from the input.

    Applies one operator (sometimes two, stacked) chosen from
    :data:`MUTATORS`; inapplicable or invalidating choices are retried.
    Falls back to appending a kill — always valid — so the function
    totalizes: every call returns a usable plan.
    """
    names = sorted(MUTATORS)
    for _ in range(_ATTEMPTS):
        candidate: Optional[FaultPlan] = plan
        for _ in range(1 if rng.random() < 0.7 else 2):
            name = rng.choice(names)
            op = MUTATORS[name]
            if name == "splice":
                candidate = op(candidate, rng, ctx, donors)
            else:
                candidate = op(candidate, rng, ctx)
            if candidate is None:
                break
        if candidate is not None and candidate != plan \
                and valid_plan(candidate, ctx):
            return candidate
    fallback = _add_kill(plan, rng, ctx)
    if fallback is not None and valid_plan(fallback, ctx):
        return fallback
    return plan
