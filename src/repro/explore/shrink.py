"""Scenario minimization: delta-debug a failing fault plan.

When an oracle flags a trial, the generated schedule is rarely minimal
— most of its faults are noise around the one interaction that breaks
recovery.  :func:`shrink` reduces the plan while the failure persists:

1. **drop faults** — greedy one-at-a-time removal, rescanning after
   every success (ddmin's 1-minimality for the plan sizes generators
   emit);
2. **round timestamps** — timed kills/partitions (and heal delays)
   move to the coarsest grid (60, 30, 10 s) that keeps failing,
   making the reproducer human-readable;
3. **canonicalize targets** — retarget each kill to machine 0, and
   strip each partition down to a single victim, when the failure
   does not depend on the full group;
4. **reduce machine count** — shrink the cluster to the minimum the
   configuration allows.

Every candidate is one real trial through the caller's ``still_fails``
predicate, which routes through the campaign's :class:`TrialRunner` —
so re-shrinking a known failure is almost entirely cache hits.  The
search is deterministic: candidate order is a pure function of the
input plan, so the same failure always shrinks to the same reproducer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List

from repro.explore.generators import (FaultPlan, Heal, TimedKill,
                                      TimedPartition, render_plan)

#: still_fails(plan, n_machines) -> True when the reduced scenario
#: still trips an oracle
FailsPredicate = Callable[[FaultPlan, int], bool]


@dataclass
class ShrinkResult:
    """Outcome of one minimization."""

    plan: FaultPlan
    n_machines: int
    trials_used: int
    #: human log of accepted reductions, in application order
    reductions: List[str]

    @property
    def source(self) -> str:
        """The minimal scenario as canonical FAIL source."""
        return render_plan(self.plan)


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def take(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _try(candidate: FaultPlan, n_machines: int, budget: _Budget,
         still_fails: FailsPredicate) -> bool:
    return budget.take() and still_fails(candidate, n_machines)


def _drop_steps(plan: FaultPlan, n_machines: int, budget: _Budget,
                still_fails: FailsPredicate,
                log: List[str]) -> FaultPlan:
    changed = True
    while changed and len(plan) > 1:
        changed = False
        for i in reversed(range(len(plan))):
            candidate = plan[:i] + plan[i + 1:]
            if _try(candidate, n_machines, budget, still_fails):
                log.append(f"dropped step {i} ({plan[i]!r})")
                plan = candidate
                changed = True
                break               # rescan the shorter plan
        if budget.used >= budget.limit:
            break
    return plan


def _regrid_step(step, grid: int):
    if isinstance(step, (TimedKill, TimedPartition)):
        return dataclasses.replace(
            step, at=max(grid, round(step.at / grid) * grid))
    if isinstance(step, Heal) and step.after:
        # after == 0 is the heal-before-detection race: keep it exact
        return dataclasses.replace(
            step, after=max(grid, round(step.after / grid) * grid))
    return step


def _round_times(plan: FaultPlan, n_machines: int, budget: _Budget,
                 still_fails: FailsPredicate,
                 log: List[str]) -> FaultPlan:
    for grid in (60, 30, 10):
        candidate = tuple(_regrid_step(s, grid) for s in plan)
        if candidate == plan:
            continue
        if _try(candidate, n_machines, budget, still_fails):
            log.append(f"rounded injection times to the {grid}s grid")
            plan = candidate
            break                   # coarsest surviving grid wins
    return plan


def _canonicalize_targets(plan: FaultPlan, n_machines: int, budget: _Budget,
                          still_fails: FailsPredicate,
                          log: List[str]) -> FaultPlan:
    for i, step in enumerate(plan):
        if isinstance(step, TimedPartition):
            # strip the cut down: first victim only, no service nodes
            simplified = dataclasses.replace(
                step, targets=step.targets[:1], services=()
                if step.targets else step.services[:1])
            if simplified != step:
                candidate = plan[:i] + (simplified,) + plan[i + 1:]
                if _try(candidate, n_machines, budget, still_fails):
                    log.append(f"narrowed partition step {i}")
                    plan = candidate
            continue
        target = getattr(step, "target", None)
        if not target:              # None or already 0
            continue
        candidate = (plan[:i] + (dataclasses.replace(step, target=0),)
                     + plan[i + 1:])
        if _try(candidate, n_machines, budget, still_fails):
            log.append(f"retargeted step {i} to machine 0")
            plan = candidate
    return plan


def _step_max_target(step) -> int:
    if isinstance(step, TimedPartition):
        return max(step.targets, default=0)
    return getattr(step, "target", 0)


def _reduce_machines(plan: FaultPlan, n_machines: int, min_machines: int,
                     budget: _Budget, still_fails: FailsPredicate,
                     log: List[str]) -> int:
    max_target = max((_step_max_target(s) for s in plan), default=0)
    floor = max(min_machines, max_target + 1)
    while n_machines > floor:
        candidate = max(floor, (n_machines + floor) // 2)
        if candidate == n_machines:
            break
        if _try(plan, candidate, budget, still_fails):
            log.append(f"reduced machines {n_machines} -> {candidate}")
            n_machines = candidate
        else:
            break                   # binary descent stops at first pass
    return n_machines


def shrink(plan: FaultPlan, n_machines: int, *,
           still_fails: FailsPredicate,
           min_machines: int = 1,
           budget: int = 48) -> ShrinkResult:
    """Minimize ``(plan, n_machines)`` under ``still_fails``.

    ``budget`` bounds the number of candidate trials; the incoming
    plan is assumed failing (it is never re-validated here).
    """
    tracker = _Budget(budget)
    log: List[str] = []
    plan = _drop_steps(plan, n_machines, tracker, still_fails, log)
    plan = _round_times(plan, n_machines, tracker, still_fails, log)
    plan = _canonicalize_targets(plan, n_machines, tracker, still_fails, log)
    n_machines = _reduce_machines(plan, n_machines, min_machines, tracker,
                                  still_fails, log)
    # dropping/retargeting may have unlocked further drops
    plan = _drop_steps(plan, n_machines, tracker, still_fails, log)
    return ShrinkResult(plan=plan, n_machines=n_machines,
                        trials_used=tracker.used, reductions=log)


def describe(result: ShrinkResult, original: FaultPlan) -> str:
    """One-line summary for campaign output."""
    return (f"{len(original)} steps -> {len(result.plan)} steps, "
            f"{result.n_machines} machines, {result.trials_used} trials, "
            f"{len(result.reductions)} reductions")
