"""Network-sensitivity sweep: protocol × topology × oversubscription.

The paper's testbed is one real cluster whose fabric silently shapes
every figure (checkpoint-transfer slowdowns in Fig. 6, socket-closure
failure detection).  This experiment makes the fabric a variable: it
races every registered protocol over the :mod:`repro.netmodel` fabric
family —

* ``uniform`` — the historical single-pipe model (the baseline);
* ``star`` — per-host access links into one shared switch;
* ``twotier/oN`` — racks behind an ``N``:1 oversubscribed core, one
  sweep point per requested oversubscription factor —

with one mid-run fault so recovery traffic (checkpoint fetch + replay)
crosses the contended links.  Rows surface the fabric traffic
accounting added to :class:`~repro.mpichv.runtime.RunResult`: total
bytes and the per-link hot spot, which is where oversubscription
bites.

Results land in ``BENCH_net.json`` (per-row means, hot-spot links,
wall-clock and cache stats); trials flow through the shared cached
:class:`~repro.experiments.runner.TrialRunner`, so re-sweeps are
cache hits.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import (ExperimentResult, TrialSetup,
                                       run_trials)
from repro.experiments.runner import (TrialRunner, add_runner_arguments,
                                      runner_from_args)
from repro.explore.generators import TimedKill, render_plan
from repro.mpichv import protocols
from repro.netmodel import TopologySpec

REPS = 3
OVERSUBS: Sequence[float] = (2.0, 8.0)
#: ring calibration (~80 s fault-free at 4 procs; see repro.explore)
CALIBRATION = dict(workload="ring", niters=40, total_compute=1280.0,
                   footprint=1e8)
FAULT_AT = 45


def topology_grid(oversubs: Sequence[float] = OVERSUBS,
                  rack_size: int = 4) -> List[Tuple[str, TopologySpec]]:
    """The swept (label, spec) pairs, in sweep order."""
    grid: List[Tuple[str, TopologySpec]] = [
        ("uniform", TopologySpec("uniform")),
        ("star", TopologySpec("star")),
    ]
    for factor in oversubs:
        grid.append((f"twotier/o{factor:g}",
                     TopologySpec("twotier", rack_size=rack_size,
                                  oversubscription=factor)))
    return grid


def run_experiment(reps: int = REPS,
                   protocol_names: Optional[Sequence[str]] = None,
                   oversubs: Sequence[float] = OVERSUBS,
                   n_procs: int = 4,
                   n_machines: int = 7,
                   faulty: bool = True,
                   base_seed: int = 9000,
                   runner: Optional[TrialRunner] = None) -> ExperimentResult:
    protos = tuple(protocol_names or protocols.available())
    grid = topology_grid(oversubs)
    scenario = render_plan((TimedKill(at=FAULT_AT, target=0),)) \
        if faulty else None

    configs: List[Tuple[str, TopologySpec]] = []
    labels: List[str] = []
    for protocol in protos:
        for topo_label, spec in grid:
            configs.append((protocol, spec))
            labels.append(f"{protocol}/{topo_label}")

    def setup_for(config: Tuple[str, TopologySpec]) -> TrialSetup:
        protocol, spec = config
        setup = TrialSetup(
            n_procs=n_procs, n_machines=n_machines,
            protocol=protocol, timeout=600.0,
            config_overrides={"topology": spec},
            **CALIBRATION)
        if scenario is not None:
            from dataclasses import replace
            from repro.explore import generators
            setup = replace(setup, scenario_source=scenario,
                            scenario_meta={"net_sensitivity": "kill@45"},
                            master_daemon=generators.MASTER,
                            node_daemon=generators.NODE_DAEMON)
        return setup

    fault_note = f"one kill at t={FAULT_AT}s" if faulty else "fault-free"
    return run_trials(
        setup_for=setup_for, configs=configs, labels=labels, reps=reps,
        name=f"Network sensitivity — protocol x topology ({fault_note})",
        base_seed=base_seed, runner=runner)


def summarize(result: ExperimentResult) -> List[Dict[str, object]]:
    """Per-row summary rows for ``BENCH_net.json`` (deterministic)."""
    out: List[Dict[str, object]] = []
    for row in result.rows:
        out.append({
            "label": row.label,
            "runs": row.n,
            "pct_terminated": row.pct_terminated,
            "mean_exec_time": row.mean_exec_time,
            "mean_net_mb": row.mean_net_bytes / 1e6,
            # Both columns null when the fabric keeps no per-link
            # books (uniform): a "100 % hot link" that is really the
            # aggregate restated would misread as saturation.
            "hotspot_link": row.hotspot_link,
            "hotspot_share": (row.hotspot_share
                              if row.hotspot_link is not None else None),
        })
    return out


def render_hotspots(result: ExperimentResult) -> str:
    """Per-row hot-link table (the contention headline)."""
    header = (f"{'config':>22} | {'net MB':>8} | {'hot link':>14} | "
              f"{'share':>6}")
    lines = ["== fabric hot spots ==", header, "-" * len(header)]
    for row in result.rows:
        hot = row.hotspot_link or "-"
        lines.append(f"{row.label:>22} | {row.mean_net_bytes / 1e6:>8.1f} | "
                     f"{hot:>14} | {100.0 * row.hotspot_share:>5.1f}%")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--protocols", action="append", default=[],
                        metavar="NAME[,NAME]",
                        help="protocols to sweep (default: all registered)")
    parser.add_argument("--oversub", default=None, metavar="N[,N]",
                        help="twotier oversubscription factors "
                             "(default: 2,8)")
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--machines", type=int, default=7)
    parser.add_argument("--no-faults", action="store_true",
                        help="sweep fault-free (no recovery traffic)")
    parser.add_argument("--quick", action="store_true",
                        help="one trial per topology x protocol (CI smoke)")
    parser.add_argument("--json", default="BENCH_net.json", metavar="PATH",
                        help="benchmark JSON output path")
    add_runner_arguments(parser)
    args = parser.parse_args()

    protos = [p for chunk in args.protocols for p in chunk.split(",") if p]
    oversubs = tuple(float(x) for x in args.oversub.split(",")) \
        if args.oversub else OVERSUBS
    runner = runner_from_args(args)
    reps = 1 if args.quick else args.reps

    t0 = time.perf_counter()
    result = run_experiment(
        reps=reps, protocol_names=protos or None, oversubs=oversubs,
        n_procs=args.procs, n_machines=args.machines,
        faulty=not args.no_faults, runner=runner)
    wall = time.perf_counter() - t0

    print(result.render())
    print()
    print(render_hotspots(result))
    stats = runner.stats
    print(f"[runner] executed {stats.executed}, cache hits "
          f"{stats.cache_hits} ({100.0 * stats.hit_rate:.0f}% hit rate)")
    if args.json:
        doc = {
            "experiment": "net-sensitivity",
            "reps": reps,
            "protocols": list(protos or protocols.available()),
            "oversubscriptions": list(oversubs),
            "faulty": not args.no_faults,
            "rows": summarize(result),
            "wall_seconds": wall,
            "executed": stats.executed,
            "cache_hits": stats.cache_hits,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")


if __name__ == "__main__":  # pragma: no cover
    main()
