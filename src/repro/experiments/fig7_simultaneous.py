"""Figure 7 — impact of simultaneous faults.

Paper setup: BT class B on 49 processes; every 50 seconds the master
scenario (Fig. 7a) injects X faults back-to-back, X ∈ {1..5}; 6
repetitions.

Expected shape (paper §5.3): at X = 5 (and 6) about **one third of the
runs are buggy** — frozen during the recovery phase — while X ≤ 2
shows none.  The mechanism, located later by Figs. 9/11: a kill late
in the batch lands on a daemon that already recovered and registered,
while terminations from the first kill of the batch are still pending,
and the dispatcher misattributes the closure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult, TrialSetup, run_trials
from repro.experiments.runner import (TrialRunner, add_runner_arguments,
                                      runner_from_args)
from repro.fail import builtin_scenarios as bs

BATCH_SIZES: Sequence[int] = (1, 2, 3, 4, 5)
N_PROCS = 49
N_MACHINES = 53
REPS = 6


def setup_for_batch(batch: int,
                    n_procs: int = N_PROCS,
                    n_machines: int = N_MACHINES,
                    bug_compat: bool = True,
                    **workload_kwargs) -> TrialSetup:
    return TrialSetup(
        n_procs=n_procs, n_machines=n_machines,
        scenario_source=bs.FIG7A_MASTER + bs.FIG4_NODE_DAEMON,
        scenario_params={"X": batch},
        master_daemon="ADV1", node_daemon="ADV2",
        bug_compat=bug_compat,
        **workload_kwargs)


def run_experiment(reps: int = REPS,
                   batches: Sequence[int] = BATCH_SIZES,
                   n_procs: int = N_PROCS,
                   n_machines: int = N_MACHINES,
                   bug_compat: bool = True,
                   base_seed: int = 7000,
                   runner: Optional[TrialRunner] = None,
                   **workload_kwargs) -> ExperimentResult:
    return run_trials(
        setup_for=lambda x: setup_for_batch(
            x, n_procs=n_procs, n_machines=n_machines,
            bug_compat=bug_compat, **workload_kwargs),
        configs=list(batches),
        labels=[f"{x} fault{'s' if x > 1 else ''}" for x in batches],
        reps=reps,
        name=f"Fig. 7 — impact of simultaneous faults (BT {n_procs}, every 50 s)",
        base_seed=base_seed, runner=runner)


def main() -> None:  # pragma: no cover - CLI
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--fixed", action="store_true",
                        help="run with the dispatcher bug fixed (ablation)")
    add_runner_arguments(parser)
    args = parser.parse_args()
    print(run_experiment(reps=args.reps, bug_compat=not args.fixed,
                         runner=runner_from_args(args)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
