"""Serialization and on-disk storage of :class:`RunResult`.

The parallel runner (:mod:`repro.experiments.runner`) needs two things
from a trial result that the live object cannot give it directly:

* a *wire form* it can ship back from a worker process — the live
  :class:`~repro.analysis.traces.Trace` carries subscriber callables
  (the runtime's ``app_done`` stop hook) and is therefore not
  picklable as-is;
* a *rest form* it can write to the result cache so a re-run of a
  figure, or a resumed campaign, skips trials that already computed.

Both are the same JSON document, produced by :func:`run_result_to_dict`
and consumed by :func:`run_result_from_dict`.  The round trip preserves
everything the experiment layer reads: the verdict, the headline
counters, the trace counters (``counts`` / ``first_time`` /
``last_time``) and — when the trial kept them — the full trace records.
Trace *listeners* are deliberately dropped: they are live wiring, not
results.

:class:`ResultStore` is the cache: one JSON file per trial under a
root directory, written atomically so an interrupted campaign never
leaves a truncated entry behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.analysis.classify import Outcome, RunVerdict
from repro.analysis.traces import Trace, TraceRecord
from repro.mpichv.runtime import RunResult

#: bump when the document layout changes; readers reject other versions
FORMAT_VERSION = 8    # 8: causal message tracing — the obs document
#                       gains a ``causal`` event graph (version 2, see
#                       repro.obs.causal) and the verdict gains
#                       ``critpath_segments``, the per-phase recovery
#                       critical-path rollup.
#                       7: the observability document (``obs``: span
#                       rows + metrics registry, see repro.obs) and the
#                       span-derived verdict fields (detect_latency,
#                       replay_seconds).  Everything outside the obs
#                       doc's ``exec`` section is a pure function of
#                       the simulated history.
#                       6: engine-workers execution metadata
#                       (engine_workers, parallel accounting) on every
#                       result.  wall_seconds is deliberately NOT
#                       serialized: wall clock is never deterministic,
#                       and the wire document must stay bit-for-bit
#                       identical across serial/pool/cache paths
#                       (tests/test_network_partition.py) — wall-clock
#                       numbers live in BENCH_*.json artifacts only.


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of a trace field to a JSON value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    return {
        "keep": trace.keep,
        "counts": dict(trace.counts),
        "first_time": dict(trace.first_time),
        "last_time": dict(trace.last_time),
        "records": [[r.t, r.kind, _json_safe(r.fields)]
                    for r in trace.records],
    }


def trace_from_dict(doc: Dict[str, Any]) -> Trace:
    trace = Trace(keep=bool(doc.get("keep", False)))
    trace.counts = dict(doc.get("counts", {}))
    trace.first_time = dict(doc.get("first_time", {}))
    trace.last_time = dict(doc.get("last_time", {}))
    trace.records = [TraceRecord(t, kind, fields)
                     for t, kind, fields in doc.get("records", [])]
    return trace


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """JSON-safe document capturing one trial's result."""
    verdict = result.verdict
    return {
        "format": FORMAT_VERSION,
        "verdict": {
            "outcome": verdict.outcome.value,
            "exec_time": verdict.exec_time,
            "last_activity": verdict.last_activity,
            "reason": verdict.reason,
            "detect_latency": verdict.detect_latency,
            "replay_seconds": verdict.replay_seconds,
            "critpath_segments": verdict.critpath_segments,
        },
        "trace": trace_to_dict(result.trace),
        "sim_time": result.sim_time,
        "restarts": result.restarts,
        "bug_events": result.bug_events,
        "failures_detected": result.failures_detected,
        "waves_committed": result.waves_committed,
        "events_processed": result.events_processed,
        "app_signature": result.app_signature,
        "invariant_violations": list(result.invariant_violations),
        "net_bytes": result.net_bytes,
        "net_messages": result.net_messages,
        "net_hotspot": result.net_hotspot,
        "net_hotspot_bytes": result.net_hotspot_bytes,
        "ckpt_shard_bytes": list(result.ckpt_shard_bytes),
        "coverage": result.coverage,
        "engine_workers": result.engine_workers,
        "parallel": (dict(result.parallel)
                     if result.parallel is not None else None),
        "obs": result.obs,
    }


def run_result_from_dict(doc: Dict[str, Any]) -> RunResult:
    """Inverse of :func:`run_result_to_dict`."""
    version = doc.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format {version!r} "
                         f"(expected {FORMAT_VERSION})")
    v = doc["verdict"]
    verdict = RunVerdict(
        outcome=Outcome(v["outcome"]),
        exec_time=v["exec_time"],
        last_activity=v["last_activity"],
        reason=v["reason"],
        detect_latency=v.get("detect_latency"),
        replay_seconds=v.get("replay_seconds"),
        critpath_segments=v.get("critpath_segments"),
    )
    return RunResult(
        verdict=verdict,
        trace=trace_from_dict(doc.get("trace", {})),
        sim_time=doc["sim_time"],
        restarts=doc["restarts"],
        bug_events=doc["bug_events"],
        failures_detected=doc["failures_detected"],
        waves_committed=doc["waves_committed"],
        events_processed=doc["events_processed"],
        app_signature=doc.get("app_signature"),
        invariant_violations=list(doc.get("invariant_violations", [])),
        net_bytes=int(doc.get("net_bytes", 0)),
        net_messages=int(doc.get("net_messages", 0)),
        net_hotspot=doc.get("net_hotspot"),
        net_hotspot_bytes=int(doc.get("net_hotspot_bytes", 0)),
        ckpt_shard_bytes=[int(b) for b in doc.get("ckpt_shard_bytes", [])],
        coverage=str(doc.get("coverage", "")),
        engine_workers=int(doc.get("engine_workers", 1)),
        parallel=doc.get("parallel"),
        wall_seconds=float(doc.get("wall_seconds", 0.0)),
        obs=doc.get("obs"),
    )


class ResultStore:
    """Directory of per-trial JSON documents keyed by the trial hash.

    Layout: ``<root>/<key[:2]>/<key>.json`` — two-level sharding keeps
    directory listings manageable for campaigns with tens of thousands
    of trials.  Writes go through a temp file + :func:`os.replace` so a
    killed run can always be resumed against an uncorrupted store.
    """

    def __init__(self, root: str):
        self.root = root
        try:
            os.makedirs(root, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as err:
            raise NotADirectoryError(
                f"result cache path {root!r} exists and is not a "
                f"directory") from err

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def get(self, key: str) -> Optional[RunResult]:
        """The stored result, or None on miss / unreadable entry."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            return run_result_from_dict(doc)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # unreadable, truncated, version-skewed or wrong-shaped
            # entries all read as a miss: the trial just re-executes
            return None

    def put(self, key: str, result: RunResult) -> None:
        self.put_dict(key, run_result_to_dict(result))

    def put_dict(self, key: str, doc: Dict[str, Any]) -> None:
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        n = 0
        for _dir, _subdirs, files in os.walk(self.root):
            n += sum(1 for f in files if f.endswith(".json"))
        return n
