"""Figure 6 — impact of scale.

Paper setup: BT class B on 25/36/49/64 processes (BT needs a perfect
square), one fault every 50 seconds, 5 repetitions, same number of
checkpoint servers at every scale.

Expected shape (paper §5.2):

* no-fault execution time decreases with scale (constant total work);
* the faulty execution time is erratic: its *variance grows with
  scale* because the time between the last checkpoint wave and the
  fault dominates, and the paper argues the mean alone is not
  meaningful;
* occasional non-termination at 25 nodes, where per-process checkpoint
  images are largest (checkpoint/recovery slowest) and a run whose
  waves synchronize with the 50 s faults makes no progress.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.harness import (ExperimentResult, TrialSetup,
                                       run_trials)
from repro.experiments.fig5_frequency import setup_for_period
from repro.experiments.runner import (TrialRunner, add_runner_arguments,
                                      runner_from_args)

SCALES: Sequence[int] = (25, 36, 49, 64)
#: past the paper's range (BT needs perfect squares); the sharded
#: checkpoint servers and the engine fast path make these practical —
#: see also ``python -m repro scale-sweep`` for the 512-rank axis
EXTENDED_SCALES: Sequence[int] = (25, 36, 49, 64, 121, 256)
FAULT_PERIOD = 50
REPS = 5


def run_experiment(reps: int = REPS,
                   scales: Sequence[int] = SCALES,
                   fault_period: int = FAULT_PERIOD,
                   base_seed: int = 6000,
                   runner: Optional[TrialRunner] = None,
                   **workload_kwargs) -> ExperimentResult:
    configs: List[Tuple[int, bool]] = []
    labels: List[str] = []
    for scale in scales:
        configs.append((scale, False))
        labels.append(f"BT {scale} no faults")
        configs.append((scale, True))
        labels.append(f"BT {scale} 1/{fault_period}s")

    def setup_for(config: Tuple[int, bool]) -> TrialSetup:
        scale, faulty = config
        return setup_for_period(
            fault_period if faulty else None,
            n_procs=scale, n_machines=scale + 4,
            **workload_kwargs)

    return run_trials(
        setup_for=setup_for, configs=configs, labels=labels, reps=reps,
        name=f"Fig. 6 — impact of scale (1 fault / {fault_period} s)",
        base_seed=base_seed, runner=runner)


def variance_by_scale(result: ExperimentResult, fault_period: int = FAULT_PERIOD):
    """(scale, stdev of faulty exec time) pairs — the paper's variance
    argument, extracted for EXPERIMENTS.md."""
    out = []
    for row in result.rows:
        if row.label.endswith(f"1/{fault_period}s"):
            scale = int(row.label.split()[1])
            out.append((scale, row.stdev_exec_time))
    return out


def main() -> None:  # pragma: no cover - CLI
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--extended", action="store_true",
                        help="extend the scale axis past the paper's range "
                             f"(scales {', '.join(map(str, EXTENDED_SCALES))})")
    add_runner_arguments(parser)
    args = parser.parse_args()
    scales = EXTENDED_SCALES if args.extended else SCALES
    print(run_experiment(reps=args.reps, scales=scales,
                         runner=runner_from_args(args)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
