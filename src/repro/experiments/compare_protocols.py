"""Protocol comparison under identical failure scenarios.

The paper's conclusion (§6) names exactly this use of FAIL-MPI: *"This
provides the opportunity to evaluate many different implementations at
large scales and compare them fairly under the same failure
scenarios"* — citing the authors' own earlier comparison of message
logging versus coordinated checkpointing [LBH+04].

This experiment runs that comparison across the whole registered
MPICH-V family — every protocol in
:mod:`repro.mpichv.protocols` — on the same workload, under the *same*
Fig. 5a fault-frequency scenario with the same seeds:

* **vcl** — coordinated non-blocking Chandy-Lamport: cheapest without
  faults, but every failure rolls the whole application back;
* **v2** — pessimistic sender-based message logging: a stable-logger
  round trip per message, but a failure replays one rank only;
* **v1** — remote pessimistic logging in Channel Memories: a double
  network hop per message, single-rank restart, and (unlike V2) no
  volatile state anywhere, so simultaneous failures are tolerated.

Expected shape (cf. [LBH+04]): fault-free, Vcl wins; as the fault
period shrinks the message-logging protocols keep making progress
where Vcl stalls.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.harness import ExperimentResult, TrialSetup, run_trials
from repro.experiments.runner import (TrialRunner, add_runner_arguments,
                                      runner_from_args)
from repro.fail import builtin_scenarios as bs

PERIODS: Sequence[Optional[int]] = (None, 65, 50, 40)
PROTOCOLS: Sequence[str] = ("vcl", "v2", "v1")
N_PROCS = 49
N_MACHINES = 53
REPS = 4


def setup_for(config: Tuple[str, Optional[int]],
              n_procs: int = N_PROCS,
              n_machines: int = N_MACHINES,
              **workload_kwargs) -> TrialSetup:
    protocol, period = config
    kwargs = dict(workload_kwargs)
    if period is None:
        return TrialSetup(n_procs=n_procs, n_machines=n_machines,
                          scenario_source=None, protocol=protocol, **kwargs)
    return TrialSetup(
        n_procs=n_procs, n_machines=n_machines,
        scenario_source=bs.FIG5A_MASTER + bs.FIG4_NODE_DAEMON,
        scenario_params={"X": period},
        master_daemon="ADV1", node_daemon="ADV2",
        protocol=protocol,
        **kwargs)


def _label(protocol: str, period: Optional[int]) -> str:
    suffix = "no faults" if period is None else f"1/{period}s"
    return f"{protocol} {suffix}"


def run_experiment(reps: int = REPS,
                   periods: Sequence[Optional[int]] = PERIODS,
                   protocols: Sequence[str] = PROTOCOLS,
                   n_procs: int = N_PROCS,
                   n_machines: int = N_MACHINES,
                   base_seed: int = 13000,
                   runner: Optional[TrialRunner] = None,
                   **workload_kwargs) -> ExperimentResult:
    configs: List[Tuple[str, Optional[int]]] = []
    labels: List[str] = []
    for period in periods:
        for protocol in protocols:
            configs.append((protocol, period))
            labels.append(_label(protocol, period))
    return run_trials(
        setup_for=lambda c: setup_for(c, n_procs=n_procs,
                                      n_machines=n_machines,
                                      **workload_kwargs),
        configs=configs, labels=labels, reps=reps,
        name=(f"Protocol comparison — {' vs '.join(protocols)} under the "
              f"Fig. 5 scenario (BT {n_procs})"),
        base_seed=base_seed, runner=runner)


def crossover_summary(result: ExperimentResult,
                      periods: Sequence[Optional[int]] = PERIODS,
                      protocols: Sequence[str] = PROTOCOLS) -> str:
    """Who wins at each fault period (the [LBH+04]-style digest)."""
    def fmt(t: Optional[float]) -> str:
        return "---" if t is None else f"{t:.1f}"

    header = "   period" + "".join(f"{p + ' (s)':>13}" for p in protocols) \
        + "   winner"
    lines = [header]
    for period in periods:
        suffix = "no faults" if period is None else f"1/{period}s"
        times = {p: result.row(_label(p, period)).mean_exec_time
                 for p in protocols}
        finishers = {p: t for p, t in times.items() if t is not None}
        if not finishers:
            winner = "none finishes"
        else:
            best = min(finishers, key=finishers.get)
            stalled = [p for p in protocols if p not in finishers]
            winner = best + (f" ({', '.join(stalled)} stall)" if stalled
                             else "")
        cells = "".join(f"{fmt(times[p]):>13}" for p in protocols)
        lines.append(f"{suffix:>9}{cells}   {winner}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--procs", type=int, default=N_PROCS)
    parser.add_argument("--machines", type=int, default=N_MACHINES)
    parser.add_argument(
        "--protocols", default=",".join(PROTOCOLS), metavar="LIST",
        help="comma-separated protocol names (default: %(default)s)")
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced smoke configuration (BT-4, two fault periods) — "
             "exercises every protocol's deploy/run/classify path in "
             "seconds; used by the CI compare-protocols job")
    add_runner_arguments(parser)
    args = parser.parse_args()
    protocols = tuple(p for p in args.protocols.split(",") if p)
    if args.quick:
        if (args.procs, args.machines) != (N_PROCS, N_MACHINES):
            parser.error("--quick fixes the scale at BT-4 on 6 machines; "
                         "drop --procs/--machines or drop --quick")
        # the reduced run lasts ~45 s, so the fault period must sit
        # well below that for the smoke to exercise actual recovery
        periods: Sequence[Optional[int]] = (None, 25)
        print("quick smoke: BT-4 on 6 machines, fault periods "
              f"{periods} — reduced workload (niters=10)")
        result = run_experiment(
            reps=args.reps, periods=periods, protocols=protocols,
            n_procs=4, n_machines=6, niters=10, total_compute=180.0,
            footprint=1e8, runner=runner_from_args(args))
    else:
        result = run_experiment(reps=args.reps, protocols=protocols,
                                n_procs=args.procs, n_machines=args.machines,
                                runner=runner_from_args(args))
        periods = PERIODS
    print(result.render())
    print()
    print(crossover_summary(result, periods=periods, protocols=protocols))


if __name__ == "__main__":  # pragma: no cover
    main()
