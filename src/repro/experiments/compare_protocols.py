"""Protocol comparison under identical failure scenarios.

The paper's conclusion (§6) names exactly this use of FAIL-MPI: *"This
provides the opportunity to evaluate many different implementations at
large scales and compare them fairly under the same failure
scenarios"* — citing the authors' own earlier comparison of message
logging versus coordinated checkpointing [LBH+04].

This experiment runs that comparison: Vcl (coordinated non-blocking
Chandy-Lamport) versus V2 (pessimistic sender-based message logging)
on BT, under the *same* Fig. 5a fault-frequency scenario with the same
seeds.  Expected shape (cf. [LBH+04]):

* fault-free, Vcl wins — pessimistic logging pays a stable-logger
  round trip per message;
* under faults the ordering flips with frequency: every Vcl fault
  rolls the whole application back to the last committed wave, while a
  V2 fault replays a single rank; as the fault period shrinks, V2
  keeps making progress where Vcl stalls.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.harness import ExperimentResult, TrialSetup, run_trials
from repro.experiments.runner import (TrialRunner, add_runner_arguments,
                                      runner_from_args)
from repro.fail import builtin_scenarios as bs

PERIODS: Sequence[Optional[int]] = (None, 65, 50, 40)
N_PROCS = 49
N_MACHINES = 53
REPS = 4


def setup_for(config: Tuple[str, Optional[int]],
              n_procs: int = N_PROCS,
              n_machines: int = N_MACHINES,
              **workload_kwargs) -> TrialSetup:
    protocol, period = config
    kwargs = dict(workload_kwargs)
    if period is None:
        return TrialSetup(n_procs=n_procs, n_machines=n_machines,
                          scenario_source=None, protocol=protocol, **kwargs)
    return TrialSetup(
        n_procs=n_procs, n_machines=n_machines,
        scenario_source=bs.FIG5A_MASTER + bs.FIG4_NODE_DAEMON,
        scenario_params={"X": period},
        master_daemon="ADV1", node_daemon="ADV2",
        protocol=protocol,
        **kwargs)


def run_experiment(reps: int = REPS,
                   periods: Sequence[Optional[int]] = PERIODS,
                   n_procs: int = N_PROCS,
                   n_machines: int = N_MACHINES,
                   base_seed: int = 13000,
                   runner: Optional[TrialRunner] = None,
                   **workload_kwargs) -> ExperimentResult:
    configs: List[Tuple[str, Optional[int]]] = []
    labels: List[str] = []
    for period in periods:
        for protocol in ("vcl", "v2"):
            configs.append((protocol, period))
            suffix = "no faults" if period is None else f"1/{period}s"
            labels.append(f"{protocol} {suffix}")
    return run_trials(
        setup_for=lambda c: setup_for(c, n_procs=n_procs,
                                      n_machines=n_machines,
                                      **workload_kwargs),
        configs=configs, labels=labels, reps=reps,
        name=(f"Protocol comparison — Vcl vs V2 under the Fig. 5 scenario "
              f"(BT {n_procs})"),
        base_seed=base_seed, runner=runner)


def crossover_summary(result: ExperimentResult,
                      periods: Sequence[Optional[int]] = PERIODS) -> str:
    """Who wins at each fault period (the [LBH+04]-style digest)."""
    lines = ["period     vcl (s)       v2 (s)      winner"]
    for period in periods:
        suffix = "no faults" if period is None else f"1/{period}s"
        t_vcl = result.row(f"vcl {suffix}").mean_exec_time
        t_v2 = result.row(f"v2 {suffix}").mean_exec_time
        if t_vcl is None and t_v2 is None:
            winner = "neither finishes"
        elif t_vcl is None:
            winner = "v2 (vcl stalls)"
        elif t_v2 is None:
            winner = "vcl (v2 stalls)"
        else:
            winner = "vcl" if t_vcl < t_v2 else "v2"
        fmt = lambda t: "   ---  " if t is None else f"{t:8.1f}"
        lines.append(f"{suffix:>9}  {fmt(t_vcl)}     {fmt(t_v2)}     {winner}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--procs", type=int, default=N_PROCS)
    parser.add_argument("--machines", type=int, default=N_MACHINES)
    add_runner_arguments(parser)
    args = parser.parse_args()
    result = run_experiment(reps=args.reps, n_procs=args.procs,
                            n_machines=args.machines,
                            runner=runner_from_args(args))
    print(result.render())
    print()
    print(crossover_summary(result))


if __name__ == "__main__":  # pragma: no cover
    main()
