"""Shared experiment machinery.

One *trial* = one deployment of the MPICH-V runtime (any registered
protocol) running a registered workload (BT by default) under a FAIL
scenario, killed at the 1500 s timeout if still running, classified
from its trace exactly as in the paper (§5: terminated /
non-terminating / buggy).  One *row* = several repetitions of the same
configuration (the paper runs 5–6); a *result* = the set of rows a
figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.classify import Outcome
from repro.analysis.stats import confidence_interval, mean, stdev
from repro.experiments.runner import TrialRunner
from repro.fail.scenario import Binding, deploy_scenario
from repro.mpichv.config import VclConfig
from repro.mpichv.runtime import RunResult, VclRuntime
from repro.workloads import build_workload


@dataclass
class TrialSetup:
    """Everything needed to build one trial."""

    n_procs: int
    n_machines: int
    scenario_source: Optional[str] = None
    scenario_params: Dict[str, int] = field(default_factory=dict)
    #: provenance of a *generated* scenario (family, generator params,
    #: plan digest — see :mod:`repro.explore.generators`).  Not used to
    #: build the trial, but part of the cache key: two generated
    #: schedules can never alias a cache slot even if a generator bug
    #: made their rendered sources collide.
    scenario_meta: Dict[str, object] = field(default_factory=dict)
    #: instance -> daemon name; groups bind to all compute machines
    master_daemon: str = "ADV1"
    node_daemon: str = "ADV2"
    bug_compat: bool = True
    timeout: float = 1500.0
    ckpt_period: float = 30.0
    fault_tolerant: bool = True
    #: fault-tolerance protocol, resolved through the registry in
    #: :mod:`repro.mpichv.protocols` ("vcl", "v2", "v1", ...)
    protocol: str = "vcl"
    #: workload name, resolved through the registry in
    #: :mod:`repro.workloads` ("bt", "ring", "masterworker", ...)
    workload: str = "bt"
    #: workload-specific parameter overrides (e.g. ``{"rounds": 30}``)
    workload_params: Dict[str, float] = field(default_factory=dict)
    #: calibration (reduced in tests, class-B-like in benchmarks);
    #: non-BT workload builders adapt these to their own knobs
    niters: int = 120
    total_compute: float = 8800.0
    footprint: float = 1.6e9
    keep_trace: bool = False
    #: extra :class:`VclConfig` attributes (e.g. ``{"cm_replay": False}``
    #: to plant the broken-replay bug the exploration oracles hunt)
    config_overrides: Dict[str, object] = field(default_factory=dict)
    #: engine partitions to run the trial's simulation over (see
    #: docs/parallel-engine.md).  Pure execution knob: the simulated
    #: history is bit-identical at every value, so :func:`trial_key`
    #: excludes it from the cache hash — same simulation, same slot.
    engine_workers: int = 1
    #: record recovery-phase spans and the metrics registry (see
    #: :mod:`repro.obs`).  Changes what the result *carries* (the
    #: ``obs`` document), never what the simulation *does*, but it IS
    #: part of the cache key — an observed and an unobserved result
    #: are different wire documents and must not alias a cache slot.
    observe: bool = True

    def build(self, seed: int):
        """Construct (runtime, deployment) for one repetition."""
        config_kwargs = dict(
            n_procs=self.n_procs,
            n_machines=self.n_machines,
            ckpt_period=self.ckpt_period,
            bug_compat=self.bug_compat,
            timeout=self.timeout,
            fault_tolerant=self.fault_tolerant,
            protocol=self.protocol,
            footprint=self.footprint,
        )
        # overrides win, including over the fields mirrored above —
        # "extra VclConfig attribute" means *any* of them
        config_kwargs.update(self.config_overrides)
        config = VclConfig(**config_kwargs)
        workload = build_workload(
            self.workload,
            n_procs=self.n_procs,
            niters=self.niters,
            total_compute=self.total_compute,
            footprint=self.footprint,
            params=self.workload_params,
        )
        runtime = VclRuntime(config, workload.make_factory(), seed=seed,
                             keep_trace=self.keep_trace,
                             engine_workers=self.engine_workers,
                             observe=self.observe)
        deployment = None
        if self.scenario_source is not None:
            params = dict(self.scenario_params)
            params.setdefault("N", self.n_machines - 1)
            bindings = {
                "P1": Binding(daemon=self.master_daemon, nodes=None),
                "G1": Binding(daemon=self.node_daemon,
                              nodes=list(runtime.machines)),
            }
            deployment = deploy_scenario(runtime, self.scenario_source,
                                         params=params, bindings=bindings)
        return runtime, deployment

    def run_one(self, seed: int) -> RunResult:
        runtime, deployment = self.build(seed)
        try:
            return runtime.run()
        finally:
            # Throughput path: break the dead deployment's cycles so
            # the interpreter reclaims it by refcount instead of a
            # multi-second gc pass (load-bearing at 512 ranks; see
            # VclRuntime.dispose) — on error paths too, or every later
            # trial in the worker pays the collector for this one.
            runtime.dispose()
            del runtime, deployment


@dataclass
class ExperimentRow:
    """Aggregated repetitions of one configuration (one bar/point)."""

    label: str
    results: List[RunResult]

    @property
    def n(self) -> int:
        return len(self.results)

    def count(self, outcome: Outcome) -> int:
        return sum(1 for r in self.results if r.outcome is outcome)

    def _pct(self, outcome: Outcome) -> float:
        """Outcome share; an empty row has no runs in any class."""
        return 100.0 * self.count(outcome) / self.n if self.n else 0.0

    @property
    def pct_terminated(self) -> float:
        return self._pct(Outcome.TERMINATED)

    @property
    def pct_non_terminating(self) -> float:
        return self._pct(Outcome.NON_TERMINATING)

    @property
    def pct_buggy(self) -> float:
        return self._pct(Outcome.BUGGY)

    @property
    def exec_times(self) -> List[float]:
        return [r.exec_time for r in self.results if r.exec_time is not None]

    @property
    def mean_exec_time(self) -> Optional[float]:
        times = self.exec_times
        return mean(times) if times else None

    @property
    def stdev_exec_time(self) -> Optional[float]:
        times = self.exec_times
        return stdev(times) if times else None

    @property
    def ci_exec_time(self) -> Optional[float]:
        times = self.exec_times
        return confidence_interval(times) if len(times) >= 2 else None

    @property
    def total_faults(self) -> int:
        return sum(r.failures_detected for r in self.results)

    # -- fabric traffic accounting (see repro.netmodel) --------------------
    @property
    def mean_net_bytes(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.net_bytes for r in self.results) / self.n

    def _hottest_result(self):
        """The repetition with the busiest link (by byte count)."""
        return max(self.results, key=lambda r: r.net_hotspot_bytes,
                   default=None)

    @property
    def hotspot_link(self) -> Optional[str]:
        best = self._hottest_result()
        return best.net_hotspot if best is not None else None

    @property
    def hotspot_share(self) -> float:
        """That same repetition's single-link share of its traffic."""
        best = self._hottest_result()
        if best is None or not best.net_bytes:
            return 0.0
        return best.net_hotspot_bytes / best.net_bytes


@dataclass
class ExperimentResult:
    """All rows of one figure, with rendering helpers."""

    name: str
    rows: List[ExperimentRow]

    def render(self) -> str:
        """ASCII table in the shape of the paper's plots."""
        header = (f"{'config':>22} | {'runs':>4} | {'%term':>6} | "
                  f"{'%non-term':>9} | {'%buggy':>6} | {'exec time (s)':>16} | "
                  f"{'net MB':>8}")
        lines = [f"== {self.name} ==", header, "-" * len(header)]
        for row in self.rows:
            t = row.mean_exec_time
            s = row.stdev_exec_time
            if t is None:
                timing = "(none finished)"
            else:
                timing = f"{t:8.1f} ± {s:6.1f}" if s is not None else f"{t:8.1f}"
            lines.append(
                f"{row.label:>22} | {row.n:>4} | {row.pct_terminated:>6.1f} | "
                f"{row.pct_non_terminating:>9.1f} | {row.pct_buggy:>6.1f} | "
                f"{timing:>16} | {row.mean_net_bytes / 1e6:>8.1f}")
        return "\n".join(lines)

    def row(self, label: str) -> ExperimentRow:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(label)


def trial_seed(base_seed: int, config_index: int, rep: int) -> int:
    """Seed for repetition ``rep`` of the ``config_index``-th config.

    The scheme is ``base_seed + 7919 * config_index + rep`` (7919 is
    the 1000th prime, comfortably larger than any repetition count, so
    configs can never collide).  Seeds are a pure function of the
    campaign *layout* — never of scheduling: :func:`run_trials`
    computes the full job list up front and hands it to the runner, so
    worker count, completion order, and cache hits cannot change which
    seed a trial gets.  That is what makes ``workers=N`` bit-for-bit
    reproducible against ``workers=1``.
    """
    return base_seed + 7919 * config_index + rep


def run_trials(setup_for: Callable[[object], TrialSetup],
               configs: Sequence,
               labels: Sequence[str],
               reps: int,
               name: str,
               base_seed: int = 1000,
               runner: Optional[TrialRunner] = None,
               workers: int = 1,
               cache_dir: Optional[str] = None,
               use_cache: bool = True) -> ExperimentResult:
    """Run ``reps`` repetitions of each configuration.

    ``setup_for(config)`` builds the TrialSetup for one x-axis value.
    Seeds come from :func:`trial_seed` — deterministic in
    ``(config index, rep)`` and independent of execution order.

    Execution is delegated to a :class:`TrialRunner`: pass one
    explicitly to share a pool/cache/stats across figures, or let the
    ``workers`` / ``cache_dir`` / ``use_cache`` knobs build a private
    one.  The whole campaign is submitted as a single flat job list so
    a multi-worker pool stays busy across row boundaries.
    """
    if runner is None:
        runner = TrialRunner(workers=workers, cache_dir=cache_dir,
                             use_cache=use_cache)
    pairs = list(zip(configs, labels))
    setups = [setup_for(config) for config, _label in pairs]
    jobs = [(setup, trial_seed(base_seed, ci, rep))
            for ci, setup in enumerate(setups)
            for rep in range(reps)]
    flat = runner.run_jobs(jobs)
    rows = [ExperimentRow(label=label,
                          results=flat[ci * reps:(ci + 1) * reps])
            for ci, (_config, label) in enumerate(pairs)]
    return ExperimentResult(name=name, rows=rows)
