"""Figure 5 — impact of fault frequency.

Paper setup: NAS BT class B on 49 processes, 53 machines devoted, one
fault injected every {65, 60, 55, 50, 45, 40} seconds by scenario
ADV1 (Fig. 5a) with the generic per-machine daemon ADV2 (Fig. 4), plus
the no-fault baseline; 6 repetitions per point.

Expected shape (paper §5.1):

* zero buggy runs at every frequency (no overlapping faults);
* execution time of terminated runs grows as the period shrinks;
* non-terminating percentage grows as the period shrinks, approaching
  100 % at 40 s (the fault inter-arrival undercuts checkpoint-wave
  completion);
* anomaly: 45 s behaves better than the trend because faults land just
  after the 30 s checkpoint waves, when rollback is cheapest.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult, TrialSetup, run_trials
from repro.experiments.runner import (TrialRunner, add_runner_arguments,
                                      runner_from_args)
from repro.fail import builtin_scenarios as bs

#: paper x-axis: no faults, then one fault every X seconds
PERIODS: Sequence[Optional[int]] = (None, 65, 60, 55, 50, 45, 40)
N_PROCS = 49
N_MACHINES = 53
REPS = 6


def setup_for_period(period: Optional[int],
                     n_procs: int = N_PROCS,
                     n_machines: int = N_MACHINES,
                     bug_compat: bool = True,
                     niters: Optional[int] = None,
                     total_compute: Optional[float] = None,
                     footprint: Optional[float] = None) -> TrialSetup:
    """TrialSetup for one x-axis point (None = no faults)."""
    kwargs = {}
    if niters is not None:
        kwargs["niters"] = niters
    if total_compute is not None:
        kwargs["total_compute"] = total_compute
    if footprint is not None:
        kwargs["footprint"] = footprint
    if period is None:
        return TrialSetup(n_procs=n_procs, n_machines=n_machines,
                          scenario_source=None, bug_compat=bug_compat,
                          **kwargs)
    return TrialSetup(
        n_procs=n_procs, n_machines=n_machines,
        scenario_source=bs.FIG5A_MASTER + bs.FIG4_NODE_DAEMON,
        scenario_params={"X": period},
        master_daemon="ADV1", node_daemon="ADV2",
        bug_compat=bug_compat,
        **kwargs)


def run_experiment(reps: int = REPS,
                   periods: Sequence[Optional[int]] = PERIODS,
                   n_procs: int = N_PROCS,
                   n_machines: int = N_MACHINES,
                   base_seed: int = 5000,
                   runner: Optional[TrialRunner] = None,
                   **workload_kwargs) -> ExperimentResult:
    labels = ["no faults" if p is None else f"every {p} sec" for p in periods]
    return run_trials(
        setup_for=lambda p: setup_for_period(
            p, n_procs=n_procs, n_machines=n_machines, **workload_kwargs),
        configs=list(periods),
        labels=labels,
        reps=reps,
        name=f"Fig. 5 — impact of fault frequency (BT {n_procs})",
        base_seed=base_seed,
        runner=runner)


def main() -> None:  # pragma: no cover - CLI
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--procs", type=int, default=N_PROCS)
    parser.add_argument("--machines", type=int, default=N_MACHINES)
    add_runner_arguments(parser)
    args = parser.parse_args()
    result = run_experiment(reps=args.reps, n_procs=args.procs,
                            n_machines=args.machines,
                            runner=runner_from_args(args))
    print(result.render())


if __name__ == "__main__":  # pragma: no cover
    main()
