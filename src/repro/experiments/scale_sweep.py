"""Scale sweep: protocol × ranks × checkpoint-server shards.

The paper's Fig. 6 stops at 64 processes — where a single checkpoint
server saturates (every wave funnels ``footprint`` bytes through one
60 MB/s disk).  This experiment extends the scale axis past the
paper's range and makes the server count a variable: every registered
protocol runs at ranks up to 512 with the checkpoint traffic spread
over k ∈ {1, 2, 4, 8} shards by the deterministic map in
:mod:`repro.mpichv.shardmap`.

Per cell the sweep reports the usual outcome/time columns plus the
*shard balance* carried by every :class:`~repro.mpichv.runtime.RunResult`
(``ckpt_shard_bytes``): the busiest server's share of checkpoint
ingest, which is where the k = 1 hot spot dissolves as k grows.  On a
contended fabric (``--topology star``) the same story shows up in the
per-link hot spot — the single server's downlink stops dominating.

One mid-run kill (t = 45 s by default) makes the restart path cross
the shard map too: the failed rank refetches its image from its own
shard.  Trials flow through the cached
:class:`~repro.experiments.runner.TrialRunner`; results land in
``BENCH_scale.json``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import (ExperimentResult, ExperimentRow,
                                       TrialSetup, run_trials)
from repro.experiments.runner import (TrialRunner, add_runner_arguments,
                                      runner_from_args)
from repro.mpichv import protocols

REPS = 1
RANKS: Sequence[int] = (32, 64, 128, 256, 512)
SHARDS: Sequence[int] = (1, 2, 4, 8)
QUICK_RANKS: Sequence[int] = (32, 64)
QUICK_SHARDS: Sequence[int] = (1, 4)
FAULT_AT = 45

#: ring calibration — per-rank work is held constant
#: (``COMPUTE_PER_RANK`` CPU-seconds each, overlapped across the
#: ring), so the fault-free run stays ~110 s of simulated time at
#: every rank count while message/checkpoint volume grows with the
#: deployment
ROUNDS = 40
COMPUTE_PER_RANK = 440.0
#: total application footprint: one wave pushes 1 GB through the
#: shards — ~17 s of ingest on a single 60 MB/s server (the paper's
#: saturation regime), ~2 s over 8
FOOTPRINT = 1e9


def sweep_grid(protocol_names: Sequence[str],
               ranks: Sequence[int],
               shards: Sequence[int]) -> List[Tuple[str, int, int]]:
    """(protocol, n_procs, n_ckpt_servers) cells, in sweep order."""
    return [(protocol, n, k)
            for protocol in protocol_names
            for n in ranks
            for k in shards]


def run_experiment(reps: int = REPS,
                   protocol_names: Optional[Sequence[str]] = None,
                   ranks: Sequence[int] = RANKS,
                   shards: Sequence[int] = SHARDS,
                   faulty: bool = True,
                   topology: str = "uniform",
                   base_seed: int = 11000,
                   runner: Optional[TrialRunner] = None) -> ExperimentResult:
    protos = tuple(protocol_names or protocols.available())
    grid = sweep_grid(protos, ranks, shards)
    scenario = None
    if faulty:
        from repro.explore.generators import TimedKill, render_plan
        scenario = render_plan((TimedKill(at=FAULT_AT, target=0),))

    configs = grid
    labels = [f"{protocol}/n{n}/k{k}" for protocol, n, k in grid]

    def setup_for(config: Tuple[str, int, int]) -> TrialSetup:
        protocol, n, k = config
        overrides: Dict[str, object] = {"n_ckpt_servers": k}
        if topology != "uniform":
            overrides["topology"] = topology
        setup = TrialSetup(
            n_procs=n, n_machines=n + 4,
            protocol=protocol, timeout=600.0, footprint=FOOTPRINT,
            workload="ring", niters=ROUNDS,
            total_compute=COMPUTE_PER_RANK * n,
            config_overrides=overrides)
        if scenario is not None:
            from dataclasses import replace

            from repro.explore import generators
            setup = replace(setup, scenario_source=scenario,
                            scenario_meta={"scale_sweep": f"kill@{FAULT_AT}"},
                            master_daemon=generators.MASTER,
                            node_daemon=generators.NODE_DAEMON)
        return setup

    fault_note = f"one kill at t={FAULT_AT}s" if faulty else "fault-free"
    return run_trials(
        setup_for=setup_for, configs=configs, labels=labels, reps=reps,
        name=(f"Scale sweep — protocol x ranks x ckpt shards "
              f"({fault_note}, {topology})"),
        base_seed=base_seed, runner=runner)


# ---------------------------------------------------------------------------
# shard-balance reporting
# ---------------------------------------------------------------------------

def _row_shard_stats(row: ExperimentRow) -> Tuple[float, float, int]:
    """(busiest-shard share, max/mean imbalance, shard count), averaged
    over the row's repetitions that ingested anything."""
    shares: List[float] = []
    imbalances: List[float] = []
    n_shards = 0
    for result in row.results:
        bytes_per = result.ckpt_shard_bytes
        n_shards = max(n_shards, len(bytes_per))
        total = sum(bytes_per)
        if total:
            shares.append(max(bytes_per) / total)
            imbalances.append(result.ckpt_shard_imbalance)
    share = sum(shares) / len(shares) if shares else 0.0
    imbalance = sum(imbalances) / len(imbalances) if imbalances else 0.0
    return share, imbalance, n_shards


def summarize(result: ExperimentResult) -> List[Dict[str, object]]:
    """Per-row summary rows for ``BENCH_scale.json`` (deterministic)."""
    out: List[Dict[str, object]] = []
    for row in result.rows:
        share, imbalance, n_shards = _row_shard_stats(row)
        out.append({
            "label": row.label,
            "runs": row.n,
            "pct_terminated": row.pct_terminated,
            "mean_exec_time": row.mean_exec_time,
            "mean_net_mb": row.mean_net_bytes / 1e6,
            "hotspot_link": row.hotspot_link,
            "hotspot_share": row.hotspot_share,
            "n_ckpt_servers": n_shards,
            "ckpt_busiest_shard_share": share,
            "ckpt_shard_imbalance": imbalance,
            "mean_events": (sum(r.events_processed for r in row.results)
                            / row.n if row.n else 0),
        })
    return out


def render_shard_balance(result: ExperimentResult) -> str:
    """The sharding headline: busiest server's share of ckpt ingest."""
    header = (f"{'config':>18} | {'k':>2} | {'busiest shard':>13} | "
              f"{'max/mean':>8} | {'net hot link':>14}")
    lines = ["== checkpoint-server shard balance ==", header,
             "-" * len(header)]
    for row in result.rows:
        share, imbalance, n_shards = _row_shard_stats(row)
        hot = row.hotspot_link or "-"
        lines.append(
            f"{row.label:>18} | {n_shards:>2} | {100.0 * share:>12.1f}% | "
            f"{imbalance:>8.2f} | {hot:>14}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--protocols", action="append", default=[],
                        metavar="NAME[,NAME]",
                        help="protocols to sweep (default: all registered)")
    parser.add_argument("--ranks", default=None, metavar="N[,N]",
                        help=f"rank counts (default: "
                             f"{','.join(map(str, RANKS))})")
    parser.add_argument("--shards", default=None, metavar="K[,K]",
                        help=f"checkpoint-server counts (default: "
                             f"{','.join(map(str, SHARDS))})")
    parser.add_argument("--topology", default="uniform",
                        help="fabric model for every cell (uniform, star, "
                             "twotier; see repro.netmodel)")
    parser.add_argument("--no-faults", action="store_true",
                        help="sweep fault-free (no recovery traffic)")
    parser.add_argument("--quick", action="store_true",
                        help=f"reduced CI grid: ranks "
                             f"{','.join(map(str, QUICK_RANKS))} x shards "
                             f"{','.join(map(str, QUICK_SHARDS))}, 1 rep")
    parser.add_argument("--json", default="BENCH_scale.json", metavar="PATH",
                        help="benchmark JSON output path")
    add_runner_arguments(parser)
    args = parser.parse_args()

    protos = [p for chunk in args.protocols for p in chunk.split(",") if p]
    ranks = tuple(int(x) for x in args.ranks.split(",")) if args.ranks \
        else (QUICK_RANKS if args.quick else RANKS)
    shards = tuple(int(x) for x in args.shards.split(",")) if args.shards \
        else (QUICK_SHARDS if args.quick else SHARDS)
    reps = 1 if args.quick else args.reps
    runner = runner_from_args(args)

    t0 = time.perf_counter()
    result = run_experiment(
        reps=reps, protocol_names=protos or None, ranks=ranks,
        shards=shards, faulty=not args.no_faults, topology=args.topology,
        runner=runner)
    wall = time.perf_counter() - t0

    print(result.render())
    print()
    print(render_shard_balance(result))
    stats = runner.stats
    print(f"[runner] executed {stats.executed}, cache hits "
          f"{stats.cache_hits} ({100.0 * stats.hit_rate:.0f}% hit rate), "
          f"wall {wall:.1f}s")
    if args.json:
        doc = {
            "experiment": "scale-sweep",
            "reps": reps,
            "protocols": list(protos or protocols.available()),
            "ranks": list(ranks),
            "shards": list(shards),
            "topology": args.topology,
            "faulty": not args.no_faults,
            "rows": summarize(result),
            "wall_seconds": wall,
            "executed": stats.executed,
            "cache_hits": stats.cache_hits,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")


if __name__ == "__main__":  # pragma: no cover
    main()
