"""Scale sweep: protocol × ranks × checkpoint-server shards.

The paper's Fig. 6 stops at 64 processes — where a single checkpoint
server saturates (every wave funnels ``footprint`` bytes through one
60 MB/s disk).  This experiment extends the scale axis past the
paper's range and makes the server count a variable: every registered
protocol runs at ranks up to 512 with the checkpoint traffic spread
over k ∈ {1, 2, 4, 8} shards by the deterministic map in
:mod:`repro.mpichv.shardmap`.

Per cell the sweep reports the usual outcome/time columns plus the
*shard balance* carried by every :class:`~repro.mpichv.runtime.RunResult`
(``ckpt_shard_bytes``): the busiest server's share of checkpoint
ingest, which is where the k = 1 hot spot dissolves as k grows.  On a
contended fabric (``--topology star``) the same story shows up in the
per-link hot spot — the single server's downlink stops dominating.

One mid-run kill (t = 45 s by default) makes the restart path cross
the shard map too: the failed rank refetches its image from its own
shard.  Trials flow through the cached
:class:`~repro.experiments.runner.TrialRunner`; results land in
``BENCH_scale.json``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import (ExperimentResult, ExperimentRow,
                                       TrialSetup, run_trials)
from repro.experiments.runner import (TrialRunner, add_runner_arguments,
                                      runner_from_args)
from repro.mpichv import protocols

REPS = 1
RANKS: Sequence[int] = (32, 64, 128, 256, 512)
SHARDS: Sequence[int] = (1, 2, 4, 8)
QUICK_RANKS: Sequence[int] = (32, 64)
QUICK_SHARDS: Sequence[int] = (1, 4)
FAULT_AT = 45

#: ring calibration — per-rank work is held constant
#: (``COMPUTE_PER_RANK`` CPU-seconds each, overlapped across the
#: ring), so the fault-free run stays ~110 s of simulated time at
#: every rank count while message/checkpoint volume grows with the
#: deployment
ROUNDS = 40
COMPUTE_PER_RANK = 440.0
#: total application footprint: one wave pushes 1 GB through the
#: shards — ~17 s of ingest on a single 60 MB/s server (the paper's
#: saturation regime), ~2 s over 8
FOOTPRINT = 1e9


def sweep_grid(protocol_names: Sequence[str],
               ranks: Sequence[int],
               shards: Sequence[int]) -> List[Tuple[str, int, int]]:
    """(protocol, n_procs, n_ckpt_servers) cells, in sweep order."""
    return [(protocol, n, k)
            for protocol in protocol_names
            for n in ranks
            for k in shards]


def run_experiment(reps: int = REPS,
                   protocol_names: Optional[Sequence[str]] = None,
                   ranks: Sequence[int] = RANKS,
                   shards: Sequence[int] = SHARDS,
                   faulty: bool = True,
                   topology: str = "uniform",
                   base_seed: int = 11000,
                   runner: Optional[TrialRunner] = None) -> ExperimentResult:
    protos = tuple(protocol_names or protocols.available())
    grid = sweep_grid(protos, ranks, shards)
    scenario = None
    if faulty:
        from repro.explore.generators import TimedKill, render_plan
        scenario = render_plan((TimedKill(at=FAULT_AT, target=0),))

    configs = grid
    labels = [f"{protocol}/n{n}/k{k}" for protocol, n, k in grid]

    def setup_for(config: Tuple[str, int, int]) -> TrialSetup:
        protocol, n, k = config
        overrides: Dict[str, object] = {"n_ckpt_servers": k}
        if topology != "uniform":
            overrides["topology"] = topology
        setup = TrialSetup(
            n_procs=n, n_machines=n + 4,
            protocol=protocol, timeout=600.0, footprint=FOOTPRINT,
            workload="ring", niters=ROUNDS,
            total_compute=COMPUTE_PER_RANK * n,
            config_overrides=overrides)
        if scenario is not None:
            from dataclasses import replace

            from repro.explore import generators
            setup = replace(setup, scenario_source=scenario,
                            scenario_meta={"scale_sweep": f"kill@{FAULT_AT}"},
                            master_daemon=generators.MASTER,
                            node_daemon=generators.NODE_DAEMON)
        return setup

    fault_note = f"one kill at t={FAULT_AT}s" if faulty else "fault-free"
    return run_trials(
        setup_for=setup_for, configs=configs, labels=labels, reps=reps,
        name=(f"Scale sweep — protocol x ranks x ckpt shards "
              f"({fault_note}, {topology})"),
        base_seed=base_seed, runner=runner)


# ---------------------------------------------------------------------------
# instrumentation-overhead self-profiling (BENCH artifacts only)
# ---------------------------------------------------------------------------

def obs_overhead_row(n_procs: int = 8, repeats: int = 2) -> Dict[str, object]:
    """Span-instrumentation cost, measured on/off (``obs_overhead``).

    Runs one small faulted trial with observation enabled and disabled,
    ``repeats`` times each, and reports the best wall of each mode plus
    their ratio.  Wall clock only — it lands in ``BENCH_*.json`` next
    to the runner's self-profiling, never in the wire format.
    """
    from repro.explore import generators
    from repro.explore.generators import TimedKill, render_plan

    scenario = render_plan((TimedKill(at=FAULT_AT, target=0),))
    walls: Dict[bool, float] = {}
    for observe in (True, False):
        setup = TrialSetup(
            n_procs=n_procs, n_machines=n_procs + 4,
            scenario_source=scenario,
            master_daemon=generators.MASTER,
            node_daemon=generators.NODE_DAEMON,
            timeout=600.0, footprint=FOOTPRINT,
            workload="ring", niters=ROUNDS,
            total_compute=COMPUTE_PER_RANK * n_procs,
            observe=observe)
        best = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            setup.run_one(0)
            wall = time.perf_counter() - t0
            best = wall if best is None else min(best, wall)
        walls[observe] = best
    return {
        "benchmark": "obs_overhead",
        "n_procs": n_procs,
        "wall_observed_s": round(walls[True], 4),
        "wall_unobserved_s": round(walls[False], 4),
        "overhead_ratio": round(walls[True] / walls[False], 4)
        if walls[False] else 0.0,
    }


# ---------------------------------------------------------------------------
# shard-balance reporting
# ---------------------------------------------------------------------------

def _row_shard_stats(row: ExperimentRow) -> Tuple[float, float, int]:
    """(busiest-shard share, max/mean imbalance, shard count), averaged
    over the row's repetitions that ingested anything."""
    shares: List[float] = []
    imbalances: List[float] = []
    n_shards = 0
    for result in row.results:
        bytes_per = result.ckpt_shard_bytes
        n_shards = max(n_shards, len(bytes_per))
        total = sum(bytes_per)
        if total:
            shares.append(max(bytes_per) / total)
            imbalances.append(result.ckpt_shard_imbalance)
    share = sum(shares) / len(shares) if shares else 0.0
    imbalance = sum(imbalances) / len(imbalances) if imbalances else 0.0
    return share, imbalance, n_shards


def summarize(result: ExperimentResult) -> List[Dict[str, object]]:
    """Per-row summary rows for ``BENCH_scale.json`` (deterministic;
    ``kind: "deploy"`` — full-deployment trials, as opposed to the
    ``kind: "kernel"`` rows of :func:`kernel_speedup_rows`)."""
    out: List[Dict[str, object]] = []
    for row in result.rows:
        share, imbalance, n_shards = _row_shard_stats(row)
        results = row.results
        ew = max((r.engine_workers for r in results), default=1)
        null_msgs = sum((r.parallel or {}).get("null_messages", 0)
                        for r in results)
        cross_msgs = sum((r.parallel or {}).get("cross_messages", 0)
                         for r in results)
        out.append({
            "kind": "deploy",
            "label": row.label,
            "runs": row.n,
            "pct_terminated": row.pct_terminated,
            "mean_exec_time": row.mean_exec_time,
            "mean_net_mb": row.mean_net_bytes / 1e6,
            # Both null when the fabric keeps no per-link books
            # (uniform): the old "fabric"/1.0 pair misread as a
            # saturated link when it was the aggregate restated.
            "hotspot_link": row.hotspot_link,
            "hotspot_share": (row.hotspot_share
                              if row.hotspot_link is not None else None),
            "n_ckpt_servers": n_shards,
            "ckpt_busiest_shard_share": share,
            "ckpt_shard_imbalance": imbalance,
            "mean_events": (sum(r.events_processed for r in results)
                            / row.n if row.n else 0),
            "engine_workers": ew,
            "mean_wall_seconds": (sum(r.wall_seconds for r in results)
                                  / row.n if row.n else 0.0),
            "cross_partition_messages": cross_msgs if ew > 1 else None,
            "null_messages": null_msgs if ew > 1 else None,
        })
    return out


def render_shard_balance(result: ExperimentResult) -> str:
    """The sharding headline: busiest server's share of ckpt ingest."""
    header = (f"{'config':>18} | {'k':>2} | {'busiest shard':>13} | "
              f"{'max/mean':>8} | {'net hot link':>14}")
    lines = ["== checkpoint-server shard balance ==", header,
             "-" * len(header)]
    for row in result.rows:
        share, imbalance, n_shards = _row_shard_stats(row)
        hot = row.hotspot_link or "-"
        lines.append(
            f"{row.label:>18} | {n_shards:>2} | {100.0 * share:>12.1f}% | "
            f"{imbalance:>8.2f} | {hot:>14}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# partitioned-kernel speedup rows (kind: "kernel")
# ---------------------------------------------------------------------------
#
# The deployment trials above share one object graph (paired sockets,
# shared listeners, fault injection into live processes), so their
# ``engine_workers`` mode executes windows in one address space —
# bit-identical to the reference, but not multicore.  The multicore
# scaling of the same conservative protocol is measured here instead:
# :mod:`repro.simkernel.parallel` runs disjoint engines in forked
# workers over a protocol-shaped event mix — per-rank tick cascades
# sized like each protocol's message/logging pattern, ring traffic
# crossing partition cuts under the same lookahead/null-message
# discipline.  These rows carry the measured wall clock and
# speedup-vs-reference, and take the rank axis past the deployment
# grid (1024/2048/4096).

KERNEL_RANKS: Sequence[int] = (512, 1024)
KERNEL_RANKS_DEEP: Sequence[int] = (2048, 4096)
KERNEL_WORKERS: Sequence[int] = (1, 2, 4)
KERNEL_ITERS = 40
_INF_WALL = float("inf")
KERNEL_LOOKAHEAD = 0.5
#: per-rank-tick event mix (base cascade, checkpoint-wave extra):
#: vcl's coordinated waves add bursts every 10 ticks; v2 pays a
#: logging event per message (bigger base); v1 relays through channel
#: memories (two hops per message)
KERNEL_MIX: Dict[str, Tuple[int, int]] = {
    "vcl": (24, 8),
    "v2": (30, 0),
    "v1": (28, 0),
}


def _kernel_rank_tick(ctx, counts, hi, iters, mix, succ, rank, k):
    base, wave = mix
    eng = ctx.engine
    noop = counts.bump
    counts.events += 1
    for j in range(base):
        eng.call_later(0.25 + (j % 4) * 0.125, noop)
    if wave and k % 10 == 0:
        for j in range(wave):
            eng.call_later(0.5 + (j % 2) * 0.0625, noop)
    if succ is not None and rank == hi - 1:
        ctx.send(succ, k)       # ring edge crossing the partition cut
    if k + 1 < iters:
        eng.call_later(1.0, lambda: _kernel_rank_tick(
            ctx, counts, hi, iters, mix, succ, rank, k + 1))


class _KernelCounts:
    __slots__ = ("events", "received")

    def __init__(self):
        self.events = 0
        self.received = 0

    def bump(self):
        self.events += 1

    def as_tuple(self):
        return (self.events, self.received)


def _kernel_partition_build(ctx, lo, hi, iters, mix, succ):
    counts = _KernelCounts()
    ctx._kernel_counts = counts

    def on_msg(_src, _msg):
        counts.received += 1
    ctx.on_receive(on_msg)
    for rank in range(lo, hi):
        ctx.engine.call_later(1.0, lambda r=rank: _kernel_rank_tick(
            ctx, counts, hi, iters, mix, succ, r, 0))


def _kernel_finish(ctx):
    return ctx._kernel_counts.as_tuple()


def _kernel_model(protocol: str, n_ranks: int, workers: int, iters: int):
    from repro.simkernel.parallel import ChannelSpec, PartitionSpec
    mix = KERNEL_MIX.get(protocol, (24, 0))
    cuts = [i * n_ranks // workers for i in range(workers + 1)]
    names = [f"p{i}" for i in range(workers)]
    parts = []
    chans = []
    for i in range(workers):
        succ = names[(i + 1) % workers] if workers > 1 else None
        parts.append(PartitionSpec(
            names[i], _kernel_partition_build,
            (cuts[i], cuts[i + 1], iters, mix, succ),
            finish=_kernel_finish))
        if succ is not None:
            chans.append(ChannelSpec(names[i], succ, KERNEL_LOOKAHEAD))
    return parts, chans


def kernel_speedup_rows(protocol_names: Optional[Sequence[str]] = None,
                        ranks: Sequence[int] = KERNEL_RANKS,
                        workers: Sequence[int] = KERNEL_WORKERS,
                        iters: int = KERNEL_ITERS,
                        seed: int = 1234,
                        timing_reps: int = 2) -> List[Dict[str, object]]:
    """Measured multicore rows for ``BENCH_scale.json``.

    For each (protocol, rank count): one reference run
    (``engine_workers=1``, single engine, inline) and one per extra
    worker count on the processes backend.  Speedup is wall-clock
    reference / partitioned, same machine, same Python; each config is
    timed ``timing_reps`` times and the minimum kept (after a warm-up
    run that pays the one-time import/fork costs — without it the
    first-measured reference is inflated and every speedup against it
    reads high).
    """
    from repro.simkernel.parallel import fork_available, run_partitioned
    protos = tuple(protocol_names or protocols.available())
    # Speedup is a property of the measuring host: w workers can only
    # beat the reference when w cores exist.  Stamping the core count
    # keeps committed rows interpretable (a single-CPU CI container
    # legitimately measures ~1x — pure synchronization overhead).
    host_cpus = os.cpu_count() or 1
    warm_parts, warm_chans = _kernel_model(protos[0], 8, 2, 2)
    run_partitioned(warm_parts, warm_chans, seed=seed,
                    backend="processes" if fork_available() else "inline")
    rows: List[Dict[str, object]] = []
    for protocol in protos:
        for n in ranks:
            ref_wall: Optional[float] = None
            for w in workers:
                backend = ("processes" if w > 1 and fork_available()
                           else "inline")
                wall = _INF_WALL
                for _ in range(max(1, timing_reps)):
                    parts, chans = _kernel_model(protocol, n, w, iters)
                    t0 = time.perf_counter()
                    _results, stats = run_partitioned(
                        parts, chans, seed=seed, backend=backend)
                    wall = min(wall, time.perf_counter() - t0)
                if w == 1:
                    ref_wall = wall
                rows.append({
                    "kind": "kernel",
                    "label": f"kernel:{protocol}/n{n}/w{w}",
                    "protocol": protocol,
                    "ranks": n,
                    "engine_workers": w,
                    "backend": backend,
                    "host_cpus": host_cpus,
                    "events": stats.events_processed,
                    "rounds": stats.rounds,
                    "cross_messages": stats.payload_messages,
                    "null_messages": stats.null_messages,
                    "wall_seconds": wall,
                    "ref_wall_seconds": ref_wall,
                    "speedup_vs_reference": (ref_wall / wall
                                             if ref_wall and wall else None),
                })
    return rows


def render_kernel_rows(rows: Sequence[Dict[str, object]]) -> str:
    header = (f"{'config':>22} | {'events':>9} | {'wall s':>7} | "
              f"{'speedup':>7} | {'nulls':>6}")
    lines = ["== partitioned-kernel scaling ==", header, "-" * len(header)]
    for row in rows:
        speedup = row["speedup_vs_reference"]
        lines.append(
            f"{row['label']:>22} | {row['events']:>9} | "
            f"{row['wall_seconds']:>7.2f} | "
            f"{speedup:>6.2f}x | {row['null_messages']:>6}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--protocols", action="append", default=[],
                        metavar="NAME[,NAME]",
                        help="protocols to sweep (default: all registered)")
    parser.add_argument("--ranks", default=None, metavar="N[,N]",
                        help=f"rank counts (default: "
                             f"{','.join(map(str, RANKS))})")
    parser.add_argument("--shards", default=None, metavar="K[,K]",
                        help=f"checkpoint-server counts (default: "
                             f"{','.join(map(str, SHARDS))})")
    parser.add_argument("--topology", default="uniform",
                        help="fabric model for every cell (uniform, star, "
                             "twotier; see repro.netmodel)")
    parser.add_argument("--no-faults", action="store_true",
                        help="sweep fault-free (no recovery traffic)")
    parser.add_argument("--quick", action="store_true",
                        help=f"reduced CI grid: ranks "
                             f"{','.join(map(str, QUICK_RANKS))} x shards "
                             f"{','.join(map(str, QUICK_SHARDS))}, 1 rep")
    parser.add_argument("--json", default="BENCH_scale.json", metavar="PATH",
                        help="benchmark JSON output path")
    parser.add_argument("--kernel-bench", action="store_true",
                        help="append partitioned-kernel multicore rows "
                             "(kind: kernel) measuring wall-clock speedup "
                             "at engine-workers 1/2/4")
    parser.add_argument("--kernel-ranks", default=None, metavar="N[,N]",
                        help=f"rank counts for --kernel-bench (default: "
                             f"{','.join(map(str, KERNEL_RANKS))}, plus "
                             f"{','.join(map(str, KERNEL_RANKS_DEEP))} for "
                             f"the first protocol)")
    add_runner_arguments(parser)
    args = parser.parse_args()

    protos = [p for chunk in args.protocols for p in chunk.split(",") if p]
    ranks = tuple(int(x) for x in args.ranks.split(",")) if args.ranks \
        else (QUICK_RANKS if args.quick else RANKS)
    shards = tuple(int(x) for x in args.shards.split(",")) if args.shards \
        else (QUICK_SHARDS if args.quick else SHARDS)
    reps = 1 if args.quick else args.reps
    runner = runner_from_args(args)

    t0 = time.perf_counter()
    result = run_experiment(
        reps=reps, protocol_names=protos or None, ranks=ranks,
        shards=shards, faulty=not args.no_faults, topology=args.topology,
        runner=runner)
    wall = time.perf_counter() - t0

    print(result.render())
    print()
    print(render_shard_balance(result))
    stats = runner.stats
    print(f"[runner] {stats.describe()}, wall {wall:.1f}s")
    rows = summarize(result)
    kernel_rows: List[Dict[str, object]] = []
    if args.kernel_bench:
        proto_list = list(protos or protocols.available())
        if args.kernel_ranks:
            kranks = tuple(int(x) for x in args.kernel_ranks.split(","))
            kernel_rows = kernel_speedup_rows(proto_list, ranks=kranks)
        else:
            kernel_rows = kernel_speedup_rows(proto_list)
            # deep rank axis (2048/4096) once, on the first protocol
            kernel_rows += kernel_speedup_rows(proto_list[:1],
                                               ranks=KERNEL_RANKS_DEEP)
        print()
        print(render_kernel_rows(kernel_rows))
    if args.json:
        doc = {
            "experiment": "scale-sweep",
            "reps": reps,
            "protocols": list(protos or protocols.available()),
            "ranks": list(ranks),
            "shards": list(shards),
            "topology": args.topology,
            "faulty": not args.no_faults,
            "engine_workers": getattr(args, "engine_workers", 1),
            "rows": rows + kernel_rows,
            "wall_seconds": wall,
            "executed": stats.executed,
            "cache_hits": stats.cache_hits,
            "runner_stats": stats.to_doc(),
            "obs_overhead": obs_overhead_row(),
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")


if __name__ == "__main__":  # pragma: no cover
    main()
