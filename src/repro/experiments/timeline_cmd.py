"""``python -m repro timeline`` — one observed trial, rendered.

Runs a single trial of any registered protocol under an inline fault
plan (``--kill``, ``--partition``, ``--heal-after``) and renders what
the paper's methodology reads off the execution trace: the ASCII
swimlane timeline, optionally the per-epoch recovery *phase table*
derived from the observability spans (``--phases``), and optionally a
Chrome-trace/Perfetto JSON of the same spans (``--trace-out``).

Examples::

    python -m repro timeline --kill 45 --phases
    python -m repro timeline --protocol v2 --kill 45:0 --kill 80:1 \\
        --partition 120:2,3 --heal-after 30 --trace-out trial.trace.json
"""

from __future__ import annotations

import argparse
import json
from typing import List, Tuple

from repro.analysis.critpath import render_critical_paths
from repro.analysis.timeline import render_timeline
from repro.experiments.harness import TrialSetup
from repro.experiments.resultstore import run_result_to_dict
from repro.explore import generators
from repro.explore.generators import (Heal, Step, TimedKill, TimedPartition,
                                      render_plan)
from repro.mpichv import protocols
from repro.obs import (epoch_phase_table, render_phase_table, span_rollups,
                       write_chrome_trace)


def _parse_kill(spec: str) -> TimedKill:
    """``T`` or ``T:IDX`` — kill machine IDX (default 0) at t=T."""
    at, _, target = spec.partition(":")
    return TimedKill(at=int(at), target=int(target) if target else 0)


def _parse_partition(spec: str) -> TimedPartition:
    """``T:IDX[,IDX...]`` — isolate those machines together at t=T."""
    at, _, targets = spec.partition(":")
    if not targets:
        raise argparse.ArgumentTypeError(
            f"partition spec {spec!r} needs targets, e.g. 60:1,2")
    return TimedPartition(at=int(at),
                          targets=tuple(int(x) for x in targets.split(",")))


def build_plan(kills: List[TimedKill],
               partitions: List[TimedPartition],
               heal_after: int) -> Tuple[Step, ...]:
    """Assemble the fault plan in injection order."""
    steps: List[Step] = sorted([*kills, *partitions], key=lambda s: s.at)
    if heal_after and partitions:
        steps.append(Heal(after=heal_after))
    return tuple(steps)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--protocol", default="vcl",
                        choices=list(protocols.available()),
                        help="fault-tolerance protocol (default: vcl)")
    parser.add_argument("--procs", type=int, default=8, metavar="N",
                        help="MPI processes (default: 8)")
    parser.add_argument("--workload", default="ring",
                        help="registered workload (default: ring)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="simulated-seconds cap (default: 600)")
    parser.add_argument("--kill", action="append", default=[],
                        type=_parse_kill, metavar="T[:IDX]",
                        help="kill machine IDX (default 0) at t=T; repeatable")
    parser.add_argument("--partition", action="append", default=[],
                        type=_parse_partition, metavar="T:IDX[,IDX...]",
                        help="isolate machines at t=T; repeatable")
    parser.add_argument("--heal-after", type=int, default=0, metavar="S",
                        help="heal every partition S seconds after the last "
                             "injection step")
    parser.add_argument("--width", type=int, default=72,
                        help="timeline width in columns (default: 72)")
    parser.add_argument("--phases", action="store_true",
                        help="print the span-derived per-epoch recovery "
                             "phase table (detect/relaunch/restore/replay)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Chrome-trace/Perfetto JSON of the "
                             "trial's spans to FILE")
    parser.add_argument("--obs-out", default=None, metavar="FILE",
                        help="write the trial's full result document "
                             "(verdict + obs, the wire format) to FILE — "
                             "feed two of these to `repro trace-diff`")
    args = parser.parse_args()

    plan = build_plan(args.kill, args.partition, args.heal_after)
    setup = TrialSetup(
        n_procs=args.procs, n_machines=args.procs + 4,
        protocol=args.protocol, workload=args.workload,
        timeout=args.timeout, keep_trace=True,
        scenario_source=render_plan(plan) if plan else None,
        master_daemon=generators.MASTER,
        node_daemon=generators.NODE_DAEMON)
    result = setup.run_one(args.seed)

    print(f"== {args.protocol} / {args.workload} x{args.procs} "
          f"(seed {args.seed}) — {result.verdict.outcome.value} ==")
    print(render_timeline(result.trace, width=args.width))
    if args.phases:
        print()
        print("== recovery phases (sim seconds, from repro.obs spans) ==")
        print(render_phase_table(result.obs))
        print()
        print("== recovery critical paths (repro.analysis.critpath) ==")
        print(render_critical_paths(result.obs))
    if result.obs:
        rollups = span_rollups(result.obs)
        if rollups:
            print()
            kinds = ", ".join(f"{kind} x{agg['count']}"
                              for kind, agg in sorted(rollups.items()))
            print(f"spans: {kinds}")
    if args.trace_out:
        write_chrome_trace(
            args.trace_out, result.obs,
            title=f"{args.protocol}/{args.workload} x{args.procs} "
                  f"seed={args.seed}")
        print(f"wrote Chrome trace to {args.trace_out} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.obs_out:
        with open(args.obs_out, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(run_result_to_dict(result),
                                sort_keys=True, separators=(",", ":"))
                     + "\n")
        print(f"wrote result document to {args.obs_out}")


if __name__ == "__main__":  # pragma: no cover
    main()
