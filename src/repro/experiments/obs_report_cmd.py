"""``python -m repro obs-report`` — campaign observability rollup.

Aggregates the ``obs`` documents of every result in a
:class:`~repro.experiments.resultstore.ResultStore` directory (the
``--cache-dir`` of a campaign) into an OpenMetrics text exposition and
a static HTML report.  See :mod:`repro.obs.report`.

Example::

    python -m repro compare-protocols --quick --reps 1 --cache-dir store
    python -m repro obs-report --store store --out report
"""

from __future__ import annotations

import argparse
import json
import os

from repro.experiments.resultstore import FORMAT_VERSION
from repro.obs.report import write_obs_report


def collect_obs_docs(store_root: str):
    """Every ``obs`` document in a result-store directory.

    Walks the two-level store in sorted order (deterministic
    aggregation input order) and yields the obs document of every
    readable, current-format result that recorded one.  Returns the
    list plus a count of skipped entries (unreadable, version-skewed,
    or unobserved).
    """
    docs = []
    skipped = 0
    for dirpath, dirnames, filenames in sorted(os.walk(store_root)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".json"):
                continue
            path = os.path.join(dirpath, name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
            except (OSError, ValueError):
                skipped += 1
                continue
            if not isinstance(doc, dict) \
                    or doc.get("format") != FORMAT_VERSION \
                    or not doc.get("obs"):
                skipped += 1
                continue
            docs.append(doc["obs"])
    return docs, skipped


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--store", required=True, metavar="DIR",
                        help="result-store root (a campaign's --cache-dir)")
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="output directory for metrics.txt + index.html")
    parser.add_argument("--title", default="repro campaign",
                        help="report title (default: 'repro campaign')")
    args = parser.parse_args()

    if not os.path.isdir(args.store):
        raise SystemExit(f"no such result store: {args.store}")
    docs, skipped = collect_obs_docs(args.store)
    paths = write_obs_report(args.out, docs, title=args.title)
    print(f"aggregated {len(docs)} observed trials "
          f"({skipped} entries skipped)")
    for kind in sorted(paths):
        print(f"  {kind}: {paths[kind]}")


if __name__ == "__main__":  # pragma: no cover
    main()
